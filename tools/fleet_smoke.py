#!/usr/bin/env python
"""Fleet-orchestration smoke test: a ~16-session mini-campaign with
one injected worker crash, one stall and one poisoned trace.

Checks the contract the supervisor promises:

* the campaign completes without orchestrator failure even though a
  worker died silently, another wedged past the hang timeout, and a
  third failed deterministically on every attempt;
* the crash and stall victims recover via retry and land in the
  aggregate; the poisoned session — and only the poisoned session —
  is quarantined;
* ``--resume`` on the finished campaign is a no-op that reproduces
  ``aggregates.json`` byte-for-byte (the journal is the source of
  truth, the aggregate a pure function of it).

Run from a checkout: ``python tools/fleet_smoke.py``.
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet import (  # noqa: E402
    CampaignSpec,
    ChaosPlan,
    resume_campaign,
    run_campaign,
    verify_chaos,
)

SESSIONS = 16
FAILURES = []


def check(name: str, ok: bool, detail: str = "") -> None:
    line = f"  [{'ok' if ok else 'FAIL'}] {name}"
    if detail:
        line += f" — {detail}"
    print(line)
    if not ok:
        FAILURES.append(name)


def main() -> int:
    spec = CampaignSpec(
        name="fleet-smoke", sessions=SESSIONS, seed=1234,
        app_mixes=(("launcher", "memopad"), ("launcher", "puzzle")),
        behaviors=("gremlins",), durations=(0.01,),
        caches=((8192, 32, 4),))
    plan = ChaosPlan.plan(SESSIONS, seed=7, crashes=1, stalls=1,
                          poisons=1, stall_seconds=120.0)
    print(f"mini-campaign: {SESSIONS} sessions, {plan.describe()}")

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "campaign"
        result = run_campaign(spec, out, jobs=2, hang_timeout=10.0,
                              retries=2, backoff_base=0.1,
                              chaos=plan.directives())
        print(result.format(spec.name))

        check("campaign completes despite chaos", result.complete)
        check("crash observed and survived", result.crashes >= 1,
              f"{result.crashes} crash(es)")
        check("stall killed by hang timeout", result.hangs >= 1,
              f"{result.hangs} hang kill(s)")
        problems = verify_chaos(plan, result)
        check("recovery oracle holds", not problems,
              "; ".join(problems) if problems else
              "victims recovered, poison quarantined")
        check("only the poison is quarantined",
              sorted(result.aggregate.quarantined) == plan.poison_victims)
        check("every other session aggregated",
              len(result.aggregate.sessions) == SESSIONS - 1)

        first = (out / "aggregates.json").read_bytes()
        resumed = resume_campaign(out, jobs=1, hang_timeout=300.0)
        check("resume of a finished campaign is a no-op",
              resumed.ran == 0)
        check("resume reproduces aggregates byte-for-byte",
              (out / "aggregates.json").read_bytes() == first)

    if FAILURES:
        print(f"\n{len(FAILURES)} fleet smoke failure(s): "
              f"{', '.join(FAILURES)}")
        return 1
    print("\nfleet smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
