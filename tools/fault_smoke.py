#!/usr/bin/env python
"""Fault-injection smoke test for the replay resilience subsystem.

Collects a short session, then drives ``palm-repro replay`` (in
process) over injected faults under each divergence policy and checks
the contract the resilience subsystem promises:

* ``--on-divergence strict``  + trace corruption -> nonzero exit and a
  typed, localized divergence report (never a bare traceback);
* ``--on-divergence resync``  + a one-shot runtime fault -> exit 0,
  recovered from a checkpoint;
* ``--on-divergence degrade`` + trace corruption -> exit 0, completes
  with an explicit TAINTED notice.

Run from a checkout: ``python tools/fault_smoke.py``.
"""

import contextlib
import io
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

FAILURES = []


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


def check(name, ok, detail=""):
    print(f"  {'ok' if ok else 'FAIL'}: {name}" + (f" ({detail})" if detail
                                                   else ""))
    if not ok:
        FAILURES.append(name)


def main_smoke() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        archive = str(Path(tmp) / "session")
        print("collecting a quickstart session...")
        code, out, err = run_cli("collect", "--out", archive,
                                 "--session", "quickstart")
        if code != 0:
            print(err, file=sys.stderr)
            print("collection failed; cannot smoke-test replay")
            return 1

        replay = ("replay", "--session", archive, "--no-profile",
                  "--checkpoint-every", "100")

        print("strict + truncated trace:")
        code, out, err = run_cli(*replay, "--on-divergence", "strict",
                                 "--faults", "truncate:frac=0.6")
        check("exit code is nonzero", code != 0, f"exit={code}")
        check("typed divergence report printed",
              "replay diverged" in err and "missing-event" in err)
        check("divergence is localized", "last good checkpoint" in err)

        print("resync + runtime crash fault:")
        code, out, err = run_cli(*replay, "--on-divergence", "resync",
                                 "--faults", "crash:at=250")
        check("exit code is zero", code == 0, f"exit={code}")
        check("recovered from a checkpoint", "retries" in out)
        check("run completed", "replayed" in out)

        print("degrade + truncated trace:")
        code, out, err = run_cli(*replay, "--on-divergence", "degrade",
                                 "--faults", "truncate:frac=0.6")
        check("exit code is zero", code == 0, f"exit={code}")
        check("result marked tainted", "TAINTED" in out)
        check("divergences reported", "missing-event" in out)

        print("salvage of a garbled on-disk trace:")
        from repro.resilience import FaultPlan
        from repro.tracelog import ActivityLog
        log_path = Path(archive) / "activity_log.pdb"
        log = ActivityLog.load(log_path)
        garbled, _ = FaultPlan.parse("type-garbage,dup").apply_to_log(log)
        garbled.save(log_path)
        code, out, err = run_cli(*replay, "--on-divergence", "degrade",
                                 "--salvage")
        check("exit code is zero", code == 0, f"exit={code}")
        check("salvage diagnosed the corruption",
              "salvage" in out and "dropped" in out)

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed: {', '.join(FAILURES)}")
        return 1
    print("\nall resilience policy checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main_smoke())
