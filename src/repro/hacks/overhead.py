"""Hack-overhead instrumentation (§2.3.3, Figure 3).

Two measurements from the paper:

* :func:`measure_pen_sampling_rate` — hold the stylus against the
  screen and count pen records per second in the log database.  The
  paper's m515 recorded an average of 50.0/s, i.e. no perceptible
  overhead at the 50 Hz sample rate.

* :func:`measure_hack_overhead` — "a test that called a hack in a
  tight loop on a handheld ... The test eliminated the call to the
  original system routine to isolate the overhead associated with the
  hack."  Average execution time per call is measured at a range of
  log-database sizes; the paper found ~6.4 ms/call at 0–10 K records
  growing to ~15.5 ms/call at 50–60 K, blamed on the OS memory
  manager.  In this reproduction the growth arises organically from
  the record-list walk each insert performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..device import constants as C
from ..m68k.asm import assemble
from ..palmos import PalmOS, Trap
from ..tracelog.log import LOG_DB_NAME, create_log_database, read_activity_log
from ..tracelog.records import LogEventType
from .manager import HackManager
from .logging_hacks import HackSpec


@dataclass
class OverheadPoint:
    """Average per-call hack overhead at one database size."""

    records: int
    calls: int
    avg_cycles: float

    @property
    def avg_ms(self) -> float:
        return self.avg_cycles / C.CPU_CLOCK_HZ * 1000.0


def run_trap_loop(kernel: PalmOS, trap: Trap, arg: int, calls: int,
                  max_ticks: int = 5_000_000) -> float:
    """Invoke ``trap(arg)`` ``calls`` times from a guest loop; returns
    average cycles per call."""
    thunk_addr = kernel.device.mem.ram.base + 0x0E00  # inside stack reserve
    source = f"""
        org     ${thunk_addr:x}
        move.l  #{calls - 1},d4
tl_loop:
        move.l  #${arg & 0xFFFFFFFF:x},-(sp)
        dc.w    ${0xA000 | int(trap):04x}
        addq.l  #4,sp
        dbra    d4,tl_loop
        dc.w    $ffff
"""
    program = assemble(source)
    for addr, blob in program.segments:
        kernel.device.mem.load_ram(addr, blob)

    cpu = kernel.device.cpu
    saved = (cpu.pc, cpu.stopped)
    done = {"end_cycles": None}
    prev_fline = cpu.fline_handler

    def fline(c, op):
        if op == 0xFFFF:
            # Capture the cycle counter *here*: once the CPU stops, the
            # scheduler dozes it to the next tick boundary and those
            # skipped cycles must not pollute the measurement.
            done["end_cycles"] = c.cycles
            c.stopped = True
            return True
        return prev_fline(c, op) if prev_fline else False

    cpu.fline_handler = fline
    cpu.stopped = False
    cpu.pc = thunk_addr
    start_cycles = cpu.cycles
    deadline = kernel.device.tick + max_ticks
    while done["end_cycles"] is None and kernel.device.tick < deadline:
        kernel.device.advance(kernel.device.tick + 50)
    cpu.fline_handler = prev_fline
    cpu.pc, cpu.stopped = saved
    if done["end_cycles"] is None:
        raise RuntimeError("trap loop did not finish")
    return (done["end_cycles"] - start_cycles) / calls


def prefill_log(kernel: PalmOS, count: int,
                db_name: str = LOG_DB_NAME) -> None:
    """Host-side construction of a log database with ``count`` records
    (fast state injection; the measurement path stays fully guest)."""
    db = create_log_database(kernel, db_name)
    if count:
        payload = bytes(16)
        kernel.dm_host.bulk_append(db, [payload] * count)


def measure_hack_overhead(
    kernel: PalmOS,
    spec: HackSpec,
    arg: int,
    db_sizes: Sequence[int],
    calls_per_size: int = 20,
) -> List[OverheadPoint]:
    """Figure 3's measurement: isolated-hack cost vs. database size.

    ``spec`` should be built with ``isolate=True`` so the original
    routine is elided, exactly as in the paper's test.
    """
    manager = HackManager(kernel)
    manager.install(spec)
    try:
        points = []
        for size in db_sizes:
            prefill_log(kernel, size)
            avg = run_trap_loop(kernel, spec.trap, arg, calls_per_size)
            points.append(OverheadPoint(records=size, calls=calls_per_size,
                                        avg_cycles=avg))
        return points
    finally:
        manager.uninstall_all()


def measure_pen_sampling_rate(kernel: PalmOS, seconds: int = 4) -> float:
    """§2.3.3's pen test: stylus held against the screen, count pen
    records per second landing in the (initially empty) log database."""
    create_log_database(kernel)
    manager = HackManager(kernel)
    manager.install_standard()
    try:
        start = kernel.device.tick
        kernel.device.schedule_pen_down(start + 10, 80, 80)
        hold_ticks = seconds * C.TICKS_PER_SECOND
        kernel.device.schedule_pen_up(start + 10 + hold_ticks)
        kernel.device.run_until_idle(max_ticks=hold_ticks + 10_000)
        log = read_activity_log(kernel)
        pen_records = [r for r in log.of_type(LogEventType.PEN) if r.pen_down]
        return len(pen_records) / seconds
    finally:
        manager.uninstall_all()
