"""The hack manager — our X-Master equivalent (§2.3.2, [15]).

Installing a hack means: assemble its position-independent code,
store it as a record of the extensions database (storage heap, so it
survives soft resets), remember the current trap-table entry in the
hack's chain slot, and point the table at the hack.  The kernel's boot
sequence re-patches the table from the same records after every reset,
exactly the service X-Master provides on a real device.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List

from ..m68k.asm import assemble
from ..palmos import layout as L
from ..palmos.kernel import EXTENSIONS_DB_NAME
from ..palmos.rom import _symbols
from .logging_hacks import HackSpec, standard_hacks


@dataclass
class InstalledHack:
    spec: HackSpec
    record_index: int
    code_addr: int


def installed_hack_traps(kernel) -> List[int]:
    """The trap numbers patched by extension-database hacks, read
    host-side (no guest execution, no trace perturbation).

    Each hack record starts with a ``(trap, chain-slot offset)`` header;
    this walks the extensions database the same way the boot re-patch
    does.  The resilience watchdog uses it to confirm the replayed
    machine is actually logging before trusting an empty replay log.
    """
    dm = kernel.dm_host
    ext_db = dm.find(EXTENSIONS_DB_NAME)
    if not ext_db:
        return []
    traps: List[int] = []
    for index in range(dm.num_records(ext_db)):
        rec_addr, size = dm.get_record(ext_db, index)
        if size < 4:
            continue
        trap, _ = struct.unpack(">HH", kernel.host.read_bytes(rec_addr, 4))
        traps.append(trap)
    return traps


class HackManager:
    """Installs and removes trap patches on a live kernel."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.installed: Dict[int, InstalledHack] = {}  # by trap index

    # ------------------------------------------------------------------
    def _assemble_payload(self, spec: HackSpec) -> bytes:
        program = assemble(spec.source, origin=0, symbols=_symbols())
        payload = bytearray(program.blob)
        # Verify the metadata header matches the spec.
        trap, orig_off = struct.unpack(">HH", payload[:4])
        if trap != int(spec.trap):
            raise ValueError(f"hack {spec.name}: header trap {trap} != "
                             f"{int(spec.trap)}")
        horig = program.symbols["horig"]
        if orig_off != horig - 4:  # chain slot offset, relative to the code
            raise ValueError(f"hack {spec.name}: bad chain-slot offset")
        return bytes(payload)

    def install(self, spec: HackSpec) -> InstalledHack:
        if int(spec.trap) in self.installed:
            raise ValueError(f"trap {spec.trap.name} already hacked")
        kernel = self.kernel
        payload = self._assemble_payload(spec)
        dm = kernel.dm_host
        ext_db = dm.find(EXTENSIONS_DB_NAME)
        if not ext_db:
            ext_db = dm.create(EXTENSIONS_DB_NAME, "hack", "xmst")
        index = dm.num_records(ext_db)
        rec_addr = dm.new_record(ext_db, L.DM_MAX_RECORD_INDEX, len(payload))
        kernel.host.write_bytes(rec_addr, payload)
        # Live patch: save the current entry in the chain slot, then
        # point the dispatch table at the hack code.
        host = kernel.host
        entry_addr = L.TRAP_TABLE + int(spec.trap) * 4
        orig = host.read32(entry_addr)
        orig_off = struct.unpack(">H", payload[2:4])[0]
        code_addr = rec_addr + 4
        host.write32(code_addr + orig_off, orig)
        host.write32(entry_addr, code_addr)
        hack = InstalledHack(spec, index, code_addr)
        self.installed[int(spec.trap)] = hack
        return hack

    def install_standard(self, isolate: bool = False,
                         db_name: str | None = None) -> List[InstalledHack]:
        """Install the paper's five collection hacks."""
        kwargs = {} if db_name is None else {"db_name": db_name}
        return [self.install(spec)
                for spec in standard_hacks(isolate=isolate, **kwargs)]

    def uninstall(self, trap: int) -> None:
        """Remove the hack on ``trap`` (must be the newest patch)."""
        trap = int(trap)
        hack = self.installed.pop(trap, None)
        if hack is None:
            raise KeyError(f"no hack installed on trap {trap}")
        kernel = self.kernel
        host = kernel.host
        entry_addr = L.TRAP_TABLE + trap * 4
        if host.read32(entry_addr) != hack.code_addr:
            raise RuntimeError("trap table no longer points at this hack; "
                               "uninstall in reverse install order")
        payload_head = host.read_bytes(hack.code_addr - 4, 4)
        orig_off = struct.unpack(">H", payload_head[2:4])[0]
        orig = host.read32(hack.code_addr + orig_off)
        host.write32(entry_addr, orig)
        # Remove the record (re-index remaining hacks).
        dm = kernel.dm_host
        ext_db = dm.find(EXTENSIONS_DB_NAME)
        for index in range(dm.num_records(ext_db)):
            data, _ = dm.get_record(ext_db, index)
            if data == hack.code_addr - 4:
                dm.remove_record(ext_db, index)
                break
        for other in self.installed.values():
            if other.record_index > hack.record_index:
                other.record_index -= 1

    def uninstall_all(self) -> None:
        for trap in sorted(self.installed,
                           key=lambda t: self.installed[t].record_index,
                           reverse=True):
            self.uninstall(trap)
