"""System extensions ("hacks"): trap patching and input collection."""

from .logging_hacks import (
    HackSpec,
    evt_enqueue_key_hack,
    evt_enqueue_pen_point_hack,
    key_current_state_hack,
    standard_hacks,
    sys_notify_broadcast_hack,
    sys_random_hack,
)
from .manager import HackManager, InstalledHack, installed_hack_traps
from .overhead import (
    OverheadPoint,
    measure_hack_overhead,
    measure_pen_sampling_rate,
    prefill_log,
    run_trap_loop,
)

__all__ = [
    "HackSpec",
    "HackManager",
    "InstalledHack",
    "installed_hack_traps",
    "standard_hacks",
    "evt_enqueue_key_hack",
    "evt_enqueue_pen_point_hack",
    "key_current_state_hack",
    "sys_notify_broadcast_hack",
    "sys_random_hack",
    "OverheadPoint",
    "measure_hack_overhead",
    "measure_pen_sampling_rate",
    "prefill_log",
    "run_trap_loop",
]
