"""The five activity-log collection hacks (§2.3.2).

Each hack is a self-contained, position-independent 68k routine whose
address is inserted into the trap dispatch table in place of the
original system routine.  When its trap fires it "opens a common
database, inserts a record with the current tick counter and the real
time clock values, the event type and any necessary data.  It then
closes the common database.  Each hack also makes a call to the
original system routine."

Hacks live in records of the extensions database in the storage heap,
so they execute from RAM (as real HackMaster hacks did) and survive
soft resets via the boot-time reinstall.

The ``isolate=True`` variant omits the chain to the original routine —
the paper's §2.3.3 microbenchmark uses exactly this to measure pure
hack overhead (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device import constants as C
from ..palmos.traps import Trap
from ..tracelog.log import LOG_DB_NAME
from ..tracelog.records import LogEventType


@dataclass(frozen=True)
class HackSpec:
    """A hack ready to assemble: name, patched trap, asm source."""

    name: str
    trap: Trap
    source: str


_HACK_TEMPLATE = """
; ---- hack: {name} (trap {trap_name}) -------------------------------
; Record payload header consumed by the boot-time reinstaller:
        dc.w    {trap}                  ; patched trap number
        dc.w    horig-4                 ; offset of the chain slot
hack_code:
        movem.l d0-d3/a0-a1,-(sp)       ; trap args now at 30(sp)
{capture}
{skip_zero}
        ; open the common database
        pea     hname(pc)
        dc.w    ${find:04x}             ; DmFindDatabase
        addq.l  #4,sp
        tst.l   d0
        beq     hk_out
        move.l  d0,d2                   ; d2 = database
        move.l  d2,-(sp)
        dc.w    ${open:04x}             ; DmOpenDatabase
        addq.l  #4,sp
        ; append a {size}-byte record
        move.l  #{size},-(sp)
        move.l  #$ffff,-(sp)            ; dmMaxRecordIndex
        move.l  d2,-(sp)
        dc.w    ${newrec:04x}           ; DmNewRecord
        adda.l  #12,sp
        tst.l   d0
        beq     hk_close                ; database full: skip
        movea.l d0,a1
        ; record: type, tick, rtc, data
        move.w  #{etype},(a1)+
        dc.w    ${getticks:04x}         ; TimGetTicks
        move.l  d0,(a1)+
        dc.w    ${getseconds:04x}       ; TimGetSeconds
        move.l  d0,(a1)+
{store}
hk_close:
        move.l  d2,-(sp)
        dc.w    ${close:04x}            ; DmCloseDatabase
        addq.l  #4,sp
hk_out:
        movem.l (sp)+,d0-d3/a0-a1
{chain}
hname:  dc.b    "{db_name}",0
        even
horig:  dc.l    0                       ; chain target, set at install
"""

_CHAIN = """\
        move.l  horig(pc),-(sp)
        rts                             ; jump to the original routine"""

_CHAIN_ISOLATED = """\
        rte                             ; isolated: original elided (fig. 3 test)"""


def _build(name: str, trap: Trap, etype: LogEventType, capture: str,
           short: bool = False, skip_zero: bool = False,
           isolate: bool = False, db_name: str = LOG_DB_NAME) -> HackSpec:
    if short:
        size = 12
        store = "        move.w  d3,(a1)+"
    else:
        size = 16
        store = "        move.l  d3,(a1)+\n        clr.w   (a1)"
    source = _HACK_TEMPLATE.format(
        name=name,
        trap=int(trap),
        trap_name=trap.name,
        capture=capture,
        skip_zero=("        tst.l   d3\n        beq     hk_out"
                   if skip_zero else ""),
        etype=int(etype),
        size=size,
        store=store,
        chain=_CHAIN_ISOLATED if isolate else _CHAIN,
        db_name=db_name,
        find=0xA000 | Trap.DmFindDatabase,
        open=0xA000 | Trap.DmOpenDatabase,
        newrec=0xA000 | Trap.DmNewRecord,
        getticks=0xA000 | Trap.TimGetTicks,
        getseconds=0xA000 | Trap.TimGetSeconds,
        close=0xA000 | Trap.DmCloseDatabase,
    )
    return HackSpec(name=name, trap=trap, source=source)


_ARG0_CAPTURE = "        move.l  30(sp),d3               ; first trap argument"
_KEYSTATE_CAPTURE = (
    f"        move.l  ${C.REG_KEY_STATE:08x},d3       ; key bit field")


def evt_enqueue_key_hack(isolate: bool = False,
                         db_name: str = LOG_DB_NAME) -> HackSpec:
    return _build("EvtEnqueueKeyHack", Trap.EvtEnqueueKey, LogEventType.KEY,
                  _ARG0_CAPTURE, isolate=isolate, db_name=db_name)


def evt_enqueue_pen_point_hack(isolate: bool = False,
                               db_name: str = LOG_DB_NAME) -> HackSpec:
    return _build("EvtEnqueuePenPointHack", Trap.EvtEnqueuePenPoint,
                  LogEventType.PEN, _ARG0_CAPTURE, isolate=isolate,
                  db_name=db_name)


def key_current_state_hack(isolate: bool = False,
                           db_name: str = LOG_DB_NAME) -> HackSpec:
    return _build("KeyCurrentStateHack", Trap.KeyCurrentState,
                  LogEventType.KEYSTATE, _KEYSTATE_CAPTURE, short=True,
                  isolate=isolate, db_name=db_name)


def sys_notify_broadcast_hack(isolate: bool = False,
                              db_name: str = LOG_DB_NAME) -> HackSpec:
    return _build("SysNotifyBroadcastHack", Trap.SysNotifyBroadcast,
                  LogEventType.NOTIFY, _ARG0_CAPTURE, isolate=isolate,
                  db_name=db_name)


def sys_random_hack(isolate: bool = False,
                    db_name: str = LOG_DB_NAME) -> HackSpec:
    # Only non-zero parameters (seedings) are logged, per §2.4.2.
    return _build("SysRandomHack", Trap.SysRandom, LogEventType.RANDOM,
                  _ARG0_CAPTURE, skip_zero=True, isolate=isolate,
                  db_name=db_name)


def sys_reset_hack(isolate: bool = False,
                   db_name: str = LOG_DB_NAME) -> HackSpec:
    """Extension (the paper's future work): log soft resets so replay
    can reconstruct the session's tick epochs."""
    return _build("SysResetHack", Trap.SysReset, LogEventType.RESET,
                  "        moveq   #0,d3",
                  short=True, isolate=isolate, db_name=db_name)


def standard_hacks(isolate: bool = False,
                   db_name: str = LOG_DB_NAME,
                   with_reset: bool = True) -> list[HackSpec]:
    """The paper's five hacks (plus the reset extension by default)."""
    hacks = [
        evt_enqueue_key_hack(isolate, db_name),
        evt_enqueue_pen_point_hack(isolate, db_name),
        key_current_state_hack(isolate, db_name),
        sys_notify_broadcast_hack(isolate, db_name),
        sys_random_hack(isolate, db_name),
    ]
    if with_reset:
        hacks.append(sys_reset_hack(isolate, db_name))
    return hacks
