"""Chaos self-test: prove the supervisor's recovery paths actually work.

``fleet --chaos`` runs a normal campaign with three seeded injections
layered on top:

* **crash** — a victim worker ``os._exit``\\ s at a pipeline stage on
  its first attempt.  The supervisor must detect the silent death,
  retry, and complete the session (attempt 1 runs chaos-free).
* **stall** — a victim worker stops beating and sleeps at a stage
  boundary on its first attempt.  The hang timeout must kill it and
  the retry must complete it.
* **poison** — a victim session's replay is fed a deterministic trace
  fault (from the :mod:`repro.resilience.faults` grammar) under the
  ``strict`` policy.  Every attempt fails identically; the session
  *must* end up quarantined — that is the graceful-degradation path.

Victims are chosen by a seeded draw over the session list, disjoint
across the three families, so a chaos campaign is exactly as
reproducible as a clean one.  :func:`verify_chaos` is the self-test
oracle: given the chaos plan and the fleet result, it checks that
every recoverable victim completed and every poisoned victim — and
nothing else — was quarantined.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from .supervisor import FleetResult
from .worker import STAGES

#: Deterministic trace fault for poisoned sessions: drop the back half
#: of the activity log.  Under ``strict`` replay this is an
#: unrecoverable MISSING_EVENT divergence on every attempt.
POISON_FAULTS = "truncate:frac=0.5"


@dataclass
class ChaosPlan:
    """Who gets hurt, and how."""

    seed: int = 0
    crash_victims: List[int] = field(default_factory=list)
    stall_victims: List[int] = field(default_factory=list)
    poison_victims: List[int] = field(default_factory=list)
    stall_seconds: float = 3600.0

    @classmethod
    def plan(cls, sessions: int, *, seed: int = 0, crashes: int = 1,
             stalls: int = 1, poisons: int = 1,
             stall_seconds: float = 3600.0) -> "ChaosPlan":
        """Draw disjoint victim sets from ``range(sessions)``."""
        want = crashes + stalls + poisons
        if want > sessions:
            raise ValueError(
                f"chaos plan wants {want} victim(s) from only "
                f"{sessions} session(s)")
        rng = random.Random(f"fleet-chaos|{seed}")
        victims = rng.sample(range(sessions), want)
        return cls(
            seed=seed,
            crash_victims=sorted(victims[:crashes]),
            stall_victims=sorted(victims[crashes:crashes + stalls]),
            poison_victims=sorted(victims[crashes + stalls:]),
            stall_seconds=stall_seconds,
        )

    def directives(self) -> Dict[int, dict]:
        """The supervisor's ``chaos`` map: index → worker directive.

        Crash and stall hit only attempt 0, so the retry path can
        prove itself by succeeding; poison applies to every attempt,
        so the quarantine path must engage.
        """
        rng = random.Random(f"fleet-chaos-stage|{self.seed}")
        out: Dict[int, dict] = {}
        for index in self.crash_victims:
            out[index] = {"mode": "crash", "stage": rng.choice(STAGES),
                          "attempts": [0]}
        for index in self.stall_victims:
            out[index] = {"mode": "stall", "stage": rng.choice(STAGES),
                          "attempts": [0], "seconds": self.stall_seconds}
        for index in self.poison_victims:
            out[index] = {"mode": "poison", "faults": POISON_FAULTS}
        return out

    def describe(self) -> str:
        return (f"chaos: crash {self.crash_victims}, "
                f"stall {self.stall_victims}, "
                f"poison {self.poison_victims}")


def verify_chaos(plan: ChaosPlan, result: FleetResult) -> List[str]:
    """The self-test oracle.  Returns a list of violations (empty =
    the supervisor's recovery paths all held)."""
    problems: List[str] = []
    done = set(result.aggregate.sessions)
    quarantined = set(result.aggregate.quarantined)
    for index in plan.crash_victims:
        if index not in done:
            problems.append(
                f"crash victim {index} did not complete after retry")
    for index in plan.stall_victims:
        if index not in done:
            problems.append(
                f"stall victim {index} did not complete after hang-kill "
                "and retry")
    for index in plan.poison_victims:
        if index not in quarantined:
            problems.append(
                f"poison victim {index} was not quarantined")
    expected = set(plan.poison_victims)
    stray = quarantined - expected
    if stray:
        problems.append(
            f"non-poisoned session(s) {sorted(stray)} were quarantined")
    if result.crashes < len(plan.crash_victims):
        problems.append(
            f"supervisor observed {result.crashes} crash(es), expected "
            f"at least {len(plan.crash_victims)}")
    if result.hangs < len(plan.stall_victims):
        problems.append(
            f"supervisor observed {result.hangs} hang kill(s), expected "
            f"at least {len(plan.stall_victims)}")
    return problems
