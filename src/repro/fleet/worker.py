"""The fleet worker: one session, one process, one verdict.

A worker runs the full §2 pipeline for a single :class:`SessionPlan` —
collect the session (scripted volunteer or Gremlins), replay it under
the resilient runner, then feed the profiler's reference trace through
the vectorized cache kernels and the energy model — and reduces the
whole thing to one small deterministic stats record.

The worker is *sandboxed* by being a separate process: a crash (bug,
OOM kill, chaos injection) takes down the worker, never the
supervisor.  The contract with the supervisor is a single message
queue carrying exactly three message shapes:

* ``("beat", index, stage)`` — entering a pipeline stage.  Beats are
  the heartbeat: a worker that stops beating past the hang timeout is
  presumed wedged and killed.  Beats happen at stage boundaries on
  purpose — a background heartbeat thread would keep beating straight
  through a genuine stall, which is precisely the failure the timeout
  must catch.
* ``("done", index, stats)`` — the deterministic stats record.
* ``("fail", index, reason)`` — the pipeline raised; the supervisor
  decides between retry and quarantine.

Determinism contract: *nothing* in the stats record may depend on
wall-clock time, the attempt number, the pid, or scheduling — the
record must be byte-identical when the session is re-run after a
crash, because the resume guarantee ("aggregates bit-identical to an
uninterrupted run") is built on it.
"""

from __future__ import annotations

import os
import time
import traceback

from .campaign import SessionPlan, mix_to_apps

#: Worker device geometry: the m515 the rest of the repo models (the
#: emulator's flash default differs from collection's, so both are
#: pinned explicitly — the two machines must be equivalent).
WORKER_RAM = 8 << 20
WORKER_FLASH = 1 << 20

#: Pipeline stages, in order.  Chaos directives address these names.
STAGES = ("collect", "replay", "simulate")

#: PRCKPT01 interval used when the campaign spec leaves
#: ``checkpoint_every`` at 0 ("policy default") — matches the
#: resilient runner's own default.
DEFAULT_CHECKPOINT_EVERY = 2000


def _apply_chaos(chaos, stage: str, attempt: int) -> None:
    """Honor a crash/stall directive for this stage and attempt."""
    if not chaos or chaos.get("stage") != stage:
        return
    if attempt not in chaos.get("attempts", [0]):
        return
    mode = chaos.get("mode")
    if mode == "crash":
        # A real worker crash: no exception, no cleanup, no message —
        # the supervisor must notice the exit code on its own.
        os._exit(17)
    elif mode == "stall":
        # A real wedge: stop beating and burn wall-clock until the
        # supervisor's hang timeout kills us.
        time.sleep(chaos.get("seconds", 3600.0))


def run_session(plan: SessionPlan, *, policy: str = "resync",
                checkpoint_every: int = 0, faults=None,
                trace_dir=None,
                beat=lambda stage: None) -> dict:
    """The collect→replay→simulate pipeline, reduced to a stats record.

    ``beat(stage)`` is called at every stage boundary; ``faults`` is an
    optional fault-plan spec injected into the replay (the chaos
    mode's poison path).  ``checkpoint_every=0`` means "use the policy
    default" of :data:`DEFAULT_CHECKPOINT_EVERY` ticks — checkpointing
    is never disabled, because crash-resume of an interrupted session
    depends on it.

    ``trace_dir`` archives the session's reference trace as a PTRC
    container ``<trace_dir>/<session_id>.ptrc`` (atomic: tmp +
    ``os.replace``) and adds its content digest to the stats record as
    ``trace_digest``.  The digest is a pure function of the trace, so
    it keeps the record's determinism contract.
    """
    from ..analysis.energy import EnergyModel
    from ..cache import CacheConfig, RegionMix
    from ..cache.kernels import simulate_auto
    from ..resilience import resilient_replay
    from ..workloads.gremlins import Gremlins, GremlinConfig, derive_entropy_seed
    from ..workloads.sessions import collect_session
    from ..workloads.volunteer import (
        SessionSpec,
        build_session_script,
        preload_contacts,
    )

    cell = plan.cell
    apps = mix_to_apps(cell.app_mix)

    # -- collect ----------------------------------------------------------
    beat("collect")
    if cell.behavior == "gremlins":
        events = cell.gremlin_events
        script = Gremlins(plan.seed,
                          GremlinConfig(events=events)).build_script()
        session = collect_session(
            apps, script, name=plan.session_id,
            entropy_seed=derive_entropy_seed(plan.seed, apps, events),
            ram_size=WORKER_RAM, default_app="launcher")
    else:
        spec = SessionSpec(name=plan.session_id, seed=plan.seed,
                           hours=cell.duration_hours, bouts=cell.bouts)
        session = collect_session(
            apps, build_session_script(spec), name=plan.session_id,
            entropy_seed=derive_entropy_seed(plan.seed, apps, spec.bouts),
            ram_size=WORKER_RAM, default_app="launcher",
            setup=(lambda kernel: preload_contacts(kernel, spec.contacts))
            if "addressbook" in cell.app_mix else None)

    # -- replay -----------------------------------------------------------
    beat("replay")
    outcome = resilient_replay(
        session.initial_state, session.log, apps=apps,
        profile=True,
        emulator_kwargs={"ram_size": WORKER_RAM,
                         "flash_size": WORKER_FLASH},
        checkpoint_every=checkpoint_every or DEFAULT_CHECKPOINT_EVERY,
        on_divergence=policy,
        faults=faults,
        salvage=faults is not None,
    )

    # -- simulate ---------------------------------------------------------
    beat("simulate")
    profiler = outcome.profiler
    # Out-of-core: the cache kernels stream the profiler's packed
    # chunks (HW references filtered per chunk) — the trace is never
    # concatenated or copied into a second array pair.
    counts = profiler.counts_dict(memory_only=True)
    config = CacheConfig(size=cell.cache_size, line_size=cell.cache_line,
                         associativity=cell.cache_assoc)
    stats = simulate_auto(profiler.cache_chunks(memory_only=True), config)
    mix = RegionMix(counts["ram"], counts["flash"])

    trace_digest = None
    if trace_dir:
        from ..traces.container import ContainerWriter
        os.makedirs(trace_dir, exist_ok=True)
        final_path = os.path.join(trace_dir, f"{plan.session_id}.ptrc")
        tmp_path = f"{final_path}.tmp.{os.getpid()}"
        try:
            with ContainerWriter(
                    tmp_path,
                    session={"session_id": plan.session_id,
                             "seed": plan.seed,
                             "cell": cell.describe()}) as writer:
                for chunk in profiler.chunks():
                    writer.append_tokens(chunk)
            os.replace(tmp_path, final_path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        trace_digest = writer.manifest["digest"]
    model = EnergyModel()
    # The kernels hand back numpy scalars; the stats record must be
    # plain JSON types (the journal is the durability boundary).
    miss_rate = float(stats.miss_rate)

    report = outcome.report
    salvage = outcome.salvage
    record = {
        "session_id": plan.session_id,
        "cell_index": cell.index,
        "cell": cell.describe(),
        "behavior": cell.behavior,
        "seed": plan.seed,
        "events": session.events,
        "elapsed_ticks": session.elapsed_ticks,
        "collect_instructions": session.instructions,
        "replay_instructions": outcome.result.instructions,
        "events_injected": outcome.result.events_injected,
        "accesses": int(stats.accesses),
        "hits": int(stats.hits),
        "misses": int(stats.misses),
        "writebacks": int(stats.writebacks),
        "miss_rate": miss_rate,
        "energy_cached": float(model.cached_energy(mix, miss_rate)),
        "energy_no_cache": float(model.no_cache_energy(mix)),
        "energy_savings": float(model.savings(mix, miss_rate)),
        "replay_overhead": (outcome.result.instructions
                            / max(1, session.instructions)),
        "divergences": len(report.divergences) if report else 0,
        "tainted": outcome.tainted,
        "salvage_dropped": salvage.dropped if salvage else 0,
        "salvage_repaired": salvage.repaired if salvage else 0,
    }
    if trace_digest is not None:
        # Key present only when archiving: non-archiving campaigns keep
        # byte-identical stats records across versions.
        record["trace_digest"] = trace_digest
    return record


def worker_main(plan_json: dict, queue, attempt: int,
                policy: str, checkpoint_every: int,
                chaos=None, trace_dir=None) -> None:
    """Process entry point: run one session and report on ``queue``."""
    from .campaign import CampaignCell

    cell = CampaignCell(**plan_json["cell"])
    plan = SessionPlan(index=plan_json["index"], seed=plan_json["seed"],
                       cell=cell)

    def beat(stage: str) -> None:
        _apply_chaos(chaos, stage, attempt)
        queue.put(("beat", plan.index, stage))

    faults = None
    if chaos and chaos.get("mode") == "poison":
        faults = chaos["faults"]
        policy = "strict"
    try:
        stats = run_session(plan, policy=policy,
                            checkpoint_every=checkpoint_every,
                            faults=faults, trace_dir=trace_dir, beat=beat)
    except BaseException as exc:  # noqa: BLE001 - the verdict crosses a process
        queue.put(("fail", plan.index, {
            "error": type(exc).__name__,
            "message": str(exc),
            "trace": traceback.format_exc(limit=8),
        }))
        return
    queue.put(("done", plan.index, stats))


def plan_to_json(plan: SessionPlan) -> dict:
    """Picklable task description for :func:`worker_main`."""
    cell = plan.cell
    return {
        "index": plan.index,
        "seed": plan.seed,
        "cell": {
            "index": cell.index,
            "app_mix": tuple(cell.app_mix),
            "behavior": cell.behavior,
            "duration_hours": cell.duration_hours,
            "cache_size": cell.cache_size,
            "cache_line": cell.cache_line,
            "cache_assoc": cell.cache_assoc,
        },
    }
