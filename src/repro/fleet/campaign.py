"""Declarative campaign specs and their deterministic expansion.

A *campaign* is the fleet's unit of work: a grid of configuration axes
(app mix × behavior pattern × session duration × cache geometry)
crossed with a population of seeds, expanded into a flat list of
:class:`SessionPlan` rows.  The expansion is a pure function of the
spec — the same :class:`CampaignSpec` always yields the same session
list in the same order, which is what makes ``fleet --resume`` and the
bit-identical-aggregate guarantee possible: identity lives in the
spec, not in whatever order workers happened to finish.

Session ``i`` draws its cell round-robin from the grid
(``cells[i % len(cells)]``) and its base seed as ``spec.seed + i``, so
growing ``sessions`` extends a campaign without renumbering anything
already journaled.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Sequence, Tuple

#: Version of the :meth:`CampaignSpec.to_json` container.
CAMPAIGN_JSON_FORMAT = "repro-fleet-campaign"
CAMPAIGN_JSON_VERSION = 1

BEHAVIORS = ("scripted", "gremlins")

#: Default grid axes: three app mixes (the launcher must be present —
#: it is the kernel's default app), both behavior models, two session
#: lengths, and two cache geometries from the paper's sweep range.
DEFAULT_APP_MIXES: Tuple[Tuple[str, ...], ...] = (
    ("launcher", "memopad", "addressbook", "puzzle"),
    ("launcher", "memopad", "addressbook"),
    ("launcher", "puzzle"),
)
DEFAULT_DURATIONS: Tuple[float, ...] = (0.02, 0.05)   # hours
DEFAULT_CACHES: Tuple[Tuple[int, int, int], ...] = (
    (8192, 32, 4),
    (16384, 16, 2),
)

#: Scripted-behavior activity density (bouts per simulated hour) and
#: gremlins gesture density (events per simulated hour).
BOUTS_PER_HOUR = 150.0
GREMLIN_EVENTS_PER_HOUR = 2400.0


class CampaignFormatError(ValueError):
    """A serialized :class:`CampaignSpec` is not one, or was written by
    an incompatible version of the container."""


@dataclass(frozen=True)
class CampaignCell:
    """One point of the configuration grid."""

    index: int
    app_mix: Tuple[str, ...]
    behavior: str
    duration_hours: float
    cache_size: int
    cache_line: int
    cache_assoc: int

    @property
    def bouts(self) -> int:
        """Scripted-behavior bout budget for this duration."""
        return max(2, round(self.duration_hours * BOUTS_PER_HOUR))

    @property
    def gremlin_events(self) -> int:
        """Gremlins gesture budget for this duration."""
        return max(20, round(self.duration_hours * GREMLIN_EVENTS_PER_HOUR))

    def describe(self) -> str:
        return (f"{self.behavior}/{'+'.join(self.app_mix)}"
                f"/{self.duration_hours:g}h"
                f"/{self.cache_size}B.{self.cache_line}B"
                f".{self.cache_assoc}w")


@dataclass(frozen=True)
class SessionPlan:
    """One session the fleet must run: a cell plus a population seed."""

    index: int          #: position in the campaign (stable identity)
    seed: int           #: base seed for this synthetic user
    cell: CampaignCell

    @property
    def session_id(self) -> str:
        return f"s{self.index:05d}"


@dataclass
class CampaignSpec:
    """Everything that defines a campaign.  Pure data: expanding it is
    deterministic, and its digest is the campaign's identity."""

    name: str = "campaign"
    sessions: int = 16
    seed: int = 0
    app_mixes: Tuple[Tuple[str, ...], ...] = DEFAULT_APP_MIXES
    behaviors: Tuple[str, ...] = BEHAVIORS
    durations: Tuple[float, ...] = DEFAULT_DURATIONS
    caches: Tuple[Tuple[int, int, int], ...] = DEFAULT_CACHES
    #: Replay divergence policy for every session (see
    #: :data:`repro.resilience.replay.POLICIES`).
    policy: str = "resync"
    #: PRCKPT01 checkpoint interval (wall ticks) inside each replay;
    #: 0 means "use the policy default" (the resilient runner's 2000
    #: ticks — see :func:`repro.fleet.worker.run_session`).
    checkpoint_every: int = 0
    #: Archive every session's reference trace as a PTRC container
    #: under ``<campaign>/traces/`` and record its content digest in
    #: the journal (verified on ``--resume``).
    archive_traces: bool = False
    extra: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalize: tuples everywhere (JSON round trips produce lists).
        self.app_mixes = tuple(tuple(m) for m in self.app_mixes)
        self.behaviors = tuple(self.behaviors)
        self.durations = tuple(float(d) for d in self.durations)
        self.caches = tuple((int(s), int(line), int(a))
                            for s, line, a in self.caches)
        if self.sessions < 1:
            raise CampaignFormatError("a campaign needs at least 1 session")
        for behavior in self.behaviors:
            if behavior not in BEHAVIORS:
                raise CampaignFormatError(
                    f"unknown behavior {behavior!r} "
                    f"(known: {', '.join(BEHAVIORS)})")
        for mix in self.app_mixes:
            if "launcher" not in mix:
                raise CampaignFormatError(
                    f"app mix {mix!r} lacks 'launcher' — it is the "
                    "kernel's default app and must be installed")

    # -- expansion --------------------------------------------------------
    def cells(self) -> List[CampaignCell]:
        """The configuration grid, in canonical axis order."""
        grid = []
        axes = product(self.app_mixes, self.behaviors, self.durations,
                       self.caches)
        for idx, (mix, behavior, hours, cache) in enumerate(axes):
            size, line, assoc = cache
            grid.append(CampaignCell(
                index=idx, app_mix=tuple(mix), behavior=behavior,
                duration_hours=hours, cache_size=size, cache_line=line,
                cache_assoc=assoc))
        return grid

    def expand(self) -> List[SessionPlan]:
        """The full deterministic session list."""
        grid = self.cells()
        return [SessionPlan(index=i, seed=self.seed + i,
                            cell=grid[i % len(grid)])
                for i in range(self.sessions)]

    # -- serialization ----------------------------------------------------
    def to_json(self) -> dict:
        data = {
            "_format": CAMPAIGN_JSON_FORMAT,
            "_version": CAMPAIGN_JSON_VERSION,
            "name": self.name,
            "sessions": self.sessions,
            "seed": self.seed,
            "app_mixes": [list(m) for m in self.app_mixes],
            "behaviors": list(self.behaviors),
            "durations": list(self.durations),
            "caches": [list(c) for c in self.caches],
            "policy": self.policy,
            "checkpoint_every": self.checkpoint_every,
            "extra": dict(self.extra),
        }
        # Only serialized when on, so digests (campaign identity) of
        # pre-existing non-archiving campaigns stay resumable.
        if self.archive_traces:
            data["archive_traces"] = True
        return data

    @classmethod
    def from_json(cls, data: dict) -> "CampaignSpec":
        if not isinstance(data, dict) or data.get("_format") != CAMPAIGN_JSON_FORMAT:
            raise CampaignFormatError("not a serialized CampaignSpec")
        if data.get("_version") != CAMPAIGN_JSON_VERSION:
            raise CampaignFormatError(
                f"unsupported CampaignSpec version {data.get('_version')!r}")
        try:
            return cls(
                name=data["name"],
                sessions=data["sessions"],
                seed=data["seed"],
                app_mixes=tuple(tuple(m) for m in data["app_mixes"]),
                behaviors=tuple(data["behaviors"]),
                durations=tuple(data["durations"]),
                caches=tuple(tuple(c) for c in data["caches"]),
                policy=data["policy"],
                checkpoint_every=data["checkpoint_every"],
                archive_traces=bool(data.get("archive_traces", False)),
                extra=dict(data.get("extra", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, CampaignFormatError):
                raise
            raise CampaignFormatError(
                f"malformed CampaignSpec container: {exc}") from exc

    def digest(self) -> str:
        """Campaign identity: a stable hash of the canonical spec.
        ``--resume`` refuses to mix journals from different specs."""
        blob = json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def mix_to_apps(mix: Sequence[str]):
    """Resolve an app-mix name tuple against the standard suite."""
    from ..apps import standard_apps

    by_name = {app.name: app for app in standard_apps()}
    unknown = [name for name in mix if name not in by_name]
    if unknown:
        raise CampaignFormatError(
            f"unknown app(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(by_name))})")
    return [by_name[name] for name in mix]
