"""The append-only campaign journal and atomic manifest.

Crash-safety model:

* the **manifest** (``manifest.json``) is written once, atomically
  (tmp + ``os.replace``), before any worker starts.  It records the
  campaign spec, its digest, and the journal format version — resume
  refuses to continue a directory whose digest doesn't match the spec
  being resumed.
* the **journal** (``journal.jsonl``) is append-only: one JSON object
  per line, flushed *and fsynced* before the supervisor considers the
  event durable.  A crash can therefore lose at most the line being
  written; :func:`read_journal` tolerates exactly that — a torn final
  line is dropped, but garbage anywhere earlier is corruption and
  raises.
* the **aggregate** (``aggregates.json``) is a pure function of the
  journal's ``done``/``quarantine`` entries, rewritten atomically at
  the end of every run.  It is a convenience export; the journal is
  the source of truth.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterator, List, Optional, Tuple, Union

JOURNAL_NAME = "journal.jsonl"
MANIFEST_NAME = "manifest.json"
AGGREGATE_NAME = "aggregates.json"

MANIFEST_FORMAT = "repro-fleet-manifest"
MANIFEST_VERSION = 1

#: Journal entry kinds the supervisor writes.
ENTRY_KINDS = ("start", "done", "fail", "quarantine")


class JournalError(ValueError):
    """The journal or manifest is corrupt or belongs to a different
    campaign."""


def write_json_atomic(path: Union[str, Path], data: dict) -> None:
    """Write ``data`` as pretty, key-sorted JSON via tmp + rename.

    Key-sorted output makes the file a canonical encoding of ``data``:
    two runs producing equal dicts produce byte-identical files, which
    is how the resume tests can simply compare bytes.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    blob = json.dumps(data, sort_keys=True, indent=2) + "\n"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_journal(path: Union[str, Path]) -> List[dict]:
    """Read every durable journal entry, tolerating torn writes.

    Every entry is flushed and fsynced before the supervisor acts on
    it, so a line that doesn't decode can only be the remains of a
    write torn by a crash — and only as the *final* line, because a
    resumed run truncates a torn tail before appending (see
    :meth:`CampaignJournal._file`).  The torn final line is dropped;
    an undecodable line anywhere earlier, or a line that decodes to
    something that is not a journal entry, means the file was edited
    or corrupted, and raises.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    lines = text.split("\n")
    last_nonempty = max(
        (number for number, line in enumerate(lines, start=1) if line),
        default=0)
    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if lineno == last_nonempty:
                continue  # torn final write: the entry was never durable
            raise JournalError(
                f"{path}:{lineno}: undecodable journal entry before the "
                f"final line — the file is corrupt: {line[:80]!r}")
        if not isinstance(entry, dict) or entry.get("kind") not in ENTRY_KINDS:
            raise JournalError(
                f"{path}:{lineno}: not a journal entry: {line[:80]!r}")
        entries.append(entry)
    return entries


class CampaignJournal:
    """Append-only writer with fsync-per-entry durability."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None

    def _file(self) -> IO[str]:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Drop a torn tail left by a crashed predecessor: the
            # partial line was never durable (the writer fsyncs whole
            # lines), and truncating it preserves the reader's
            # invariant that only the *final* line of a journal can
            # ever be undecodable — anything else is corruption.
            if self.path.exists() and self.path.stat().st_size:
                with open(self.path, "rb+") as probe:
                    data = probe.read()
                    if not data.endswith(b"\n"):
                        probe.truncate(data.rfind(b"\n") + 1)
                        probe.flush()
                        os.fsync(probe.fileno())
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, entry: dict) -> None:
        if entry.get("kind") not in ENTRY_KINDS:
            raise JournalError(f"unknown journal entry kind: {entry!r}")
        handle = self._file()
        handle.write(json.dumps(entry, sort_keys=True,
                                separators=(",", ":")) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def write_manifest(directory: Union[str, Path], spec_json: dict,
                   digest: str) -> None:
    write_json_atomic(Path(directory) / MANIFEST_NAME, {
        "_format": MANIFEST_FORMAT,
        "_version": MANIFEST_VERSION,
        "spec": spec_json,
        "digest": digest,
    })


def read_manifest(directory: Union[str, Path]) -> Tuple[dict, str]:
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        raise JournalError(f"{path}: no manifest — not a campaign "
                           "directory (or the first run never started)")
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise JournalError(f"{path}: corrupt manifest: {exc}") from exc
    if data.get("_format") != MANIFEST_FORMAT:
        raise JournalError(f"{path}: not a fleet manifest")
    if data.get("_version") != MANIFEST_VERSION:
        raise JournalError(
            f"{path}: unsupported manifest version {data.get('_version')!r}")
    return data["spec"], data["digest"]


def replay_journal(entries: Iterator[dict]) -> Tuple[dict, dict]:
    """Fold journal entries into (completed, quarantined) maps.

    Later entries win: a ``done`` after a ``quarantine`` (a resumed run
    succeeded where the original gave up) rescues the session.
    """
    completed: dict = {}
    quarantined: dict = {}
    for entry in entries:
        index = entry.get("index")
        if entry["kind"] == "done":
            completed[index] = entry["stats"]
            quarantined.pop(index, None)
        elif entry["kind"] == "quarantine":
            if index not in completed:
                quarantined[index] = entry.get("reason", "unknown")
    return completed, quarantined
