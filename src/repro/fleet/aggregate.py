"""Mergeable population aggregates.

The fleet never holds all traces (or even all sessions) in RAM: each
worker reduces its session to a small deterministic stats record, the
supervisor streams those records into a :class:`PopulationAggregate`,
and campaigns merge by set-union.  Three properties carry the whole
resume story:

* **determinism** — a stats record is a pure function of the session
  plan (no wall-clock times, no attempt counts, no pids), so re-running
  a session after a crash reproduces the identical record;
* **keyed merge** — records live in a dict keyed by session index, so
  merging is commutative and idempotent; conflicting records for one
  index mean two different campaigns were mixed, which is an error,
  not a race;
* **canonical serialization** — :meth:`to_json` orders everything by
  index and computes the summary from the sorted population, so two
  aggregates over the same session set serialize byte-identically no
  matter what order (or how many times, across how many resumes) the
  sessions arrived.

Operational noise (retry counts, worker restarts, timings) belongs to
the journal, never to the aggregate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

AGGREGATE_JSON_FORMAT = "repro-fleet-aggregate"
AGGREGATE_JSON_VERSION = 1

#: Stats-record keys every session must report (the deterministic
#: reduction of one collect→replay→simulate pipeline).
STATS_KEYS = (
    "session_id", "cell_index", "cell", "behavior", "seed",
    "events", "elapsed_ticks", "collect_instructions",
    "replay_instructions", "events_injected",
    "accesses", "hits", "misses", "writebacks",
    "miss_rate", "energy_cached", "energy_no_cache", "energy_savings",
    "replay_overhead",
    "divergences", "tainted", "salvage_dropped", "salvage_repaired",
)


class AggregateError(ValueError):
    """Aggregates disagree (mixed campaigns) or a container is
    malformed."""


def validate_stats(stats: dict) -> dict:
    missing = [k for k in STATS_KEYS if k not in stats]
    if missing:
        raise AggregateError(
            f"session stats record lacks key(s): {', '.join(missing)}")
    return stats


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _distribution(values: List[float]) -> dict:
    if not values:
        return {"n": 0, "mean": 0.0, "min": 0.0, "p10": 0.0, "p50": 0.0,
                "p90": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(values)
    return {
        "n": len(ordered),
        "mean": math.fsum(ordered) / len(ordered),
        "min": ordered[0],
        "p10": percentile(ordered, 10),
        "p50": percentile(ordered, 50),
        "p90": percentile(ordered, 90),
        "p99": percentile(ordered, 99),
        "max": ordered[-1],
    }


@dataclass
class PopulationAggregate:
    """The campaign-wide reduction, mergeable and streamable."""

    sessions: Dict[int, dict] = field(default_factory=dict)
    quarantined: Dict[int, str] = field(default_factory=dict)

    # -- streaming --------------------------------------------------------
    def add(self, index: int, stats: dict) -> None:
        validate_stats(stats)
        known = self.sessions.get(index)
        if known is not None and known != stats:
            raise AggregateError(
                f"conflicting stats for session {index}: the journal "
                "mixes two different campaigns")
        self.sessions[index] = stats
        self.quarantined.pop(index, None)

    def quarantine(self, index: int, reason: str) -> None:
        if index not in self.sessions:
            self.quarantined[index] = reason

    # -- merging ----------------------------------------------------------
    def merge(self, other: "PopulationAggregate") -> "PopulationAggregate":
        """Commutative, idempotent union of two partial aggregates."""
        merged = PopulationAggregate(
            sessions=dict(self.sessions),
            quarantined=dict(self.quarantined))
        for index, stats in other.sessions.items():
            merged.add(index, stats)
        for index, reason in other.quarantined.items():
            merged.quarantine(index, reason)
        return merged

    # -- reduction --------------------------------------------------------
    def summary(self) -> dict:
        """Population-level distributions, computed in canonical
        (index-sorted) order so the result is reproducible."""
        ordered = [self.sessions[i] for i in sorted(self.sessions)]
        by_cell: Dict[int, List[dict]] = {}
        for stats in ordered:
            by_cell.setdefault(stats["cell_index"], []).append(stats)
        return {
            "sessions": len(ordered),
            "quarantined": len(self.quarantined),
            "tainted": sum(1 for s in ordered if s["tainted"]),
            "divergences": sum(s["divergences"] for s in ordered),
            "salvage_dropped": sum(s["salvage_dropped"] for s in ordered),
            "salvage_repaired": sum(s["salvage_repaired"] for s in ordered),
            "events": sum(s["events"] for s in ordered),
            "instructions": sum(s["replay_instructions"] for s in ordered),
            "miss_rate": _distribution([s["miss_rate"] for s in ordered]),
            "energy_savings": _distribution(
                [s["energy_savings"] for s in ordered]),
            "replay_overhead": _distribution(
                [s["replay_overhead"] for s in ordered]),
            "by_cell": {
                str(cell): {
                    "sessions": len(group),
                    "cell": group[0]["cell"],
                    "miss_rate": _distribution(
                        [s["miss_rate"] for s in group]),
                    "energy_savings": _distribution(
                        [s["energy_savings"] for s in group]),
                }
                for cell, group in sorted(by_cell.items())
            },
        }

    # -- serialization ----------------------------------------------------
    def to_json(self) -> dict:
        return {
            "_format": AGGREGATE_JSON_FORMAT,
            "_version": AGGREGATE_JSON_VERSION,
            "sessions": {str(i): self.sessions[i]
                         for i in sorted(self.sessions)},
            "quarantined": {str(i): self.quarantined[i]
                            for i in sorted(self.quarantined)},
            "summary": self.summary(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "PopulationAggregate":
        if not isinstance(data, dict) or data.get("_format") != AGGREGATE_JSON_FORMAT:
            raise AggregateError("not a serialized PopulationAggregate")
        if data.get("_version") != AGGREGATE_JSON_VERSION:
            raise AggregateError(
                f"unsupported PopulationAggregate version "
                f"{data.get('_version')!r}")
        agg = cls()
        for key, stats in data["sessions"].items():
            agg.add(int(key), stats)
        for key, reason in data["quarantined"].items():
            agg.quarantine(int(key), reason)
        return agg

    def format(self, name: Optional[str] = None) -> str:
        s = self.summary()
        lines = []
        title = f"campaign {name}" if name else "campaign"
        lines.append(f"{title}: {s['sessions']} session(s) aggregated, "
                     f"{s['quarantined']} quarantined, "
                     f"{s['tainted']} tainted")
        lines.append(f"  events  : {s['events']:,} across the population")
        mr = s["miss_rate"]
        lines.append(f"  miss    : mean {100 * mr['mean']:.3f}%  "
                     f"p50 {100 * mr['p50']:.3f}%  "
                     f"p99 {100 * mr['p99']:.3f}%")
        es = s["energy_savings"]
        lines.append(f"  energy  : mean savings {100 * es['mean']:.1f}%  "
                     f"p10 {100 * es['p10']:.1f}%  "
                     f"p90 {100 * es['p90']:.1f}%")
        ov = s["replay_overhead"]
        lines.append(f"  overhead: replay/collect instruction ratio "
                     f"mean {ov['mean']:.3f}  p99 {ov['p99']:.3f}")
        if s["divergences"] or s["salvage_dropped"] or s["salvage_repaired"]:
            lines.append(f"  faults  : {s['divergences']} divergence(s), "
                         f"salvage dropped {s['salvage_dropped']} / "
                         f"repaired {s['salvage_repaired']} record(s)")
        return "\n".join(lines)
