"""The fleet supervisor: a crash-only orchestrator over worker processes.

Supervision tree::

    FleetSupervisor (the only writer of journal/manifest/aggregates)
      ├── worker process: session 0   (collect→replay→simulate)
      ├── worker process: session 1
      └── ... up to ``jobs`` live at once

The supervisor trusts nothing about a worker except its process state
and its messages.  Failure taxonomy and response:

* **worker raised** — it sent ``("fail", ...)``; retry with backoff,
  then quarantine.
* **worker crashed** — the process died without a verdict (segfault,
  OOM kill, chaos ``os._exit``); detected via exit code after the
  message queue drains.  Same retry path.
* **worker hung** — no heartbeat for ``hang_timeout`` seconds; the
  supervisor SIGKILLs it and treats it as crashed.  Beats are sent at
  pipeline-stage boundaries, so the timeout must exceed the slowest
  single stage, not the whole session.
* **supervisor died** — the journal is append-only and fsynced, so a
  fresh supervisor (``fleet --resume``) folds it back and re-runs only
  sessions without a durable verdict.  Stats records are deterministic
  (see :mod:`.worker`), so the merged aggregate is byte-identical to an
  uninterrupted run's.

Retry backoff is exponential with deterministic-per-(session, attempt)
jitter: ``base * 2**attempt + U(0, base)``.  Backoff shapes *when* a
retry runs, never *what* it computes, so it is free to be tuned
without touching the determinism story.
"""

from __future__ import annotations

import queue as queue_mod
import random
import time
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from .aggregate import PopulationAggregate
from .campaign import CampaignSpec, SessionPlan
from .journal import (
    AGGREGATE_NAME,
    JOURNAL_NAME,
    CampaignJournal,
    JournalError,
    read_journal,
    read_manifest,
    replay_journal,
    write_json_atomic,
    write_manifest,
)
from .worker import plan_to_json, worker_main

#: How often the supervisor wakes to reap/spawn when no messages flow.
_POLL_SECONDS = 0.1


@dataclass
class FleetResult:
    """What one supervisor run produced."""

    aggregate: PopulationAggregate
    sessions: int                      #: planned campaign size
    ran: int                           #: sessions executed this run
    retried: int                       #: retry attempts this run
    crashes: int                       #: worker crashes observed
    hangs: int                         #: hang-timeout kills
    wall_seconds: float
    out_dir: Path
    interrupted: bool = False

    @property
    def completed(self) -> int:
        return len(self.aggregate.sessions)

    @property
    def quarantined(self) -> int:
        return len(self.aggregate.quarantined)

    @property
    def complete(self) -> bool:
        """Every planned session has a durable verdict (done or
        quarantined) — the campaign is finished, possibly tainted."""
        return (not self.interrupted
                and self.completed + self.quarantined >= self.sessions)

    def sessions_per_minute(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return 60.0 * self.ran / self.wall_seconds

    def format(self, name: str = "") -> str:
        lines = [self.aggregate.format(name or None)]
        ops = (f"  fleet   : ran {self.ran} session(s) this run, "
               f"{self.retried} retr{'y' if self.retried == 1 else 'ies'}, "
               f"{self.crashes} crash(es), {self.hangs} hang kill(s)")
        if self.wall_seconds > 0 and self.ran:
            ops += f"; {self.sessions_per_minute():.1f} sessions/min"
        lines.append(ops)
        if self.interrupted:
            lines.append("  status  : interrupted — resume with "
                         "`palm-repro fleet --resume`")
        elif not self.complete:
            lines.append("  status  : incomplete")
        return "\n".join(lines)


@dataclass
class _Worker:
    process: object
    plan: SessionPlan
    attempt: int
    last_beat: float
    stage: str = "spawn"


class FleetSupervisor:
    """Run (or resume) one campaign in ``out_dir``."""

    def __init__(self, spec: CampaignSpec, out_dir: Union[str, Path], *,
                 jobs: int = 1,
                 hang_timeout: float = 120.0,
                 retries: int = 2,
                 backoff_base: float = 0.25,
                 chaos: Optional[dict] = None,
                 progress: Optional[Callable[[str], None]] = None):
        self.spec = spec
        self.out_dir = Path(out_dir)
        self.jobs = max(1, jobs)
        self.hang_timeout = hang_timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        #: index → chaos directive dict (see :mod:`.chaos`).
        self.chaos = chaos or {}
        self._progress = progress or (lambda text: None)
        self._ctx = get_context("fork")
        #: Where workers archive per-session PTRC traces (spec-gated).
        self.trace_dir = (self.out_dir / "traces"
                          if spec.archive_traces else None)

    # -- public -----------------------------------------------------------
    def run(self, resume: bool = False) -> FleetResult:
        started = time.monotonic()
        self.out_dir.mkdir(parents=True, exist_ok=True)
        digest = self.spec.digest()
        if resume:
            _, recorded = read_manifest(self.out_dir)
            if recorded != digest:
                raise JournalError(
                    f"{self.out_dir}: manifest digest {recorded[:12]} does "
                    f"not match the spec being resumed ({digest[:12]}) — "
                    "refusing to mix campaigns")
        else:
            write_manifest(self.out_dir, self.spec.to_json(), digest)

        aggregate = PopulationAggregate()
        completed, quarantined = {}, {}
        if resume:
            entries = read_journal(self.out_dir / JOURNAL_NAME)
            completed, quarantined = replay_journal(iter(entries))
            for index, stats in completed.items():
                aggregate.add(index, stats)
            for index, reason in quarantined.items():
                aggregate.quarantine(index, reason)
            if self.trace_dir is not None:
                self._verify_trace_archive(completed)
            self._progress(
                f"resume: {len(completed)} done, {len(quarantined)} "
                f"quarantined, journal replayed")

        plans = self.spec.expand()
        todo = [p for p in plans
                if p.index not in completed and p.index not in quarantined]
        self._progress(f"{len(todo)} of {len(plans)} session(s) to run "
                       f"({self.jobs} worker(s))")

        interrupted = False
        counters = {"ran": 0, "retried": 0, "crashes": 0, "hangs": 0}
        with CampaignJournal(self.out_dir / JOURNAL_NAME) as journal:
            try:
                self._supervise(todo, journal, aggregate, counters)
            except KeyboardInterrupt:
                interrupted = True
        write_json_atomic(self.out_dir / AGGREGATE_NAME, aggregate.to_json())
        return FleetResult(
            aggregate=aggregate,
            sessions=len(plans),
            ran=counters["ran"],
            retried=counters["retried"],
            crashes=counters["crashes"],
            hangs=counters["hangs"],
            wall_seconds=time.monotonic() - started,
            out_dir=self.out_dir,
            interrupted=interrupted,
        )

    # -- internals --------------------------------------------------------
    def _verify_trace_archive(self, completed: Dict[int, dict]) -> None:
        """Cross-check every journaled trace digest against the PTRC
        file on disk before resuming — a swapped, truncated or corrupt
        archive must fail loudly, not taint the merged aggregate."""
        from ..traces.container import TraceContainer, TraceContainerError

        for index in sorted(completed):
            stats = completed[index]
            digest = stats.get("trace_digest")
            if digest is None:
                continue
            path = self.trace_dir / f"{stats['session_id']}.ptrc"
            if not path.exists():
                raise JournalError(
                    f"{path}: journaled trace container is missing — "
                    "the archive does not match the journal (restore "
                    "it or restart the campaign in a fresh directory)")
            try:
                with TraceContainer(path) as container:
                    on_disk = container.digest
                    # Deep verify: the manifest digest alone would still
                    # match after payload corruption — walk the chunk
                    # crc32s and recompute the content digest.
                    container.verify(deep=True)
            except TraceContainerError as exc:
                raise JournalError(
                    f"{path}: journaled trace container failed "
                    f"verification: {exc}") from exc
            if on_disk != digest:
                raise JournalError(
                    f"{path}: trace digest mismatch — journal says "
                    f"{digest[:12]}…, container holds {on_disk[:12]}… "
                    "(the archive was modified since the session ran)")

    def _backoff(self, plan: SessionPlan, attempt: int) -> float:
        rng = random.Random(f"backoff|{plan.index}|{attempt}")
        return self.backoff_base * (2 ** attempt) + rng.uniform(
            0, self.backoff_base)

    def _spawn(self, msg_queue, plan: SessionPlan, attempt: int) -> _Worker:
        directive = self.chaos.get(plan.index)
        process = self._ctx.Process(
            target=worker_main,
            args=(plan_to_json(plan), msg_queue, attempt,
                  self.spec.policy, self.spec.checkpoint_every, directive,
                  str(self.trace_dir) if self.trace_dir else None),
            daemon=True,
            name=f"fleet-{plan.session_id}-a{attempt}",
        )
        process.start()
        return _Worker(process=process, plan=plan, attempt=attempt,
                       last_beat=time.monotonic())

    def _supervise(self, todo: List[SessionPlan], journal: CampaignJournal,
                   aggregate: PopulationAggregate, counters: Dict[str, int]
                   ) -> None:
        msg_queue = self._ctx.Queue()
        by_index = {p.index: p for p in todo}
        #: (ready_time, attempt, index) — a simple time-ordered runqueue.
        runnable: List[Tuple[float, int, int]] = [
            (0.0, 0, p.index) for p in todo]
        running: Dict[int, _Worker] = {}
        finished: set = set()

        def handle_failure(index: int, attempt: int, reason: str) -> None:
            journal.append({"kind": "fail", "index": index,
                            "attempt": attempt, "reason": reason})
            if attempt < self.retries:
                counters["retried"] += 1
                delay = self._backoff(by_index[index], attempt)
                runnable.append((time.monotonic() + delay, attempt + 1,
                                 index))
                self._progress(f"{by_index[index].session_id}: attempt "
                               f"{attempt} failed ({reason.splitlines()[0]});"
                               f" retrying in {delay:.2f}s")
            else:
                journal.append({"kind": "quarantine", "index": index,
                                "reason": reason})
                aggregate.quarantine(index, reason)
                finished.add(index)
                self._progress(f"{by_index[index].session_id}: quarantined "
                               f"after {attempt + 1} attempt(s)")

        def handle_message(message) -> None:
            kind, index, payload = message
            if kind == "beat":
                worker = running.get(index)
                if worker is not None:
                    worker.last_beat = time.monotonic()
                    worker.stage = payload
            elif kind == "done":
                journal.append({"kind": "done", "index": index,
                                "id": payload["session_id"],
                                "stats": payload})
                aggregate.add(index, payload)
                finished.add(index)
                worker = running.get(index)
                if worker is not None:
                    self._progress(f"{payload['session_id']}: done "
                                   f"({payload['events']} events, miss "
                                   f"{100 * payload['miss_rate']:.2f}%)")
            elif kind == "fail":
                worker = running.pop(index, None)
                if worker is None or index in finished:
                    # The crash/hang reaper (or an earlier verdict)
                    # already settled this index; a late fail message
                    # must not re-enter retry accounting with a bogus
                    # attempt number.
                    return
                worker.process.join(timeout=5)
                reason = f"{payload['error']}: {payload['message']}"
                handle_failure(index, worker.attempt, reason)

        def drain() -> None:
            while True:
                try:
                    handle_message(msg_queue.get_nowait())
                except queue_mod.Empty:
                    return

        try:
            while runnable or running:
                now = time.monotonic()
                # Spawn every runnable session with a free worker slot.
                runnable.sort()
                while runnable and len(running) < self.jobs:
                    ready, attempt, index = runnable[0]
                    if ready > now:
                        break
                    runnable.pop(0)
                    journal.append({"kind": "start", "index": index,
                                    "attempt": attempt})
                    running[index] = self._spawn(msg_queue,
                                                 by_index[index], attempt)
                    counters["ran"] += 1 if attempt == 0 else 0

                # Wait for one message (or a poll tick), then drain.
                try:
                    handle_message(msg_queue.get(timeout=_POLL_SECONDS))
                except queue_mod.Empty:
                    pass
                drain()

                # Reap: done workers leave; dead-without-verdict crashed;
                # silent workers past the hang timeout get killed.
                now = time.monotonic()
                for index, worker in list(running.items()):
                    if index not in running:
                        # A drain() while reaping an earlier worker
                        # consumed this one's verdict and already
                        # handled it (retry scheduled or quarantined).
                        continue
                    if index in finished:
                        worker.process.join(timeout=5)
                        running.pop(index, None)
                        continue
                    if not worker.process.is_alive():
                        drain()  # a verdict may still be in flight
                        if index in finished or index not in running:
                            continue
                        counters["crashes"] += 1
                        running.pop(index)
                        handle_failure(
                            index, worker.attempt,
                            f"worker crashed in stage {worker.stage!r} "
                            f"(exit code {worker.process.exitcode})")
                    elif now - worker.last_beat > self.hang_timeout:
                        counters["hangs"] += 1
                        worker.process.kill()
                        worker.process.join(timeout=5)
                        running.pop(index)
                        handle_failure(
                            index, worker.attempt,
                            f"hang timeout: no heartbeat for "
                            f"{self.hang_timeout:g}s past stage "
                            f"{worker.stage!r}")
        finally:
            for worker in running.values():
                if worker.process.is_alive():
                    worker.process.kill()
                worker.process.join(timeout=5)
            msg_queue.close()


def run_campaign(spec: CampaignSpec, out_dir: Union[str, Path], *,
                 jobs: int = 1, hang_timeout: float = 120.0,
                 retries: int = 2, backoff_base: float = 0.25,
                 chaos: Optional[dict] = None, resume: bool = False,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> FleetResult:
    """Convenience wrapper: build a supervisor and run it."""
    supervisor = FleetSupervisor(
        spec, out_dir, jobs=jobs, hang_timeout=hang_timeout,
        retries=retries, backoff_base=backoff_base, chaos=chaos,
        progress=progress)
    return supervisor.run(resume=resume)


def resume_campaign(out_dir: Union[str, Path], *, jobs: int = 1,
                    hang_timeout: float = 120.0, retries: int = 2,
                    backoff_base: float = 0.25,
                    chaos: Optional[dict] = None,
                    progress: Optional[Callable[[str], None]] = None
                    ) -> FleetResult:
    """Resume a campaign from its directory: the spec comes from the
    manifest, so no flags need repeating."""
    spec_json, _ = read_manifest(out_dir)
    spec = CampaignSpec.from_json(spec_json)
    return run_campaign(spec, out_dir, jobs=jobs,
                        hang_timeout=hang_timeout, retries=retries,
                        backoff_base=backoff_base, chaos=chaos,
                        resume=True, progress=progress)
