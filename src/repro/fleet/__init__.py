"""Population-scale replay fleet.

The paper measures one traced session at a time; the ROADMAP's
north-star ("heavy traffic from millions of users") needs thousands of
distinct synthetic-user sessions replayed as one crash-survivable
campaign.  This package is that layer, built robustness-first:

* :mod:`.campaign` — declarative grid spec, deterministically expanded;
* :mod:`.worker` — one sandboxed process per session, running the full
  collect→replay→simulate pipeline;
* :mod:`.supervisor` — heartbeats, hang-timeout kills, bounded retry
  with backoff, quarantine, append-only fsynced journal, resume;
* :mod:`.aggregate` — mergeable, order-independent population stats;
* :mod:`.chaos` — seeded crash/stall/poison injection with a
  self-test oracle over the recovery paths.
"""

from .aggregate import (
    AGGREGATE_JSON_FORMAT,
    AGGREGATE_JSON_VERSION,
    STATS_KEYS,
    AggregateError,
    PopulationAggregate,
    percentile,
    validate_stats,
)
from .campaign import (
    BEHAVIORS,
    CAMPAIGN_JSON_FORMAT,
    CAMPAIGN_JSON_VERSION,
    CampaignCell,
    CampaignFormatError,
    CampaignSpec,
    SessionPlan,
    mix_to_apps,
)
from .chaos import POISON_FAULTS, ChaosPlan, verify_chaos
from .journal import (
    AGGREGATE_NAME,
    JOURNAL_NAME,
    MANIFEST_NAME,
    CampaignJournal,
    JournalError,
    read_journal,
    read_manifest,
    replay_journal,
    write_json_atomic,
    write_manifest,
)
from .supervisor import (
    FleetResult,
    FleetSupervisor,
    resume_campaign,
    run_campaign,
)
from .worker import run_session, worker_main

__all__ = [
    "CampaignSpec",
    "CampaignCell",
    "SessionPlan",
    "CampaignFormatError",
    "BEHAVIORS",
    "CAMPAIGN_JSON_FORMAT",
    "CAMPAIGN_JSON_VERSION",
    "mix_to_apps",
    "PopulationAggregate",
    "AggregateError",
    "STATS_KEYS",
    "AGGREGATE_JSON_FORMAT",
    "AGGREGATE_JSON_VERSION",
    "percentile",
    "validate_stats",
    "CampaignJournal",
    "JournalError",
    "read_journal",
    "replay_journal",
    "read_manifest",
    "write_manifest",
    "write_json_atomic",
    "JOURNAL_NAME",
    "MANIFEST_NAME",
    "AGGREGATE_NAME",
    "FleetSupervisor",
    "FleetResult",
    "run_campaign",
    "resume_campaign",
    "ChaosPlan",
    "verify_chaos",
    "POISON_FAULTS",
    "run_session",
    "worker_main",
]
