"""Puzzle: the 4x4 sliding-tile game of the paper's third test workload
("The final workload illustrated playing a game of Puzzle", §3.2).

Why this app matters to the reproduction:

* at startup it *seeds the RNG from the clock* —
  ``SysRandom(TimGetSeconds())`` — a non-zero call the SysRandom hack
  logs and replay overrides from the seed queue (§2.4.2);
* it shuffles the board with ``SysRandom(0)`` calls, so the board
  layout depends on the RNG sequence (replay must reproduce it);
* every pen tap also polls ``KeyCurrentState``, exercising the key
  bit-field queue.

The board lives in the application's stack frame; tiles are drawn as
coloured rectangles (40x40 cells).
"""

from __future__ import annotations

from ..palmos.rom import AppSpec

PUZZLE_SOURCE = """
; frame layout: -16..-1 event, -32..-17 board (16 bytes, one per cell),
; -36 blank index (long)
app_puzzle:
        link    a6,#-40
        bsr     pz_init_board
        bsr     pz_shuffle
        bsr     pz_draw_all

pz_loop:
        move.l  #$ffffffff,-(sp)
        pea     -16(a6)
        dc.w    SYS_EvtGetEvent
        addq.l  #8,sp
        move.w  -16(a6),d0
        cmpi.w  #22,d0                  ; appStopEvent
        beq     pz_done
        cmpi.w  #1,d0                   ; penDownEvent
        beq.s   pz_pen
        cmpi.w  #4,d0                   ; keyDownEvent
        beq.s   pz_key
        bra.s   pz_loop

pz_key:
        move.w  -8(a6),d0
        cmpi.w  #2,d0                   ; Button.UP reshuffles
        bne.s   pz_loop
        bsr     pz_shuffle
        bsr     pz_draw_all
        bra.s   pz_loop

; ---- pen tap: slide the touched tile if adjacent to the blank ---------
pz_pen:
        ; games poll the hardware buttons each tap
        dc.w    SYS_KeyCurrentState
        ; cell = (y/40)*4 + x/40
        moveq   #0,d0
        move.w  -10(a6),d0              ; y
        divu    #40,d0
        and.l   #3,d0
        lsl.l   #2,d0
        move.l  d0,d1
        moveq   #0,d0
        move.w  -12(a6),d0              ; x
        divu    #40,d0
        and.l   #3,d0
        add.l   d1,d0                   ; d0 = tapped cell index
        move.l  -36(a6),d1              ; d1 = blank index
        ; legal when |diff| == 4, or |diff| == 1 within one row
        move.l  d0,d2
        sub.l   d1,d2                   ; diff
        cmpi.l  #4,d2
        beq.s   pz_slide
        cmpi.l  #-4,d2
        beq.s   pz_slide
        move.l  d0,d3
        lsr.l   #2,d3
        move.l  d1,d4
        lsr.l   #2,d4
        cmp.l   d3,d4
        bne     pz_loop                 ; different rows
        cmpi.l  #1,d2
        beq.s   pz_slide
        cmpi.l  #-1,d2
        bne     pz_loop
pz_slide:
        ; board[blank] = board[cell]; board[cell] = 0; blank = cell
        lea     -32(a6),a0
        move.b  0(a0,d0.l),d2
        move.b  d2,0(a0,d1.l)
        move.b  #0,0(a0,d0.l)
        move.l  d0,-36(a6)
        ; redraw the two cells (pz_draw_cell clobbers d0-d3)
        move.l  d0,d6
        move.l  d1,d5
        bsr     pz_draw_cell
        move.l  d6,d5
        bsr     pz_draw_cell
        bra     pz_loop

pz_done:
        unlk    a6
        rts

; ---- board setup -------------------------------------------------------
pz_init_board:
        lea     -32(a6),a0
        moveq   #0,d0
pz_ib_loop:
        move.b  d0,0(a0,d0.l)
        addq.l  #1,d0
        cmpi.l  #16,d0
        blt.s   pz_ib_loop
        move.b  #0,(a0)                 ; cell 0 is the blank
        move.l  #0,-36(a6)
        rts

; ---- shuffle: seed from the clock, then 32 random blank moves ----------
pz_shuffle:
        dc.w    SYS_TimGetSeconds
        move.l  d0,-(sp)
        dc.w    SYS_SysRandom           ; non-zero seed: logged + replayed
        addq.l  #4,sp
        moveq   #31,d7
pz_sh_loop:
        move.l  #0,-(sp)
        dc.w    SYS_SysRandom
        addq.l  #4,sp
        and.l   #3,d0                   ; direction 0..3
        move.l  -36(a6),d1              ; blank
        move.l  d1,d2
        ; 0: up(-4) 1: down(+4) 2: left(-1) 3: right(+1)
        cmpi.l  #0,d0
        bne.s   pz_sh_1
        subq.l  #4,d2
        bra.s   pz_sh_try
pz_sh_1:
        cmpi.l  #1,d0
        bne.s   pz_sh_2
        addq.l  #4,d2
        bra.s   pz_sh_try
pz_sh_2:
        cmpi.l  #2,d0
        bne.s   pz_sh_3
        ; left only within the row
        move.l  d1,d3
        and.l   #3,d3
        beq.s   pz_sh_next
        subq.l  #1,d2
        bra.s   pz_sh_try
pz_sh_3:
        move.l  d1,d3
        and.l   #3,d3
        cmpi.l  #3,d3
        beq.s   pz_sh_next
        addq.l  #1,d2
pz_sh_try:
        tst.l   d2
        blt.s   pz_sh_next
        cmpi.l  #16,d2
        bge.s   pz_sh_next
        ; swap blank and d2
        lea     -32(a6),a0
        move.b  0(a0,d2.l),d3
        move.b  d3,0(a0,d1.l)
        move.b  #0,0(a0,d2.l)
        move.l  d2,-36(a6)
pz_sh_next:
        dbra    d7,pz_sh_loop
        rts

; ---- drawing ------------------------------------------------------------
; draw cell d5 (0..15)
pz_draw_cell:
        lea     -32(a6),a0
        moveq   #0,d1
        move.b  0(a0,d5.l),d1           ; tile value
        ; colour = value * $0842 (a spread over RGB565), blank = white
        mulu    #$0842,d1
        tst.w   d1
        bne.s   pz_dc_col
        move.w  #$ffff,d1
pz_dc_col:
        ; x = (cell & 3) * 40 + 1 ; y = (cell >> 2) * 40 + 1
        move.l  d5,d2
        and.l   #3,d2
        mulu    #40,d2
        addq.l  #1,d2
        move.l  d5,d3
        lsr.l   #2,d3
        mulu    #40,d3
        addq.l  #1,d3
        moveq   #0,d0
        move.w  d1,d0
        move.l  d0,-(sp)                ; colour
        move.l  #38,-(sp)               ; h
        move.l  #38,-(sp)               ; w
        move.l  d3,-(sp)                ; y
        move.l  d2,-(sp)                ; x
        dc.w    SYS_WinDrawRectangle
        adda.l  #20,sp
        rts

pz_draw_all:
        dc.w    SYS_WinEraseWindow
        moveq   #0,d5
pz_da_loop:
        bsr.s   pz_draw_cell
        addq.l  #1,d5
        cmpi.l  #16,d5
        blt.s   pz_da_loop
        rts
"""

PUZZLE = AppSpec(name="puzzle", source=PUZZLE_SOURCE)
