"""Address book: a scrolling, read-mostly database viewer.

* at startup creates ``AddrDB`` if missing (sessions usually preload
  it with contacts) and draws the first page;
* UP/DOWN buttons scroll by a row and redraw — each redraw walks the
  record list once per visible row (``DmQueryRecord``);
* a pen tap highlights the touched row and fires a
  ``SysNotifyBroadcast`` (so sessions exercise the notify hack).
"""

from __future__ import annotations

from ..palmos.rom import AppSpec

ADDRESSBOOK_SOURCE = """
app_addressbook:
        link    a6,#-32
        moveq   #0,d6                   ; d6 = scroll offset
        ; ensure AddrDB exists
        pea     ab_dbname(pc)
        dc.w    SYS_DmFindDatabase
        addq.l  #4,sp
        tst.l   d0
        bne.s   ab_have_db
        move.l  #0,-(sp)
        move.l  #$61646472,-(sp)        ; creator 'addr'
        move.l  #$44415441,-(sp)        ; type 'DATA'
        pea     ab_dbname(pc)
        dc.w    SYS_DmCreateDatabase
        adda.l  #16,sp
ab_have_db:
        move.l  d0,d3                   ; d3 = database
        bsr     ab_draw_page

ab_loop:
        move.l  #$ffffffff,-(sp)
        pea     -16(a6)
        dc.w    SYS_EvtGetEvent
        addq.l  #8,sp
        move.w  -16(a6),d0
        cmpi.w  #22,d0
        beq     ab_done
        cmpi.w  #4,d0                   ; keyDownEvent
        beq.s   ab_key
        cmpi.w  #1,d0                   ; penDownEvent
        beq.s   ab_pen
        bra     ab_loop

ab_key:
        move.w  -8(a6),d0
        cmpi.w  #2,d0                   ; Button.UP
        bne.s   ab_key2
        tst.l   d6
        beq     ab_loop
        subq.l  #1,d6
        bsr.s   ab_draw_page
        bra     ab_loop
ab_key2:
        cmpi.w  #4,d0                   ; Button.DOWN
        bne.s   ab_loop
        addq.l  #1,d6
        bsr.s   ab_draw_page
        bra     ab_loop

ab_pen:
        ; highlight the tapped row and broadcast a notification
        moveq   #0,d0
        move.w  -10(a6),d0              ; y
        and.l   #$fff0,d0               ; row origin (16px rows)
        move.l  #$001f,-(sp)            ; colour
        move.l  #14,-(sp)
        move.l  #150,-(sp)
        move.l  d0,-(sp)
        move.l  #2,-(sp)
        dc.w    SYS_WinDrawRectangle
        adda.l  #20,sp
        move.l  #$61627470,-(sp)        ; notify type 'abtp'
        dc.w    SYS_SysNotifyBroadcast
        addq.l  #4,sp
        bra     ab_loop

ab_done:
        unlk    a6
        rts

; ---- draw six visible rows starting at the scroll offset -------------
ab_draw_page:
        dc.w    SYS_WinEraseWindow
        move.l  d3,-(sp)
        dc.w    SYS_DmNumRecords
        addq.l  #4,sp
        move.l  d0,d4                   ; count
        moveq   #0,d5                   ; visible row
ab_dp_loop:
        cmpi.l  #6,d5
        bge.s   ab_dp_done
        move.l  d6,d1
        add.l   d5,d1                   ; record index
        cmp.l   d4,d1
        bge.s   ab_dp_done
        move.l  d1,-(sp)
        move.l  d3,-(sp)
        dc.w    SYS_DmQueryRecord
        addq.l  #8,sp
        tst.l   d0
        beq.s   ab_dp_next
        ; WinDrawChars(ptr, 10, 4, 8 + 16*row)
        move.l  d5,d1
        lsl.l   #4,d1
        addq.l  #8,d1
        move.l  d1,-(sp)
        move.l  #4,-(sp)
        move.l  #10,-(sp)
        move.l  d0,-(sp)
        dc.w    SYS_WinDrawChars
        adda.l  #16,sp
ab_dp_next:
        addq.l  #1,d5
        bra.s   ab_dp_loop
ab_dp_done:
        rts

ab_dbname:
        dc.b    "AddrDB",0
        even
"""

ADDRESSBOOK = AppSpec(name="addressbook", source=ADDRESSBOOK_SOURCE)
