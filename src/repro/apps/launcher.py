"""The launcher (home screen) application.

Draws one row per installed application and switches to an application
when its row is tapped — the Palm OS application launcher, reduced to
what the workload study needs.  Row ``i`` (32 pixels tall) maps to
application id ``i + 1``; the kernel routes unknown ids back to the
default application.
"""

from __future__ import annotations

from ..palmos.rom import AppSpec

LAUNCHER_SOURCE = """
app_launcher:
        link    a6,#-16
        ; paint the home screen
        dc.w    SYS_WinEraseWindow
        moveq   #0,d3                   ; row counter for decoration
ln_rows:
        ; WinDrawRectangle(x=4, y=4+32*row, w=120, h=24, color)
        move.l  d3,d0
        lsl.l   #5,d0                   ; row * 32
        move.l  #$8410,-(sp)            ; colour
        move.l  #24,-(sp)
        move.l  #120,-(sp)
        addq.l  #4,d0
        move.l  d0,-(sp)
        move.l  #4,-(sp)
        dc.w    SYS_WinDrawRectangle
        adda.l  #20,sp
        addq.l  #1,d3
        cmpi.l  #4,d3
        blt.s   ln_rows

ln_loop:
        move.l  #$ffffffff,-(sp)
        pea     -16(a6)
        dc.w    SYS_EvtGetEvent
        addq.l  #8,sp
        move.w  -16(a6),d0
        cmpi.w  #22,d0                  ; appStopEvent
        beq.s   ln_done
        cmpi.w  #1,d0                   ; penDownEvent
        bne.s   ln_loop
        ; bottom-right corner (x,y >= 140): soft reset control
        move.w  -12(a6),d0              ; event.x
        cmpi.w  #140,d0
        blt.s   ln_row
        move.w  -10(a6),d0              ; event.y
        cmpi.w  #140,d0
        blt.s   ln_row
        dc.w    SYS_SysReset            ; never returns
ln_row:
        ; row = y / 32 -> app id = row + 1
        moveq   #0,d0
        move.w  -10(a6),d0              ; event.y
        lsr.l   #5,d0
        addq.l  #1,d0
        move.l  d0,-(sp)
        dc.w    SYS_SysUIAppSwitch
        addq.l  #4,sp
        bra.s   ln_loop
ln_done:
        unlk    a6
        rts
"""

LAUNCHER = AppSpec(name="launcher", source=LAUNCHER_SOURCE)
