"""MemoPad: a note-taking application exercising the data manager.

Behaviour (driven entirely by pen and button input, like the real
ROM-resident MemoPad):

* at startup, creates ``MemoDB`` if missing and draws the memo list;
* a pen tap in the lower half of the screen adds a memo: a new record
  is appended (``DmNewRecord``) and its text written through
  ``DmWriteRecord`` — two record-list walks per memo, the access
  pattern the activity-log hacks themselves use;
* the UP button redraws the memo list (``DmQueryRecord`` per row);
* the DOWN button deletes the first memo (``DmRemoveRecord``).
"""

from __future__ import annotations

from ..palmos.rom import AppSpec

MEMOPAD_SOURCE = """
app_memopad:
        link    a6,#-32                 ; -16 event, -24 text buffer
        ; ensure MemoDB exists
        pea     mp_dbname(pc)
        dc.w    SYS_DmFindDatabase
        addq.l  #4,sp
        tst.l   d0
        bne.s   mp_have_db
        move.l  #0,-(sp)                ; attributes
        move.l  #$6d656d6f,-(sp)        ; creator 'memo'
        move.l  #$44415441,-(sp)        ; type 'DATA'
        pea     mp_dbname(pc)
        dc.w    SYS_DmCreateDatabase
        adda.l  #16,sp
mp_have_db:
        move.l  d0,d3                   ; d3 = database
        bsr     mp_draw_list

mp_loop:
        move.l  #$ffffffff,-(sp)
        pea     -16(a6)
        dc.w    SYS_EvtGetEvent
        addq.l  #8,sp
        move.w  -16(a6),d0
        cmpi.w  #22,d0                  ; appStopEvent
        beq     mp_done
        cmpi.w  #1,d0                   ; penDownEvent
        beq     mp_pen
        cmpi.w  #4,d0                   ; keyDownEvent
        beq     mp_key
        bra.s   mp_loop

; ---- pen tap: lower half adds a memo --------------------------------
mp_pen:
        move.w  -10(a6),d0              ; event.y
        cmpi.w  #80,d0
        blt.s   mp_loop
        ; append a 16-byte record
        move.l  #16,-(sp)
        move.l  #$ffff,-(sp)
        move.l  d3,-(sp)
        dc.w    SYS_DmNewRecord
        adda.l  #12,sp
        tst.l   d0
        beq.s   mp_loop
        ; compose "M" + coordinates + tick into the text buffer
        lea     -24(a6),a0
        move.w  #$4d3a,(a0)+            ; "M:"
        move.w  -12(a6),(a0)+           ; x
        move.w  -10(a6),(a0)+           ; y
        dc.w    SYS_TimGetTicks
        move.w  d0,(a0)
        ; index of the new record = DmNumRecords - 1
        move.l  d3,-(sp)
        dc.w    SYS_DmNumRecords
        addq.l  #4,sp
        subq.l  #1,d0
        ; DmWriteRecord(db, index, 0, &text, 8)
        move.l  #8,-(sp)
        pea     -24(a6)
        move.l  #0,-(sp)
        move.l  d0,-(sp)
        move.l  d3,-(sp)
        dc.w    SYS_DmWriteRecord
        adda.l  #20,sp
        ; acknowledge with a status bar
        move.l  #$07e0,-(sp)
        move.l  #6,-(sp)
        move.l  #100,-(sp)
        move.l  #150,-(sp)
        move.l  #30,-(sp)
        dc.w    SYS_WinDrawRectangle
        adda.l  #20,sp
        bra     mp_loop

; ---- buttons: UP redraws the list, DOWN deletes memo 0 ----------------
mp_key:
        move.w  -8(a6),d0               ; event.key
        cmpi.w  #2,d0                   ; Button.UP
        bne.s   mp_key2
        bsr.s   mp_draw_list
        bra     mp_loop
mp_key2:
        cmpi.w  #4,d0                   ; Button.DOWN
        bne     mp_loop
        move.l  d3,-(sp)
        dc.w    SYS_DmNumRecords
        addq.l  #4,sp
        tst.l   d0
        beq     mp_loop
        move.l  #0,-(sp)
        move.l  d3,-(sp)
        dc.w    SYS_DmRemoveRecord
        addq.l  #8,sp
        bsr.s   mp_draw_list
        bra     mp_loop

mp_done:
        unlk    a6
        rts

; ---- draw up to 8 memo rows -------------------------------------------
mp_draw_list:
        dc.w    SYS_WinEraseWindow
        move.l  d3,-(sp)
        dc.w    SYS_DmNumRecords
        addq.l  #4,sp
        move.l  d0,d4                   ; record count
        cmpi.l  #8,d4
        ble.s   mp_dl_clamped
        moveq   #8,d4
mp_dl_clamped:
        moveq   #0,d5                   ; row
mp_dl_loop:
        cmp.l   d4,d5
        bge.s   mp_dl_done
        ; ptr = DmQueryRecord(db, row)
        move.l  d5,-(sp)
        move.l  d3,-(sp)
        dc.w    SYS_DmQueryRecord
        addq.l  #8,sp
        tst.l   d0
        beq.s   mp_dl_next
        ; WinDrawChars(ptr, 8, 4, 10 + 12*row)
        move.l  d5,d1
        mulu    #12,d1
        add.l   #10,d1
        move.l  d1,-(sp)
        move.l  #4,-(sp)
        move.l  #8,-(sp)
        move.l  d0,-(sp)
        dc.w    SYS_WinDrawChars
        adda.l  #16,sp
mp_dl_next:
        addq.l  #1,d5
        bra.s   mp_dl_loop
mp_dl_done:
        rts

mp_dbname:
        dc.b    "MemoDB",0
        even
"""

MEMOPAD = AppSpec(name="memopad", source=MEMOPAD_SOURCE)
