"""ROM-resident guest applications, written in 68k assembly.

The m515's built-in applications live in ROM, which is why flash
receives the majority of memory references (Table 1); these apps play
that role for the reproduction's workloads.
"""

from __future__ import annotations

from ..device.constants import Button
from ..palmos.rom import AppSpec
from .addressbook import ADDRESSBOOK, ADDRESSBOOK_SOURCE
from .launcher import LAUNCHER, LAUNCHER_SOURCE
from .memopad import MEMOPAD, MEMOPAD_SOURCE
from .puzzle import PUZZLE, PUZZLE_SOURCE


def standard_apps() -> list[AppSpec]:
    """The full application suite with hardware-button bindings:

    ===========  ========  ==============
    application  app id    button
    ===========  ========  ==============
    launcher     1         (none)
    memopad      2         Button.MEMO
    addressbook  3         Button.ADDRESS
    puzzle       4         Button.DATEBOOK
    ===========  ========  ==============
    """
    return [
        LAUNCHER,
        AppSpec(name="memopad", source=MEMOPAD_SOURCE, button=Button.MEMO),
        AppSpec(name="addressbook", source=ADDRESSBOOK_SOURCE,
                button=Button.ADDRESS),
        AppSpec(name="puzzle", source=PUZZLE_SOURCE, button=Button.DATEBOOK),
    ]


__all__ = [
    "AppSpec",
    "standard_apps",
    "LAUNCHER",
    "MEMOPAD",
    "ADDRESSBOOK",
    "PUZZLE",
    "LAUNCHER_SOURCE",
    "MEMOPAD_SOURCE",
    "ADDRESSBOOK_SOURCE",
    "PUZZLE_SOURCE",
]
