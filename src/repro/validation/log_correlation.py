"""Activity-log correlation (§3.3).

"To validate the simulator, we first verified that the inputs collected
from the physical device were replayed on the simulator. ... The
activity log from the handheld and that of the emulated session
correlate very well.  Each pen event recorded in the original activity
log also appeared in the emulated activity log with the same
coordinates. ... However, the events in the emulated activity log
sometimes occurred in short bursts ... slightly behind schedule
(< 20 ticks)."

:func:`correlate_logs` quantifies exactly that: per-event-type payload
matching plus the tick-slip distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..tracelog import ActivityLog
from ..tracelog.records import LogEventType, LogRecord

#: The paper's burst bound: replayed events arrived < 20 ticks late.
BURST_TICK_BOUND = 20


@dataclass
class TypeCorrelation:
    """Correlation of one event type's record stream."""

    original: int = 0
    replayed: int = 0
    payload_matches: int = 0
    exact_matches: int = 0       # payload and tick both equal
    tick_deltas: List[int] = field(default_factory=list)

    @property
    def payload_match_rate(self) -> float:
        return self.payload_matches / self.original if self.original else 1.0

    @property
    def max_tick_delta(self) -> int:
        return max((abs(d) for d in self.tick_deltas), default=0)


@dataclass
class LogCorrelation:
    """The full §3.3 comparison."""

    by_type: Dict[LogEventType, TypeCorrelation] = field(default_factory=dict)

    @property
    def total_original(self) -> int:
        return sum(t.original for t in self.by_type.values())

    @property
    def total_replayed(self) -> int:
        return sum(t.replayed for t in self.by_type.values())

    @property
    def payload_matches(self) -> int:
        return sum(t.payload_matches for t in self.by_type.values())

    @property
    def exact_matches(self) -> int:
        return sum(t.exact_matches for t in self.by_type.values())

    @property
    def max_tick_delta(self) -> int:
        return max((t.max_tick_delta for t in self.by_type.values()),
                   default=0)

    @property
    def all_payloads_match(self) -> bool:
        return all(t.payload_matches == t.original == t.replayed
                   for t in self.by_type.values())

    @property
    def within_burst_bound(self) -> bool:
        """Every slip under the paper's observed < 20-tick bound."""
        return self.max_tick_delta < BURST_TICK_BOUND

    @property
    def valid(self) -> bool:
        """The §3.3 verdict: the logs 'contain virtually the same
        inputs, retaining the integrity of the log'."""
        return self.all_payloads_match and self.within_burst_bound

    def summary(self) -> str:
        lines = [
            f"activity log correlation: {self.total_original} original / "
            f"{self.total_replayed} replayed records",
            f"  payload matches : {self.payload_matches}"
            f" ({100.0 * self.payload_matches / max(1, self.total_original):.1f}%)",
            f"  exact matches   : {self.exact_matches}",
            f"  max tick slip   : {self.max_tick_delta}"
            f" (paper bound: < {BURST_TICK_BOUND})",
            f"  verdict         : {'VALID' if self.valid else 'DIVERGED'}",
        ]
        for etype, t in sorted(self.by_type.items()):
            lines.append(
                f"    {etype.name:<9} {t.original:>6} vs {t.replayed:<6} "
                f"payload {t.payload_matches}, exact {t.exact_matches}, "
                f"max slip {t.max_tick_delta}")
        return "\n".join(lines)


def _streams(log: ActivityLog) -> Dict[LogEventType, List[LogRecord]]:
    out: Dict[LogEventType, List[LogRecord]] = {}
    for record in log:
        out.setdefault(record.type, []).append(record)
    return out


def correlate_logs(original: ActivityLog,
                   replayed: ActivityLog) -> LogCorrelation:
    """Compare the handheld's log with the emulated session's log.

    Records are aligned per event type, in order — the replay preserves
    per-type ordering even when bursts delay delivery.
    """
    result = LogCorrelation()
    original_streams = _streams(original)
    replayed_streams = _streams(replayed)
    for etype in set(original_streams) | set(replayed_streams):
        o_stream = original_streams.get(etype, [])
        r_stream = replayed_streams.get(etype, [])
        corr = TypeCorrelation(original=len(o_stream), replayed=len(r_stream))
        for o_rec, r_rec in zip(o_stream, r_stream):
            if o_rec.data == r_rec.data:
                corr.payload_matches += 1
                if o_rec.tick == r_rec.tick:
                    corr.exact_matches += 1
                corr.tick_deltas.append(r_rec.tick - o_rec.tick)
        result.by_type[etype] = corr
    return result
