"""Final-state correlation (§3.4).

"To further validate the simulator, we compared the final state of a
test session on a handheld and the final state of the emulated session.
... we compared the respective databases field by field.  The databases
correlated extremely well.  The only exceptions are three fields
entitled CREATION DATE, LAST BACKUP DATE and MODIFICATION DATE and the
database named psysLaunchDB."

:func:`correlate_final_states` performs the same field-by-field diff
and classifies each difference as *expected* (the paper's benign
import/replay artifacts) or *unexpected* (a genuine divergence)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..palmos.database import DatabaseImage

#: Header fields whose divergence the paper attributes to the
#: import/export procedure.
EXPECTED_DIFF_FIELDS = frozenset({
    "creation_date", "last_backup_date", "modification_date",
})

#: Databases whose record contents may legitimately differ (the paper
#: singles out psysLaunchDB, whose replay-time values depend on the
#: emulator's RTC approximation).
EXPECTED_DIFF_DATABASES = frozenset({"psysLaunchDB"})

#: All header fields compared.
HEADER_FIELDS = (
    "name", "type", "creator", "attributes", "version",
    "creation_date", "modification_date", "last_backup_date",
    "modification_number", "unique_id_seed",
)


@dataclass
class FieldDiff:
    database: str
    field: str               # header field name or "record[i].<what>"
    device_value: object
    emulated_value: object
    expected: bool

    def __str__(self) -> str:
        tag = "expected" if self.expected else "UNEXPECTED"
        return (f"{self.database}.{self.field}: device={self.device_value!r} "
                f"emulated={self.emulated_value!r} [{tag}]")


@dataclass
class StateCorrelation:
    """The §3.4 verdict."""

    databases_compared: int = 0
    fields_compared: int = 0
    diffs: List[FieldDiff] = field(default_factory=list)
    missing_databases: List[str] = field(default_factory=list)
    extra_databases: List[str] = field(default_factory=list)

    @property
    def expected_diffs(self) -> List[FieldDiff]:
        return [d for d in self.diffs if d.expected]

    @property
    def unexpected_diffs(self) -> List[FieldDiff]:
        return [d for d in self.diffs if not d.expected]

    @property
    def valid(self) -> bool:
        """True when every difference is one the paper classifies as a
        benign import/replay artifact."""
        return (not self.unexpected_diffs and not self.missing_databases
                and not self.extra_databases)

    def summary(self) -> str:
        lines = [
            f"final state correlation: {self.databases_compared} databases, "
            f"{self.fields_compared} fields compared",
            f"  expected diffs   : {len(self.expected_diffs)} "
            f"(date fields / {'/'.join(sorted(EXPECTED_DIFF_DATABASES))})",
            f"  unexpected diffs : {len(self.unexpected_diffs)}",
            f"  verdict          : {'VALID' if self.valid else 'DIVERGED'}",
        ]
        for diff in self.unexpected_diffs[:20]:
            lines.append(f"    {diff}")
        return "\n".join(lines)


def _diff_records(name: str, device: DatabaseImage,
                  emulated: DatabaseImage, out: StateCorrelation,
                  benign_databases: frozenset) -> None:
    benign_db = name in benign_databases
    if len(device.records) != len(emulated.records):
        out.diffs.append(FieldDiff(name, "record_count",
                                   len(device.records),
                                   len(emulated.records), benign_db))
        return
    for i, (d_rec, e_rec) in enumerate(zip(device.records, emulated.records)):
        out.fields_compared += 3
        if d_rec.data != e_rec.data:
            out.diffs.append(FieldDiff(name, f"record[{i}].data",
                                       d_rec.data, e_rec.data, benign_db))
        if d_rec.attr != e_rec.attr:
            out.diffs.append(FieldDiff(name, f"record[{i}].attr",
                                       d_rec.attr, e_rec.attr, benign_db))
        if d_rec.uid != e_rec.uid:
            out.diffs.append(FieldDiff(name, f"record[{i}].uid",
                                       d_rec.uid, e_rec.uid, benign_db))


def correlate_final_states(device_state: Sequence[DatabaseImage],
                           emulated_state: Sequence[DatabaseImage],
                           extra_expected_databases: Sequence[str] = (),
                           ) -> StateCorrelation:
    """Field-by-field comparison of two HotSync exports.

    ``extra_expected_databases`` marks additional databases whose
    content differences are benign — jitter-mode replays pass the
    activity-log database here, since the collection instrument itself
    records the (intentionally) shifted replay timing.
    """
    benign_databases = EXPECTED_DIFF_DATABASES | frozenset(
        extra_expected_databases)
    result = StateCorrelation()
    device_by_name = {db.name: db for db in device_state}
    emulated_by_name = {db.name: db for db in emulated_state}
    result.missing_databases = sorted(set(device_by_name) - set(emulated_by_name))
    result.extra_databases = sorted(set(emulated_by_name) - set(device_by_name))

    for name in sorted(set(device_by_name) & set(emulated_by_name)):
        device_db = device_by_name[name]
        emulated_db = emulated_by_name[name]
        result.databases_compared += 1
        benign_db = name in benign_databases
        for field_name in HEADER_FIELDS:
            result.fields_compared += 1
            d_val = getattr(device_db, field_name)
            e_val = getattr(emulated_db, field_name)
            if d_val != e_val:
                expected = benign_db or field_name in EXPECTED_DIFF_FIELDS
                result.diffs.append(FieldDiff(name, field_name, d_val,
                                              e_val, expected))
        _diff_records(name, device_db, emulated_db, result, benign_databases)
    return result
