"""System validation: the paper's two-fold approach (§3)."""

from .log_correlation import (
    BURST_TICK_BOUND,
    LogCorrelation,
    TypeCorrelation,
    correlate_logs,
)
from .state_correlation import (
    EXPECTED_DIFF_DATABASES,
    EXPECTED_DIFF_FIELDS,
    FieldDiff,
    StateCorrelation,
    correlate_final_states,
)

__all__ = [
    "BURST_TICK_BOUND",
    "LogCorrelation",
    "TypeCorrelation",
    "correlate_logs",
    "EXPECTED_DIFF_DATABASES",
    "EXPECTED_DIFF_FIELDS",
    "FieldDiff",
    "StateCorrelation",
    "correlate_final_states",
]
