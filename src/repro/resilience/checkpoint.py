"""Checkpoint capture/restore for interrupted replays.

A checkpoint is a complete snapshot of the emulated machine at a tick
boundary: CPU registers, RAM image, peripheral latches, virtual-time
bookkeeping, the kernel's host-side syscall context, and (when
profiling) the profiler's counters — everything needed to continue the
replay to a final state *byte-identical* with an uninterrupted run.
Guest-visible kernel state (heaps, databases, the event queue, trap
patches) needs no special handling: it all lives in guest RAM, so the
RAM image carries it.

Flash is write-protected for the whole replay, so checkpoints store
only its SHA-256 and verify equivalence on restore — the same
"equivalent systems" requirement as ``Emulator.load_state``.

On-disk container::

    +0   magic  b"PRCKPT01"
    +8   u32    manifest length (big-endian)
    +12  JSON   manifest (UTF-8); its "_sections" entry lists
                [name, stored_size, compressed] in payload order
    ...  payload  concatenated sections (zlib per the flag)
    -32  sha256 of everything before it (integrity digest)
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .errors import CheckpointError

MAGIC = b"PRCKPT01"
FORMAT_VERSION = 1

#: Sections smaller than this are stored raw (zlib overhead dominates).
_COMPRESS_THRESHOLD = 4096


@dataclass
class Checkpoint:
    """One captured machine state: a JSON-safe manifest plus named
    binary sections."""

    manifest: dict
    sections: Dict[str, bytes] = field(default_factory=dict)

    @property
    def tick(self) -> int:
        return self.manifest["tick"]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        index: List[list] = []
        payload = bytearray()
        for name in sorted(self.sections):
            blob = self.sections[name]
            compressed = len(blob) >= _COMPRESS_THRESHOLD
            stored = zlib.compress(bytes(blob), 6) if compressed else bytes(blob)
            index.append([name, len(stored), compressed])
            payload += stored
        manifest = dict(self.manifest)
        manifest["_format"] = FORMAT_VERSION
        manifest["_sections"] = index
        blob = json.dumps(manifest, separators=(",", ":")).encode("utf-8")
        body = MAGIC + struct.pack(">I", len(blob)) + blob + bytes(payload)
        return body + hashlib.sha256(body).digest()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        if len(data) < len(MAGIC) + 4 + 32:
            raise CheckpointError("checkpoint container truncated")
        body, digest = data[:-32], data[-32:]
        if hashlib.sha256(body).digest() != digest:
            raise CheckpointError("checkpoint integrity digest mismatch "
                                  "(corrupted or truncated container)")
        if body[:len(MAGIC)] != MAGIC:
            raise CheckpointError("not a checkpoint container (bad magic)")
        (mlen,) = struct.unpack_from(">I", body, len(MAGIC))
        start = len(MAGIC) + 4
        try:
            manifest = json.loads(body[start:start + mlen].decode("utf-8"))
        except ValueError as exc:
            raise CheckpointError(f"unreadable checkpoint manifest: {exc}")
        if manifest.get("_format") != FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format {manifest.get('_format')!r} "
                f"(this build reads version {FORMAT_VERSION})")
        sections: Dict[str, bytes] = {}
        offset = start + mlen
        for name, stored, compressed in manifest.pop("_sections"):
            blob = body[offset:offset + stored]
            if len(blob) != stored:
                raise CheckpointError(f"section {name!r} truncated")
            sections[name] = zlib.decompress(blob) if compressed else blob
            offset += stored
        manifest.pop("_format", None)
        return cls(manifest=manifest, sections=sections)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.to_bytes())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Checkpoint":
        return cls.from_bytes(Path(path).read_bytes())


# ----------------------------------------------------------------------
# Emulator state capture / restore
# ----------------------------------------------------------------------
def capture_emulator(emulator: Any) -> Checkpoint:
    """Snapshot the full machine state into a :class:`Checkpoint`.

    The playback driver layers its own cursors on top (see
    ``PlaybackDriver.capture_checkpoint``); this function captures only
    what the emulator owns.
    """
    kernel = emulator.kernel
    device = emulator.device
    cpu = device.cpu
    mem = device.mem

    sections: Dict[str, bytes] = {"ram": bytes(mem.ram.data)}

    cpu_state = {
        "d": list(cpu.d), "a": list(cpu.a), "pc": cpu.pc,
        "x": cpu.x, "n": cpu.n, "z": cpu.z, "v": cpu.v, "c": cpu.c,
        "s": cpu.s, "imask": cpu.imask, "shadow_sp": cpu._shadow_sp,
        "stopped": cpu.stopped, "cycles": cpu.cycles,
        "instructions": cpu.instructions, "pending_irq": cpu.pending_irq,
    }
    digitizer = device.digitizer
    slot = device.card_slot
    state = {
        "cpu": cpu_state,
        "intc_status": device.intc.status,
        "digitizer": {
            "down": digitizer.down, "x": digitizer.x, "y": digitizer.y,
            "sample": [digitizer.sample.down, digitizer.sample.x,
                       digitizer.sample.y],
            "last_sample_tick": digitizer.last_sample_tick,
            "pending_up": digitizer._pending_up,
        },
        "buttons": {"state": device.buttons.state,
                    "last_event": device.buttons.last_event},
        "rtc_base": device.rtc.base_seconds,
        "timer_tick": device.timer.tick,
        "tick_offset": device.tick_offset,
        "entropy_state": device._entropy_state,
        "seq": device._seq,
        "wakes": sorted(device._wakes),
        "lcd_base": device.lcd_base,
        "allow_native": kernel.allow_native,
        "syscall_ctx": [dict(frame) for frame in kernel.syscalls._ctx],
        "ram_size": len(mem.ram),
        "flash_size": len(mem.flash),
        "flash_sha256": hashlib.sha256(bytes(mem.flash.data)).hexdigest(),
    }

    # The expansion card: the slot's inserted card and the emulator's
    # session card are usually the same object — record the aliasing so
    # restore rebuilds it (the driver's schedule re-inserts self.card).
    card_state = {"slot_event": slot.last_event,
                  "slot": None, "session": None, "aliased": False}
    if slot.card is not None:
        card_state["slot"] = slot.card.name
        sections["card_slot"] = bytes(slot.card.contents)
    if emulator.card is not None:
        if emulator.card is slot.card:
            card_state["aliased"] = True
            card_state["session"] = emulator.card.name
        else:
            card_state["session"] = emulator.card.name
            sections["card_session"] = bytes(emulator.card.contents)
    state["card"] = card_state

    profiler = emulator.profiler
    if profiler is not None:
        state["profiler"] = {
            "trace_references": profiler.trace_references,
            "instructions": profiler.instructions,
        }
        sections["prof_opcode_counts"] = profiler.opcode_counts.tobytes()
        sections["prof_counts"] = profiler.counts_bytes()
        if profiler.trace_references:
            addr_blob, kind_blob = profiler.trace_bytes()
            sections["prof_addr"] = addr_blob
            sections["prof_kind"] = kind_blob
        if profiler.opcode_addresses:
            addrs = array("I", profiler.opcode_addresses.keys())
            ops = array("H", profiler.opcode_addresses.values())
            sections["prof_opaddr_pc"] = addrs.tobytes()
            sections["prof_opaddr_op"] = ops.tobytes()
    else:
        state["profiler"] = None

    manifest = {"tick": device.timer.tick, "emulator": state}
    return Checkpoint(manifest=manifest, sections=sections)


def restore_emulator(emulator: Any, checkpoint: Checkpoint) -> None:
    """Restore a captured machine state onto an equivalent emulator.

    The emulator must be built with the same application set and memory
    sizes (flash SHA-256 and region lengths are verified).  Its pending
    stimulus schedule is cleared — the playback driver re-pushes the
    pending entries from its own serialized side table.
    """
    from ..device.memcard import MemoryCard

    state = checkpoint.manifest.get("emulator")
    if state is None:
        raise CheckpointError("checkpoint carries no emulator state")
    kernel = emulator.kernel
    device = emulator.device
    cpu = device.cpu
    mem = device.mem

    if state["ram_size"] != len(mem.ram) or state["flash_size"] != len(mem.flash):
        raise CheckpointError(
            f"memory geometry mismatch: checkpoint was captured on "
            f"ram={state['ram_size']}/flash={state['flash_size']}, this "
            f"emulator has ram={len(mem.ram)}/flash={len(mem.flash)}")
    flash_sha = hashlib.sha256(bytes(mem.flash.data)).hexdigest()
    if flash_sha != state["flash_sha256"]:
        raise CheckpointError(
            "flash image differs from the checkpointed machine; build "
            "the emulator with the same application set")
    ram = checkpoint.sections.get("ram")
    if ram is None or len(ram) != len(mem.ram):
        raise CheckpointError("checkpoint RAM section missing or mis-sized")
    # Bulk-load through the watched path so a block-caching replay core
    # drops any predecoded blocks built over the previous RAM contents.
    mem.ram.load(mem.ram.base, bytes(ram))

    c = state["cpu"]
    cpu.d[:] = c["d"]
    cpu.a[:] = c["a"]
    cpu.pc = c["pc"]
    cpu.x, cpu.n, cpu.z, cpu.v, cpu.c = c["x"], c["n"], c["z"], c["v"], c["c"]
    cpu.s = c["s"]
    cpu.imask = c["imask"]
    cpu._shadow_sp = c["shadow_sp"]
    cpu.stopped = c["stopped"]
    cpu.cycles = c["cycles"]
    cpu.instructions = c["instructions"]
    cpu.pending_irq = c["pending_irq"]

    device.intc.status = state["intc_status"]
    device.intc.attach_cpu(cpu)

    d = state["digitizer"]
    digitizer = device.digitizer
    digitizer.down = d["down"]
    digitizer.x, digitizer.y = d["x"], d["y"]
    sample = d["sample"]
    digitizer.sample = type(digitizer.sample)(sample[0], sample[1], sample[2])
    digitizer.last_sample_tick = d["last_sample_tick"]
    digitizer._pending_up = d["pending_up"]

    device.buttons.state = state["buttons"]["state"]
    device.buttons.last_event = state["buttons"]["last_event"]

    device.rtc.base_seconds = state["rtc_base"]
    device.timer.tick = state["timer_tick"]
    device.tick_offset = state["tick_offset"]
    device._entropy_state = state["entropy_state"]
    device._seq = state["seq"]
    device._wakes = list(state["wakes"])  # sorted list is a valid heap
    device._stimuli.clear()               # driver re-pushes pending entries
    device.lcd_base = state["lcd_base"]

    kernel.allow_native = state["allow_native"]
    kernel.syscalls._ctx = [dict(frame) for frame in state["syscall_ctx"]]

    card = state["card"]
    slot = device.card_slot
    slot.last_event = card["slot_event"]
    if card["slot"] is not None:
        slot.card = MemoryCard(card["slot"],
                               bytearray(checkpoint.sections["card_slot"]))
    else:
        slot.card = None
    if card["session"] is None:
        emulator.card = None
    elif card["aliased"]:
        emulator.card = slot.card
    else:
        emulator.card = MemoryCard(
            card["session"], bytearray(checkpoint.sections["card_session"]))

    prof_state = state.get("profiler")
    profiler = emulator.profiler
    if prof_state is not None:
        if profiler is None:
            raise CheckpointError(
                "checkpoint was captured with profiling enabled; call "
                "start_profiling() before restoring")
        if profiler.trace_references != prof_state["trace_references"]:
            raise CheckpointError("profiler trace_references setting differs "
                                  "from the checkpointed run")
        profiler.instructions = prof_state["instructions"]
        profiler.opcode_counts = array("Q")
        profiler.opcode_counts.frombytes(checkpoint.sections["prof_opcode_counts"])
        profiler.restore_counts(checkpoint.sections["prof_counts"])
        if prof_state["trace_references"]:
            profiler.restore_trace(checkpoint.sections["prof_addr"],
                                   checkpoint.sections["prof_kind"])
        profiler.opcode_addresses = {}
        if "prof_opaddr_pc" in checkpoint.sections:
            addrs = array("I")
            addrs.frombytes(checkpoint.sections["prof_opaddr_pc"])
            ops = array("H")
            ops.frombytes(checkpoint.sections["prof_opaddr_op"])
            profiler.opcode_addresses = dict(zip(addrs, ops))
    elif profiler is not None:
        raise CheckpointError(
            "checkpoint was captured without profiling; restore onto an "
            "emulator that has not started profiling")


class CheckpointManager:
    """Keeps the most recent checkpoints of a run — an in-memory ring,
    optionally mirrored to a directory (``ckpt-<tick>.bin``).

    The resilient runner's ``resync`` policy retries from the latest
    checkpoint and falls back to earlier ones on repeated failure
    (:meth:`discard_latest`).
    """

    def __init__(self, directory: Union[str, Path, None] = None,
                 keep: int = 4):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory) if directory else None
        self.keep = keep
        self._ring: List[Checkpoint] = []

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def ticks(self) -> List[int]:
        return [cp.tick for cp in self._ring]

    def add(self, checkpoint: Checkpoint) -> None:
        self._ring.append(checkpoint)
        while len(self._ring) > self.keep:
            dropped = self._ring.pop(0)
            self._unlink(dropped)
        if self.directory is not None:
            checkpoint.save(self.directory / self._filename(checkpoint))

    def latest(self) -> Optional[Checkpoint]:
        return self._ring[-1] if self._ring else None

    def earliest(self) -> Optional[Checkpoint]:
        return self._ring[0] if self._ring else None

    def discard_latest(self) -> Optional[Checkpoint]:
        """Drop the newest checkpoint (it leads into the failure) and
        return the next-older one, or None when the ring is empty."""
        if self._ring:
            self._unlink(self._ring.pop())
        return self.latest()

    def before(self, tick: int) -> Optional[Checkpoint]:
        """The newest checkpoint strictly before ``tick``."""
        best = None
        for cp in self._ring:
            if cp.tick < tick and (best is None or cp.tick > best.tick):
                best = cp
        return best

    @staticmethod
    def _filename(checkpoint: Checkpoint) -> str:
        return f"ckpt-{checkpoint.tick:012d}.bin"

    def _unlink(self, checkpoint: Checkpoint) -> None:
        if self.directory is None:
            return
        path = self.directory / self._filename(checkpoint)
        if path.exists():
            path.unlink()

    @classmethod
    def load_directory(cls, directory: Union[str, Path],
                       keep: int = 4) -> "CheckpointManager":
        """Rebuild a manager from a checkpoint directory (resume after
        the process died)."""
        manager = cls(directory=directory, keep=keep)
        paths = sorted(Path(directory).glob("ckpt-*.bin"))
        for path in paths[-keep:]:
            manager._ring.append(Checkpoint.load(path))
        return manager
