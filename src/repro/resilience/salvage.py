"""Trace salvage: recover a playable activity log from a damaged one.

A trace that spent time on a real handheld, an SD card, or a flaky
HotSync link can arrive damaged: flipped type bytes, truncated record
blobs, shuffled bursts, duplicated inserts.  The strict parser refuses
such logs; the salvage parser instead validates every record, repairs
what it can (re-sorting a shuffled epoch, dropping exact duplicates),
skips what it cannot, and reports every decision as a typed finding
through the same :class:`~repro.analysis.static.findings.Report`
machinery the static analyzers use — so "zero error-severity findings"
stays the uniform acceptance gate.

Repairs are conservative: a record is only dropped when replaying it
would be meaningless (unknown type, truncated payload, impossible
tick), and only reordered *within* its reset epoch, never across one.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..analysis.static.findings import Finding, Report, Severity
from ..tracelog import ActivityLog
from ..tracelog.records import (
    LogEventType,
    LogRecord,
    RECORD_SIZE_SHORT,
    TraceFormatError,
)

#: Records claiming a tick at/above this are impossible on a real
#: session (the tick counter is u32, but a plausible multi-hour session
#: stays far below; a corrupted tick field usually lands astronomically
#: high).  2^31 ticks is ~8 months of continuous 100 Hz uptime.
MAX_PLAUSIBLE_TICK = 1 << 31


@dataclass
class SalvageResult:
    """What salvage produced: the playable log plus the paper trail."""

    log: ActivityLog
    report: Report
    total: int = 0          #: records examined
    kept: int = 0           #: records in the salvaged log
    dropped: int = 0        #: records removed
    repaired: int = 0       #: records altered/moved (re-sorts, masks)

    @property
    def clean(self) -> bool:
        """True when the log needed no intervention at all."""
        return not self.report.findings

    def summary(self) -> str:
        return (f"salvage: {self.kept}/{self.total} record(s) kept, "
                f"{self.dropped} dropped, {self.repaired} repaired; "
                f"{len(self.report.errors)} error(s), "
                f"{len(self.report.warnings)} warning(s)")

    def to_json(self) -> dict:
        """JSON-safe snapshot of counts and findings.

        The salvaged log itself is *not* serialized (it can be as large
        as the session trace); :meth:`from_json` rebuilds the result
        with an empty log, which is what journal/aggregate consumers
        need — they care about the paper trail, not the replayable
        bytes.
        """
        return {
            "total": self.total,
            "kept": self.kept,
            "dropped": self.dropped,
            "repaired": self.repaired,
            "findings": [[int(f.severity), f.code, f.message,
                          f.address, f.block]
                         for f in self.report.findings],
        }

    @classmethod
    def from_json(cls, data: dict) -> "SalvageResult":
        report = Report([Finding(Severity(sev), code, message, address, block)
                         for sev, code, message, address, block
                         in data["findings"]])
        return cls(log=ActivityLog(), report=report,
                   total=data["total"], kept=data["kept"],
                   dropped=data["dropped"], repaired=data["repaired"])


def salvage_log(log: ActivityLog, strict: bool = False,
                max_tick: int = MAX_PLAUSIBLE_TICK) -> SalvageResult:
    """Validate and repair a decoded activity log.

    With ``strict=True`` any error-severity finding raises
    :class:`TraceFormatError` carrying the full report (the CLI's
    default path); otherwise the damaged records are dropped/repaired
    and the cleaned log is returned for replay.
    """
    report = Report()
    result = SalvageResult(log=ActivityLog(), report=report, total=len(log))

    # Pass 1: per-record structural validation.
    survivors: List[LogRecord] = []
    seen_prev: Optional[LogRecord] = None
    for index, rec in enumerate(log):
        if not rec.known_type:
            report.add(Severity.ERROR, "unknown-event-type",
                       f"record {index} has event type {int(rec.type):#06x} "
                       f"which names no playback group; dropped",
                       address=index)
            result.dropped += 1
            seen_prev = rec
            continue
        if rec.tick >= max_tick:
            report.add(Severity.ERROR, "implausible-tick",
                       f"record {index} ({rec.type.name}) claims tick "
                       f"{rec.tick}, beyond the {max_tick} plausibility "
                       f"bound; dropped", address=index)
            result.dropped += 1
            seen_prev = rec
            continue
        if rec.type == LogEventType.KEYSTATE and rec.data > 0xFFFF:
            # A 12-byte record cannot carry more than 16 data bits; the
            # oversized value means the blob was decoded off-frame.
            report.add(Severity.WARNING, "oversized-keystate",
                       f"record {index} KEYSTATE data {rec.data:#x} exceeds "
                       f"the 16-bit field; masked", address=index)
            rec = LogRecord(rec.type, rec.tick, rec.rtc, rec.data & 0xFFFF)
            result.repaired += 1
        if (seen_prev is not None
                and rec.type == seen_prev.type
                and rec.tick == seen_prev.tick
                and rec.rtc == seen_prev.rtc
                and rec.data == seen_prev.data
                and rec.type != LogEventType.RESET):
            report.add(Severity.WARNING, "duplicate-record",
                       f"record {index} exactly duplicates its predecessor "
                       f"({rec.type.name} tick={rec.tick}); dropped",
                       address=index)
            result.dropped += 1
            seen_prev = rec
            continue
        survivors.append(rec)
        seen_prev = rec

    # Pass 2: per-epoch monotonicity.  Ticks restart at RESET records;
    # within one epoch a backwards tick means reordered storage (e.g. a
    # shuffled burst) — repairable by a stable re-sort that never moves
    # a record across an epoch boundary.
    cleaned: List[LogRecord] = []
    epoch: List[LogRecord] = []

    def flush_epoch() -> None:
        nonlocal epoch
        if not epoch:
            return
        disorder = sum(1 for a, b in zip(epoch, epoch[1:]) if b.tick < a.tick)
        if disorder:
            base = len(cleaned)
            report.add(Severity.WARNING, "non-monotonic-tick",
                       f"epoch starting at record {base} has {disorder} "
                       f"backwards tick step(s); re-sorted within the epoch",
                       address=base)
            epoch.sort(key=lambda r: r.tick)
            result.repaired += disorder
        cleaned.extend(epoch)
        epoch = []

    for rec in survivors:
        if rec.type == LogEventType.RESET:
            epoch.append(rec)
            flush_epoch()
        else:
            epoch.append(rec)
    flush_epoch()

    result.log.records = cleaned
    result.kept = len(cleaned)

    if strict and not report.ok:
        raise TraceFormatError(
            f"activity log failed strict validation: "
            f"{len(report.errors)} error-severity finding(s); "
            f"first: {report.errors[0].message}",
            index=report.errors[0].address, report=report)
    return result


def salvage_database_image(image: Any, strict: bool = False) -> SalvageResult:
    """Salvage straight off a transferred database image, recovering
    records the strict decoder would refuse (unknown type bytes are
    kept for diagnosis; truncated blobs are dropped)."""
    log = ActivityLog()
    blob_report = Report()
    dropped_blobs = 0
    for index, rec in enumerate(image.records):
        if len(rec.data) < RECORD_SIZE_SHORT:
            blob_report.add(Severity.ERROR, "truncated-record",
                            f"record {index} blob is {len(rec.data)} bytes, "
                            f"below the {RECORD_SIZE_SHORT}-byte minimum; "
                            f"dropped", address=index)
            dropped_blobs += 1
            continue
        try:
            log.append(LogRecord.decode(rec.data, strict=False))
        except TraceFormatError as exc:
            blob_report.add(Severity.ERROR, "corrupt-record",
                            f"record {index} undecodable: {exc}; dropped",
                            address=index)
            dropped_blobs += 1
    result = salvage_log(log, strict=False)
    # Blob-level findings come first: they happened first.
    merged = Report()
    merged.extend(blob_report)
    merged.extend(result.report)
    result.report = merged
    result.total += dropped_blobs
    result.dropped += dropped_blobs
    if strict and not result.report.ok:
        raise TraceFormatError(
            f"activity log failed strict validation: "
            f"{len(result.report.errors)} error-severity finding(s)",
            report=result.report)
    return result


@dataclass
class ContainerSalvageResult:
    """What PTRC container salvage produced: the recovered container's
    manifest (``None`` when nothing was recoverable) plus the paper
    trail, through the same :class:`Report` machinery as log salvage."""

    report: Report
    manifest: Optional[Dict[str, Any]]
    chunks_kept: int = 0
    tokens_kept: int = 0

    @property
    def clean(self) -> bool:
        """True when the container needed no intervention at all."""
        return not self.report.findings

    def summary(self) -> str:
        return (f"salvage: {self.chunks_kept} chunk(s) / "
                f"{self.tokens_kept:,} token(s) recovered; "
                f"{len(self.report.errors)} error(s), "
                f"{len(self.report.warnings)} warning(s)")


#: PTRC scan problem codes that mean "this is not a (version of a)
#: container at all" rather than "the tail is torn" — nothing before
#: the problem can be trusted, so they are error severity.
_FATAL_CONTAINER_PROBLEMS = frozenset(
    ("truncated-header", "bad-magic", "bad-version", "bad-codec"))


def salvage_container(path: Union[str, Path],
                      out_path: Union[str, Path],
                      strict: bool = False) -> ContainerSalvageResult:
    """Recover the intact prefix of a torn or corrupt PTRC trace
    container into ``out_path``, reporting every dropped frame as a
    typed finding.

    A container torn by a crash (a replay killed mid ``--trace-out``,
    a fleet worker that died before ``os.replace``) loses only its
    unflushed tail: every complete frame before the tear is
    self-describing and crc-guarded, so the salvaged prefix is
    bit-exact.  With ``strict=True`` any error-severity finding raises
    :class:`~repro.traces.container.TraceContainerError`.
    """
    from ..traces.container import TraceContainerError, recover_container

    report = Report()
    manifest: Optional[Dict[str, Any]] = None
    chunks_kept = 0
    tokens_kept = 0
    try:
        manifest, recovery = recover_container(path, out_path)
    except (TraceContainerError, OSError) as exc:
        report.add(Severity.ERROR, "unrecoverable-container",
                   f"cannot recover {path}: {exc}")
    else:
        chunks_kept = int(recovery["chunks_kept"])
        tokens_kept = int(recovery["tokens_kept"])
        for problem in recovery["problems"]:
            severity = (Severity.ERROR
                        if problem["code"] in _FATAL_CONTAINER_PROBLEMS
                        else Severity.WARNING)
            report.add(severity, problem["code"], problem["message"])
    result = ContainerSalvageResult(report=report, manifest=manifest,
                                    chunks_kept=chunks_kept,
                                    tokens_kept=tokens_kept)
    if strict and not report.ok:
        raise TraceContainerError(
            f"container {path} failed strict salvage: "
            f"{len(report.errors)} error-severity finding(s); "
            f"first: {report.errors[0].message}")
    return result


def salvage_file(path: "Union[str, Path]", strict: bool = False) -> SalvageResult:
    """Salvage a .pdb activity-log file from disk."""
    from ..palmos.database import DatabaseImage

    try:
        image = DatabaseImage.from_pdb_bytes(Path(path).read_bytes())
    except Exception as exc:
        report = Report()
        report.add(Severity.ERROR, "unreadable-pdb",
                   f"cannot parse {path} as a PDB container: {exc}")
        raise TraceFormatError(f"unreadable activity log {path}: {exc}",
                               report=report) from exc
    return salvage_database_image(image, strict=strict)
