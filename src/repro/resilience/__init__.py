"""Replay resilience: checkpoint/resume, the live divergence watchdog,
trace salvage, and the fault-injection harness.

The paper's replay model is an all-or-nothing determinism bet: feed the
initial state β and activity log δ to an equivalent machine and the
whole session re-executes — or something is subtly off and you find out
hours later when the final states disagree.  This subsystem makes long
replays survivable: periodic checkpoints bound the cost of a failure,
the watchdog notices a divergence within one checkpoint interval of it
happening, salvage recovers playable logs from damaged captures, and
the fault harness proves all of it actually works.
"""

from .checkpoint import Checkpoint, CheckpointManager, capture_emulator, restore_emulator
from .errors import (
    CheckpointError,
    DivergenceError,
    FaultSpecError,
    GuestResetTimeout,
    ReplayFault,
    ResilienceError,
    TraceFormatError,
)
from .faults import RUNTIME_FAULTS, TRACE_FAULTS, FaultPlan, FaultSpec
from .replay import (
    POLICIES,
    REPLAY_JSON_FORMAT,
    REPLAY_JSON_VERSION,
    ReplayFormatError,
    ResilientReplayResult,
    resilient_replay,
)
from .salvage import (
    ContainerSalvageResult,
    SalvageResult,
    salvage_container,
    salvage_database_image,
    salvage_file,
    salvage_log,
)
from .watchdog import (
    Divergence,
    DivergenceKind,
    DivergenceReport,
    DivergenceWatchdog,
)

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "capture_emulator",
    "restore_emulator",
    "ResilienceError",
    "CheckpointError",
    "DivergenceError",
    "FaultSpecError",
    "GuestResetTimeout",
    "ReplayFault",
    "TraceFormatError",
    "FaultPlan",
    "FaultSpec",
    "TRACE_FAULTS",
    "RUNTIME_FAULTS",
    "POLICIES",
    "REPLAY_JSON_FORMAT",
    "REPLAY_JSON_VERSION",
    "ReplayFormatError",
    "ResilientReplayResult",
    "resilient_replay",
    "SalvageResult",
    "ContainerSalvageResult",
    "salvage_log",
    "salvage_database_image",
    "salvage_file",
    "salvage_container",
    "Divergence",
    "DivergenceKind",
    "DivergenceReport",
    "DivergenceWatchdog",
]
