"""Typed errors for the replay-resilience subsystem.

Every failure mode the resilient replay runner can hit maps to one of
these — a corrupted trace, a bad checkpoint, a divergence the policy
refuses to absorb, a malformed fault spec — so callers never have to
catch a bare ``RuntimeError`` to find out *which* invariant broke.
"""

from __future__ import annotations

# Re-exported so resilience users have one import point for the typed
# failures that originate in lower layers.
from typing import TYPE_CHECKING

from ..emulator.playback import GuestResetTimeout  # noqa: F401
from ..tracelog.records import TraceFormatError  # noqa: F401

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .watchdog import DivergenceReport


class ResilienceError(RuntimeError):
    """Base class for resilience-subsystem failures."""


class CheckpointError(ResilienceError):
    """A checkpoint could not be captured, serialized, or restored:
    integrity digest mismatch, truncated container, version skew, or a
    restore onto a non-equivalent machine (different sizes / flash)."""


class FaultSpecError(ResilienceError, ValueError):
    """A ``--faults`` specification string does not parse."""


class ReplayFault(ResilienceError):
    """An injected *runtime* fault fired (fault-injection harness).

    Distinct from organic replay failures so tests can assert the
    harness itself triggered the error path under test.
    """

    def __init__(self, name: str, tick: int, detail: str = ""):
        self.fault_name = name
        self.tick = tick
        self.detail = detail
        message = f"injected fault {name!r} fired at tick {tick}"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class DivergenceError(ResilienceError):
    """The live watchdog detected a divergence and the active policy is
    ``strict`` (or ``resync`` exhausted its retry budget).

    Carries the structured :class:`~repro.resilience.watchdog.DivergenceReport`
    so callers get the classification, the offending records, and the
    localized first divergent tick, not just a string.
    """

    def __init__(self, report: "DivergenceReport") -> None:
        self.report = report
        super().__init__(report.summary())
