"""Fault injection for replay-resilience testing.

Two fault families, one spec grammar::

    spec     := fault ("," fault)*
    fault    := name (":" param (";" param)*)?
    param    := key "=" value

e.g. ``bitflip:n=3;seed=7,drop:n=1`` or ``crash:at=4000``.

**Trace faults** corrupt the activity log *before* replay, modelling
damage in transit (a flaky HotSync, a dying SD card):

===============  ======================================================
``bitflip``      flip ``n`` random bits across encoded records
``truncate``     cut the log at record ``at`` (or keep ``frac``)
``drop``         delete ``n`` random records
``dup``          duplicate ``n`` random records in place
``reorder``      shuffle a ``window``-record burst at a random position
``seed-underflow``  delete the last ``n`` RANDOM records (queue underrun)
``type-garbage`` overwrite ``n`` records' type with an unknown value
===============  ======================================================

**Runtime faults** perturb the emulator *during* replay; they are
one-shot (a resumed replay does not re-arm them), which is what makes
the ``resync`` policy able to recover from them honestly:

===============  ======================================================
``crash``        raise :class:`ReplayFault` from a scheduled callback
                 at wall tick ``at``
``clock-drift``  bump the RTC base by ``seconds`` at wall tick ``at``
``stall-reset``  suppress reset detection so a recorded soft reset
                 times out (:class:`GuestResetTimeout`)
===============  ======================================================

All randomness is seeded (``seed`` param, default 0): the same spec
corrupts the same log the same way, so fault tests are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple, Union

from ..tracelog import ActivityLog
from ..tracelog.records import LogEventType, LogRecord
from .errors import FaultSpecError, ReplayFault

TRACE_FAULTS = frozenset({
    "bitflip", "truncate", "drop", "dup", "reorder", "seed-underflow",
    "type-garbage",
})
RUNTIME_FAULTS = frozenset({"crash", "clock-drift", "stall-reset"})

#: An event-type word no recorder version has ever used.
GARBAGE_TYPE = 0x7F7F


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: a name plus its parameters."""

    name: str
    params: Dict[str, Union[int, float, str]] = field(default_factory=dict)

    def get(self, key: str, default: Any) -> Any:
        return self.params.get(key, default)

    def describe(self) -> str:
        if not self.params:
            return self.name
        inner = ";".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}:{inner}"


def _parse_value(raw: str) -> Union[int, float, str]:
    try:
        return int(raw, 0)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


class FaultPlan:
    """A parsed ``--faults`` specification."""

    def __init__(self, specs: List[FaultSpec]):
        self.specs = specs

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs: List[FaultSpec] = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            name, _, tail = chunk.partition(":")
            name = name.strip()
            if name not in TRACE_FAULTS | RUNTIME_FAULTS:
                known = ", ".join(sorted(TRACE_FAULTS | RUNTIME_FAULTS))
                raise FaultSpecError(
                    f"unknown fault {name!r} (known: {known})")
            params: Dict[str, Union[int, float, str]] = {}
            if tail:
                for pair in tail.split(";"):
                    key, eq, value = pair.partition("=")
                    if not eq or not key.strip():
                        raise FaultSpecError(
                            f"malformed parameter {pair!r} in fault "
                            f"{name!r} (expected key=value)")
                    params[key.strip()] = _parse_value(value.strip())
            specs.append(FaultSpec(name, params))
        if not specs:
            raise FaultSpecError("empty fault specification")
        return cls(specs)

    @property
    def trace_specs(self) -> List[FaultSpec]:
        return [s for s in self.specs if s.name in TRACE_FAULTS]

    @property
    def runtime_specs(self) -> List[FaultSpec]:
        return [s for s in self.specs if s.name in RUNTIME_FAULTS]

    # ------------------------------------------------------------------
    # Trace faults
    # ------------------------------------------------------------------
    def apply_to_log(self, log: ActivityLog) -> Tuple[ActivityLog, List[str]]:
        """Return a corrupted copy of ``log`` (the original is left
        untouched) plus a description of each mutation."""
        records = list(log.records)
        notes: List[str] = []
        for spec in self.trace_specs:
            records = _apply_trace_fault(spec, records, notes)
        return ActivityLog(records=records), notes

    # ------------------------------------------------------------------
    # Runtime faults
    # ------------------------------------------------------------------
    def arm(self, driver: Any) -> List[str]:
        """Install the runtime faults on a playback driver.  Scheduled
        faults live on the device's stimulus queue, so a checkpoint
        restore drops them (one-shot semantics)."""
        notes: List[str] = []
        device = driver.emulator.device
        for spec in self.runtime_specs:
            if spec.name == "crash":
                at = int(spec.get("at", device.tick + 1000))
                detail = str(spec.get("detail", "scheduled-callback fault"))

                def _blow(at: int = at, detail: str = detail) -> None:
                    raise ReplayFault("crash", at, detail)

                device.schedule_call(at, _blow)
                notes.append(f"armed crash at wall tick {at}")
            elif spec.name == "clock-drift":
                at = int(spec.get("at", device.tick + 1000))
                seconds = int(spec.get("seconds", 30))
                rtc = device.rtc

                def _drift(rtc: Any = rtc, seconds: int = seconds) -> None:
                    rtc.base_seconds = (rtc.base_seconds + seconds) & 0xFFFFFFFF

                device.schedule_call(at, _drift)
                notes.append(f"armed clock-drift of {seconds}s at wall "
                             f"tick {at}")
            elif spec.name == "stall-reset":
                driver._fault_stall_reset = True
                notes.append("armed stall-reset (reset detection suppressed)")
        return notes

    def disarm(self, driver: Any) -> None:
        """Clear persistent runtime faults before a resync retry (the
        scheduled ones died with the restored stimulus queue)."""
        driver._fault_stall_reset = False


def _apply_trace_fault(spec: FaultSpec, records: List[LogRecord],
                       notes: List[str]) -> List[LogRecord]:
    rng = random.Random(int(spec.get("seed", 0)))
    name = spec.name
    if not records and name != "truncate":
        notes.append(f"{spec.describe()}: log empty, nothing to corrupt")
        return records

    if name == "bitflip":
        n = int(spec.get("n", 1))
        out = list(records)
        for _ in range(n):
            index = rng.randrange(len(out))
            blob = bytearray(out[index].encode())
            bit = rng.randrange(len(blob) * 8)
            blob[bit // 8] ^= 1 << (bit % 8)
            try:
                out[index] = LogRecord.decode(bytes(blob), strict=False)
                notes.append(f"bitflip: record {index} bit {bit} flipped")
            except Exception:
                # The flip landed in the type field and re-framed the
                # record below its new minimum size: unrecoverable blob.
                del out[index]
                notes.append(f"bitflip: record {index} destroyed (bit {bit})")
        return out

    if name == "truncate":
        if "at" in spec.params:
            at = int(spec.params["at"])
        else:
            frac = float(spec.get("frac", 0.5))
            at = int(len(records) * frac)
        notes.append(f"truncate: kept {at}/{len(records)} records")
        return records[:at]

    if name == "drop":
        n = min(int(spec.get("n", 1)), len(records))
        victims = sorted(rng.sample(range(len(records)), n), reverse=True)
        out = list(records)
        for index in victims:
            notes.append(f"drop: record {index} "
                         f"({_type_name(out[index])}) deleted")
            del out[index]
        return out

    if name == "dup":
        n = min(int(spec.get("n", 1)), len(records))
        victims = sorted(rng.sample(range(len(records)), n), reverse=True)
        out = list(records)
        for index in victims:
            out.insert(index + 1, out[index])
            notes.append(f"dup: record {index} duplicated")
        return out

    if name == "reorder":
        window = max(2, int(spec.get("window", 4)))
        if len(records) < window:
            notes.append("reorder: log shorter than the window, skipped")
            return records
        start = rng.randrange(len(records) - window + 1)
        out = list(records)
        burst = out[start:start + window]
        rng.shuffle(burst)
        out[start:start + window] = burst
        notes.append(f"reorder: records [{start}, {start + window}) shuffled")
        return out

    if name == "seed-underflow":
        n = int(spec.get("n", 1))
        out = list(records)
        removed = 0
        for index in range(len(out) - 1, -1, -1):
            if removed >= n:
                break
            if out[index].type == LogEventType.RANDOM:
                del out[index]
                removed += 1
        notes.append(f"seed-underflow: {removed} RANDOM record(s) removed")
        return out

    if name == "type-garbage":
        n = min(int(spec.get("n", 1)), len(records))
        victims = rng.sample(range(len(records)), n)
        out = list(records)
        for index in victims:
            rec = out[index]
            out[index] = LogRecord(GARBAGE_TYPE, rec.tick, rec.rtc, rec.data)
            notes.append(f"type-garbage: record {index} type -> "
                         f"{GARBAGE_TYPE:#06x}")
        return out

    raise FaultSpecError(f"unhandled trace fault {name!r}")  # pragma: no cover


def _type_name(record: LogRecord) -> str:
    try:
        return LogEventType(int(record.type)).name
    except ValueError:
        return f"{int(record.type):#06x}"
