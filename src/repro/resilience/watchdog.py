"""Live divergence watchdog for replays.

:func:`~repro.validation.log_correlation.correlate_logs` delivers the
§3.3 verdict *after* a replay has finished.  The watchdog does the same
per-type aligned comparison **online**: the resilient runner feeds it
the emulated machine's activity log at every checkpoint boundary, and
the watchdog classifies any fresh disagreement with the original log —

* ``TICK_SKEW`` — same payload, but delivered ≥ ``BURST_TICK_BOUND``
  ticks off schedule (benign bursts stay *under* the paper's 20-tick
  bound and are not divergences);
* ``PAYLOAD_MISMATCH`` — the aligned record carries different data;
* ``EXTRA_EVENT`` — the replay logged a record the original lacks;
* ``MISSING_EVENT`` — the original has records the finished replay
  never produced (only decidable at end of run).

Each :class:`Divergence` localizes the failure to a record index and
the original's tick; the runner's bisection narrows the wall tick
further using the checkpoint ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Union

from ..tracelog import ActivityLog
from ..tracelog.records import LogEventType, LogRecord
from ..validation.log_correlation import BURST_TICK_BOUND


def _record_to_json(record: Optional[LogRecord]) -> Optional[List[int]]:
    if record is None:
        return None
    return [int(record.type), record.tick, record.rtc, record.data]


def _record_from_json(data: Optional[List[int]]) -> Optional[LogRecord]:
    if data is None:
        return None
    raw_type, tick, rtc, payload = data
    rec_type: Union[LogEventType, int]
    try:
        rec_type = LogEventType(raw_type)
    except ValueError:
        rec_type = raw_type
    return LogRecord(rec_type, tick, rtc, payload)  # type: ignore[arg-type]


class DivergenceKind(Enum):
    TICK_SKEW = "tick-skew"
    PAYLOAD_MISMATCH = "payload-mismatch"
    MISSING_EVENT = "missing-event"
    EXTRA_EVENT = "extra-event"


@dataclass(frozen=True)
class Divergence:
    """One classified disagreement between the original and replayed
    activity logs."""

    kind: DivergenceKind
    event_type: int                 #: the stream (LogEventType value)
    index: int                      #: per-type aligned record index
    expected: Optional[LogRecord]   #: the original's record (None: extra)
    actual: Optional[LogRecord]     #: the replay's record (None: missing)
    tick: int                       #: best-known localization (guest tick)
    detail: str = ""

    def describe(self) -> str:
        try:
            name = LogEventType(self.event_type).name
        except ValueError:
            name = f"{self.event_type:#06x}"
        text = (f"{self.kind.value} in {name} stream at record {self.index}"
                f" (tick {self.tick})")
        if self.detail:
            text += f": {self.detail}"
        return text

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe snapshot; records travel as ``[type, tick, rtc,
        data]`` quadruples."""
        return {
            "kind": self.kind.value,
            "event_type": self.event_type,
            "index": self.index,
            "expected": _record_to_json(self.expected),
            "actual": _record_to_json(self.actual),
            "tick": self.tick,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Divergence":
        return cls(
            kind=DivergenceKind(data["kind"]),
            event_type=data["event_type"],
            index=data["index"],
            expected=_record_from_json(data["expected"]),
            actual=_record_from_json(data["actual"]),
            tick=data["tick"],
            detail=data.get("detail", ""),
        )


@dataclass
class DivergenceReport:
    """Everything the watchdog found, plus the runner's localization."""

    divergences: List[Divergence] = field(default_factory=list)
    #: Wall tick of the last checkpoint known good / first known bad —
    #: filled in by the runner's bisection over the checkpoint ring.
    last_good_tick: Optional[int] = None
    first_bad_tick: Optional[int] = None
    retries: int = 0
    #: Determinism-relevant findings from the semantic ROM audit
    #: (``analysis.static.audit``), attached by the resilient runner
    #: when a strict replay diverges: an unhacked nondeterminism source
    #: or self-modifying code is the most likely root cause, and the
    #: audit names it statically.
    static_hints: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.divergences)

    @property
    def first(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None

    @property
    def kinds(self) -> List[DivergenceKind]:
        return sorted({d.kind for d in self.divergences}, key=lambda k: k.value)

    def summary(self) -> str:
        if not self.divergences:
            return "no divergence"
        head = self.divergences[0]
        text = (f"replay diverged: {len(self.divergences)} divergence(s), "
                f"first: {head.describe()}")
        if self.last_good_tick is not None:
            text += f"; last good checkpoint at wall tick {self.last_good_tick}"
        if self.first_bad_tick is not None:
            text += f"; first divergent window ends at wall tick {self.first_bad_tick}"
        if self.retries:
            text += f"; after {self.retries} resync retr"
            text += "y" if self.retries == 1 else "ies"
        return text

    def to_json(self) -> Dict[str, Any]:
        return {
            "divergences": [d.to_json() for d in self.divergences],
            "last_good_tick": self.last_good_tick,
            "first_bad_tick": self.first_bad_tick,
            "retries": self.retries,
            "static_hints": list(self.static_hints),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "DivergenceReport":
        return cls(
            divergences=[Divergence.from_json(d) for d in data["divergences"]],
            last_good_tick=data["last_good_tick"],
            first_bad_tick=data["first_bad_tick"],
            retries=data.get("retries", 0),
            static_hints=list(data.get("static_hints", [])),
        )

    def format(self) -> str:
        lines = [self.summary()]
        for div in self.divergences:
            lines.append(f"  - {div.describe()}")
            if div.expected is not None:
                lines.append(f"      expected: tick={div.expected.tick} "
                             f"data={div.expected.data:#010x}")
            if div.actual is not None:
                lines.append(f"      actual  : tick={div.actual.tick} "
                             f"data={div.actual.data:#010x}")
        if self.static_hints:
            lines.append("  static audit hints (possible root causes):")
            for hint in self.static_hints:
                lines.append(f"    * {hint}")
        return "\n".join(lines)


def _streams(log: ActivityLog) -> Dict[int, List[LogRecord]]:
    out: Dict[int, List[LogRecord]] = {}
    for record in log:
        out.setdefault(int(record.type), []).append(record)
    return out


class DivergenceWatchdog:
    """Incremental original-vs-replayed log comparator.

    Feed it the replayed log periodically via :meth:`check`; it only
    examines records beyond its per-type cursors, so the cost per call
    is proportional to the *new* records, not the whole log.  Cursors
    advance past divergent pairs, so in ``degrade`` mode later records
    keep being checked after a mismatch is absorbed.
    """

    def __init__(self, original: ActivityLog,
                 burst_bound: int = BURST_TICK_BOUND):
        self.original = _streams(original)
        self.burst_bound = burst_bound
        self._cursor: Dict[int, int] = {etype: 0 for etype in self.original}
        self.report = DivergenceReport()

    def check(self, replayed: ActivityLog,
              final: bool = False) -> List[Divergence]:
        """Compare any newly-replayed records; returns the *fresh*
        divergences (also accumulated into :attr:`report`).  With
        ``final=True`` the replay is over, so original records beyond
        the replayed prefix become ``MISSING_EVENT``.
        """
        fresh: List[Divergence] = []
        replayed_streams = _streams(replayed)
        for etype in set(self.original) | set(replayed_streams):
            o_stream = self.original.get(etype, [])
            r_stream = replayed_streams.get(etype, [])
            pos = self._cursor.setdefault(etype, 0)
            while pos < len(r_stream):
                actual = r_stream[pos]
                if pos >= len(o_stream):
                    fresh.append(Divergence(
                        kind=DivergenceKind.EXTRA_EVENT, event_type=etype,
                        index=pos, expected=None, actual=actual,
                        tick=actual.tick,
                        detail="replay produced a record the original log "
                               "does not contain"))
                    pos += 1
                    continue
                expected = o_stream[pos]
                if expected.data != actual.data:
                    fresh.append(Divergence(
                        kind=DivergenceKind.PAYLOAD_MISMATCH, event_type=etype,
                        index=pos, expected=expected, actual=actual,
                        tick=expected.tick,
                        detail=f"data {actual.data:#010x} != expected "
                               f"{expected.data:#010x}"))
                elif abs(actual.tick - expected.tick) >= self.burst_bound:
                    fresh.append(Divergence(
                        kind=DivergenceKind.TICK_SKEW, event_type=etype,
                        index=pos, expected=expected, actual=actual,
                        tick=expected.tick,
                        detail=f"slipped {actual.tick - expected.tick} ticks "
                               f"(bound {self.burst_bound})"))
                pos += 1
            if final and pos < len(o_stream):
                missing = o_stream[pos]
                fresh.append(Divergence(
                    kind=DivergenceKind.MISSING_EVENT, event_type=etype,
                    index=pos, expected=missing, actual=None,
                    tick=missing.tick,
                    detail=f"{len(o_stream) - pos} original record(s) never "
                           f"replayed"))
                pos = len(o_stream)
            self._cursor[etype] = pos
        self.report.divergences.extend(fresh)
        return fresh

    def rewind(self) -> None:
        """Forget all progress (the runner restored an earlier
        checkpoint and will re-feed the log from scratch)."""
        self._cursor = {etype: 0 for etype in self.original}

    @property
    def diverged(self) -> bool:
        return bool(self.report)
