"""The resilient replay runner.

Wraps a :class:`~repro.emulator.playback.PlaybackDriver` run with the
resilience machinery:

* periodic **checkpoints** into a :class:`CheckpointManager` ring;
* the live **divergence watchdog**, fed the emulated machine's own
  activity log at every checkpoint boundary;
* a **policy** deciding what a detected divergence (or an injected
  runtime fault, or a reset timeout) does to the run:

  - ``strict``  — stop; localize the first divergent window by
    checkpoint bisection; raise :class:`DivergenceError` with the
    structured report;
  - ``resync``  — restore the latest checkpoint with jitter disabled
    and retry; repeated failures back off to progressively earlier
    checkpoints until ``retry_budget`` is exhausted, then escalate
    like ``strict``.  Transient faults (one-shot runtime injections,
    jitter-induced skew) recover; deterministic trace corruption
    cannot, and escalates with a localized report;
  - ``degrade`` — record every divergence, mark the run ``tainted``,
    and keep going; hard faults still resync (tainted) if a
    checkpoint exists.

* optional **trace salvage** and **fault injection** up front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..emulator.playback import (
    DEFAULT_RESET_TIMEOUT,
    GuestResetTimeout,
    JitterModel,
    PlaybackDriver,
    PlaybackResult,
)
from ..emulator.pose import Emulator
from ..tracelog import ActivityLog, read_activity_log
from .checkpoint import Checkpoint, CheckpointManager
from .errors import DivergenceError, ReplayFault
from .faults import FaultPlan
from .salvage import SalvageResult, salvage_log
from .watchdog import Divergence, DivergenceReport, DivergenceWatchdog

POLICIES = ("strict", "resync", "degrade")

#: Version of the :meth:`ResilientReplayResult.to_json` container.
REPLAY_JSON_FORMAT = "repro-resilient-replay"
REPLAY_JSON_VERSION = 1


class ReplayFormatError(ValueError):
    """A serialized :class:`ResilientReplayResult` is not one, or was
    written by an incompatible version of the container."""

#: Localization stops refining once the divergent window is this tight.
_LOCALIZE_GOAL = 8
#: Each refinement round splits the window this many ways.
_LOCALIZE_FAN = 16
_LOCALIZE_ROUNDS = 6


class _DivergenceDetected(Exception):
    """Internal control flow: the watchdog hook found fresh divergences
    at a checkpoint boundary."""

    def __init__(self, fresh: List[Divergence], tick: int):
        self.fresh = fresh
        self.tick = tick
        super().__init__(f"{len(fresh)} divergence(s) at wall tick {tick}")


class _StopLocalize(Exception):
    def __init__(self, tick: int):
        self.tick = tick


@dataclass
class ResilientReplayResult:
    """Outcome of a resilient replay."""

    result: PlaybackResult
    emulator: Optional[Emulator] = None
    profiler: object = None
    report: Optional[DivergenceReport] = None
    tainted: bool = False
    retries: int = 0
    checkpoints: Optional[CheckpointManager] = None
    salvage: Optional[SalvageResult] = None
    fault_notes: List[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """The run needed at least one resync retry but completed."""
        return self.retries > 0 and not self.tainted

    @property
    def clean(self) -> bool:
        return not self.tainted and self.retries == 0 and not (
            self.report and self.report.divergences)

    # -- serialization ----------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """A JSON-safe, versioned snapshot of the replay verdict.

        Live machinery (the emulator, the profiler, the checkpoint
        ring) is deliberately excluded: what crosses process or disk
        boundaries — the fleet journal, population aggregates — is the
        *verdict* of the run, not the run itself.  The round trip
        through :meth:`from_json` is stable:
        ``from_json(to_json()).to_json() == to_json()``.
        """
        res = self.result
        return {
            "_format": REPLAY_JSON_FORMAT,
            "_version": REPLAY_JSON_VERSION,
            "result": {
                "events_injected": res.events_injected,
                "keystate_lookups": res.keystate_lookups,
                "seeds_served": res.seeds_served,
                "seeds_missing": res.seeds_missing,
                "start_tick": res.start_tick,
                "end_tick": res.end_tick,
                "instructions": res.instructions,
                "delays_applied": list(res.delays_applied),
            },
            "report": self.report.to_json() if self.report is not None else None,
            "tainted": self.tainted,
            "retries": self.retries,
            "salvage": self.salvage.to_json() if self.salvage is not None else None,
            "fault_notes": list(self.fault_notes),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ResilientReplayResult":
        if not isinstance(data, dict) or data.get("_format") != REPLAY_JSON_FORMAT:
            raise ReplayFormatError(
                "not a serialized ResilientReplayResult "
                f"(_format={data.get('_format')!r})"
                if isinstance(data, dict) else
                f"not a serialized ResilientReplayResult ({type(data).__name__})")
        if data.get("_version") != REPLAY_JSON_VERSION:
            raise ReplayFormatError(
                f"unsupported ResilientReplayResult version "
                f"{data.get('_version')!r} (this build reads version "
                f"{REPLAY_JSON_VERSION})")
        try:
            raw = data["result"]
            result = PlaybackResult(
                events_injected=raw["events_injected"],
                keystate_lookups=raw["keystate_lookups"],
                seeds_served=raw["seeds_served"],
                seeds_missing=raw["seeds_missing"],
                start_tick=raw["start_tick"],
                end_tick=raw["end_tick"],
                instructions=raw["instructions"],
                delays_applied=list(raw["delays_applied"]),
            )
            report = (DivergenceReport.from_json(data["report"])
                      if data["report"] is not None else None)
            salvage = (SalvageResult.from_json(data["salvage"])
                       if data["salvage"] is not None else None)
            return cls(result=result, report=report,
                       tainted=data["tainted"], retries=data["retries"],
                       salvage=salvage,
                       fault_notes=list(data["fault_notes"]))
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, ReplayFormatError):
                raise
            raise ReplayFormatError(
                f"malformed ResilientReplayResult container: {exc}") from exc


def resilient_replay(
    state: Any,
    log: ActivityLog,
    apps: Sequence[Any] = (),
    *,
    profile: bool = True,
    trace_references: bool = True,
    jitter: Optional[JitterModel] = None,
    emulator_kwargs: Optional[dict] = None,
    reset_timeout: int = DEFAULT_RESET_TIMEOUT,
    checkpoint_every: int = 2000,
    checkpoint_dir: Union[str, Path, None] = None,
    keep_checkpoints: int = 4,
    on_divergence: str = "strict",
    retry_budget: int = 3,
    watch: bool = True,
    faults: Union[str, FaultPlan, None] = None,
    salvage: bool = False,
    idle_grace_ticks: int = 200,
    max_ticks: int = 100_000_000,
) -> ResilientReplayResult:
    """Replay ``log`` against ``state`` with checkpointing, the live
    watchdog, and the selected divergence policy.

    The watchdog compares the replayed machine's activity log against
    the *pristine* input log (after salvage, before fault injection),
    so injected trace corruption is detected as genuine divergence.
    """
    if on_divergence not in POLICIES:
        raise ValueError(f"on_divergence must be one of {POLICIES}, "
                         f"not {on_divergence!r}")
    plan = FaultPlan.parse(faults) if isinstance(faults, str) else faults

    salvage_result = None
    reference = log
    if salvage:
        salvage_result = salvage_log(log)
        reference = salvage_result.log

    replay_log = reference
    fault_notes: List[str] = []
    if plan is not None and plan.trace_specs:
        replay_log, fault_notes = plan.apply_to_log(reference)

    emulator = Emulator(apps=apps, **(emulator_kwargs or {}))
    emulator.load_state(state, restore_clock=jitter is None,
                        final_reset=False)
    profiler = (emulator.start_profiling(trace_references=trace_references)
                if profile else None)

    if watch:
        from ..hacks import installed_hack_traps

        if not installed_hack_traps(emulator.kernel):
            # Without the logging hacks the replayed machine produces no
            # activity log, and every comparison would be a false
            # MISSING_EVENT.  Replay still works; watching cannot.
            fault_notes.append(
                "watchdog disabled: no logging hacks installed in the "
                "imported state")
            watch = False

    manager = CheckpointManager(directory=checkpoint_dir,
                                keep=keep_checkpoints)
    watchdog = DivergenceWatchdog(reference) if watch else None
    outcome = ResilientReplayResult(result=PlaybackResult(),
                                    emulator=emulator, profiler=profiler,
                                    checkpoints=manager,
                                    salvage=salvage_result,
                                    fault_notes=fault_notes)

    def hook(checkpoint: Checkpoint) -> None:
        manager.add(checkpoint)
        if watchdog is None:
            return
        fresh = watchdog.check(read_activity_log(emulator.kernel))
        if fresh:
            if on_divergence == "degrade":
                outcome.tainted = True
            else:
                raise _DivergenceDetected(fresh, checkpoint.tick)

    driver = PlaybackDriver(emulator, replay_log, jitter=jitter,
                            reset_timeout=reset_timeout,
                            checkpoint_every=checkpoint_every,
                            checkpoint_hook=hook)
    if plan is not None:
        # Arm after the session-start boot: a wall-tick fault scheduled
        # before the boot would land inside it (the boot resets the
        # tick counter), before the first checkpoint even exists.
        driver.session_start_hook = (
            lambda: fault_notes.extend(plan.arm(driver)))

    resume_cp: Optional[Checkpoint] = None
    while True:
        try:
            if resume_cp is None:
                result = driver.run(idle_grace_ticks=idle_grace_ticks,
                                    max_ticks=max_ticks, reset=True)
            else:
                result = driver.resume_from(
                    resume_cp, disable_jitter=True, max_ticks=max_ticks)
            if watchdog is not None:
                fresh = watchdog.check(read_activity_log(emulator.kernel),
                                       final=True)
                if fresh:
                    if on_divergence == "degrade":
                        outcome.tainted = True
                    else:
                        raise _DivergenceDetected(fresh,
                                                  emulator.device.tick)
            break
        except (_DivergenceDetected, ReplayFault, GuestResetTimeout) as exc:
            resume_cp = _handle_failure(
                exc, outcome, manager, watchdog, driver, plan,
                on_divergence, retry_budget,
                reference=reference, replay_log=replay_log, apps=apps,
                profile=profile, trace_references=trace_references,
                emulator_kwargs=emulator_kwargs,
                reset_timeout=reset_timeout)

    outcome.result = result
    outcome.report = watchdog.report if watchdog is not None else None
    if outcome.report is not None:
        outcome.report.retries = outcome.retries
    return outcome


def _handle_failure(exc: BaseException, outcome: ReplayOutcome,
                    manager: CheckpointManager,
                    watchdog: Optional[DivergenceWatchdog],
                    driver: Any, plan: Optional[FaultPlan],
                    policy: str, retry_budget: List[int], *,
                    reference: ActivityLog, replay_log: ActivityLog,
                    apps: Sequence[Any], profile: bool,
                    trace_references: bool,
                    emulator_kwargs: Optional[dict],
                    reset_timeout: int) -> Checkpoint:
    """Apply the divergence policy to one failure; returns the
    checkpoint to resume from, or raises the terminal error."""
    if policy == "strict":
        raise _escalate(exc, outcome, manager, watchdog,
                        reference=reference, replay_log=replay_log,
                        apps=apps, profile=profile,
                        trace_references=trace_references,
                        emulator_kwargs=emulator_kwargs,
                        reset_timeout=reset_timeout)

    # resync (and degrade's hard-fault fallback): retry from a
    # checkpoint; repeated failures back off to earlier checkpoints.
    if outcome.retries >= retry_budget:
        raise _escalate(exc, outcome, manager, watchdog,
                        reference=reference, replay_log=replay_log,
                        apps=apps, profile=profile,
                        trace_references=trace_references,
                        emulator_kwargs=emulator_kwargs,
                        reset_timeout=reset_timeout)
    if isinstance(exc, GuestResetTimeout):
        # A timeout means wall time was burned waiting; every later
        # checkpoint embeds more of the wasted time, so the *oldest*
        # one gives the retry the best chance of re-aligning the next
        # epoch's schedule.  A second timeout can't do better (the ring
        # has nothing older) — escalate rather than loop.
        if outcome.retries > 0:
            raise _escalate(exc, outcome, manager, watchdog,
                            reference=reference, replay_log=replay_log,
                            apps=apps, profile=profile,
                            trace_references=trace_references,
                            emulator_kwargs=emulator_kwargs,
                            reset_timeout=reset_timeout)
        checkpoint = manager.earliest()
    else:
        checkpoint = (manager.latest() if outcome.retries == 0
                      else manager.discard_latest())
    if checkpoint is None:
        raise _escalate(exc, outcome, manager, watchdog,
                        reference=reference, replay_log=replay_log,
                        apps=apps, profile=profile,
                        trace_references=trace_references,
                        emulator_kwargs=emulator_kwargs,
                        reset_timeout=reset_timeout)
    outcome.retries += 1
    if policy == "degrade":
        outcome.tainted = True
    if plan is not None:
        plan.disarm(driver)
    if watchdog is not None:
        watchdog.rewind()
    return checkpoint


#: Memoized semantic-audit hints per application set — the ROM audit is
#: pure (same apps, same ROM, same findings), so one run per app set
#: serves every divergence report in the process.
_static_hint_cache: Dict[Tuple[str, ...], List[str]] = {}


def _static_hints(apps: Optional[Sequence[Any]]) -> List[str]:
    """Determinism-relevant findings from the semantic ROM audit,
    formatted for :attr:`DivergenceReport.static_hints`.  Best effort:
    any analysis failure yields no hints, never a masked divergence
    error."""
    key = tuple(sorted(getattr(a, "name", repr(a)) for a in (apps or ())))
    if key not in _static_hint_cache:
        try:
            from ..analysis.static.findings import Severity
            from ..analysis.static.tracelint import deep_findings

            report = deep_findings(list(apps) if apps else None)
            _static_hint_cache[key] = [
                f.format() for f in report.sorted()
                if f.severity >= Severity.WARNING]
        except Exception:       # pragma: no cover - defensive only
            _static_hint_cache[key] = []
    return _static_hint_cache[key]


def _escalate(exc: BaseException, outcome: ReplayOutcome,
              manager: CheckpointManager,
              watchdog: Optional[DivergenceWatchdog],
              **localize_kw: Any) -> BaseException:
    """Build the terminal, typed error for a failure the policy cannot
    (or may not) absorb."""
    if isinstance(exc, _DivergenceDetected):
        report = (watchdog.report if watchdog is not None
                  else DivergenceReport(divergences=list(exc.fresh)))
        report.retries = outcome.retries
        last_good, first_bad = _localize(manager, exc.tick, **localize_kw)
        report.last_good_tick = last_good
        report.first_bad_tick = first_bad
        report.static_hints = _static_hints(localize_kw.get("apps"))
        return DivergenceError(report)
    # ReplayFault / GuestResetTimeout are already typed; after a failed
    # resync they surface as-is (the caller sees retry context on the
    # outcome object it never got — so annotate the report instead).
    if watchdog is not None:
        watchdog.report.retries = outcome.retries
    return exc


# ----------------------------------------------------------------------
# Bisection localization
# ----------------------------------------------------------------------
def _localize(manager: CheckpointManager, bad_tick: int, *,
              reference: ActivityLog, replay_log: ActivityLog,
              apps: Sequence[Any], profile: bool,
              trace_references: bool,
              emulator_kwargs: Optional[dict],
              reset_timeout: int) -> Tuple[Optional[int], int]:
    """Narrow the first divergent window ``(last_good, first_bad]``.

    The coarse detection only says "the log had already diverged by
    checkpoint tick ``bad_tick``".  Replaying the window from the last
    good checkpoint with progressively finer checkpoint spacing — on a
    scratch emulator, with a scratch watchdog — shrinks the window by
    ``_LOCALIZE_FAN``× per round until it is at most ``_LOCALIZE_GOAL``
    ticks wide.  Deterministic by construction: the scratch run restores
    the captured machine (including jitter state), so the divergence
    reproduces at the same tick every round.
    """
    checkpoint = manager.before(bad_tick)
    if checkpoint is None:
        return None, bad_tick
    lo, hi = checkpoint.tick, bad_tick
    rounds = 0
    while hi - lo > _LOCALIZE_GOAL and rounds < _LOCALIZE_ROUNDS:
        rounds += 1
        fine = max(1, (hi - lo) // _LOCALIZE_FAN)
        scratch = Emulator(apps=apps, **(emulator_kwargs or {}))
        if profile:
            scratch.start_profiling(trace_references=trace_references)
        scratch_watchdog = DivergenceWatchdog(reference)
        last_scratch_cp = [checkpoint]

        def hook(cp: Checkpoint,
                 _wd: DivergenceWatchdog = scratch_watchdog,
                 _em: Emulator = scratch,
                 _keep: List[Checkpoint] = last_scratch_cp,
                 _hi: int = hi) -> None:
            fresh = _wd.check(read_activity_log(_em.kernel))
            if fresh:
                raise _StopLocalize(cp.tick)
            if cp.tick < _hi:
                _keep[0] = cp

        driver = PlaybackDriver(scratch, replay_log,
                                reset_timeout=reset_timeout,
                                checkpoint_every=fine,
                                checkpoint_hook=hook)
        try:
            driver.resume_from(checkpoint)
        except _StopLocalize as stop:
            hi = min(hi, stop.tick)
            checkpoint = last_scratch_cp[0]
            lo = checkpoint.tick
        except (ReplayFault, GuestResetTimeout):  # pragma: no cover
            break
        else:
            # The scratch run never re-diverged inside the window; the
            # bounds we have are the best this ring can do.
            break
    return lo, hi
