"""Exception types raised by the m68k core.

Guest-visible CPU exceptions (illegal instruction, address error, divide
by zero, ...) are normally *processed* by the CPU as 68000 exception
vectors rather than raised to the host.  The Python exceptions here are
for host-level errors: malformed programs, emulator misconfiguration,
and the CPU halting because no exception handler is installed.
"""

from __future__ import annotations


class M68kError(Exception):
    """Base class for all m68k core errors."""


class CpuHalted(M68kError):
    """The CPU entered a halted state it cannot leave.

    Raised when exception processing itself faults (double fault), which
    on a real 68000 asserts HALT and freezes the processor.
    """


class IllegalInstructionError(M68kError):
    """An opcode could not be decoded and no guest handler is installed."""

    def __init__(self, opcode: int, pc: int):
        super().__init__(f"illegal opcode {opcode:#06x} at pc={pc:#010x}")
        self.opcode = opcode
        self.pc = pc


class AddressError(M68kError):
    """A word or long access used an odd address.

    The MC68VZ328 (68EC000 core) faults on misaligned word/long accesses;
    surfacing these as host errors catches guest-code bugs early.
    """

    def __init__(self, address: int, size: int):
        super().__init__(f"misaligned size-{size} access at {address:#010x}")
        self.address = address
        self.size = size


class BusError(M68kError):
    """An access fell outside every mapped region."""

    def __init__(self, address: int):
        super().__init__(f"access to unmapped address {address:#010x}")
        self.address = address


class AssemblerError(M68kError):
    """The assembler rejected a source program."""

    def __init__(self, message: str, line: int | None = None):
        where = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{where}")
        self.line = line
