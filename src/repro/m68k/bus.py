"""Memory bus protocol and a simple flat-memory implementation.

The CPU core talks to the outside world exclusively through a ``Bus``.
A bus distinguishes *instruction fetches* (``fetch16``) from data reads
so that a profiling bus can classify references the way the paper's
modified POSE does (opcode fetches vs. data references, RAM vs. flash).

All values are big-endian, as on the 68000.
"""

from __future__ import annotations

from typing import Protocol

from .errors import AddressError


class Bus(Protocol):
    """Minimal interface the CPU requires of its memory system."""

    def read8(self, addr: int) -> int: ...

    def read16(self, addr: int) -> int: ...

    def read32(self, addr: int) -> int: ...

    def write8(self, addr: int, value: int) -> None: ...

    def write16(self, addr: int, value: int) -> None: ...

    def write32(self, addr: int, value: int) -> None: ...

    def fetch16(self, addr: int) -> int:
        """Read one instruction word.  Semantically a read16; kept
        separate so profiling buses can classify it as a fetch."""
        ...


def check_aligned(addr: int, size: int) -> None:
    """Raise :class:`AddressError` for misaligned word/long accesses."""
    if size != 1 and addr & 1:
        raise AddressError(addr, size)


class FlatMemory:
    """A flat big-endian byte-addressable memory.

    Used directly in unit tests and as the building block for the device
    memory map's RAM and flash regions.
    """

    def __init__(self, size: int, base: int = 0):
        self.base = base
        self.data = bytearray(size)

    def __len__(self) -> int:
        return len(self.data)

    # -- byte / word / long accessors -----------------------------------
    def read8(self, addr: int) -> int:
        return self.data[addr - self.base]

    def read16(self, addr: int) -> int:
        check_aligned(addr, 2)
        off = addr - self.base
        return (self.data[off] << 8) | self.data[off + 1]

    def read32(self, addr: int) -> int:
        check_aligned(addr, 4)
        off = addr - self.base
        d = self.data
        return (d[off] << 24) | (d[off + 1] << 16) | (d[off + 2] << 8) | d[off + 3]

    def write8(self, addr: int, value: int) -> None:
        self.data[addr - self.base] = value & 0xFF

    def write16(self, addr: int, value: int) -> None:
        check_aligned(addr, 2)
        off = addr - self.base
        self.data[off] = (value >> 8) & 0xFF
        self.data[off + 1] = value & 0xFF

    def write32(self, addr: int, value: int) -> None:
        check_aligned(addr, 4)
        off = addr - self.base
        d = self.data
        d[off] = (value >> 24) & 0xFF
        d[off + 1] = (value >> 16) & 0xFF
        d[off + 2] = (value >> 8) & 0xFF
        d[off + 3] = value & 0xFF

    def fetch16(self, addr: int) -> int:
        return self.read16(addr)

    # -- bulk helpers ----------------------------------------------------
    def load(self, addr: int, blob: bytes) -> None:
        """Copy ``blob`` into memory starting at ``addr``."""
        off = addr - self.base
        self.data[off:off + len(blob)] = blob

    def dump(self, addr: int, length: int) -> bytes:
        off = addr - self.base
        return bytes(self.data[off:off + length])
