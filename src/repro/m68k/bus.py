"""Memory bus protocol and a simple flat-memory implementation.

The CPU core talks to the outside world exclusively through a ``Bus``.
A bus distinguishes *instruction fetches* (``fetch16``) from data reads
so that a profiling bus can classify references the way the paper's
modified POSE does (opcode fetches vs. data references, RAM vs. flash).

All values are big-endian, as on the 68000.
"""

from __future__ import annotations

from typing import Optional, Protocol, Set

from .errors import AddressError


class Bus(Protocol):
    """Minimal interface the CPU requires of its memory system."""

    def read8(self, addr: int) -> int: ...

    def read16(self, addr: int) -> int: ...

    def read32(self, addr: int) -> int: ...

    def write8(self, addr: int, value: int) -> None: ...

    def write16(self, addr: int, value: int) -> None: ...

    def write32(self, addr: int, value: int) -> None: ...

    def fetch16(self, addr: int) -> int:
        """Read one instruction word.  Semantically a read16; kept
        separate so profiling buses can classify it as a fetch."""
        ...


def check_aligned(addr: int, size: int) -> None:
    """Raise :class:`AddressError` for misaligned word/long accesses."""
    if size != 1 and addr & 1:
        raise AddressError(addr, size)


class WriteWatch(Protocol):
    """Receives write notifications for watched 256-byte pages.

    Installed by code-caching replay cores: ``pages`` names the pages
    holding predecoded guest code, :meth:`hit` invalidates the blocks a
    write lands in, and :meth:`bulk` drops everything (bulk loads don't
    enumerate individual addresses).
    """

    pages: Set[int]

    def hit(self, addr: int) -> None: ...

    def bulk(self) -> None: ...


class FlatMemory:
    """A flat big-endian byte-addressable memory.

    Used directly in unit tests and as the building block for the device
    memory map's RAM and flash regions.  ``watch`` (normally None) is a
    :class:`WriteWatch` notified of writes into its watched pages —
    host-side stores (HotSync installs, hack code, checkpoint restores)
    go through these accessors too, so self-modifying-code detection
    cannot be bypassed from outside the guest bus.
    """

    def __init__(self, size: int, base: int = 0):
        self.base = base
        self.data = bytearray(size)
        self.watch: Optional[WriteWatch] = None

    def __len__(self) -> int:
        return len(self.data)

    # -- byte / word / long accessors -----------------------------------
    def read8(self, addr: int) -> int:
        return self.data[addr - self.base]

    def read16(self, addr: int) -> int:
        check_aligned(addr, 2)
        off = addr - self.base
        return (self.data[off] << 8) | self.data[off + 1]

    def read32(self, addr: int) -> int:
        check_aligned(addr, 4)
        off = addr - self.base
        d = self.data
        return (d[off] << 24) | (d[off + 1] << 16) | (d[off + 2] << 8) | d[off + 3]

    def write8(self, addr: int, value: int) -> None:
        w = self.watch
        if w is not None and (addr >> 8) in w.pages:
            w.hit(addr)
        self.data[addr - self.base] = value & 0xFF

    def write16(self, addr: int, value: int) -> None:
        w = self.watch
        if w is not None and (addr >> 8) in w.pages:
            w.hit(addr)
        check_aligned(addr, 2)
        off = addr - self.base
        self.data[off] = (value >> 8) & 0xFF
        self.data[off + 1] = value & 0xFF

    def write32(self, addr: int, value: int) -> None:
        w = self.watch
        if w is not None:
            # An aligned long can straddle a page boundary (addr ≡ 0xFE
            # mod 256), so both halves are checked.
            if (addr >> 8) in w.pages or ((addr + 2) >> 8) in w.pages:
                w.hit(addr)
                w.hit(addr + 2)
        check_aligned(addr, 4)
        off = addr - self.base
        d = self.data
        d[off] = (value >> 24) & 0xFF
        d[off + 1] = (value >> 16) & 0xFF
        d[off + 2] = (value >> 8) & 0xFF
        d[off + 3] = value & 0xFF

    def fetch16(self, addr: int) -> int:
        return self.read16(addr)

    # -- bulk helpers ----------------------------------------------------
    def load(self, addr: int, blob: bytes) -> None:
        """Copy ``blob`` into memory starting at ``addr``."""
        if self.watch is not None:
            self.watch.bulk()
        off = addr - self.base
        self.data[off:off + len(blob)] = blob

    def dump(self, addr: int, length: int) -> bytes:
        off = addr - self.base
        return bytes(self.data[off:off + length])
