"""From-scratch Motorola 68000 (DragonBall MC68VZ328) toolchain.

The Palm m515's processor core, an assembler for writing guest software
(ROM routines, hacks, applications), and a disassembler for debugging.
"""

from .bus import Bus, FlatMemory
from .cpu import CPU
from .errors import (
    AddressError,
    AssemblerError,
    BusError,
    CpuHalted,
    IllegalInstructionError,
    M68kError,
)

__all__ = [
    "Bus",
    "FlatMemory",
    "CPU",
    "AddressError",
    "AssemblerError",
    "BusError",
    "CpuHalted",
    "IllegalInstructionError",
    "M68kError",
    "Assembler",
    "assemble",
    "disassemble",
]


def __getattr__(name: str) -> object:
    # Lazy imports keep `import repro.m68k` light; the assembler pulls in
    # a sizeable parser table.
    if name in ("Assembler", "assemble"):
        from .asm import Assembler, assemble

        return {"Assembler": Assembler, "assemble": assemble}[name]
    if name == "disassemble":
        from .disasm import disassemble

        return disassemble
    raise AttributeError(name)
