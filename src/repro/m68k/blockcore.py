"""Replay execution cores: simple stepping and predecoded basic blocks.

The paper pays a per-instruction cost for forcing the real ROM trap
dispatcher (§2.4.2); this module amortizes the *host-side* share of
that cost the way Shade's trace-generating translation cache and
Embra's fast machine simulation do: straight-line instruction runs are
decoded **once** into flat lists of ``(pc, next_pc, fetch_token,
opcode, handler)`` entries keyed by entry pc, then executed in a tight
loop with no per-step 65536-entry table dispatch, no bus fetch for the
opcode word, and (when profiling) a single precomputed list append for
the fetch reference.

Two cores implement the same contract —
``run_until_cycles(limit)`` with the exact semantics of
:meth:`repro.m68k.cpu.CPU.step` iterated under the device scheduler's
cycle budget — and are selectable per device (``PalmDevice(core=...)``,
``palm-repro replay --core={fast,simple}``):

* :class:`SimpleCore` — the original per-instruction stepping loop.
* :class:`BlockCore` — the predecoded block cache.

Bit-exactness is the design constraint, not an afterthought.  Blocks
are *self-verifying*: before executing an entry the core checks that
``cpu.pc`` equals the entry's predecoded address, so a taken branch, an
exception, or even a mispredicted instruction length only ever breaks
out of the block (costing a rebuild) and can never execute the wrong
instruction.  Interrupt serviceability and the cycle budget are
re-checked before every instruction, exactly as the stepping loop does.

Invalidation: guest code lives in RAM (installed hacks, the overhead
thunk) as well as flash, so every RAM store — from the guest bus *or*
from host-side helpers (``HostAccess``) — is checked against a set of
watched 256-byte pages (:class:`CodeWatch`, installed as the
``FlatMemory.watch`` / ``MemoryMap.ram_watch`` hook); a hit marks every
block overlapping the page invalid, which the executor notices before
the next instruction of a running block.  Bulk loads (checkpoint
restore, flash re-image) drop the whole cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .cpu import CPU

_MASK32 = 0xFFFFFFFF

#: Invalidation granularity: 256-byte pages.
PAGE_SHIFT = 8

#: Longest straight-line run predecoded into one block.
MAX_BLOCK_INSNS = 64

# Lazily-resolved collaborators (imported on first use to keep this
# module importable from low-level code without dragging the emulator
# package in at import time).
_Profiler = None
_TRACE_CHUNK = 0
_decode_insn = None
_K_NORMAL = None


def _resolve_profiler():
    global _Profiler, _TRACE_CHUNK
    if _Profiler is None:
        from ..emulator.profiling import TRACE_CHUNK, Profiler
        _Profiler = Profiler
        _TRACE_CHUNK = TRACE_CHUNK
    return _Profiler


def _resolve_decoder():
    global _decode_insn, _K_NORMAL
    if _decode_insn is None:
        from ..analysis.static.decode import K_NORMAL, decode_insn
        _decode_insn = decode_insn
        _K_NORMAL = K_NORMAL
    return _decode_insn


class SimpleCore:
    """The original stepping loop (one ``CPU.step()`` per instruction)."""

    name = "simple"

    def __init__(self, cpu: CPU, mem=None):
        self.cpu = cpu

    def detach(self) -> None:
        pass

    def run_until_cycles(self, limit: int) -> None:
        cpu = self.cpu
        step = cpu.step
        while True:
            while cpu.cycles < limit and not cpu.stopped:
                step()
            if cpu.cycles >= limit:
                return
            # Stopped: a serviceable pending interrupt wakes the CPU
            # (interrupt service happens inside step()).
            level = cpu.pending_irq
            if level and (level > cpu.imask or level == 7):
                step()
                continue
            return


class CodeWatch:
    """The write watch a :class:`BlockCore` installs on guest memory.

    ``pages`` is consulted inline by the RAM write fast paths; `hit`
    and `bulk` route into the core's invalidation.
    """

    __slots__ = ("pages", "_core")

    def __init__(self, core: "BlockCore"):
        self.pages: Set[int] = set()
        self._core = core

    def hit(self, addr: int) -> None:
        self._core.invalidate_page(addr >> PAGE_SHIFT)

    def bulk(self) -> None:
        self._core.flush()


class _Block:
    """One predecoded straight-line run."""

    __slots__ = ("entries", "valid", "pages", "region", "op_counts")

    def __init__(self, entries: List[tuple], pages: Tuple[int, ...],
                 region: int):
        self.entries = entries
        self.valid = True
        self.pages = pages
        self.region = region
        # The block's opcode histogram, pre-aggregated: a full block
        # run (the overwhelmingly common case) bumps one counter per
        # *distinct* opcode instead of one per instruction.  The
        # histogram is order-insensitive, so batching is unobservable.
        agg: Dict[int, int] = {}
        for entry in entries:
            op = entry[3]
            agg[op] = agg.get(op, 0) + 1
        self.op_counts = tuple(agg.items())


class BlockCore:
    """Predecoded basic-block interpreter (the ``fast`` replay core)."""

    name = "fast"

    def __init__(self, cpu: CPU, mem):
        self.cpu = cpu
        self.mem = mem
        self.blocks: Dict[int, _Block] = {}
        self._page_blocks: Dict[int, List[_Block]] = {}
        self.watch = CodeWatch(self)
        mem.ram.watch = self.watch
        mem.flash.watch = self.watch  # bulk re-images drop the cache
        mem.ram_watch = self.watch
        #: Counters for the bench harness / debugging.
        self.blocks_built = 0
        self.invalidations = 0

    def detach(self) -> None:
        """Uninstall the watch (switching cores on a live device)."""
        self.flush()
        mem = self.mem
        if mem.ram.watch is self.watch:
            mem.ram.watch = None
        if mem.flash.watch is self.watch:
            mem.flash.watch = None
        if getattr(mem, "ram_watch", None) is self.watch:
            mem.ram_watch = None

    # -- invalidation ---------------------------------------------------
    def flush(self) -> None:
        """Drop every predecoded block (bulk memory replacement)."""
        for blocks in self._page_blocks.values():
            for block in blocks:
                block.valid = False
        for block in self.blocks.values():
            block.valid = False
        self.blocks.clear()
        self._page_blocks.clear()
        self.watch.pages.clear()

    def invalidate_page(self, page: int) -> None:
        """A write landed in a watched page: kill its blocks."""
        blocks = self._page_blocks.pop(page, None)
        self.watch.pages.discard(page)
        if blocks:
            self.invalidations += 1
            for block in blocks:
                block.valid = False

    # -- block construction ---------------------------------------------
    def _build(self, pc: int) -> Optional[_Block]:
        """Predecode the straight-line run entered at ``pc``; None when
        the pc is not block-eligible (odd, outside RAM/flash, or its
        first word has no handler) — the caller single-steps instead."""
        if pc & 1:
            return None
        mem = self.mem
        if pc < mem.ram_limit:
            backing, region, limit = mem.ram, 0, mem.ram_limit
        elif mem.flash.base <= pc < mem.flash_limit:
            backing, region, limit = mem.flash, 1, mem.flash_limit
        else:
            return None
        decode = _resolve_decoder()
        data = backing.data
        base = backing.base
        size = len(data)
        table = self.cpu.dispatch_table

        def fetch(a: int) -> int:
            off = a - base
            if 0 <= off and off + 1 < size:
                return (data[off] << 8) | data[off + 1]
            return 0

        entries: List[tuple] = []
        addr = pc
        end = pc
        while len(entries) < MAX_BLOCK_INSNS and addr + 1 < limit:
            off = addr - base
            op = (data[off] << 8) | data[off + 1]
            handler = table[op]
            if handler is None:
                # A-line / F-line / illegal: the stepping fallback owns
                # the host-handler and exception plumbing.
                break
            insn = decode(fetch, addr, want_text=False)
            if insn.end > limit:
                break
            # The fetch reference the stepping loop would emit for this
            # opcode word, packed for the profiler's trace buffer.
            token = addr | (region << 36)
            entries.append((addr, (addr + 2) & _MASK32, token, op, handler))
            end = insn.end
            if insn.kind != _K_NORMAL:
                # Branches, calls, returns, stop, trap #n: terminal —
                # control continues at a pc only execution knows.
                break
            addr = insn.end
        if not entries:
            return None

        pages = tuple(range(pc >> PAGE_SHIFT, ((end - 1) >> PAGE_SHIFT) + 1))
        block = _Block(entries, pages, region)
        self.blocks[pc] = block
        if region == 0:
            # Only RAM pages need write watching; flash is
            # write-protected during replay and bulk loads flush.
            for page in pages:
                self._page_blocks.setdefault(page, []).append(block)
                self.watch.pages.add(page)
        self.blocks_built += 1
        return block

    # -- execution ------------------------------------------------------
    def run_until_cycles(self, limit: int) -> None:
        """Exact-semantics equivalent of the stepping loop: per
        instruction, the pending-interrupt gate, the stopped gate and
        the cycle budget are evaluated in ``CPU.step()`` order."""
        cpu = self.cpu
        mem = self.mem
        step = cpu.step
        blocks = self.blocks

        # Per-run fast-path selection (hooks and tracer only change
        # between scheduler runs, never inside one).
        tracer = mem.tracer
        fast_append = None     # profiler trace append for fetch tokens
        emit = None            # generic tracer.reference fallback
        profiler = None
        if tracer is not None:
            P = _resolve_profiler()
            if (type(tracer) is P and tracer.trace_references
                    and not tracer.online_caches):
                profiler = tracer
                fast_append = tracer._pending.append
            else:
                emit = tracer.reference
        hook = cpu.opcode_hook
        opcounts = None
        if (hook is not None and tracer is not None
                and type(tracer) is _resolve_profiler()
                and getattr(hook, "__self__", None) is tracer
                and getattr(hook, "__func__", None)
                is _resolve_profiler().opcode):
            # The standard histogram hook, inlined: count the opcode
            # here and batch the instruction totals per block run.
            opcounts = tracer.opcode_counts
            hook = None

        while True:
            if cpu.cycles >= limit:
                return
            irq = cpu.pending_irq
            if irq and (irq > cpu.imask or irq == 7):
                step()          # services the interrupt, step-identically
                continue
            if cpu.stopped:
                return
            block = blocks.get(cpu.pc)
            if block is None or not block.valid:
                block = self._build(cpu.pc)
                if block is None:
                    step()      # not block-eligible: A/F-line, MMIO, ...
                    continue
            executed = 0
            try:
                if fast_append is not None and opcounts is not None:
                    # The replay-profiling hot loop: one list append per
                    # fetch; opcode counts are batched in the finally.
                    for pc, nxt, token, op, handler in block.entries:
                        if cpu.cycles >= limit or cpu.pc != pc \
                                or not block.valid:
                            break
                        irq = cpu.pending_irq
                        if irq and (irq > cpu.imask or irq == 7):
                            break
                        fast_append(token)
                        cpu.pc = nxt
                        cpu.cycles += 4
                        executed += 1
                        handler(cpu)
                else:
                    region = block.region
                    for pc, nxt, token, op, handler in block.entries:
                        if cpu.cycles >= limit or cpu.pc != pc \
                                or not block.valid:
                            break
                        irq = cpu.pending_irq
                        if irq and (irq > cpu.imask or irq == 7):
                            break
                        if fast_append is not None:
                            fast_append(token)
                        elif emit is not None:
                            emit(pc, 0, region)
                        cpu.pc = nxt
                        cpu.cycles += 4
                        executed += 1
                        if hook is not None:
                            hook(op)
                        handler(cpu)
            finally:
                # Batched bookkeeping survives guest faults raised by a
                # handler mid-block (the faulting instruction counts,
                # exactly as in step()).
                if executed:
                    cpu.instructions += executed
                    if opcounts is not None:
                        tracer.instructions += executed
                        entries = block.entries
                        if executed == len(entries):
                            for op, n in block.op_counts:
                                opcounts[op] += n
                        else:
                            for i in range(executed):
                                opcounts[entries[i][3]] += 1
                if profiler is not None \
                        and len(profiler._pending) >= _TRACE_CHUNK:
                    profiler._flush_trace()
