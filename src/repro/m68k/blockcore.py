"""Replay execution cores: simple stepping and predecoded superblocks.

The paper pays a per-instruction cost for forcing the real ROM trap
dispatcher (§2.4.2); this module amortizes the *host-side* share of
that cost the way Shade's trace-generating translation cache and
Embra's fast machine simulation do: instruction runs are decoded
**once** into flat lists of ``(pc, next_pc, fetch_token, opcode,
handler)`` entries keyed by entry pc, then executed in a tight loop
with no per-step 65536-entry table dispatch and no bus fetch for the
opcode word.

Beyond the straight-line blocks of the first fast core, runs are now
chained into **superblocks**: decoding follows unconditional branches
(``bra``/``jmp`` with a static target) into their target and falls
through conditional branches, so one block covers whole loop bodies
and if/else joins.  Hot superblocks are additionally compiled into
**fused bodies** (see :mod:`repro.m68k.fuse`): one generated Python
function per block that inlines operand address arithmetic and the
RAM/flash access arms, folds dead flag computations, batches the
per-instruction cycle/reference/histogram updates into per-block
constants, and — when the PR-4 dataflow audit proved an access's
region — drops the region dispatch entirely (``load_facts``).

Two cores implement the same contract —
``run_until_cycles(limit)`` with the exact semantics of
:meth:`repro.m68k.cpu.CPU.step` iterated under the device scheduler's
cycle budget — and are selectable per device (``PalmDevice(core=...)``,
``palm-repro replay --core={fast,simple}``):

* :class:`SimpleCore` — the original per-instruction stepping loop.
* :class:`BlockCore` — the predecoded superblock cache.

Bit-exactness is the design constraint, not an afterthought.  Blocks
are *self-verifying*: before executing an entry the interpreted loop
checks that ``cpu.pc`` equals the entry's predecoded address, so a
taken branch, an exception, or even a mispredicted instruction length
only ever breaks out of the block (costing a rebuild) and can never
execute the wrong instruction.  Fused bodies eliminate those per-insn
checks *structurally*: control only reaches instruction ``k+1`` when
instruction ``k`` statically falls through to it, every escape path
(fault, taken branch, cycle budget, invalidation, non-RAM/flash
access) synchronizes ``pc``/``cycles``/the executed-instruction count
before leaving, and anything the generated code cannot prove safe
falls back to the original specialized handler mid-block.

Invalidation: guest code lives in RAM (installed hacks, the overhead
thunk) as well as flash, so every RAM store — from the guest bus *or*
from host-side helpers (``HostAccess``) — is checked against a set of
watched 256-byte pages (:class:`CodeWatch`, installed as the
``FlatMemory.watch`` / ``MemoryMap.ram_watch`` hook); a hit marks every
block overlapping the page invalid, which the executor (interpreted or
fused: the generated write arms perform the same page check) notices
before the next instruction of a running block.  A superblock watches
every page any of its chained instructions touches, so a write into
the *middle* of a chain unlinks the whole superblock.  Bulk loads
(checkpoint restore, flash re-image) drop the whole cache.

A-line/F-line words terminate decoding (they have no handler), but a
block records the terminating word as its *tail*: after the block's
instructions complete, the core dispatches the trap directly —
through a per-trap-number fast table
(:meth:`repro.palmos.syscalls.SysCalls.aline_fast_table`) when the
kernel runs without a sanitizer — instead of falling back to a full
``step()`` and the generic A-line lookup.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .cpu import CPU

_MASK32 = 0xFFFFFFFF

#: Invalidation granularity: 256-byte pages.
PAGE_SHIFT = 8

#: Longest run predecoded into one superblock.
MAX_BLOCK_INSNS = 64

#: A block is compiled into a fused body once it has been dispatched
#: this many times (cold blocks stay interpreted; compilation costs a
#: few milliseconds each).
FUSE_THRESHOLD = 8

# Lazily-resolved collaborators (imported on first use to keep this
# module importable from low-level code without dragging the emulator
# package in at import time).
_Profiler: Any = None
_TRACE_CHUNK = 0
_decode_insn: Any = None
_K_NORMAL: Any = None
_K_BRANCH: Any = None
_K_CONDBRANCH: Any = None
_build_fused: Any = None


def _resolve_profiler() -> Any:
    global _Profiler, _TRACE_CHUNK
    if _Profiler is None:
        from ..emulator.profiling import TRACE_CHUNK, Profiler
        _Profiler = Profiler
        _TRACE_CHUNK = TRACE_CHUNK
    return _Profiler


def _resolve_decoder() -> Any:
    global _decode_insn, _K_NORMAL, _K_BRANCH, _K_CONDBRANCH
    if _decode_insn is None:
        from ..analysis.static.decode import (K_BRANCH, K_CONDBRANCH,
                                              K_NORMAL, decode_insn)
        _decode_insn = decode_insn
        _K_NORMAL = K_NORMAL
        _K_BRANCH = K_BRANCH
        _K_CONDBRANCH = K_CONDBRANCH
    return _decode_insn


def _resolve_fuser() -> Any:
    global _build_fused
    if _build_fused is None:
        from .fuse import build_fused
        _build_fused = build_fused
    return _build_fused


class SimpleCore:
    """The original stepping loop (one ``CPU.step()`` per instruction)."""

    name = "simple"

    def __init__(self, cpu: CPU, mem: Any = None):
        self.cpu = cpu

    def detach(self) -> None:
        pass

    def run_until_cycles(self, limit: int) -> None:
        cpu = self.cpu
        step = cpu.step
        while True:
            while cpu.cycles < limit and not cpu.stopped:
                step()
            if cpu.cycles >= limit:
                return
            # Stopped: a serviceable pending interrupt wakes the CPU
            # (interrupt service happens inside step()).
            level = cpu.pending_irq
            if level and (level > cpu.imask or level == 7):
                step()
                continue
            return


class CodeWatch:
    """The write watch a :class:`BlockCore` installs on guest memory.

    ``pages`` is consulted inline by the RAM write fast paths (both the
    bus arms and the generated fused write arms); `hit` and `bulk`
    route into the core's invalidation.
    """

    __slots__ = ("pages", "_core")

    def __init__(self, core: "BlockCore"):
        self.pages: Set[int] = set()
        self._core = core

    def hit(self, addr: int) -> None:
        self._core.invalidate_page(addr >> PAGE_SHIFT)

    def bulk(self) -> None:
        self._core.flush()


class _Block:
    """One predecoded superblock."""

    __slots__ = ("pc", "entries", "valid", "pages", "region", "op_counts",
                 "tail", "tok_prefix", "tok_total", "runs",
                 "insns_executed", "fetch_refs", "fused", "fuse_epoch",
                 "prov")

    def __init__(self, pc: int, entries: List[tuple],
                 pages: Tuple[int, ...], region: int,
                 tail: Optional[Tuple[int, int, int, int]],
                 tok_prefix: Tuple[int, ...]):
        self.pc = pc
        self.entries = entries
        self.valid = True
        self.pages = pages
        self.region = region
        #: Terminating A-line/F-line word: (pc, opcode, fetch_token,
        #: opcode group), dispatched inline after the entries complete.
        self.tail = tail
        #: ``tok_prefix[k]`` = fetch references emitted by the first
        #: ``k`` instructions (opcode + extension words); used for the
        #: ``--hot`` per-block reference accounting.
        self.tok_prefix = tok_prefix
        self.tok_total = tok_prefix[-1] if tok_prefix else 0
        # Hotness / observability counters.
        self.runs = 0
        self.insns_executed = 0
        self.fetch_refs = 0
        #: Generated fused body: None until built, False when the block
        #: cannot be fused (no entries), else ``f(cpu, limit, ex)``.
        self.fused: Any = None
        self.fuse_epoch = -1
        #: :class:`repro.m68k.fuse.FuseProvenance` once fused (entry
        #: pc, insn count, elision list, generated-source hash, ...).
        self.prov: Any = None
        # The block's opcode histogram, pre-aggregated: a full block
        # run (the overwhelmingly common case) bumps one counter per
        # *distinct* opcode instead of one per instruction.  The
        # histogram is order-insensitive, so batching is unobservable.
        agg: Dict[int, int] = {}
        for entry in entries:
            op = entry[3]
            agg[op] = agg.get(op, 0) + 1
        self.op_counts = tuple(agg.items())


class BlockCore:
    """Predecoded superblock interpreter (the ``fast`` replay core)."""

    name = "fast"

    def __init__(self, cpu: CPU, mem: Any):
        self.cpu = cpu
        self.mem = mem
        self.blocks: Dict[int, _Block] = {}
        self._page_blocks: Dict[int, List[_Block]] = {}
        self.watch = CodeWatch(self)
        mem.ram.watch = self.watch
        mem.flash.watch = self.watch  # bulk re-images drop the cache
        mem.ram_watch = self.watch
        #: Counters for the bench harness / debugging.
        self.blocks_built = 0
        self.invalidations = 0
        self.fused_built = 0
        #: Dispatch count before a block is compiled to a fused body.
        self.fuse_threshold = FUSE_THRESHOLD
        #: Debug hook: called with the block right after a fused body
        #: is built (``replay --validate-codegen`` installs the
        #: translation validator here; see repro.analysis.transval).
        self.fuse_validator: Optional[Callable[[Any], None]] = None
        #: Dataflow region facts: pc -> (read_region, write_region),
        #: each ``None`` when unproven (see ``load_facts``).
        self.facts: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        #: Counters of dead blocks, folded in on invalidation so the
        #: ``--hot`` report survives block churn:
        #: pc -> [runs, insns_executed, fetch_refs, invalidations].
        self.pc_stats: Dict[int, List[int]] = {}
        # Fused bodies close over the profiler's pending-trace list;
        # when the tracer changes between runs the epoch advances and
        # stale bodies are lazily recompiled.
        self._fuse_tracer: Any = None
        self._fuse_epoch = 0
        self._ex: List[int] = [0]
        # Per-run A-line fast-dispatch table (see _resolve_trap_table).
        self._trap_table_for: Any = None
        self._trap_table: Optional[List[Any]] = None

    def detach(self) -> None:
        """Uninstall the watch (switching cores on a live device)."""
        self.flush()
        mem = self.mem
        if mem.ram.watch is self.watch:
            mem.ram.watch = None
        if mem.flash.watch is self.watch:
            mem.flash.watch = None
        if getattr(mem, "ram_watch", None) is self.watch:
            mem.ram_watch = None

    def load_facts(
        self, facts: Dict[int, Tuple[Optional[int], Optional[int]]],
    ) -> None:
        """Install dataflow region facts (from
        :meth:`repro.analysis.static.audit.AuditResult.region_facts`).

        A fact ``pc -> (read_region, write_region)`` lets the fused
        code generator emit the proven region's access arm with no
        region dispatch and no fallback.  Facts are only consulted for
        flash-resident code (immutable during replay); RAM-resident
        code keeps the conservative dynamic arms.  Existing fused
        bodies are invalidated so they pick the facts up on recompile.
        """
        self.facts = dict(facts)
        self._fuse_epoch += 1

    # -- invalidation ---------------------------------------------------
    def flush(self) -> None:
        """Drop every predecoded block (bulk memory replacement)."""
        for blocks in self._page_blocks.values():
            for block in blocks:
                block.valid = False
        for block in self.blocks.values():
            block.valid = False
            self._fold_stats(block, 0)
        self.blocks.clear()
        self._page_blocks.clear()
        self.watch.pages.clear()

    def invalidate_page(self, page: int) -> None:
        """A write landed in a watched page: kill its blocks."""
        blocks = self._page_blocks.pop(page, None)
        self.watch.pages.discard(page)
        if blocks:
            self.invalidations += 1
            for block in blocks:
                if block.valid:
                    block.valid = False
                    self._fold_stats(block, 1)
                    self.blocks.pop(block.pc, None)

    def _fold_stats(self, block: _Block, invalidated: int) -> None:
        if not (block.runs or invalidated):
            return
        st = self.pc_stats.get(block.pc)
        if st is None:
            st = self.pc_stats[block.pc] = [0, 0, 0, 0]
        st[0] += block.runs
        st[1] += block.insns_executed
        st[2] += block.fetch_refs
        st[3] += invalidated
        block.runs = block.insns_executed = block.fetch_refs = 0

    # -- observability --------------------------------------------------
    def hot_blocks(self, n: int = 10) -> List[Dict[str, Any]]:
        """The ``n`` hottest superblocks by fetch references, merging
        live blocks with the folded counters of invalidated ones.
        Fused blocks carry their provenance identity (insn count,
        elision count, generated-source hash) so the ``--hot`` report
        and the translation validator name blocks the same way."""
        agg: Dict[int, List[int]] = {
            pc: list(st) for pc, st in self.pc_stats.items()}
        for pc, block in self.blocks.items():
            st = agg.setdefault(pc, [0, 0, 0, 0])
            st[0] += block.runs
            st[1] += block.insns_executed
            st[2] += block.fetch_refs
        rows = sorted(agg.items(), key=lambda kv: (-kv[1][2], kv[0]))[:n]
        out: List[Dict[str, Any]] = []
        for pc, st in rows:
            info: Dict[str, Any] = {
                "pc": pc, "runs": st[0], "insns": st[1],
                "fetch_refs": st[2], "invalidations": st[3]}
            live = self.blocks.get(pc)
            prov = live.prov if live is not None else None
            if prov is not None:
                info["fused_insns"] = prov.insn_count
                info["elisions"] = len(prov.elisions)
                info["source_hash"] = prov.source_hash[:12]
                if prov.loop:
                    info["loop"] = 1
            out.append(info)
        return out

    # -- block construction ---------------------------------------------
    def _build(self, pc: int) -> Optional[_Block]:
        """Predecode the superblock entered at ``pc``; None when the pc
        is not block-eligible (odd, outside RAM/flash, or its first
        word is neither decodable nor an A/F-line trap) — the caller
        single-steps instead."""
        if pc & 1:
            return None
        mem = self.mem
        if pc < mem.ram_limit:
            backing, region, limit = mem.ram, 0, mem.ram_limit
        elif mem.flash.base <= pc < mem.flash_limit:
            backing, region, limit = mem.flash, 1, mem.flash_limit
        else:
            return None
        decode = _resolve_decoder()
        data = backing.data
        base = backing.base
        size = len(data)
        table = self.cpu.dispatch_table

        def fetch(a: int) -> int:
            off = a - base
            if 0 <= off and off + 1 < size:
                return (data[off] << 8) | data[off + 1]
            return 0

        entries: List[tuple] = []
        spans: List[Tuple[int, int]] = []
        seen: Set[int] = set()
        tail: Optional[Tuple[int, int, int, int]] = None
        addr = pc
        while len(entries) < MAX_BLOCK_INSNS:
            if addr in seen or addr < base or addr + 1 >= limit:
                break
            off = addr - base
            op = (data[off] << 8) | data[off + 1]
            handler = table[op]
            if handler is None:
                group = op >> 12
                if group in (0xA, 0xF):
                    # A-line / F-line: record as the block's tail and
                    # dispatch it inline after the entries complete.
                    tail = (addr, op, addr | (region << 36), group)
                # Genuine illegal words keep the stepping fallback,
                # which owns the exception plumbing.
                break
            insn = decode(fetch, addr, want_text=False)
            if insn.end > limit:
                break
            # The fetch reference the stepping loop would emit for this
            # opcode word, packed for the profiler's trace buffer.
            token = addr | (region << 36)
            entries.append((addr, (addr + 2) & _MASK32, token, op, handler))
            seen.add(addr)
            spans.append((addr, insn.end))
            kind = insn.kind
            if kind == _K_NORMAL:
                addr = insn.end
            elif kind == _K_BRANCH and insn.target is not None \
                    and not insn.indirect and not insn.target & 1:
                # Chain through the unconditional branch when the
                # target stays in the same backing region.
                addr = insn.target
            elif kind == _K_CONDBRANCH:
                if insn.target == pc:
                    # Backedge to the block entry: end the block here so
                    # the whole loop body fuses into a while-loop.
                    break
                # Otherwise chain the fallthrough; a taken branch exits
                # the block.
                addr = insn.end
            else:
                # Calls, returns, stop, trap #n: terminal — control
                # continues at a pc only execution knows.
                break
        if not entries and tail is None:
            return None

        pages: Set[int] = set()
        for start, stop in spans:
            pages.update(range(start >> PAGE_SHIFT,
                               ((stop - 1) >> PAGE_SHIFT) + 1))
        if tail is not None:
            pages.add(tail[0] >> PAGE_SHIFT)
            pages.add((tail[0] + 1) >> PAGE_SHIFT)
        prefix = [0]
        for start, stop in spans:
            prefix.append(prefix[-1] + ((stop - start) >> 1))
        block = _Block(pc, entries, tuple(sorted(pages)), region, tail,
                       tuple(prefix))
        self.blocks[pc] = block
        if region == 0:
            # Only RAM pages need write watching; flash is
            # write-protected during replay and bulk loads flush.
            for page in block.pages:
                self._page_blocks.setdefault(page, []).append(block)
                self.watch.pages.add(page)
        self.blocks_built += 1
        return block

    # -- trap fast path --------------------------------------------------
    def _resolve_trap_table(self) -> Optional[List[Any]]:
        """Per-run A-line dispatch table.  When the installed A-line
        handler is a Palm OS kernel running *without* a sanitizer, the
        per-trap-number table from ``SysCalls.aline_fast_table()``
        preserves its semantics exactly while skipping the generic
        lookup; any other configuration (sanitizer brackets, custom
        handlers) keeps the handler call.  The cache key includes the
        kernel's sanitizer so attaching one mid-session (the handler
        object itself never changes) drops the fast table — its
        closures would bypass the kernel_enter/kernel_exit brackets."""
        handler = self.cpu.aline_handler
        owner = getattr(handler, "__self__", None)
        sanitizer = getattr(owner, "sanitizer", "absent")
        key = (handler, sanitizer)
        if key == self._trap_table_for:
            return self._trap_table
        table: Optional[List[Any]] = None
        syscalls = getattr(owner, "syscalls", None)
        if (syscalls is not None
                and sanitizer is None
                and getattr(handler, "__func__", None)
                is getattr(type(owner), "_on_aline", None)):
            fast = getattr(syscalls, "aline_fast_table", None)
            if fast is not None:
                table = fast()
        self._trap_table_for = key
        self._trap_table = table
        return table

    # -- execution ------------------------------------------------------
    def run_until_cycles(self, limit: int) -> None:
        """Exact-semantics equivalent of the stepping loop: per
        instruction, the pending-interrupt gate, the stopped gate and
        the cycle budget are evaluated in ``CPU.step()`` order."""
        cpu = self.cpu
        mem = self.mem
        step = cpu.step
        blocks = self.blocks

        # Per-run fast-path selection (hooks and tracer only change
        # between scheduler runs, never inside one).
        tracer = mem.tracer
        fast_append = None     # profiler trace append for fetch tokens
        emit = None            # generic tracer.reference fallback
        profiler = None
        if tracer is not None:
            P = _resolve_profiler()
            if (type(tracer) is P and tracer.trace_references
                    and not tracer.online_caches):
                profiler = tracer
                fast_append = tracer._pending.append
            else:
                emit = tracer.reference
        hook = cpu.opcode_hook
        opcounts = None
        if (hook is not None and tracer is not None
                and type(tracer) is _resolve_profiler()
                and getattr(hook, "__self__", None) is tracer
                and getattr(hook, "__func__", None)
                is _resolve_profiler().opcode):
            # The standard histogram hook, inlined: count the opcode
            # here and batch the instruction totals per block run.
            opcounts = tracer.opcode_counts
            hook = None
        # Fused bodies bake the profiler's trace list and the batched
        # histogram contract in; they are only dispatched under the
        # exact configuration they were generated for.
        fuse_ok = (fast_append is not None and opcounts is not None
                   and mem.san is None
                   and not tracer.track_reference_pcs)
        if fuse_ok and self._fuse_tracer is not tracer:
            self._fuse_tracer = tracer
            self._fuse_epoch += 1
        fuse_epoch = self._fuse_epoch
        trap_table = self._resolve_trap_table()
        ex = self._ex

        while True:
            if cpu.cycles >= limit:
                return
            irq = cpu.pending_irq
            if irq and (irq > cpu.imask or irq == 7):
                step()          # services the interrupt, step-identically
                continue
            if cpu.stopped:
                return
            block = blocks.get(cpu.pc)
            if block is None or not block.valid:
                block = self._build(cpu.pc)
                if block is None:
                    step()      # not block-eligible: illegal word, MMIO
                    continue
            entries = block.entries
            block.runs += 1
            executed = 0
            fused = None
            if fuse_ok and entries:
                fused = block.fused
                if fused is not None and fused is not False \
                        and block.fuse_epoch != fuse_epoch:
                    fused = block.fused = None
                if fused is None and block.runs >= self.fuse_threshold:
                    fused = block.fused = _resolve_fuser()(self, block)
                    block.fuse_epoch = fuse_epoch
                    if fused is not False:
                        self.fused_built += 1
                        if self.fuse_validator is not None:
                            self.fuse_validator(block)
            if fused is not None and fused is not False:
                ex[0] = 0
                try:
                    fused(cpu, limit, ex)
                finally:
                    executed = ex[0]
                    if executed:
                        cpu.instructions += executed
                        tracer.instructions += executed
                        ne = len(entries)
                        if executed == ne:
                            for op, cnt in block.op_counts:
                                opcounts[op] += cnt
                            refs = block.tok_total
                        elif executed > ne:
                            # A fused loop body ran q full iterations
                            # plus a prefix of r entries.
                            q, r = divmod(executed, ne)
                            for op, cnt in block.op_counts:
                                opcounts[op] += cnt * q
                            for i in range(r):
                                opcounts[entries[i][3]] += 1
                            refs = q * block.tok_total + block.tok_prefix[r]
                        else:
                            for i in range(executed):
                                opcounts[entries[i][3]] += 1
                            refs = block.tok_prefix[executed]
                        block.insns_executed += executed
                        block.fetch_refs += refs
                    if profiler is not None \
                            and len(profiler._pending) >= _TRACE_CHUNK:
                        profiler._flush_trace()
            else:
                try:
                    if fast_append is not None and opcounts is not None:
                        # The replay-profiling hot loop: one list append
                        # per fetch; opcode counts batched in the finally.
                        for pc, nxt, token, op, handler in entries:
                            if cpu.cycles >= limit or cpu.pc != pc \
                                    or not block.valid:
                                break
                            irq = cpu.pending_irq
                            if irq and (irq > cpu.imask or irq == 7):
                                break
                            fast_append(token)
                            cpu.pc = nxt
                            cpu.cycles += 4
                            executed += 1
                            handler(cpu)
                    else:
                        region = block.region
                        for pc, nxt, token, op, handler in entries:
                            if cpu.cycles >= limit or cpu.pc != pc \
                                    or not block.valid:
                                break
                            irq = cpu.pending_irq
                            if irq and (irq > cpu.imask or irq == 7):
                                break
                            if fast_append is not None:
                                fast_append(token)
                            elif emit is not None:
                                emit(pc, 0, region)
                            cpu.pc = nxt
                            cpu.cycles += 4
                            executed += 1
                            if hook is not None:
                                hook(op)
                            handler(cpu)
                finally:
                    # Batched bookkeeping survives guest faults raised by
                    # a handler mid-block (the faulting instruction
                    # counts, exactly as in step()).
                    if executed:
                        cpu.instructions += executed
                        block.insns_executed += executed
                        block.fetch_refs += block.tok_prefix[executed]
                        if opcounts is not None:
                            tracer.instructions += executed
                            if executed == len(entries):
                                for op, cnt in block.op_counts:
                                    opcounts[op] += cnt
                            else:
                                for i in range(executed):
                                    opcounts[entries[i][3]] += 1
                    if profiler is not None \
                            and len(profiler._pending) >= _TRACE_CHUNK:
                        profiler._flush_trace()

            # -- trap tail: the A/F-line word the block decoded up to.
            tail = block.tail
            if tail is not None and block.valid and cpu.pc == tail[0] \
                    and cpu.cycles < limit and not cpu.stopped:
                irq = cpu.pending_irq
                if irq and (irq > cpu.imask or irq == 7):
                    continue
                tpc, top, ttoken, tgroup = tail
                # Replicates CPU.step() for a handler-less word: fetch
                # reference, pc/cycle/instruction bookkeeping, opcode
                # hook, then the A/F-line dispatch of CPU._illegal().
                if fast_append is not None:
                    fast_append(ttoken)
                elif emit is not None:
                    emit(tpc, 0, block.region)
                cpu.pc = (tpc + 2) & _MASK32
                cpu.cycles += 4
                cpu.instructions += 1
                if opcounts is not None:
                    opcounts[top] += 1
                    tracer.instructions += 1
                elif hook is not None:
                    hook(top)
                if tgroup == 0xA:
                    if trap_table is not None:
                        fn = trap_table[top & 0x1FF]
                        handled = fn is not None and fn(cpu, top)
                    else:
                        ah = cpu.aline_handler
                        handled = ah is not None and ah(cpu, top)
                    if not handled:
                        cpu.pc = tpc
                        cpu.exception(10)       # VEC_LINE_A
                else:
                    fh = cpu.fline_handler
                    if not (fh is not None and fh(cpu, top)):
                        cpu.pc = tpc
                        cpu.exception(11)       # VEC_LINE_F
