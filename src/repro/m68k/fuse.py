"""Fused whole-block code generation for the superblock replay core.

:func:`build_fused` compiles one hot superblock (see
:mod:`repro.m68k.blockcore`) into a single Python function
``f(cpu, limit, ex)`` that executes the whole instruction run with:

* operand address arithmetic and the RAM/flash bus arms inlined
  (token append, write-watch page check, alignment check, byte
  loads/stores) instead of per-insn closure + bus-method calls;
* profiler fetch tokens batched: statically-known tokens accumulate in
  a codegen-time list and are flushed as one ``append``/``extend``
  ahead of the next dynamic trace append or bus call;
* flag computations deferred: each instruction records its flag
  updates as pending statements over per-insn temporaries, and a flag
  is only materialized when something reads it (a condition code, a
  handler call, an escape path) — consecutive overwrites fold away;
* cycle accounting batched into per-segment constants against a local
  ``cyc`` snapshot, with a per-instruction budget gate preserving the
  stepping loop's exact scheduling boundaries;
* PR-4 dataflow region facts (``BlockCore.load_facts``) eliding the
  region dispatch for proven RAM/flash accesses.

Bit-exactness contract: every exit path — budget gate, taken branch,
alignment fault, watch hit, non-RAM/flash access, handler call —
synchronizes ``cpu.pc``, ``cpu.cycles``, the executed-instruction
count ``ex[0]``, all pending flags and all pending trace tokens before
control can observe them.  Anything the generator cannot prove it
reproduces exactly raises :class:`_Unfusable` and the block stays on
the interpreted tuple path (``build_fused`` returns ``False``).

Loops whose backedge targets the block entry compile into a ``while``
body (the backedge folds cycles/instruction counts and re-enters
without leaving the function); the caller reconstructs per-iteration
histogram/reference totals from ``ex[0]``.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..analysis.static.decode import Insn, K_BRANCH, K_CONDBRANCH, decode_insn
from .errors import AddressError
from .instructions import COND_EXPRS, M32, MASKS, MSBS, _shift, _specialize

__all__ = ["FuseProvenance", "build_fused"]

SIZE_BY_BITS = {0: 1, 1: 2, 2: 4}

#: Per-size register-merge inverse masks.
_INV = {1: 0xFFFFFF00, 2: 0xFFFF0000, 4: 0}

#: Flags read by each condition code (indexed like ``COND_EXPRS``).
_CC_READS: Tuple[Tuple[str, ...], ...] = (
    (), (),
    ("c", "z"), ("c", "z"),
    ("c",), ("c",),
    ("z",), ("z",),
    ("v",), ("v",),
    ("n",), ("n",),
    ("n", "v"), ("n", "v"),
    ("n", "z", "v"), ("n", "z", "v"),
)

_FLAG_ORDER = ("x", "n", "z", "v", "c")

_BR = {1: "br1", 2: "br2", 4: "br4"}
_BW = {1: "bw1", 2: "bw2", 4: "bw4"}

#: Packed profiler token kind bits (``(kind | region << 4) << 32``).
_KB_READ = {0: 0x1 << 32, 1: 0x11 << 32}
_KB_WRITE = 0x2 << 32

Addr = Union[int, str]

_ST2 = struct.Struct(">H")
_ST4 = struct.Struct(">I")


class _Unfusable(Exception):
    """The block contains something the generator cannot prove it
    reproduces bit-exactly; it stays interpreted forever."""


class FuseProvenance:
    """Stable identity + audit record for one fused superblock.

    Attached to the block as ``block.prov`` by :meth:`_Fuser.build`:
    the translation validator (:mod:`repro.analysis.transval`)
    re-specializes ``source`` into an instrumented harness and proves
    it equivalent to the per-insn reference semantics, and the elision
    auditor re-derives the proof obligation behind every entry in
    ``elisions``.  ``source_hash`` gives validator findings and the
    ``--hot`` report a shared block identity that survives re-fusing.
    """

    __slots__ = ("pc", "region", "loop", "bulk", "insn_count", "elisions",
                 "source", "source_hash", "entries", "spans", "code",
                 "ram_base", "ram_limit", "flash_base", "flash_limit",
                 "pages", "env")

    def __init__(self, pc: int, region: int, loop: bool, bulk: bool,
                 elisions: List[Tuple[int, str, int]], source: str,
                 entries: List[tuple], spans: List[Tuple[int, int]],
                 code: List[Tuple[int, bytes]],
                 ram_base: int, ram_limit: int,
                 flash_base: int, flash_limit: int,
                 pages: Tuple[int, ...], env: Dict[str, Any]) -> None:
        self.pc = pc
        self.region = region
        self.loop = loop
        self.bulk = bulk
        self.insn_count = len(entries)
        #: ``(insn addr, "read"|"write", proven region)`` for every
        #: region-dispatch elision the generator performed on the
        #: strength of a PR-4 dataflow fact.
        self.elisions = elisions
        self.source = source
        self.source_hash = hashlib.sha256(source.encode()).hexdigest()
        self.entries = entries
        self.spans = spans
        #: ``(start, bytes)`` image of every instruction span — the
        #: validator loads these into its harness memory so the real
        #: handlers fetch the same extension words the generator baked
        #: into the source.
        self.code = code
        self.ram_base = ram_base
        self.ram_limit = ram_limit
        self.flash_base = flash_base
        self.flash_limit = flash_limit
        self.pages = pages
        #: The generation environment (held for the validator, which
        #: reuses the read-only bulk constants ``tdyn``/``tval``).
        self.env = env


def build_fused(core: Any, block: Any) -> Any:
    """Compile ``block`` to a fused body, or ``False`` when unfusable."""
    try:
        return _Fuser(core, block).build()
    except _Unfusable:
        return False


def _sxb(expr: str) -> str:
    return f"((({expr}) ^ 0x80) - 0x80)"


def _sxw(expr: str) -> str:
    return f"((({expr}) ^ 0x8000) - 0x8000)"


def _sext(value: int, size: int) -> int:
    """Codegen-time sext32 (unsigned 32-bit result)."""
    mask = MASKS[size]
    value &= mask
    if value & MSBS[size]:
        value |= ~mask & M32
    return value


def _lit(v: Addr) -> str:
    return f"{v:#x}" if isinstance(v, int) else v


class _Fuser:
    """Single-use code generator for one superblock."""

    def __init__(self, core: Any, block: Any) -> None:
        self.core = core
        self.block = block
        self.mem = core.mem
        self.region: int = block.region
        self.entries: List[tuple] = block.entries
        self.N = len(self.entries)
        tracer = core._fuse_tracer
        self.env: Dict[str, Any] = {
            "append": tracer._pending.append,
            "extend": tracer._pending.extend,
            "wpages": core.watch.pages,
            "whit": core.watch.hit,
            "block": block,
            "AddressError": AddressError,
            "_shift": _shift,
            "br1": self.mem.read8, "br2": self.mem.read16,
            "br4": self.mem.read32,
            "bw1": self.mem.write8, "bw2": self.mem.write16,
            "bw4": self.mem.write32,
            "ram": self.mem._ram_data,
            "flash": self.mem._flash_data,
            "pk2": _ST2.pack_into, "pk4": _ST4.pack_into,
            "up2": _ST2.unpack_from, "up4": _ST4.unpack_from,
        }
        self.ram_base: int = self.mem._ram_base
        self.ram_limit: int = self.mem.ram_limit
        self.flash_base: int = self.mem._flash_base
        self.flash_limit: int = self.mem.flash_limit
        #: Region facts are consulted only for flash-resident code
        #: (immutable during replay; SMC in RAM could invalidate them).
        self.facts: Dict[int, Tuple[Optional[int], Optional[int]]] = (
            core.facts if block.region == 1 else {})
        self.lines: List[str] = []
        #: Region-dispatch elisions performed on dataflow facts,
        #: recorded for the provenance/audit trail.
        self.elisions: List[Tuple[int, str, int]] = []
        self.level = 1
        #: Statically-known trace tokens awaiting one batched append.
        self.pend: List[int] = []
        #: Pending (deferred) flag-update statements, flag -> stmt.
        #: Statements reference only literals and per-insn temps, so
        #: they stay valid at any later emission site.
        self.flags: Dict[str, str] = {}
        #: Cycles accumulated since ``cyc`` last matched ``cpu.cycles``.
        self.S = 0
        self.loop = False
        self.k = 0            # current instruction index
        self.addr = 0         # current instruction address
        self.exts = 0         # extension words consumed so far
        self.sl_init = False  # ``sl = 0`` emitted for this insn
        self.sl_used = False  # any arm may set ``sl = 1``
        self._fetch: Callable[[int], int] = lambda a: 0
        #: Vectorized fill-loop prelude (see :meth:`_detect_bulk`).
        self.bulk_info: Optional[Dict[str, Any]] = None
        self.bulk_at = 0      # prelude insertion index into ``lines``
        self.bulk_S = 0       # cycles of one full loop iteration

    # -- low-level emission ---------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append("    " * self.level + line)

    def push(self) -> None:
        self.level += 1

    def pop(self) -> None:
        self.level -= 1

    def _exe(self, count: int) -> str:
        """Expression for ``ex[0]`` after ``count`` insns this pass."""
        if not self.loop:
            return str(count)
        return f"n + {count}" if count else "n"

    def _tok(self, at: int) -> int:
        return (at & M32) | (self.region << 36)

    def _pend_tok(self, token: int) -> None:
        self.pend.append(token)

    def _pend_copies(self) -> None:
        if len(self.pend) == 1:
            self.emit(f"append({self.pend[0]:#x})")
        elif self.pend:
            toks = ", ".join(f"{t:#x}" for t in self.pend)
            self.emit(f"extend(({toks}))")

    def _flush_pend(self) -> None:
        self._pend_copies()
        self.pend.clear()

    def _flag_copies(self, which: Optional[Tuple[str, ...]] = None) -> None:
        for fl in _FLAG_ORDER:
            stmt = self.flags.get(fl)
            if stmt and (which is None or fl in which):
                self.emit(stmt)

    def _materialize(self, which: Optional[Tuple[str, ...]] = None) -> None:
        self._flag_copies(which)
        if which is None:
            self.flags.clear()
        else:
            for fl in which:
                self.flags.pop(fl, None)

    def _sync_state(self, pc_val: Addr, exe: str) -> None:
        self.emit(f"cpu.pc = {_lit(pc_val)}")
        self.emit(f"cpu.cycles = cyc + {self.S}" if self.S
                  else "cpu.cycles = cyc")
        self.emit(f"ex[0] = {exe}")

    def _escape_return(self, pc_val: Addr, exe: str,
                       ret: str = "return") -> None:
        """Full early-exit block: commit pending flags/tokens (as
        copies — other runtime paths flush the same state later),
        synchronize, leave."""
        self._flag_copies()
        self._pend_copies()
        self._sync_state(pc_val, exe)
        self.emit(ret)

    def _cur_pc(self) -> int:
        return (self.addr + 2 + 2 * self.exts) & M32

    def _gate(self, k: int) -> None:
        """Per-insn cycle-budget gate (the stepping loop re-checks the
        budget before every instruction; scheduling boundaries must
        land on the same instruction)."""
        if k == 0 and not self.loop:
            return  # the dispatcher checked the budget this same cycle
        self.emit(f"if cyc + {self.S} >= limit:" if self.S
                  else "if cyc >= limit:")
        self.push()
        self._escape_return(self.entries[k][0], self._exe(k))
        self.pop()

    def _ensure_sl(self) -> None:
        if not self.sl_init:
            self.emit("sl = 0")
            self.sl_init = True

    # -- extension words -------------------------------------------------
    def _ext16(self) -> int:
        at = self._cur_pc()
        self._pend_tok(self._tok(at))
        self.S += 4
        self.exts += 1
        return self._fetch(at)

    def _ext32(self) -> int:
        hi = self._ext16()
        lo = self._ext16()
        return (hi << 16) | lo

    # -- effective addresses ---------------------------------------------
    def _addr_of(self, k: int, mode: int, reg: int, size: int,
                 hint: str) -> Optional[Addr]:
        """Emit the address computation for modes 2-5/7.0-7.2; returns
        the address as a var name or codegen-time int, or ``None`` for
        the indexed modes (which stay on the handler path)."""
        if mode == 2:
            self.emit(f"{hint} = a[{reg}]")
            return hint
        if mode == 3:
            inc = 2 if (size == 1 and reg == 7) else size
            self.emit(f"{hint} = a[{reg}]")
            self.emit(f"a[{reg}] = ({hint} + {inc}) & {M32:#x}")
            return hint
        if mode == 4:
            dec = 2 if (size == 1 and reg == 7) else size
            self.emit(f"{hint} = (a[{reg}] - {dec}) & {M32:#x}")
            self.emit(f"a[{reg}] = {hint}")
            return hint
        if mode == 5:
            disp = _sext(self._ext16(), 2)
            sd = disp - 0x100000000 if disp & 0x80000000 else disp
            self.emit(f"{hint} = (a[{reg}] + {sd}) & {M32:#x}")
            return hint
        if mode == 7 and reg == 0:
            return _sext(self._ext16(), 2)
        if mode == 7 and reg == 1:
            return self._ext32()
        if mode == 7 and reg == 2:
            base = self._cur_pc()
            return (base + _sext(self._ext16(), 2)) & M32
        return None

    # -- load/store byte lanes -------------------------------------------
    def _off(self, off: Addr, i: int) -> str:
        if isinstance(off, int):
            return f"{off + i:#x}"
        return f"{off} + {i}" if i else off

    def _emit_load(self, v: str, arr: str, off: Addr, size: int) -> None:
        # struct unpack/pack beat explicit byte lanes ~2.5x on the
        # multi-byte sizes; bytes stay direct indexing.
        if size == 1:
            self.emit(f"{v} = {arr}[{self._off(off, 0)}]")
        elif size == 2:
            self.emit(f"{v} = up2({arr}, {_lit(off)})[0]")
        else:
            self.emit(f"{v} = up4({arr}, {_lit(off)})[0]")

    def _emit_store(self, arr: str, off: Addr, size: int, val: str) -> None:
        if size == 1:
            self.emit(f"{arr}[{self._off(off, 0)}] = {val}")
        elif size == 2:
            self.emit(f"pk2({arr}, {_lit(off)}, {val})")
        else:
            self.emit(f"pk4({arr}, {_lit(off)}, {val})")

    # -- memory access arms ----------------------------------------------
    # Each arm reproduces the corresponding ``MemoryMap`` inline path
    # exactly: trace token(s), then (writes) the watch-page check, then
    # the alignment check, then the byte lanes.  Anything outside the
    # narrow in-bounds window falls back to the real bus method with
    # the CPU state fully synchronized first — straddles, hardware
    # registers, flash writes and bus errors then behave identically
    # to the interpreted path, which exits the block after the insn.
    def _align_escape(self, q: Addr, size: int, P: int, exe: str) -> None:
        self.emit(f"if {_lit(q)} & 1:")
        self.push()
        self._flag_copies()
        self._sync_state(P, exe)
        self.emit(f"raise AddressError({_lit(q)}, {size})")
        self.pop()

    def _fallback_read(self, q: Addr, size: int, v: str, P: int,
                       exe: str) -> None:
        self._flag_copies()
        self._sync_state(P, exe)
        self.emit(f"{v} = {_BR[size]}({_lit(q)})")
        self.emit("sl = 1")
        self.sl_used = True

    def _fallback_write(self, q: Addr, size: int, val: str, P: int,
                        exe: str) -> None:
        self._flag_copies()
        self._sync_state(P, exe)
        self.emit(f"{_BW[size]}({_lit(q)}, {val})")
        self.emit("sl = 1")
        self.sl_used = True

    def _emit_toks(self, pref: List[int], dyn: List[str]) -> None:
        """One batched trace append covering the queued static tokens
        plus this access's runtime token expressions."""
        items = [f"{t:#x}" for t in pref] + dyn
        if len(items) == 1:
            self.emit(f"append({items[0]})")
        elif items:
            self.emit(f"extend(({', '.join(items)}))")

    def _ram_read_body(self, k: int, q: Addr, size: int, v: str, P: int,
                      exe: str, static: bool,
                      pref: List[int] = []) -> None:
        kb = _KB_READ[0]
        if static:
            assert isinstance(q, int)
            self._pend_tok(q | kb)
            if size == 4:
                self._pend_tok((q + 2) | kb)
        else:
            dyn = [f"{_lit(q)} | {kb:#x}"]
            if size == 4:
                dyn.append(f"({_lit(q)} + 2) | {kb:#x}")
            self._emit_toks(pref, dyn)
            if size > 1:
                self._align_escape(q, size, P, exe)
        off: Addr = (q - self.ram_base if isinstance(q, int)
                     else (q if self.ram_base == 0
                           else f"{q} - {self.ram_base:#x}"))
        self._emit_load(v, "ram", off, size)

    def _flash_read_body(self, k: int, q: Addr, size: int, v: str, P: int,
                         exe: str, static: bool,
                         pref: List[int] = []) -> None:
        kb = _KB_READ[1]
        if static:
            assert isinstance(q, int)
            self._pend_tok(q | kb)
            if size == 4:
                self._pend_tok((q + 2) | kb)
            self._emit_load(v, "flash", q - self.flash_base, size)
            return
        dyn = [f"{_lit(q)} | {kb:#x}"]
        if size == 4:
            dyn.append(f"({_lit(q)} + 2) | {kb:#x}")
        self._emit_toks(pref, dyn)
        if size > 1:
            self._align_escape(q, size, P, exe)
        self.emit(f"o{k} = {_lit(q)} - {self.flash_base:#x}")
        self._emit_load(v, "flash", f"o{k}", size)

    def _arm_read(self, k: int, q: Addr, size: int, v: str,
                  fact: Optional[int]) -> None:
        self.S += 8 if size == 4 else 4
        P = self._cur_pc()
        exe = self._exe(k + 1)
        if isinstance(q, int):
            if size > 1 and q & 1:
                raise _Unfusable      # static misalignment: stay interpreted
            if q + size <= self.ram_limit:
                self._ram_read_body(k, q, size, v, P, exe, static=True)
                return
            if self.flash_base <= q and q + size <= self.flash_limit:
                self._flash_read_body(k, q, size, v, P, exe, static=True)
                return
            self._ensure_sl()
            self._flush_pend()
            self._fallback_read(q, size, v, P, exe)
            return
        self._ensure_sl()
        pref = self.pend[:]
        self.pend.clear()
        if fact is not None:
            self.elisions.append((self.addr, "read", fact))
        if fact == 0:
            self._ram_read_body(k, q, size, v, P, exe, static=False,
                                pref=pref)
            return
        if fact == 1:
            self._flash_read_body(k, q, size, v, P, exe, static=False,
                                  pref=pref)
            return
        if fact is not None:
            self._emit_toks(pref, [])
            self._fallback_read(q, size, v, P, exe)
            return
        self.emit(f"if {q} <= {self.ram_limit - size:#x}:")
        self.push()
        self._ram_read_body(k, q, size, v, P, exe, static=False, pref=pref)
        self.pop()
        self.emit(f"elif {self.flash_base:#x} <= {q}"
                  f" <= {self.flash_limit - size:#x}:")
        self.push()
        self._flash_read_body(k, q, size, v, P, exe, static=False, pref=pref)
        self.pop()
        self.emit("else:")
        self.push()
        self._emit_toks(pref, [])
        self._fallback_read(q, size, v, P, exe)
        self.pop()

    def _ram_write_body(self, k: int, q: Addr, size: int, val: str, P: int,
                        exe: str, static: bool,
                        pref: List[int] = []) -> None:
        kb = _KB_WRITE
        if static:
            assert isinstance(q, int)
            self._pend_tok(q | kb)
            if size == 4:
                self._pend_tok((q + 2) | kb)
        else:
            dyn = [f"{_lit(q)} | {kb:#x}"]
            if size == 4:
                dyn.append(f"({_lit(q)} + 2) | {kb:#x}")
            self._emit_toks(pref, dyn)
        # Write-watch page check (code invalidation): hits exit the
        # block after this instruction completes.
        if isinstance(q, int):
            p1, p2 = q >> 8, (q + size - 1) >> 8
            if size == 4 and p2 != p1:
                self.emit(f"if {p1:#x} in wpages or {p2:#x} in wpages:")
            else:
                self.emit(f"if {p1:#x} in wpages:")
        elif size == 4:
            self.emit(f"if ({q} >> 8) in wpages"
                      f" or (({q} + 2) >> 8) in wpages:")
        else:
            self.emit(f"if ({q} >> 8) in wpages:")
        self.push()
        self.emit(f"whit({_lit(q)})")
        if size == 4:
            self.emit(f"whit({_lit(q)} + 2)")
        self.emit("sl = 1")
        self.pop()
        self.sl_used = True
        if size > 1 and not static:
            self._align_escape(q, size, P, exe)
        off: Addr = (q - self.ram_base if isinstance(q, int)
                     else (q if self.ram_base == 0
                           else f"{q} - {self.ram_base:#x}"))
        self._emit_store("ram", off, size, val)

    def _arm_write(self, k: int, q: Addr, size: int, val: str,
                   fact: Optional[int]) -> None:
        self.S += 8 if size == 4 else 4
        P = self._cur_pc()
        exe = self._exe(k + 1)
        self._ensure_sl()
        if isinstance(q, int):
            if size > 1 and q & 1:
                raise _Unfusable
            if q + size <= self.ram_limit:
                self._ram_write_body(k, q, size, val, P, exe, static=True)
                return
            self._flush_pend()
            self._fallback_write(q, size, val, P, exe)
            return
        pref = self.pend[:]
        self.pend.clear()
        if fact is not None:
            self.elisions.append((self.addr, "write", fact))
        if fact == 0:
            self._ram_write_body(k, q, size, val, P, exe, static=False,
                                 pref=pref)
            return
        if fact is not None:
            self._emit_toks(pref, [])
            self._fallback_write(q, size, val, P, exe)
            return
        self.emit(f"if {q} <= {self.ram_limit - size:#x}:")
        self.push()
        self._ram_write_body(k, q, size, val, P, exe, static=False, pref=pref)
        self.pop()
        self.emit("else:")
        self.push()
        self._emit_toks(pref, [])
        self._fallback_write(q, size, val, P, exe)
        self.pop()

    # -- pending flag recipes --------------------------------------------
    def _set_flags_logic(self, rv: Addr, size: int) -> None:
        msb = MSBS[size]
        if isinstance(rv, int):
            self.flags["n"] = f"cpu.n = {1 if rv & msb else 0}"
            self.flags["z"] = f"cpu.z = {1 if rv == 0 else 0}"
        else:
            self.flags["n"] = f"cpu.n = 1 if {rv} & {msb:#x} else 0"
            self.flags["z"] = f"cpu.z = 1 if {rv} == 0 else 0"
        self.flags["v"] = "cpu.v = 0"
        self.flags["c"] = "cpu.c = 0"

    def _set_flags_add(self, u: str, s: Addr, t: str, r: str,
                       size: int) -> None:
        mask, msb = MASKS[size], MSBS[size]
        self.flags["c"] = f"cpu.c = 1 if {t} > {mask:#x} else 0"
        self.flags["x"] = f"cpu.x = 1 if {t} > {mask:#x} else 0"
        self.flags["v"] = (f"cpu.v = 1 if (~({u} ^ {_lit(s)}))"
                           f" & ({u} ^ {r}) & {msb:#x} else 0")
        self.flags["n"] = f"cpu.n = 1 if {r} & {msb:#x} else 0"
        self.flags["z"] = f"cpu.z = 1 if {r} == 0 else 0"

    def _set_flags_sub(self, u: str, s: Addr, r: str, size: int,
                       with_x: bool) -> None:
        msb = MSBS[size]
        self.flags["c"] = f"cpu.c = 1 if {_lit(s)} > {u} else 0"
        if with_x:
            self.flags["x"] = f"cpu.x = 1 if {_lit(s)} > {u} else 0"
        self.flags["v"] = (f"cpu.v = 1 if ({u} ^ {_lit(s)})"
                           f" & ({u} ^ {r}) & {msb:#x} else 0")
        self.flags["n"] = f"cpu.n = 1 if {r} & {msb:#x} else 0"
        self.flags["z"] = f"cpu.z = 1 if {r} == 0 else 0"

    # -- instruction families --------------------------------------------
    def _fact(self, insn: Insn) -> Tuple[Optional[int], Optional[int]]:
        fact = self.facts.get(insn.addr) if self.facts else None
        return fact if fact is not None else (None, None)

    def _writeback_d(self, reg: int, r: str, size: int) -> None:
        if size == 4:
            self.emit(f"d[{reg}] = {r}")
        else:
            self.emit(f"d[{reg}] = (d[{reg}] & {_INV[size]:#x}) | {r}")

    def _src_value(self, k: int, mode: int, reg: int, size: int,
                   fact: Optional[int]) -> Optional[Addr]:
        """Emit a source-operand read; returns its value as a var name
        or codegen-time literal (callers pre-check the indexed modes,
        so no tokens/cycles leak before a handler bail-out)."""
        mask = MASKS[size]
        if mode == 0:
            s = f"s{k}"
            self.emit(f"{s} = d[{reg}] & {mask:#x}" if size < 4
                      else f"{s} = d[{reg}]")
            return s
        if mode == 1:
            if size == 1:
                return None
            s = f"s{k}"
            self.emit(f"{s} = a[{reg}] & 0xFFFF" if size == 2
                      else f"{s} = a[{reg}]")
            return s
        if mode == 7 and reg == 4:
            return self._ext32() if size == 4 else (self._ext16() & mask)
        q = self._addr_of(k, mode, reg, size, f"q{k}")
        if q is None:
            return None
        v = f"v{k}"
        self._arm_read(k, q, size, v, fact)
        return v

    def _call_handler(self, k: int, insn: Insn) -> str:
        """Bridge to the specialized per-opcode handler: fully commit
        generated state, call, then re-verify pc/validity/irq exactly
        as the interpreted loop's per-entry checks would."""
        h = f"h{k}"
        self.env[h] = self.entries[k][4]
        self._flush_pend()
        self._materialize()
        self.emit(f"cpu.pc = {(self.addr + 2) & M32:#x}")
        self.emit(f"cpu.cycles = cyc + {self.S}")
        self.emit(f"ex[0] = {self._exe(k + 1)}")
        self.emit(f"{h}(cpu)")
        self.exts = (insn.length - 2) >> 1
        if k + 1 >= self.N:
            return "term"
        nxt = self.entries[k + 1][0]
        self.emit(f"if cpu.pc != {nxt:#x} or not block.valid:")
        self.push()
        self.emit("return")
        self.pop()
        self.emit("irq = cpu.pending_irq")
        self.emit("if irq and (irq > cpu.imask or irq == 7):")
        self.push()
        self.emit("return")
        self.pop()
        self.emit("cyc = cpu.cycles")
        self.S = 0
        return "fall"

    def _moveq(self, k: int, op: int) -> str:
        val = _sext(op & 0xFF, 1)
        self.emit(f"d[{(op >> 9) & 7}] = {val:#x}")
        self._set_flags_logic(val, 4)
        return "fall"

    def _move(self, k: int, insn: Insn, op: int) -> str:
        size = {1: 1, 3: 2, 2: 4}[op >> 12]
        smode, sreg = (op >> 3) & 7, op & 7
        dmode, dreg = (op >> 6) & 7, (op >> 9) & 7
        if smode == 6 or (smode == 7 and sreg == 3) or dmode == 6:
            return self._call_handler(k, insn)
        if (smode == 7 and sreg > 4) or (dmode == 7 and dreg >= 2):
            return self._call_handler(k, insn)   # invalid encodings
        if size == 1 and (smode == 1 or dmode == 1):
            return self._call_handler(k, insn)
        fr, fw = self._fact(insn)
        mask = MASKS[size]
        src: Addr
        if smode == 0:
            src = f"s{k}"
            self.emit(f"{src} = d[{sreg}] & {mask:#x}" if size < 4
                      else f"{src} = d[{sreg}]")
        elif smode == 1:
            src = f"s{k}"
            self.emit(f"{src} = a[{sreg}] & 0xFFFF" if size == 2
                      else f"{src} = a[{sreg}]")
        elif smode == 7 and sreg == 4:
            src = self._ext32() if size == 4 else (self._ext16() & mask)
        else:
            q = self._addr_of(k, smode, sreg, size, f"q{k}")
            if q is None:
                raise _Unfusable
            src = f"v{k}"
            self._arm_read(k, q, size, src, fr)
        if dmode == 0:
            if size == 4:
                self.emit(f"d[{dreg}] = {_lit(src)}")
            else:
                self.emit(f"d[{dreg}] = (d[{dreg}] & {_INV[size]:#x})"
                          f" | {_lit(src)}")
        elif dmode == 1:
            # movea: address-register sign extension, no flags.
            if size == 4:
                self.emit(f"a[{dreg}] = {_lit(src)}")
            elif isinstance(src, int):
                self.emit(f"a[{dreg}] = {_sext(src, 2):#x}")
            else:
                self.emit(f"a[{dreg}] = {_sxw(src)} & {M32:#x}")
            return "fall"
        else:
            p = self._addr_of(k, dmode, dreg, size, f"p{k}")
            if p is None:
                raise _Unfusable
            self._arm_write(k, p, size, _lit(src), fw)
        self._set_flags_logic(src, size)
        return "fall"

    def _backedge(self, copies: bool) -> None:
        """Loop re-entry: commit flags/tokens, fold the iteration's
        cycles and instruction count, go round again.  ``copies`` when
        another runtime path (branch fallthrough) still needs the same
        pending state afterwards."""
        self.bulk_S = self.S
        if copies:
            self._flag_copies()
            self._pend_copies()
        else:
            self._materialize()
            self._flush_pend()
        if self.S:
            self.emit(f"cyc += {self.S}")
        self.emit(f"n += {self.N}")
        self.emit("continue")

    def _branch(self, k: int, insn: Insn, op: int) -> str:
        cc = (op >> 8) & 15
        if cc == 1:                      # bsr: call, always terminal
            return self._call_handler(k, insn)
        if op & 0xFF == 0:
            self._ext16()                # word displacement
        target = (insn.target or 0) & M32
        last = k + 1 >= self.N
        is_backedge = self.loop and last and target == self.block.pc
        if cc == 0:                      # bra
            if is_backedge:
                self._backedge(copies=False)
                return "term"
            if not last and self.entries[k + 1][0] == target:
                return "fall"            # chained: next entry IS the target
            self._materialize()
            self._flush_pend()
            self._sync_state(target, self._exe(self.N))
            self.emit("return")
            return "term"
        self._materialize(_CC_READS[cc])
        self.emit(f"if {COND_EXPRS[cc]}:")
        self.push()
        if is_backedge:
            self._backedge(copies=True)
        else:
            self._escape_return(target, self._exe(k + 1))
        self.pop()
        return "fall"

    def _group5(self, k: int, insn: Insn, op: int) -> str:
        szbits = (op >> 6) & 3
        mode, reg = (op >> 3) & 7, op & 7
        if szbits == 3:
            cc = (op >> 8) & 15
            if mode == 1:                # dbcc
                self._ext16()
                target = (insn.target or 0) & M32
                self._materialize(_CC_READS[cc])
                t = f"t{k}"

                def dec_and_branch() -> None:
                    self.emit(f"{t} = (d[{reg}] - 1) & 0xFFFF")
                    self.emit(f"d[{reg}] = (d[{reg}] & 0xFFFF0000) | {t}")
                    self.emit(f"if {t} != 0xFFFF:")
                    self.push()
                    if (self.loop and k + 1 >= self.N
                            and target == self.block.pc):
                        self._backedge(copies=True)
                    else:
                        self._escape_return(target, self._exe(k + 1))
                    self.pop()

                if cc == 0:              # dbt: never decrements
                    pass
                elif cc == 1:            # dbf/dbra
                    dec_and_branch()
                else:
                    self.emit(f"if not ({COND_EXPRS[cc]}):")
                    self.push()
                    dec_and_branch()
                    self.pop()
                return "fall"
            if mode == 0:                # scc dn
                self._materialize(_CC_READS[cc])
                if cc == 0:
                    self.emit(f"d[{reg}] = (d[{reg}] & 0xFFFFFF00) | 255")
                elif cc == 1:
                    self.emit(f"d[{reg}] = d[{reg}] & 0xFFFFFF00")
                else:
                    self.emit(f"d[{reg}] = (d[{reg}] & 0xFFFFFF00)"
                              f" | (255 if {COND_EXPRS[cc]} else 0)")
                return "fall"
            return self._call_handler(k, insn)
        # addq/subq
        size = SIZE_BY_BITS[szbits]
        mask = MASKS[size]
        data = ((op >> 9) & 7) or 8
        sub = bool(op & 0x0100)
        if mode == 0:
            u, t, r = f"u{k}", f"t{k}", f"r{k}"
            self.emit(f"{u} = d[{reg}] & {mask:#x}" if size < 4
                      else f"{u} = d[{reg}]")
            if sub:
                self.emit(f"{r} = ({u} - {data}) & {mask:#x}")
                self._set_flags_sub(u, data, r, size, with_x=True)
            else:
                self.emit(f"{t} = {u} + {data}")
                self.emit(f"{r} = {t} & {mask:#x}")
                self._set_flags_add(u, data, t, r, size)
            self._writeback_d(reg, r, size)
            return "fall"
        if mode == 1 and size >= 2:      # whole register, no flags
            oper = "-" if sub else "+"
            self.emit(f"a[{reg}] = (a[{reg}] {oper} {data}) & {M32:#x}")
            return "fall"
        return self._call_handler(k, insn)

    def _group0(self, k: int, insn: Insn, op: int) -> str:
        if op & 0x0100:                  # dynamic bit ops / movep
            return self._call_handler(k, insn)
        kind = (op >> 9) & 7
        szbits = (op >> 6) & 3
        mode, reg = (op >> 3) & 7, op & 7
        if kind == 4 or szbits == 3:     # static bit ops
            return self._call_handler(k, insn)
        if mode == 7 and reg == 4:       # to ccr/sr forms
            return self._call_handler(k, insn)
        size = SIZE_BY_BITS[szbits]
        mask = MASKS[size]
        if mode == 0:
            imm = (self._ext32() if size == 4
                   else (self._ext16() & mask))
            u, t, r = f"u{k}", f"t{k}", f"r{k}"
            self.emit(f"{u} = d[{reg}] & {mask:#x}" if size < 4
                      else f"{u} = d[{reg}]")
            if kind == 6:                # cmpi
                self.emit(f"{r} = ({u} - {imm:#x}) & {mask:#x}")
                self._set_flags_sub(u, imm, r, size, with_x=False)
                return "fall"
            if kind in (0, 1, 5):        # ori/andi/eori
                oper = {0: "|", 1: "&", 5: "^"}[kind]
                self.emit(f"{r} = {u} {oper} {imm:#x}")
                self._set_flags_logic(r, size)
            elif kind == 2:              # subi
                self.emit(f"{r} = ({u} - {imm:#x}) & {mask:#x}")
                self._set_flags_sub(u, imm, r, size, with_x=True)
            else:                        # addi
                self.emit(f"{t} = {u} + {imm:#x}")
                self.emit(f"{r} = {t} & {mask:#x}")
                self._set_flags_add(u, imm, t, r, size)
            self._writeback_d(reg, r, size)
            return "fall"
        if kind == 6 and mode != 6 and not (mode == 7 and reg == 3):
            # cmpi to memory: read-only, fusable
            imm = (self._ext32() if size == 4
                   else (self._ext16() & mask))
            fr, _fw = self._fact(insn)
            q = self._addr_of(k, mode, reg, size, f"q{k}")
            if q is None:
                raise _Unfusable
            v, r = f"v{k}", f"r{k}"
            self._arm_read(k, q, size, v, fr)
            self.emit(f"{r} = ({v} - {imm:#x}) & {mask:#x}")
            self._set_flags_sub(v, imm, r, size, with_x=False)
            return "fall"
        return self._call_handler(k, insn)

    def _group4(self, k: int, insn: Insn, op: int) -> str:
        if op == 0x4E71:                 # nop
            return "fall"
        mode, reg = (op >> 3) & 7, op & 7
        if op & 0xF1C0 == 0x41C0:        # lea
            if mode in (3, 4, 6) or (mode == 7 and reg >= 3):
                return self._call_handler(k, insn)
            q = self._addr_of(k, mode, reg, 4, f"q{k}")
            if q is None:
                raise _Unfusable
            self.emit(f"a[{(op >> 9) & 7}] = {_lit(q)}")
            return "fall"
        if op & 0xFFF8 == 0x4840:        # swap
            t = f"t{k}"
            self.emit(f"{t} = ((d[{reg}] >> 16) | (d[{reg}] << 16))"
                      f" & {M32:#x}")
            self.emit(f"d[{reg}] = {t}")
            self._set_flags_logic(t, 4)
            return "fall"
        if op & 0xFFB8 == 0x4880 and mode == 0:  # ext.w / ext.l
            t = f"t{k}"
            if op & 0x0040:
                self.emit(f"{t} = (((d[{reg}] & 0xFFFF) ^ 0x8000)"
                          f" - 0x8000) & {M32:#x}")
                self.emit(f"d[{reg}] = {t}")
                self._set_flags_logic(t, 4)
            else:
                self.emit(f"{t} = (((d[{reg}] & 0xFF) ^ 0x80)"
                          f" - 0x80) & 0xFFFF")
                self.emit(f"d[{reg}] = (d[{reg}] & 0xFFFF0000) | {t}")
                self._set_flags_logic(t, 2)
            return "fall"
        szbits = (op >> 6) & 3
        top = op & 0xFF00
        if szbits == 3 or top not in (0x4A00, 0x4200, 0x4600, 0x4400):
            return self._call_handler(k, insn)
        size = SIZE_BY_BITS[szbits]
        mask = MASKS[size]
        if top == 0x4A00:                # tst
            if mode == 0:
                s = f"s{k}"
                self.emit(f"{s} = d[{reg}] & {mask:#x}" if size < 4
                          else f"{s} = d[{reg}]")
                self._set_flags_logic(s, size)
                return "fall"
            if mode == 6 or (mode == 7 and reg >= 2):
                return self._call_handler(k, insn)
            fr, _fw = self._fact(insn)
            q = self._addr_of(k, mode, reg, size, f"q{k}")
            if q is None:
                raise _Unfusable
            v = f"v{k}"
            self._arm_read(k, q, size, v, fr)
            self._set_flags_logic(v, size)
            return "fall"
        if mode != 0:                    # clr/not/neg to memory: RMW
            return self._call_handler(k, insn)
        u, r = f"u{k}", f"r{k}"
        if top == 0x4200:                # clr
            self.emit(f"d[{reg}] = 0" if size == 4
                      else f"d[{reg}] = d[{reg}] & {_INV[size]:#x}")
            self.flags["n"] = "cpu.n = 0"
            self.flags["z"] = "cpu.z = 1"
            self.flags["v"] = "cpu.v = 0"
            self.flags["c"] = "cpu.c = 0"
            return "fall"
        self.emit(f"{u} = d[{reg}] & {mask:#x}" if size < 4
                  else f"{u} = d[{reg}]")
        if top == 0x4600:                # not
            self.emit(f"{r} = {u} ^ {mask:#x}")
            self._set_flags_logic(r, size)
        else:                            # neg
            self.emit(f"{r} = (-{u}) & {mask:#x}")
            msb = MSBS[size]
            self.flags["c"] = f"cpu.c = 1 if {u} else 0"
            self.flags["x"] = f"cpu.x = 1 if {u} else 0"
            self.flags["v"] = f"cpu.v = 1 if {u} & {r} & {msb:#x} else 0"
            self.flags["n"] = f"cpu.n = 1 if {r} & {msb:#x} else 0"
            self.flags["z"] = f"cpu.z = 1 if {r} == 0 else 0"
        self._writeback_d(reg, r, size)
        return "fall"

    def _arith(self, k: int, insn: Insn, op: int) -> str:
        group = op >> 12
        opmode = (op >> 6) & 7
        dreg = (op >> 9) & 7
        mode, reg = (op >> 3) & 7, op & 7
        fr, _fw = self._fact(insn)
        if opmode in (3, 7):             # adda/suba/cmpa (or mul/div)
            if group in (8, 0xC):
                return self._call_handler(k, insn)
            size = 2 if opmode == 3 else 4
            if mode == 6 or (mode == 7 and reg == 3):
                return self._call_handler(k, insn)
            src = self._src_value(k, mode, reg, size, fr)
            if src is None:
                return self._call_handler(k, insn)
            if group == 0xB:             # cmpa: compare as long
                w: Addr
                if size == 4:
                    w = src
                elif isinstance(src, int):
                    w = _sext(src, 2)
                else:
                    w = f"w{k}"
                    self.emit(f"{w} = {_sxw(src)} & {M32:#x}")
                u, r = f"u{k}", f"r{k}"
                self.emit(f"{u} = a[{dreg}]")
                self.emit(f"{r} = ({u} - {_lit(w)}) & {M32:#x}")
                self._set_flags_sub(u, w, r, 4, with_x=False)
                return "fall"
            oper = "+" if group == 0xD else "-"
            if size == 4:
                sx = _lit(src)
            elif isinstance(src, int):
                sx = f"{_sext(src, 2):#x}"
            else:
                sx = _sxw(src)
            self.emit(f"a[{dreg}] = (a[{dreg}] {oper} {sx}) & {M32:#x}")
            return "fall"
        if opmode < 3:
            size = SIZE_BY_BITS[opmode]
            mask = MASKS[size]
            if mode == 6 or (mode == 7 and reg == 3):
                return self._call_handler(k, insn)
            if group in (8, 0xC) and mode == 1:
                return self._call_handler(k, insn)   # An source illegal
            src = self._src_value(k, mode, reg, size, fr)
            if src is None:
                return self._call_handler(k, insn)
            u, t, r = f"u{k}", f"t{k}", f"r{k}"
            self.emit(f"{u} = d[{dreg}] & {mask:#x}" if size < 4
                      else f"{u} = d[{dreg}]")
            if group == 0xB:             # cmp
                self.emit(f"{r} = ({u} - {_lit(src)}) & {mask:#x}")
                self._set_flags_sub(u, src, r, size, with_x=False)
                return "fall"
            if group in (8, 0xC):        # or / and
                oper = "|" if group == 8 else "&"
                self.emit(f"{r} = {u} {oper} {_lit(src)}")
                self._set_flags_logic(r, size)
            elif group == 0xD:           # add
                self.emit(f"{t} = {u} + {_lit(src)}")
                self.emit(f"{r} = {t} & {mask:#x}")
                self._set_flags_add(u, src, t, r, size)
            else:                        # sub
                self.emit(f"{r} = ({u} - {_lit(src)}) & {mask:#x}")
                self._set_flags_sub(u, src, r, size, with_x=True)
            self._writeback_d(dreg, r, size)
            return "fall"
        if group == 0xB and mode == 0:   # eor dn,dn
            size = SIZE_BY_BITS[opmode - 4]
            mask = MASKS[size]
            u, r = f"u{k}", f"r{k}"
            self.emit(f"{u} = d[{reg}] & {mask:#x}" if size < 4
                      else f"{u} = d[{reg}]")
            self.emit(f"{r} = {u} ^ (d[{dreg}] & {mask:#x})" if size < 4
                      else f"{r} = {u} ^ d[{dreg}]")
            self._writeback_d(reg, r, size)
            self._set_flags_logic(r, size)
            return "fall"
        return self._call_handler(k, insn)

    def _shift_insn(self, k: int, insn: Insn, op: int) -> str:
        szbits = (op >> 6) & 3
        if szbits == 3:                  # memory shifts
            return self._call_handler(k, insn)
        size = SIZE_BY_BITS[szbits]
        mask = MASKS[size]
        reg = op & 7
        kind = (op >> 3) & 3
        left = bool(op & 0x0100)
        if op & 0x20:
            cnt = f"d[{(op >> 9) & 7}] & 63"
        else:
            cnt = str(((op >> 9) & 7) or 8)
        if kind == 2 or (kind != 3 and op & 0x20):
            # rox reads cpu.x; a register count of 0 leaves x untouched,
            # so a pending x must land before the call either way.
            self._materialize(("x",))
        # _shift stores NZVC (and X for kinds 0-2) into cpu directly:
        # drop stale pending recipes so they can't clobber it later.
        for fl in ("n", "z", "v", "c"):
            self.flags.pop(fl, None)
        if kind != 3:
            self.flags.pop("x", None)
        r = f"r{k}"
        val = f"d[{reg}] & {mask:#x}" if size < 4 else f"d[{reg}]"
        self.emit(f"{r} = _shift(cpu, {kind}, {left}, {val}, {cnt}, {size})")
        self._writeback_d(reg, f"({r} & {mask:#x})", size)
        return "fall"

    # -- vectorized fill loops --------------------------------------------
    def _detect_bulk(self, insns: List[Insn]) -> Optional[Dict[str, Any]]:
        """Recognize counted store loops — ``move.w/l dS,(aY)+`` one or
        more times, ``subq.l #1,dZ``, ``bne.s <entry>`` — the shape of
        guest ``memset``/blit inner loops that dominate replay time.

        Iterations of such a loop are summarizable: the data registers
        are loop-invariant, the store addresses advance arithmetically
        and the counter decrements by one, so a run of ``m`` complete
        iterations can be applied as one RAM slice assignment plus one
        pre-packed trace-token block, provided a single runtime check
        shows the whole range is aligned, in RAM, unwatched and within
        the cycle budget.  Anything outside that window falls through
        to the per-iteration body, which remains bit-exact on its own.
        """
        if not self.loop or self.N < 3:
            return None
        br = insns[-1].word
        if (br >> 12) != 6 or ((br >> 8) & 15) != 6 or (br & 0xFF) == 0:
            return None                 # one-word bne only
        sq = insns[-2].word
        if sq & 0xFFF8 != 0x5380:       # subq.l #1,dZ
            return None
        z = sq & 7
        areg: Optional[int] = None
        tpl: List[Tuple[bool, int]] = []
        pats: List[Tuple[int, int]] = []
        nb = 0
        for k, insn in enumerate(insns[:-2]):
            w = insn.word
            size = {3: 2, 2: 4}.get(w >> 12)
            if size is None or (w >> 3) & 7 != 0 or (w >> 6) & 7 != 3:
                return None             # move.w/l dS,(aY)+ only
            sreg = w & 7
            if sreg == z:
                return None             # source must be loop-invariant
            if areg is None:
                areg = (w >> 9) & 7
            elif (w >> 9) & 7 != areg:
                return None
            tpl.append((False, self.entries[k][2]))
            tpl.append((True, nb + _KB_WRITE))
            if size == 4:
                tpl.append((True, nb + 2 + _KB_WRITE))
            pats.append((sreg, size))
            nb += size
        tpl.append((False, self.entries[-2][2]))
        tpl.append((False, self.entries[-1][2]))
        return {"z": z, "areg": areg, "bytes": nb, "tpl": tpl,
                "pats": pats}

    def _splice_bulk(self) -> None:
        """Insert the bulk prelude between ``n = 0`` and ``while 1:``.

        ``bulk_S`` (one full iteration's cycles, captured at the
        backedge) bounds ``m`` so every bulked iteration would have
        cleared all of its per-insn budget gates; the leftover
        iterations (at least one — the loop-exit iteration sets the
        final flags and tokens through the ordinary body) run normally.
        The committed flags are those of the last bulk iteration's
        ``subq.l #1`` (``bne`` taken, since the counter is still > 0).
        """
        info = self.bulk_info
        assert info is not None
        S, N = self.bulk_S, self.N
        tpl = info["tpl"]
        self.env["np"] = np
        self.env["bulk"] = self.core._fuse_tracer.bulk_references
        self.env["wdis"] = self.core.watch.pages.isdisjoint
        self.env["tdyn"] = np.array(
            [1 if dyn else 0 for dyn, _v in tpl], dtype=np.uint64)
        self.env["tval"] = np.array(
            [v for _dyn, v in tpl], dtype=np.uint64)
        z, ar, nb = info["z"], info["areg"], info["bytes"]
        pat = " + ".join(
            f"(d[{sr}] & 0xFFFF).to_bytes(2, 'big')" if sz == 2
            else f"d[{sr}].to_bytes(4, 'big')"
            for sr, sz in info["pats"])
        off = "" if self.ram_base == 0 else f" - {self.ram_base:#x}"
        body = [
            f"bc = d[{z}]",
            f"bm = (limit - cyc) // {S}",
            "if bm > bc - 1:",
            "    bm = bc - 1",
            f"ba = a[{ar}]",
            f"be = ba + {nb} * bm",
            f"if bm >= 12 and not ba & 1 and {self.ram_base:#x} <= ba"
            f" and be <= {self.ram_limit:#x}"
            " and wdis(range(ba >> 8, ((be - 1) >> 8) + 1)):",
            f"    ram[ba{off}:be{off}] = ({pat}) * bm",
            f"    bulk((np.arange(ba, be, {nb}, dtype=np.uint64)[:, None]"
            " * tdyn + tval).ravel())",
            f"    a[{ar}] = be",
            "    bv = bc - bm",
            f"    d[{z}] = bv",
            "    bu = bv + 1",
            "    cpu.n = bv >> 31",
            "    cpu.z = 0",
            "    cpu.v = 1 if (bu ^ 1) & (bu ^ bv) & 0x80000000 else 0",
            "    cpu.c = 0",
            "    cpu.x = 0",
            f"    cyc += {S} * bm",
            f"    n = bm * {N}",
        ]
        self.lines[self.bulk_at:self.bulk_at] = [
            "    " + ln for ln in body]

    # -- driver -----------------------------------------------------------
    def _emit_insn(self, k: int, insn: Insn) -> str:
        op = insn.word
        group = op >> 12
        if group == 7:
            return self._moveq(k, op)
        if group in (1, 2, 3):
            return self._move(k, insn, op)
        if group == 6:
            return self._branch(k, insn, op)
        if group == 5:
            return self._group5(k, insn, op)
        if group == 0:
            return self._group0(k, insn, op)
        if group == 4:
            return self._group4(k, insn, op)
        if group in (8, 9, 0xB, 0xC, 0xD):
            return self._arith(k, insn, op)
        if group == 0xE:
            return self._shift_insn(k, insn, op)
        return self._call_handler(k, insn)

    def build(self) -> Any:
        mem = self.mem
        backing = mem.ram if self.region == 0 else mem.flash
        data = backing.data
        base = backing.base
        nbytes = len(data)

        def fetch(a: int) -> int:
            off = a - base
            if 0 <= off and off + 1 < nbytes:
                return (data[off] << 8) | data[off + 1]
            return 0

        self._fetch = fetch
        insns: List[Insn] = []
        for (addr, _nxt, _token, op, _handler) in self.entries:
            insn = decode_insn(fetch, addr, want_text=False)
            if insn.addr != addr or insn.word != op:
                raise _Unfusable
            insns.append(insn)
        last = insns[-1]
        self.loop = (last.kind in (K_BRANCH, K_CONDBRANCH)
                     and last.target == self.block.pc)
        self.emit("d = cpu.d")
        self.emit("a = cpu.a")
        self.emit("cyc = cpu.cycles")
        if self.loop:
            self.emit("n = 0")
            self.bulk_info = self._detect_bulk(insns)
            self.bulk_at = len(self.lines)
            self.emit("while 1:")
            self.push()
        status = "fall"
        for k, insn in enumerate(insns):
            self.k = k
            self.addr = insn.addr
            self.exts = 0
            self.sl_init = False
            self.sl_used = False
            self._gate(k)
            self._pend_tok(self.entries[k][2])
            self.S += 4
            status = self._emit_insn(k, insn)
            if status == "fall":
                if 2 + 2 * self.exts != insn.length:
                    raise _Unfusable    # ext accounting disagrees
                if self.sl_used:
                    self.emit("if sl:")
                    self.push()
                    self._escape_return(insn.end & M32, self._exe(k + 1))
                    self.pop()
        if status == "fall":
            self._materialize()
            self._flush_pend()
            self._sync_state(last.end & M32, self._exe(self.N))
            self.emit("return")
        if self.bulk_info is not None and self.bulk_S:
            self._splice_bulk()
        src = "def f(cpu, limit, ex):\n" + "\n".join(self.lines) + "\n"
        spans = [(insn.addr, insn.end) for insn in insns]
        code = [(start, bytes(data[start - base:stop - base]))
                for start, stop in spans]
        self.block.prov = FuseProvenance(
            self.block.pc, self.region, self.loop,
            self.bulk_info is not None and bool(self.bulk_S),
            self.elisions, src, self.entries, spans, code,
            self.ram_base, self.ram_limit,
            self.flash_base, self.flash_limit,
            tuple(self.block.pages), self.env)
        return _specialize(src, self.env, name=f"<fused:{self.block.pc:#x}>")
