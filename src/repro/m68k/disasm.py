"""A 68000 disassembler for debugging guest code.

Covers the same subset the interpreter executes; anything else renders
as ``dc.w``.  A-line words render as ``sys $xxx`` (Palm OS system trap)
and F-line words as ``emucall $xxx`` (emulator callback), matching how
this reproduction uses those opcode spaces.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

SIZES = {0: "b", 1: "w", 2: "l"}
CONDS = ["t", "f", "hi", "ls", "cc", "cs", "ne", "eq",
         "vc", "vs", "pl", "mi", "ge", "lt", "gt", "le"]


class _Undecodable(Exception):
    """Raised internally when an opcode has no valid rendering; the
    public entry points catch it and fall back to ``dc.w``."""


class _Stream:
    def __init__(self, fetch: Callable[[int], int], addr: int):
        self.fetch = fetch
        self.addr = addr
        self.start = addr

    def next16(self) -> int:
        word = self.fetch(self.addr)
        self.addr += 2
        return word

    def next32(self) -> int:
        return (self.next16() << 16) | self.next16()


def _signed(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _ea_text(s: _Stream, mode: int, reg: int, size: int) -> str:
    if mode == 0:
        return f"d{reg}"
    if mode == 1:
        return f"a{reg}"
    if mode == 2:
        return f"(a{reg})"
    if mode == 3:
        return f"(a{reg})+"
    if mode == 4:
        return f"-(a{reg})"
    if mode == 5:
        return f"{_signed(s.next16(), 16)}(a{reg})"
    if mode == 6:
        ext = s.next16()
        x = f"{'a' if ext & 0x8000 else 'd'}{(ext >> 12) & 7}"
        x += ".l" if ext & 0x0800 else ".w"
        return f"{_signed(ext & 0xFF, 8)}(a{reg},{x})"
    if reg == 0:
        return f"${s.next16():x}.w"
    if reg == 1:
        return f"${s.next32():x}"
    if reg == 2:
        base = s.addr
        return f"${(base + _signed(s.next16(), 16)) & 0xFFFFFFFF:x}(pc)"
    if reg == 3:
        ext = s.next16()
        x = f"{'a' if ext & 0x8000 else 'd'}{(ext >> 12) & 7}"
        x += ".l" if ext & 0x0800 else ".w"
        return f"{_signed(ext & 0xFF, 8)}(pc,{x})"
    if reg == 4:
        if size == 4:
            return f"#${s.next32():x}"
        return f"#${s.next16() & (0xFF if size == 1 else 0xFFFF):x}"
    raise _Undecodable(f"mode 7 reg {reg}")


def _size_of(bits: int) -> int:
    return {0: 1, 1: 2, 2: 4}[bits]


def disassemble_one(fetch: Callable[[int], int], addr: int) -> Tuple[str, int]:
    """Disassemble the instruction at ``addr``.

    ``fetch`` reads a 16-bit word at an address.  Returns the text and
    the instruction length in bytes.  Total by construction: a word
    with no valid rendering comes back as ``dc.w $xxxx`` with length 2
    (the static CFG walker depends on every word having a length).
    """
    s = _Stream(fetch, addr)
    op = s.next16()
    try:
        text = _decode(s, op)
    except _Undecodable:
        return f"dc.w ${op:04x}", 2
    return text, s.addr - addr


def _decode(s: _Stream, op: int) -> str:  # noqa: C901 - a disassembler is a switch
    group = op >> 12
    mode, reg = (op >> 3) & 7, op & 7
    szbits = (op >> 6) & 3

    if group == 0xA:
        return f"sys ${op & 0xFFF:03x}"
    if group == 0xF:
        return f"emucall ${op & 0xFFF:03x}"

    fixed = {0x4E70: "reset", 0x4E71: "nop", 0x4E73: "rte", 0x4E75: "rts",
             0x4E76: "trapv", 0x4E77: "rtr", 0x4AFC: "illegal"}
    if op in fixed:
        return fixed[op]
    if op == 0x4E72:
        return f"stop #${s.next16():x}"
    if op & 0xFFF0 == 0x4E40:
        return f"trap #{op & 15}"
    if op & 0xFFF8 == 0x4E50:
        return f"link a{reg},#{_signed(s.next16(), 16)}"
    if op & 0xFFF8 == 0x4E58:
        return f"unlk a{reg}"
    if op & 0xFFF8 == 0x4E60:
        return f"move a{reg},usp"
    if op & 0xFFF8 == 0x4E68:
        return f"move usp,a{reg}"

    if group in (1, 2, 3):
        size = {1: 1, 3: 2, 2: 4}[group]
        src = _ea_text(s, mode, reg, size)
        dmode, dreg = (op >> 6) & 7, (op >> 9) & 7
        dst = _ea_text(s, dmode, dreg, size)
        name = "movea" if dmode == 1 else "move"
        return f"{name}.{SIZES[{1: 0, 2: 1, 4: 2}[size]]} {src},{dst}"

    if group == 0:
        if op & 0x0138 == 0x0108:  # movep (the An "bit op" encodings)
            opmode = (op >> 6) & 7
            sz = "l" if opmode & 1 else "w"
            disp = _signed(s.next16(), 16)
            dreg = (op >> 9) & 7
            if opmode < 6:
                return f"movep.{sz} {disp}(a{reg}),d{dreg}"
            return f"movep.{sz} d{dreg},{disp}(a{reg})"
        if op & 0x0100:  # dynamic bit op
            btype = ["btst", "bchg", "bclr", "bset"][(op >> 6) & 3]
            return f"{btype} d{(op >> 9) & 7},{_ea_text(s, mode, reg, 1)}"
        kind = (op >> 9) & 7
        if kind == 4:  # static bit op
            btype = ["btst", "bchg", "bclr", "bset"][(op >> 6) & 3]
            num = s.next16() & 0xFF
            return f"{btype} #{num},{_ea_text(s, mode, reg, 1)}"
        names = {0: "ori", 1: "andi", 2: "subi", 3: "addi", 5: "eori", 6: "cmpi"}
        if kind in names and szbits != 3:
            size = _size_of(szbits)
            if mode == 7 and reg == 4:
                imm = s.next16()
                return f"{names[kind]} #${imm:x},{'ccr' if size == 1 else 'sr'}"
            imm = s.next32() if size == 4 else s.next16()
            return f"{names[kind]}.{SIZES[szbits]} #${imm:x},{_ea_text(s, mode, reg, size)}"
        return f"dc.w ${op:04x}"

    if group == 4:
        if op & 0xF1C0 == 0x41C0:
            return f"lea {_ea_text(s, mode, reg, 4)},a{(op >> 9) & 7}"
        if op & 0xF1C0 == 0x4180:
            return f"chk {_ea_text(s, mode, reg, 2)},d{(op >> 9) & 7}"
        if op & 0xFFC0 == 0x4E80:
            return f"jsr {_ea_text(s, mode, reg, 4)}"
        if op & 0xFFC0 == 0x4EC0:
            return f"jmp {_ea_text(s, mode, reg, 4)}"
        if op & 0xFFC0 == 0x40C0:
            return f"move sr,{_ea_text(s, mode, reg, 2)}"
        if op & 0xFFC0 == 0x44C0:
            return f"move {_ea_text(s, mode, reg, 2)},ccr"
        if op & 0xFFC0 == 0x46C0:
            return f"move {_ea_text(s, mode, reg, 2)},sr"
        if op & 0xFFF8 == 0x4840:
            return f"swap d{reg}"
        if op & 0xFFC0 == 0x4800:
            return f"nbcd {_ea_text(s, mode, reg, 1)}"
        if op & 0xFFC0 == 0x4840:
            return f"pea {_ea_text(s, mode, reg, 4)}"
        if op & 0xFFC0 == 0x4AC0:
            return f"tas {_ea_text(s, mode, reg, 1)}"
        if op & 0xFFB8 == 0x4880 and mode == 0:
            return f"ext.{'l' if op & 0x40 else 'w'} d{reg}"
        if op & 0xFB80 == 0x4880:
            to_regs = bool(op & 0x0400)
            size = 4 if op & 0x0040 else 2
            mask = s.next16()
            regs = _reglist_text(mask, reverse=(not to_regs and mode == 4))
            ea = _ea_text(s, mode, reg, size)
            sz = "l" if size == 4 else "w"
            return (f"movem.{sz} {ea},{regs}" if to_regs
                    else f"movem.{sz} {regs},{ea}")
        names = {0x4000: "negx", 0x4200: "clr", 0x4400: "neg", 0x4600: "not",
                 0x4A00: "tst"}
        if op & 0xFF00 in names and szbits != 3:
            size = _size_of(szbits)
            return f"{names[op & 0xFF00]}.{SIZES[szbits]} {_ea_text(s, mode, reg, size)}"
        return f"dc.w ${op:04x}"

    if group == 5:
        if szbits == 3:
            cc = CONDS[(op >> 8) & 15]
            if mode == 1:
                target = (s.addr + _signed(s.next16(), 16)) & 0xFFFFFFFF
                return f"db{cc} d{reg},${target:x}"
            return f"s{cc} {_ea_text(s, mode, reg, 1)}"
        data = ((op >> 9) & 7) or 8
        name = "subq" if op & 0x0100 else "addq"
        size = _size_of(szbits)
        return f"{name}.{SIZES[szbits]} #{data},{_ea_text(s, mode, reg, size)}"

    if group == 6:
        cc = (op >> 8) & 15
        disp8 = op & 0xFF
        if disp8:
            target = (s.addr + _signed(disp8, 8)) & 0xFFFFFFFF
            suffix = ".s"
        else:
            target = (s.addr + _signed(s.next16(), 16)) & 0xFFFFFFFF
            suffix = ""
        name = {0: "bra", 1: "bsr"}.get(cc, f"b{CONDS[cc]}")
        return f"{name}{suffix} ${target:x}"

    if group == 7:
        return f"moveq #{_signed(op & 0xFF, 8)},d{(op >> 9) & 7}"

    if group in (8, 9, 0xB, 0xC, 0xD):
        opmode = (op >> 6) & 7
        dreg = (op >> 9) & 7
        name = {8: "or", 9: "sub", 0xB: "cmp", 0xC: "and", 0xD: "add"}[group]
        if group in (8, 0xC) and opmode in (3, 7):
            muldiv = {(8, 3): "divu", (8, 7): "divs",
                      (0xC, 3): "mulu", (0xC, 7): "muls"}[(group, opmode)]
            return f"{muldiv} {_ea_text(s, mode, reg, 2)},d{dreg}"
        if group == 0xC and op & 0x01F8 in (0x0140, 0x0148, 0x0188):
            variant = op & 0x01F8
            pairs = {0x0140: (f"d{dreg}", f"d{reg}"), 0x0148: (f"a{dreg}", f"a{reg}"),
                     0x0188: (f"d{dreg}", f"a{reg}")}[variant]
            return f"exg {pairs[0]},{pairs[1]}"
        if opmode in (3, 7) and group in (9, 0xB, 0xD):
            size = 2 if opmode == 3 else 4
            sz = "w" if size == 2 else "l"
            return f"{name}a.{sz} {_ea_text(s, mode, reg, size)},a{dreg}"
        size = _size_of(opmode & 3)
        sz = SIZES[opmode & 3]
        if opmode < 3:
            return f"{name}.{sz} {_ea_text(s, mode, reg, size)},d{dreg}"
        if group == 0xB:
            if mode == 1:
                return f"cmpm.{sz} (a{reg})+,(a{dreg})+"
            return f"eor.{sz} d{dreg},{_ea_text(s, mode, reg, size)}"
        if mode in (0, 1) and group in (9, 0xD):
            xname = "subx" if group == 9 else "addx"
            if mode == 0:
                return f"{xname}.{sz} d{reg},d{dreg}"
            return f"{xname}.{sz} -(a{reg}),-(a{dreg})"
        return f"{name}.{sz} d{dreg},{_ea_text(s, mode, reg, size)}"

    if group == 0xE:
        names = ["as", "ls", "rox", "ro"]
        direction = "l" if op & 0x0100 else "r"
        if szbits == 3:
            kind = (op >> 9) & 3
            return f"{names[kind]}{direction} {_ea_text(s, mode, reg, 2)}"
        kind = (op >> 3) & 3
        sz = SIZES[szbits]
        if op & 0x0020:
            return f"{names[kind]}{direction}.{sz} d{(op >> 9) & 7},d{reg}"
        cnt = ((op >> 9) & 7) or 8
        return f"{names[kind]}{direction}.{sz} #{cnt},d{reg}"

    return f"dc.w ${op:04x}"


def _reglist_text(mask: int, reverse: bool) -> str:
    if reverse:
        mask = int(f"{mask:016b}", 2)
        mask = sum(((mask >> i) & 1) << (15 - i) for i in range(16))
    names = [f"d{i}" for i in range(8)] + [f"a{i}" for i in range(8)]
    parts: List[str] = []
    i = 0
    while i < 16:
        if mask & (1 << i):
            j = i
            while j + 1 < 16 and mask & (1 << (j + 1)) and (j + 1) // 8 == i // 8:
                j += 1
            parts.append(names[i] if i == j else f"{names[i]}-{names[j]}")
            i = j + 1
        else:
            i += 1
    return "/".join(parts) or "(none)"


def disassemble(fetch: Callable[[int], int], addr: int, count: int = 16) -> str:
    """Disassemble ``count`` instructions starting at ``addr``."""
    lines = []
    for _ in range(count):
        text, length = disassemble_one(fetch, addr)
        lines.append(f"{addr:08x}  {text}")
        addr += length
    return "\n".join(lines)
