"""The 68000 interpreter core.

Models the Motorola MC68VZ328 "DragonBall" processor used by the Palm
m515: a 68EC000 integer core with big-endian memory, eight data and
eight address registers, and the classic 68000 exception model.

The interpreter is table-driven: a 65536-entry dispatch table maps every
opcode word to a specialised handler closure (built once per process by
:mod:`repro.m68k.decoder`).  Two host hooks mirror the structure of the
Palm OS Emulator described in the paper:

* ``aline_handler`` — Palm OS system calls are A-line instructions
  (``0xAxxx``).  With profiling *off* the emulator services them
  natively (POSE's fast path); with profiling *on* the handler declines
  and the CPU takes the real A-line exception through the ROM trap
  dispatcher, exactly as §2.4.2 of the paper describes.
* ``fline_handler`` — F-line instructions are reserved for emulator
  callbacks (POSE used special opcodes the same way); our ROM stubs end
  in one to transfer control to the Python implementation of each
  system call's semantics.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .bus import Bus
from .errors import CpuHalted, IllegalInstructionError
from .instructions import Handler

# Exception vector numbers (68000).
VEC_RESET_SSP = 0
VEC_RESET_PC = 1
VEC_BUS_ERROR = 2
VEC_ADDRESS_ERROR = 3
VEC_ILLEGAL = 4
VEC_ZERO_DIVIDE = 5
VEC_CHK = 6
VEC_TRAPV = 7
VEC_PRIVILEGE = 8
VEC_TRACE = 9
VEC_LINE_A = 10
VEC_LINE_F = 11
VEC_AUTOVECTOR_BASE = 24  # level 1 -> vector 25, ..., level 7 -> 31
VEC_TRAP_BASE = 32  # TRAP #0 -> vector 32

SR_SUPERVISOR = 0x2000
SR_TRACE = 0x8000

_MASK32 = 0xFFFFFFFF


class CPU:
    """A 68000-family CPU attached to a :class:`~repro.m68k.bus.Bus`."""

    _dispatch: Optional[List[Optional[Handler]]] = None  # shared, built lazily

    def __init__(
        self,
        bus: Bus,
        aline_handler: Optional[Callable[["CPU", int], bool]] = None,
        fline_handler: Optional[Callable[["CPU", int], bool]] = None,
    ):
        self.bus = bus
        self.aline_handler = aline_handler
        self.fline_handler = fline_handler

        self.d = [0] * 8  # data registers
        self.a = [0] * 8  # address registers; a[7] is the active SP
        self.pc = 0

        # Condition codes kept unpacked for speed.
        self.x = 0
        self.n = 0
        self.z = 0
        self.v = 0
        self.c = 0

        self.s = True  # supervisor state
        self.imask = 7  # interrupt priority mask
        self._shadow_sp = 0  # the SP of the *inactive* state (USP or SSP)

        self.stopped = False
        self.cycles = 0
        self.instructions = 0
        self.pending_irq = 0  # highest pending interrupt level, 0 = none
        #: Optional per-instruction hook receiving the opcode word
        #: (used by the profiler's opcode histogram).
        self.opcode_hook: Optional[Callable[[int], None]] = None
        #: Optional hook fired when an interrupt is serviced *between*
        #: instructions: the exception-frame pushes that follow belong
        #: to no instruction, and a per-pc reference tracker must stop
        #: attributing them to the previously executed opcode.
        self.interrupt_hook: Optional[Callable[[], None]] = None

        table = CPU._dispatch
        if table is None:
            from .decoder import dispatch_table

            table = CPU._dispatch = dispatch_table()
        self._table = table

    @property
    def dispatch_table(self) -> List[Optional[Handler]]:
        """The 65536-entry opcode handler table (shared, read-only by
        convention).  Replay cores predecode handlers out of it."""
        return self._table

    # ------------------------------------------------------------------
    # Status register
    # ------------------------------------------------------------------
    @property
    def sr(self) -> int:
        ccr = (self.x << 4) | (self.n << 3) | (self.z << 2) | (self.v << 1) | self.c
        return (SR_SUPERVISOR if self.s else 0) | (self.imask << 8) | ccr

    @sr.setter
    def sr(self, value: int) -> None:
        self.ccr = value
        self.imask = (value >> 8) & 7
        new_s = bool(value & SR_SUPERVISOR)
        if new_s != self.s:
            # Swap active/inactive stack pointers when crossing states.
            self.a[7], self._shadow_sp = self._shadow_sp, self.a[7]
            self.s = new_s

    @property
    def ccr(self) -> int:
        return (self.x << 4) | (self.n << 3) | (self.z << 2) | (self.v << 1) | self.c

    @ccr.setter
    def ccr(self, value: int) -> None:
        self.x = (value >> 4) & 1
        self.n = (value >> 3) & 1
        self.z = (value >> 2) & 1
        self.v = (value >> 1) & 1
        self.c = value & 1

    @property
    def usp(self) -> int:
        return self._shadow_sp if self.s else self.a[7]

    @usp.setter
    def usp(self, value: int) -> None:
        if self.s:
            self._shadow_sp = value & _MASK32
        else:
            self.a[7] = value & _MASK32

    # ------------------------------------------------------------------
    # Memory helpers (count approximate access cycles)
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> int:
        addr &= _MASK32
        if size == 1:
            self.cycles += 4
            return self.bus.read8(addr)
        if size == 2:
            self.cycles += 4
            return self.bus.read16(addr)
        self.cycles += 8
        return self.bus.read32(addr)

    def write(self, addr: int, size: int, value: int) -> None:
        addr &= _MASK32
        if size == 1:
            self.cycles += 4
            self.bus.write8(addr, value & 0xFF)
        elif size == 2:
            self.cycles += 4
            self.bus.write16(addr, value & 0xFFFF)
        else:
            self.cycles += 8
            self.bus.write32(addr, value & _MASK32)

    def fetch_ext16(self) -> int:
        """Fetch one extension word from the instruction stream."""
        word = self.bus.fetch16(self.pc)
        self.pc = (self.pc + 2) & _MASK32
        self.cycles += 4
        return word

    def fetch_ext32(self) -> int:
        hi = self.bus.fetch16(self.pc)
        lo = self.bus.fetch16((self.pc + 2) & _MASK32)
        self.pc = (self.pc + 4) & _MASK32
        self.cycles += 8
        return (hi << 16) | lo

    # ------------------------------------------------------------------
    # Stack helpers (always the active SP)
    # ------------------------------------------------------------------
    def push16(self, value: int) -> None:
        addr = (self.a[7] - 2) & _MASK32
        self.a[7] = addr
        self.cycles += 4
        self.bus.write16(addr, value & 0xFFFF)

    def push32(self, value: int) -> None:
        addr = (self.a[7] - 4) & _MASK32
        self.a[7] = addr
        self.cycles += 8
        self.bus.write32(addr, value & _MASK32)

    def pop16(self) -> int:
        addr = self.a[7]
        self.cycles += 4
        value = self.bus.read16(addr)
        self.a[7] = (addr + 2) & _MASK32
        return value

    def pop32(self) -> int:
        addr = self.a[7]
        self.cycles += 8
        value = self.bus.read32(addr)
        self.a[7] = (addr + 4) & _MASK32
        return value

    # ------------------------------------------------------------------
    # Reset and exceptions
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Hard reset: load SSP and PC from vectors 0 and 1.

        The paper starts every session "directly after a soft reset"
        precisely because the processor then follows a deterministic
        path; this method is that path's first step.
        """
        self.s = True
        self.imask = 7
        self.ccr = 0
        self.stopped = False
        self._shadow_sp = 0
        self.a[7] = self.bus.read32(0)
        self.pc = self.bus.read32(4)
        self.cycles = 0
        self.instructions = 0
        self.pending_irq = 0

    def exception(self, vector: int) -> None:
        """Process a 68000 group-1/2 exception: push SR and PC, vector."""
        old_sr = self.sr
        if not self.s:
            self.sr = old_sr | SR_SUPERVISOR
        self.stopped = False
        self.push32(self.pc)
        self.push16(old_sr)
        handler = self.read(vector * 4, 4)
        if handler == 0:
            raise CpuHalted(
                f"exception vector {vector} has no handler (pc={self.pc:#010x})"
            )
        self.pc = handler
        self.cycles += 34

    def set_irq(self, level: int) -> None:
        """Assert (or clear, with 0) the pending interrupt level."""
        self.pending_irq = level & 7

    def _service_interrupt(self) -> None:
        level = self.pending_irq
        self.exception(VEC_AUTOVECTOR_BASE + level)
        self.imask = level
        # Level-triggered model: the device must deassert explicitly.

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction (or service one interrupt)."""
        if self.pending_irq and (self.pending_irq > self.imask or self.pending_irq == 7):
            if self.interrupt_hook is not None:
                self.interrupt_hook()
            self._service_interrupt()
            return
        if self.stopped:
            return
        op = self.bus.fetch16(self.pc)
        self.pc = (self.pc + 2) & _MASK32
        self.cycles += 4
        self.instructions += 1
        if self.opcode_hook is not None:
            self.opcode_hook(op)
        handler = self._table[op]
        if handler is None:
            self._illegal(op)
        else:
            handler(self)

    def _illegal(self, op: int) -> None:
        # On entry pc points just past the faulting word.  A-line/F-line
        # exceptions stack the PC of the faulting instruction itself (the
        # ROM trap dispatcher reads the trap word through it and advances
        # the stacked PC before returning); a native handler that accepts
        # the call leaves pc where it is, past the word.
        group = op >> 12
        if group == 0xA:
            if self.aline_handler is not None and self.aline_handler(self, op):
                return
            self.pc = (self.pc - 2) & _MASK32
            self.exception(VEC_LINE_A)
            return
        if group == 0xF:
            if self.fline_handler is not None and self.fline_handler(self, op):
                return
            self.pc = (self.pc - 2) & _MASK32
            self.exception(VEC_LINE_F)
            return
        # Genuine illegal opcode: take vector 4 if a handler exists,
        # otherwise surface a host error (the guest image is broken).
        self.pc = (self.pc - 2) & _MASK32
        if self.read(VEC_ILLEGAL * 4, 4) != 0:
            self.exception(VEC_ILLEGAL)
            return
        raise IllegalInstructionError(op, self.pc)

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until STOP or the instruction budget is exhausted.

        Returns the number of instructions executed.  A stopped CPU
        waits for an interrupt; the caller (device scheduler) is
        responsible for advancing time and raising one.
        """
        start = self.instructions
        budget = max_instructions
        while budget > 0 and not self.stopped:
            self.step()
            budget -= 1
        return self.instructions - start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regs = " ".join(f"d{i}={v:08x}" for i, v in enumerate(self.d))
        aregs = " ".join(f"a{i}={v:08x}" for i, v in enumerate(self.a))
        return (
            f"<CPU pc={self.pc:08x} sr={self.sr:04x} {regs} {aregs} "
            f"cycles={self.cycles}>"
        )
