"""A two-pass Motorola-syntax assembler for the 68000.

All guest software in this reproduction — the Palm OS ROM routines, the
five activity-log hacks, and the sample applications — is written in
this assembly dialect and assembled to real machine code executed by
:class:`repro.m68k.cpu.CPU`.

Supported syntax (Motorola style)::

    ; comment
    label:  move.l  #value,d0
            lea     table(pc),a0
            move.w  (a0)+,d1
            beq.s   done
            movem.l d0-d3/a0-a2,-(sp)
            dc.w    $A000+TrapIndex     ; Palm OS system trap
            dc.b    "text",0
            even

Directives: ``org``, ``equ`` (``name equ expr`` or ``name = expr``),
``dc.b/w/l``, ``ds.b/w/l``, ``even``, ``align`` — each also accepted
with a leading dot.

Sizing rules are deliberately value-independent so that both passes
produce identical layouts: bare address operands always assemble as
absolute-long, and branches default to word displacements unless
suffixed ``.s``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import AssemblerError

M32 = 0xFFFFFFFF

CONDITIONS = {
    "t": 0, "f": 1, "hi": 2, "ls": 3, "cc": 4, "hs": 4, "cs": 5, "lo": 5,
    "ne": 6, "eq": 7, "vc": 8, "vs": 9, "pl": 10, "mi": 11, "ge": 12,
    "lt": 13, "gt": 14, "le": 15,
}

SIZE_BITS = {1: 0, 2: 1, 4: 2}


@dataclass
class Operand:
    kind: str
    reg: int = 0
    xreg: int = 0
    xa: bool = False
    xlong: bool = False
    expr: Optional[str] = None
    reglist: int = 0


@dataclass
class Program:
    """The result of assembling a source file."""

    segments: List[Tuple[int, bytes]] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = 0

    def image(self, base: int, size: int) -> bytearray:
        """Render all segments into one flat image starting at ``base``."""
        out = bytearray(size)
        for addr, blob in self.segments:
            off = addr - base
            if off < 0 or off + len(blob) > size:
                raise AssemblerError(
                    f"segment at {addr:#x} (+{len(blob)}) outside image "
                    f"[{base:#x}, {base + size:#x})"
                )
            out[off:off + len(blob)] = blob
        return out

    @property
    def blob(self) -> bytes:
        """The single contiguous segment (requires exactly one segment)."""
        if len(self.segments) != 1:
            raise AssemblerError(f"program has {len(self.segments)} segments")
        return self.segments[0][1]


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"\s*(?:(\$[0-9a-fA-F]+|%[01]+|\d+|'(?:[^'\\]|\\.)')"
    r"|([A-Za-z_.][\w.]*)"
    r"|(<<|>>|[()+\-*/&|^~]))"
)


class _ExprEval:
    """Tiny recursive-descent evaluator for assembler expressions."""

    def __init__(self, text: str, symbols: Dict[str, int], strict: bool):
        self.tokens = self._tokenize(text)
        self.pos = 0
        self.symbols = symbols
        self.strict = strict
        self.undefined: List[str] = []

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        tokens = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if not m or m.end() == pos:
                rest = text[pos:].strip()
                if not rest:
                    break
                raise AssemblerError(f"bad expression near {rest!r}")
            tokens.append(m.group(1) or m.group(2) or m.group(3))
            pos = m.end()
        return tokens

    def _peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        tok = self._peek()
        if tok is None:
            raise AssemblerError("unexpected end of expression")
        self.pos += 1
        return tok

    def evaluate(self) -> int:
        value = self._or()
        if self._peek() is not None:
            raise AssemblerError(f"trailing tokens in expression: {self.tokens[self.pos:]}")
        return value

    def _or(self) -> int:
        v = self._xor()
        while self._peek() == "|":
            self._next()
            v |= self._xor()
        return v

    def _xor(self) -> int:
        v = self._and()
        while self._peek() == "^":
            self._next()
            v ^= self._and()
        return v

    def _and(self) -> int:
        v = self._shift()
        while self._peek() == "&":
            self._next()
            v &= self._shift()
        return v

    def _shift(self) -> int:
        v = self._addsub()
        while self._peek() in ("<<", ">>"):
            op = self._next()
            rhs = self._addsub()
            v = v << rhs if op == "<<" else v >> rhs
        return v

    def _addsub(self) -> int:
        v = self._muldiv()
        while self._peek() in ("+", "-"):
            op = self._next()
            rhs = self._muldiv()
            v = v + rhs if op == "+" else v - rhs
        return v

    def _muldiv(self) -> int:
        v = self._unary()
        while self._peek() in ("*", "/"):
            op = self._next()
            rhs = self._unary()
            v = v * rhs if op == "*" else v // rhs
        return v

    def _unary(self) -> int:
        tok = self._peek()
        if tok == "-":
            self._next()
            return -self._unary()
        if tok == "~":
            self._next()
            return ~self._unary()
        if tok == "+":
            self._next()
            return self._unary()
        return self._atom()

    def _atom(self) -> int:
        tok = self._next()
        if tok == "(":
            v = self._or()
            if self._next() != ")":
                raise AssemblerError("missing ')' in expression")
            return v
        if tok.startswith("$"):
            return int(tok[1:], 16)
        if tok.startswith("%"):
            return int(tok[1:], 2)
        if tok.startswith("'"):
            body = tok[1:-1]
            if body.startswith("\\"):
                body = {"\\n": "\n", "\\t": "\t", "\\0": "\0", "\\\\": "\\"}.get(
                    body, body[1]
                )
            return ord(body)
        if tok[0].isdigit():
            return int(tok, 0) if tok.startswith("0x") else int(tok, 10)
        if tok in self.symbols:
            return self.symbols[tok]
        if self.strict:
            raise AssemblerError(f"undefined symbol {tok!r}")
        self.undefined.append(tok)
        return 0


# ----------------------------------------------------------------------
# Register and operand parsing
# ----------------------------------------------------------------------
_REG_RE = re.compile(r"^(d[0-7]|a[0-7]|sp|pc|sr|ccr|usp)$", re.IGNORECASE)


def _parse_reg(text: str) -> Optional[Tuple[str, int]]:
    m = _REG_RE.match(text.strip())
    if not m:
        return None
    name = m.group(1).lower()
    if name == "sp":
        return ("a", 7)
    if name in ("pc", "sr", "ccr", "usp"):
        return (name, 0)
    return (name[0], int(name[1]))


def _split_top_commas(text: str) -> List[str]:
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur).strip())
    return [p for p in parts if p]


def _parse_reglist(text: str) -> Optional[int]:
    """Parse a MOVEM register list like ``d0-d3/a0/a6-sp`` into a mask.

    Mask bit order: bit 0 = D0 ... bit 7 = D7, bit 8 = A0 ... bit 15 = A7.
    """
    mask = 0
    for part in text.split("/"):
        part = part.strip()
        if "-" in part:
            lo_txt, hi_txt = part.split("-", 1)
            lo = _parse_reg(lo_txt)
            hi = _parse_reg(hi_txt)
            if not lo or not hi or lo[0] not in "da" or hi[0] not in "da":
                return None
            lo_bit = lo[1] + (8 if lo[0] == "a" else 0)
            hi_bit = hi[1] + (8 if hi[0] == "a" else 0)
            if hi_bit < lo_bit:
                return None
            for b in range(lo_bit, hi_bit + 1):
                mask |= 1 << b
        else:
            r = _parse_reg(part)
            if not r or r[0] not in "da":
                return None
            mask |= 1 << (r[1] + (8 if r[0] == "a" else 0))
    return mask


_INDEX_RE = re.compile(r"^(d[0-7]|a[0-7]|sp)(\.[wl])?$", re.IGNORECASE)


def parse_operand(text: str) -> Operand:
    text = text.strip()
    if not text:
        raise AssemblerError("empty operand")

    if text.startswith("#"):
        return Operand("imm", expr=text[1:])

    reg = _parse_reg(text)
    if reg:
        kind, num = reg
        if kind == "d":
            return Operand("dreg", reg=num)
        if kind == "a":
            return Operand("areg", reg=num)
        return Operand(kind, reg=0)

    if text.startswith("-(") and text.endswith(")"):
        inner = _parse_reg(text[2:-1])
        if inner and inner[0] == "a":
            return Operand("predec", reg=inner[1])

    if text.endswith(")+"):
        inner = _parse_reg(text[1:-2]) if text.startswith("(") else None
        if inner and inner[0] == "a":
            return Operand("postinc", reg=inner[1])

    if text.endswith(")"):
        open_idx = text.rfind("(")
        if open_idx < 0:
            raise AssemblerError(f"unbalanced parentheses in operand {text!r}")
        outer = text[:open_idx].strip()
        inner = text[open_idx + 1:-1]
        parts = _split_top_commas(inner)
        # Forms: (an) | (d,an) | d(an) | (an,xn) | d(an,xn) | (d,an,xn)
        #        (pc) variants likewise.
        if outer and len(parts) >= 1:
            disp_expr, regs = outer, parts
        elif len(parts) >= 2 and _parse_reg(parts[0]) is None:
            disp_expr, regs = parts[0], parts[1:]
        else:
            disp_expr, regs = "0", parts
        base = _parse_reg(regs[0])
        if base is None:
            raise AssemblerError(f"bad base register in operand {text!r}")
        if len(regs) == 1:
            if base[0] == "a":
                if disp_expr == "0" and not outer:
                    return Operand("ind", reg=base[1])
                return Operand("disp", reg=base[1], expr=disp_expr)
            if base[0] == "pc":
                return Operand("pcdisp", expr=disp_expr)
            raise AssemblerError(f"bad operand {text!r}")
        if len(regs) == 2:
            m = _INDEX_RE.match(regs[1].strip())
            if not m:
                raise AssemblerError(f"bad index register in {text!r}")
            xname = m.group(1).lower()
            if xname == "sp":
                xa, xreg = True, 7
            else:
                xa, xreg = xname[0] == "a", int(xname[1])
            xlong = (m.group(2) or ".w").lower() == ".l"
            if base[0] == "a":
                return Operand("index", reg=base[1], xreg=xreg, xa=xa,
                               xlong=xlong, expr=disp_expr)
            if base[0] == "pc":
                return Operand("pcindex", xreg=xreg, xa=xa, xlong=xlong,
                               expr=disp_expr)
        raise AssemblerError(f"bad operand {text!r}")

    if text.lower().endswith(".w"):
        return Operand("abs_w", expr=text[:-2])
    if text.lower().endswith(".l"):
        return Operand("abs_l", expr=text[:-2])
    # A register list?
    if "/" in text or ("-" in text and _parse_reg(text.split("-")[0]) is not None):
        mask = _parse_reglist(text)
        if mask is not None:
            return Operand("reglist", reglist=mask)
    # Bare expression: absolute long (value-independent sizing).
    return Operand("abs_l", expr=text)


# ----------------------------------------------------------------------
# The assembler
# ----------------------------------------------------------------------
_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.]*):")
_EQU_RE = re.compile(r"^([A-Za-z_.][\w.]*)\s+(?:equ|=)\s+(.+)$", re.IGNORECASE)
_EQU2_RE = re.compile(r"^([A-Za-z_.][\w.]*)\s*=\s*(.+)$")


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, symbols: Optional[Dict[str, int]] = None):
        self.predefined = dict(symbols or {})

    def assemble(self, source: str, origin: int = 0) -> Program:
        symbols = dict(self.predefined)
        # Pass 1 computes label addresses (undefined symbols read as 0 —
        # layout is value-independent by construction).
        self._run_pass(source, origin, symbols, strict=False)
        segments = self._run_pass(source, origin, symbols, strict=True)
        return Program(segments=segments, symbols=symbols, entry=origin)

    # -- per-pass machinery ---------------------------------------------
    def _run_pass(self, source, origin, symbols, strict):
        self.symbols = symbols
        self.strict = strict
        self.pc = origin
        self.segments: List[Tuple[int, bytearray]] = []
        self.cur: bytearray = bytearray()
        self.cur_base = origin
        self.line_no = 0
        for raw in source.splitlines():
            self.line_no += 1
            try:
                self._assemble_line(raw)
            except AssemblerError as exc:
                if exc.line is None:
                    raise AssemblerError(str(exc), self.line_no) from None
                raise
        self._flush_segment()
        return [(base, bytes(blob)) for base, blob in self.segments if blob]

    def _flush_segment(self):
        if self.cur:
            self.segments.append((self.cur_base, self.cur))
        self.cur = bytearray()
        self.cur_base = self.pc

    def _eval(self, expr: str) -> int:
        if expr is None:
            raise AssemblerError("missing expression")
        ev = _ExprEval(expr, self.symbols, self.strict)
        return ev.evaluate()

    # -- emission --------------------------------------------------------
    def _emit_word(self, value: int):
        self.cur += bytes(((value >> 8) & 0xFF, value & 0xFF))
        self.pc += 2

    def _emit_words(self, words):
        for w in words:
            self._emit_word(w)

    def _emit_byte(self, value: int):
        self.cur.append(value & 0xFF)
        self.pc += 1

    # -- line handling ----------------------------------------------------
    def _assemble_line(self, raw: str):
        line = raw.split(";", 1)[0].rstrip()
        if not line.strip():
            return

        m = _LABEL_RE.match(line.strip())
        if m:
            label = m.group(1)
            self.symbols[label] = self.pc
            line = line.strip()[m.end():]
            if not line.strip():
                return

        stripped = line.strip()
        m = _EQU_RE.match(stripped) or _EQU2_RE.match(stripped)
        if m and not _REG_RE.match(m.group(1)):
            self.symbols[m.group(1)] = self._eval(m.group(2)) & M32
            return

        fields = stripped.split(None, 1)
        mnem = fields[0].lower().lstrip(".")
        rest = fields[1].strip() if len(fields) > 1 else ""

        if mnem in ("org",):
            self._flush_segment()
            self.pc = self._eval(rest) & M32
            self.cur_base = self.pc
            return
        if mnem == "even" or (mnem == "align" and not rest):
            if self.pc & 1:
                self._emit_byte(0)
            return
        if mnem == "align":
            n = self._eval(rest)
            while self.pc % n:
                self._emit_byte(0)
            return
        if mnem == "equ":
            raise AssemblerError("equ requires 'name equ expr' form")
        if mnem.startswith("dc"):
            self._directive_dc(mnem, rest)
            return
        if mnem.startswith("ds"):
            size = {"ds.b": 1, "ds.w": 2, "ds.l": 4, "ds": 2}[mnem]
            count = self._eval(rest)
            for _ in range(count * size):
                self._emit_byte(0)
            return

        self._instruction(mnem, rest)

    def _directive_dc(self, mnem: str, rest: str):
        size = {"dc.b": 1, "dc.w": 2, "dc.l": 4, "dc": 2}[mnem]
        for item in _split_top_commas_respecting_strings(rest):
            if item.startswith('"') and item.endswith('"'):
                if size != 1:
                    raise AssemblerError("string data requires dc.b")
                for ch in item[1:-1].encode("latin-1").decode("unicode_escape"):
                    self._emit_byte(ord(ch))
                continue
            value = self._eval(item)
            if size == 1:
                self._emit_byte(value)
            elif size == 2:
                self._emit_word(value & 0xFFFF)
            else:
                self._emit_word((value >> 16) & 0xFFFF)
                self._emit_word(value & 0xFFFF)

    # -- instruction encoding ----------------------------------------------
    def _instruction(self, mnem: str, rest: str):
        size = None
        short_branch = False
        if "." in mnem:
            base_mnem, suffix = mnem.rsplit(".", 1)
            if suffix in ("b", "w", "l", "s"):
                mnem = base_mnem
                if suffix == "s":
                    short_branch = True
                else:
                    size = {"b": 1, "w": 2, "l": 4}[suffix]
        operands = [parse_operand(p) for p in _split_top_commas(rest)] if rest else []
        self._encode(mnem, size, short_branch, operands)

    # EA encoding: returns (mode, reg); appends extension words to `exts`.
    def _ea(self, op: Operand, size: int, exts: List[int], ext_base: int) -> Tuple[int, int]:
        k = op.kind
        if k == "dreg":
            return 0, op.reg
        if k == "areg":
            return 1, op.reg
        if k == "ind":
            return 2, op.reg
        if k == "postinc":
            return 3, op.reg
        if k == "predec":
            return 4, op.reg
        if k == "disp":
            disp = self._eval(op.expr)
            self._check_disp16(disp)
            exts.append(disp & 0xFFFF)
            return 5, op.reg
        if k == "index":
            disp = self._eval(op.expr)
            self._check_disp8(disp)
            exts.append(self._index_ext(op, disp))
            return 6, op.reg
        if k == "abs_w":
            value = self._eval(op.expr)
            exts.append(value & 0xFFFF)
            return 7, 0
        if k == "abs_l":
            value = self._eval(op.expr) & M32
            exts.append(value >> 16)
            exts.append(value & 0xFFFF)
            return 7, 1
        if k == "pcdisp":
            target = self._eval(op.expr)
            disp = target - (ext_base + 2 * len(exts))
            self._check_disp16(disp)
            exts.append(disp & 0xFFFF)
            return 7, 2
        if k == "pcindex":
            target = self._eval(op.expr)
            disp = target - (ext_base + 2 * len(exts))
            self._check_disp8(disp)
            exts.append(self._index_ext(op, disp))
            return 7, 3
        if k == "imm":
            value = self._eval(op.expr)
            if size == 4:
                exts.append((value >> 16) & 0xFFFF)
                exts.append(value & 0xFFFF)
            elif size == 2:
                self._check_range(value, -0x8000, 0xFFFF)
                exts.append(value & 0xFFFF)
            else:
                self._check_range(value, -0x80, 0xFF)
                exts.append(value & 0xFF)
            return 7, 4
        raise AssemblerError(f"operand kind {k!r} not valid here")

    def _index_ext(self, op: Operand, disp: int) -> int:
        ext = (op.xreg << 12) | (disp & 0xFF)
        if op.xa:
            ext |= 0x8000
        if op.xlong:
            ext |= 0x0800
        return ext

    def _check_disp16(self, v: int):
        if self.strict and not (-0x8000 <= v <= 0x7FFF):
            raise AssemblerError(f"displacement {v} out of 16-bit range")

    def _check_disp8(self, v: int):
        if self.strict and not (-0x80 <= v <= 0x7F):
            raise AssemblerError(f"displacement {v} out of 8-bit range")

    def _check_range(self, v: int, lo: int, hi: int):
        if self.strict and not (lo <= v <= hi):
            raise AssemblerError(f"value {v} out of range [{lo}, {hi}]")

    # The main encoder.
    def _encode(self, mnem: str, size, short_branch: bool, ops: List[Operand]):
        here = self.pc  # address of the opcode word

        def finish(opword: int, exts: List[int]):
            self._emit_word(opword)
            self._emit_words(exts)

        # --- no-operand instructions ---
        simple = {"nop": 0x4E71, "rts": 0x4E75, "rte": 0x4E73, "rtr": 0x4E77,
                  "reset": 0x4E70, "illegal": 0x4AFC, "trapv": 0x4E76}
        if mnem in simple:
            finish(simple[mnem], [])
            return

        if mnem == "stop":
            value = self._eval(ops[0].expr) if ops else 0x2700
            finish(0x4E72, [value & 0xFFFF])
            return

        if mnem == "trap":
            finish(0x4E40 | (self._eval(ops[0].expr) & 15), [])
            return

        if mnem == "link":
            disp = self._eval(ops[1].expr)
            finish(0x4E50 | ops[0].reg, [disp & 0xFFFF])
            return
        if mnem == "unlk":
            finish(0x4E58 | ops[0].reg, [])
            return

        # --- branches ---
        if mnem in ("bra", "bsr") or (mnem.startswith("b") and mnem[1:] in CONDITIONS):
            cc = 0 if mnem == "bra" else 1 if mnem == "bsr" else CONDITIONS[mnem[1:]]
            if mnem not in ("bra", "bsr") and cc < 2:
                raise AssemblerError(f"cannot branch on condition {mnem[1:]!r}")
            target = self._eval(ops[0].expr)
            if short_branch:
                disp = target - (here + 2)
                if self.strict and (disp == 0 or not -0x80 <= disp <= 0x7F):
                    raise AssemblerError(f"short branch displacement {disp} invalid")
                finish(0x6000 | (cc << 8) | (disp & 0xFF), [])
            else:
                disp = target - (here + 2)
                self._check_disp16(disp)
                finish(0x6000 | (cc << 8), [disp & 0xFFFF])
            return

        if mnem.startswith("db"):  # dbf/dbra/dbcc...
            tail = mnem[2:]
            cc = 1 if tail in ("ra", "f") else CONDITIONS.get(tail)
            if cc is None:
                raise AssemblerError(f"unknown mnemonic {mnem!r}")
            target = self._eval(ops[1].expr)
            disp = target - (here + 2)
            self._check_disp16(disp)
            finish(0x50C8 | (cc << 8) | ops[0].reg, [disp & 0xFFFF])
            return

        if mnem.startswith("s") and mnem[1:] in CONDITIONS:
            cc = CONDITIONS[mnem[1:]]
            exts: List[int] = []
            mode, reg = self._ea(ops[0], 1, exts, here + 2)
            finish(0x50C0 | (cc << 8) | (mode << 3) | reg, exts)
            return

        # --- moves ---
        if mnem in ("move", "movea"):
            self._encode_move(size, ops, here)
            return
        if mnem == "moveq":
            value = self._eval(ops[0].expr)
            self._check_range(value, -0x80, 0xFF)
            finish(0x7000 | (ops[1].reg << 9) | (value & 0xFF), [])
            return
        if mnem == "movem":
            self._encode_movem(size or 2, ops, here)
            return
        if mnem == "lea":
            exts = []
            mode, reg = self._ea(ops[0], 4, exts, here + 2)
            if ops[1].kind != "areg":
                raise AssemblerError("lea destination must be an address register")
            finish(0x41C0 | (ops[1].reg << 9) | (mode << 3) | reg, exts)
            return
        if mnem == "pea":
            exts = []
            mode, reg = self._ea(ops[0], 4, exts, here + 2)
            finish(0x4840 | (mode << 3) | reg, exts)
            return
        if mnem == "exg":
            a, b = ops
            if a.kind == "dreg" and b.kind == "dreg":
                finish(0xC140 | (a.reg << 9) | b.reg, [])
            elif a.kind == "areg" and b.kind == "areg":
                finish(0xC148 | (a.reg << 9) | b.reg, [])
            elif a.kind == "dreg" and b.kind == "areg":
                finish(0xC188 | (a.reg << 9) | b.reg, [])
            elif a.kind == "areg" and b.kind == "dreg":
                finish(0xC188 | (b.reg << 9) | a.reg, [])
            else:
                raise AssemblerError("exg needs two registers")
            return
        if mnem == "swap":
            finish(0x4840 | ops[0].reg, [])
            return
        if mnem == "ext":
            finish((0x4880 if (size or 2) == 2 else 0x48C0) | ops[0].reg, [])
            return

        # --- jumps ---
        if mnem in ("jmp", "jsr"):
            exts = []
            mode, reg = self._ea(ops[0], 4, exts, here + 2)
            base = 0x4EC0 if mnem == "jmp" else 0x4E80
            finish(base | (mode << 3) | reg, exts)
            return

        # --- single-operand ---
        if mnem in ("clr", "neg", "negx", "not", "tst"):
            sz = size or 2
            base = {"negx": 0x4000, "clr": 0x4200, "neg": 0x4400,
                    "not": 0x4600, "tst": 0x4A00}[mnem]
            exts = []
            mode, reg = self._ea(ops[0], sz, exts, here + 2)
            finish(base | (SIZE_BITS[sz] << 6) | (mode << 3) | reg, exts)
            return

        # --- shifts ---
        if mnem in ("asl", "asr", "lsl", "lsr", "roxl", "roxr", "rol", "ror"):
            kind = {"as": 0, "ls": 1, "rox": 2, "ro": 3}[mnem.rstrip("lr")]
            left = mnem[-1] == "l"
            if len(ops) == 1:  # memory form
                exts = []
                mode, reg = self._ea(ops[0], 2, exts, here + 2)
                word = 0xE0C0 | (kind << 9) | (mode << 3) | reg
                if left:
                    word |= 0x0100
                finish(word, exts)
                return
            sz = size or 2
            src, dst = ops
            if dst.kind != "dreg":
                raise AssemblerError("register shift destination must be Dn")
            word = 0xE000 | (SIZE_BITS[sz] << 6) | (kind << 3) | dst.reg
            if left:
                word |= 0x0100
            if src.kind == "imm":
                cnt = self._eval(src.expr)
                self._check_range(cnt, 1, 8)
                word |= ((cnt & 7) << 9)
            elif src.kind == "dreg":
                word |= 0x0020 | (src.reg << 9)
            else:
                raise AssemblerError("bad shift count operand")
            finish(word, [])
            return

        # --- bit operations ---
        if mnem in ("btst", "bchg", "bclr", "bset"):
            btype = {"btst": 0, "bchg": 1, "bclr": 2, "bset": 3}[mnem]
            src, dst = ops
            exts: List[int] = []
            if src.kind == "imm":
                num = self._eval(src.expr)
                exts.append(num & 0xFF)
                mode, reg = self._ea(dst, 1, exts, here + 2)
                finish(0x0800 | (btype << 6) | (mode << 3) | reg, exts)
            elif src.kind == "dreg":
                mode, reg = self._ea(dst, 1, exts, here + 2)
                finish(0x0100 | (src.reg << 9) | (btype << 6) | (mode << 3) | reg, exts)
            else:
                raise AssemblerError("bit number must be immediate or Dn")
            return

        # --- BCD, TAS, CHK, MOVEP ---
        if mnem in ("abcd", "sbcd"):
            base = 0xC100 if mnem == "abcd" else 0x8100
            src, dst = ops
            if src.kind == "dreg" and dst.kind == "dreg":
                finish(base | (dst.reg << 9) | src.reg, [])
            elif src.kind == "predec" and dst.kind == "predec":
                finish(base | (dst.reg << 9) | 0x0008 | src.reg, [])
            else:
                raise AssemblerError(f"{mnem} operands must both be Dn "
                                     "or -(An)")
            return
        if mnem == "nbcd":
            exts = []
            mode, reg = self._ea(ops[0], 1, exts, here + 2)
            finish(0x4800 | (mode << 3) | reg, exts)
            return
        if mnem == "tas":
            exts = []
            mode, reg = self._ea(ops[0], 1, exts, here + 2)
            finish(0x4AC0 | (mode << 3) | reg, exts)
            return
        if mnem == "chk":
            exts = []
            mode, reg = self._ea(ops[0], 2, exts, here + 2)
            if ops[1].kind != "dreg":
                raise AssemblerError("chk destination must be Dn")
            finish(0x4180 | (ops[1].reg << 9) | (mode << 3) | reg, exts)
            return
        if mnem == "movep":
            src, dst = ops
            sz = size or 2
            if src.kind == "dreg" and dst.kind in ("disp", "ind"):
                to_reg = False
                dreg, mem = src.reg, dst
            elif dst.kind == "dreg" and src.kind in ("disp", "ind"):
                to_reg = True
                dreg, mem = dst.reg, src
            else:
                raise AssemblerError("movep needs Dn and d16(An)")
            opmode = (4 if to_reg else 6) | (1 if sz == 4 else 0)
            disp = self._eval(mem.expr) if mem.expr else 0
            finish((dreg << 9) | (opmode << 6) | 0x0008 | mem.reg,
                   [disp & 0xFFFF])
            return

        # --- mul/div ---
        if mnem in ("mulu", "muls", "divu", "divs"):
            exts = []
            mode, reg = self._ea(ops[0], 2, exts, here + 2)
            if ops[1].kind != "dreg":
                raise AssemblerError(f"{mnem} destination must be Dn")
            base = {"mulu": 0xC0C0, "muls": 0xC1C0, "divu": 0x80C0, "divs": 0x81C0}[mnem]
            finish(base | (ops[1].reg << 9) | (mode << 3) | reg, exts)
            return

        # --- two-operand arithmetic / logic ---
        if mnem in ("add", "adda", "addi", "addq", "addx",
                    "sub", "suba", "subi", "subq", "subx",
                    "cmp", "cmpa", "cmpi", "cmpm",
                    "and", "andi", "or", "ori", "eor", "eori"):
            self._encode_arith(mnem, size, ops, here)
            return

        raise AssemblerError(f"unknown mnemonic {mnem!r}")

    def _encode_move(self, size, ops: List[Operand], here: int):
        src, dst = ops
        sz = size or 2
        # Special registers.
        if dst.kind == "sr":
            exts = []
            mode, reg = self._ea(src, 2, exts, here + 2)
            self._emit_word(0x46C0 | (mode << 3) | reg)
            self._emit_words(exts)
            return
        if dst.kind == "ccr":
            exts = []
            mode, reg = self._ea(src, 2, exts, here + 2)
            self._emit_word(0x44C0 | (mode << 3) | reg)
            self._emit_words(exts)
            return
        if src.kind == "sr":
            exts = []
            mode, reg = self._ea(dst, 2, exts, here + 2)
            self._emit_word(0x40C0 | (mode << 3) | reg)
            self._emit_words(exts)
            return
        if dst.kind == "usp":
            self._emit_word(0x4E60 | src.reg)
            return
        if src.kind == "usp":
            self._emit_word(0x4E68 | dst.reg)
            return

        szbits = {1: 1, 2: 3, 4: 2}[sz]
        exts: List[int] = []
        smode, sreg = self._ea(src, sz, exts, here + 2)
        dmode, dreg = self._ea(dst, sz, exts, here + 2)
        if dst.kind in ("pcdisp", "pcindex", "imm"):
            raise AssemblerError("invalid move destination")
        self._emit_word((szbits << 12) | (dreg << 9) | (dmode << 6)
                        | (smode << 3) | sreg)
        self._emit_words(exts)

    def _encode_movem(self, size: int, ops: List[Operand], here: int):
        if ops[0].kind == "reglist" or (ops[0].kind in ("dreg", "areg")):
            # regs -> memory
            mask = ops[0].reglist if ops[0].kind == "reglist" else (
                1 << (ops[0].reg + (8 if ops[0].kind == "areg" else 0)))
            dst = ops[1]
            exts: List[int] = []
            mode, reg = self._ea(dst, size, exts, here + 4)
            if dst.kind == "predec":
                mask = _reverse16(mask)  # predecrement form: bit 0 means A7
            word = 0x4880 | (mode << 3) | reg
            if size == 4:
                word |= 0x0040
            self._emit_word(word)
            self._emit_word(mask)
            self._emit_words(exts)
        else:
            # memory -> regs
            src = ops[0]
            tgt = ops[1]
            mask = tgt.reglist if tgt.kind == "reglist" else (
                1 << (tgt.reg + (8 if tgt.kind == "areg" else 0)))
            exts = []
            mode, reg = self._ea(src, size, exts, here + 4)
            word = 0x4C80 | (mode << 3) | reg
            if size == 4:
                word |= 0x0040
            self._emit_word(word)
            self._emit_word(mask)
            self._emit_words(exts)

    def _encode_arith(self, mnem: str, size, ops: List[Operand], here: int):
        sz = size or 2
        src, dst = ops
        base_by_group = {"add": 0xD000, "sub": 0x9000, "cmp": 0xB000,
                         "and": 0xC000, "or": 0x8000, "eor": 0xB000}
        immed_by_group = {"add": (0x0600, True), "sub": (0x0400, True),
                          "cmp": (0x0C00, False), "and": (0x0200, False),
                          "or": (0x0000, False), "eor": (0x0A00, False)}

        group = mnem.rstrip("aiqmx") if mnem not in ("and", "or") else mnem
        if mnem in ("andi", "ori", "eori"):
            group = mnem[:-1]
        if mnem in ("addx", "subx"):
            group = mnem[:-1]

        # ANDI/ORI/EORI to CCR or SR.
        if dst.kind in ("ccr", "sr") and group in ("and", "or", "eor"):
            if src.kind != "imm":
                raise AssemblerError(f"{mnem} to {dst.kind} needs an immediate")
            base = {"or": 0x003C, "and": 0x023C, "eor": 0x0A3C}[group]
            if dst.kind == "sr":
                base |= 0x0040
            self._emit_word(base)
            self._emit_word(self._eval(src.expr) & 0xFFFF)
            return

        # ADDQ/SUBQ.
        if mnem in ("addq", "subq"):
            data = self._eval(src.expr)
            self._check_range(data, 1, 8)
            exts: List[int] = []
            mode, reg = self._ea(dst, sz, exts, here + 2)
            word = 0x5000 | ((data & 7) << 9) | (SIZE_BITS[sz] << 6) | (mode << 3) | reg
            if mnem == "subq":
                word |= 0x0100
            self._emit_word(word)
            self._emit_words(exts)
            return

        # ADDX/SUBX.
        if mnem in ("addx", "subx"):
            base = 0xD100 if mnem == "addx" else 0x9100
            if src.kind == "dreg" and dst.kind == "dreg":
                word = base | (dst.reg << 9) | (SIZE_BITS[sz] << 6) | src.reg
            elif src.kind == "predec" and dst.kind == "predec":
                word = base | (dst.reg << 9) | (SIZE_BITS[sz] << 6) | 0x0008 | src.reg
            else:
                raise AssemblerError(f"{mnem} operands must both be Dn or -(An)")
            self._emit_word(word)
            return

        # CMPM (An)+,(An)+.
        if mnem == "cmpm":
            if src.kind != "postinc" or dst.kind != "postinc":
                raise AssemblerError("cmpm operands must be (An)+")
            self._emit_word(0xB108 | (dst.reg << 9) | (SIZE_BITS[sz] << 6) | src.reg)
            return

        # ADDA/SUBA/CMPA (explicit or via address-register destination).
        if mnem in ("adda", "suba", "cmpa") or dst.kind == "areg":
            if dst.kind != "areg":
                raise AssemblerError(f"{mnem} destination must be An")
            group2 = {"adda": "add", "suba": "sub", "cmpa": "cmp"}.get(mnem, group)
            base = base_by_group[group2]
            opmode = 3 if sz == 2 else 7
            if sz == 1:
                raise AssemblerError("byte size invalid with address register")
            exts = []
            mode, reg = self._ea(src, sz, exts, here + 2)
            self._emit_word(base | (dst.reg << 9) | (opmode << 6) | (mode << 3) | reg)
            self._emit_words(exts)
            return

        # Immediate forms (ADDI etc.), chosen explicitly or when src is #imm
        # (except EOR which always uses the register form when src is Dn).
        use_imm = mnem in ("addi", "subi", "cmpi", "andi", "ori", "eori") or (
            src.kind == "imm" and mnem in ("add", "sub", "cmp", "and", "or", "eor"))
        if use_imm and src.kind == "imm":
            base, _ = immed_by_group[group]
            imm = self._eval(src.expr)
            exts = []
            if sz == 4:
                exts += [(imm >> 16) & 0xFFFF, imm & 0xFFFF]
            else:
                exts.append(imm & (0xFF if sz == 1 else 0xFFFF))
            mode, reg = self._ea(dst, sz, exts, here + 2)
            self._emit_word(base | (SIZE_BITS[sz] << 6) | (mode << 3) | reg)
            self._emit_words(exts)
            return

        base = base_by_group[group]
        if group == "eor":
            # EOR only supports Dn -> <ea>.
            if src.kind != "dreg":
                raise AssemblerError("eor source must be Dn or immediate")
            exts = []
            mode, reg = self._ea(dst, sz, exts, here + 2)
            self._emit_word(0xB000 | (src.reg << 9) | ((4 + SIZE_BITS[sz]) << 6)
                            | (mode << 3) | reg)
            self._emit_words(exts)
            return

        if dst.kind == "dreg":
            exts = []
            mode, reg = self._ea(src, sz, exts, here + 2)
            self._emit_word(base | (dst.reg << 9) | (SIZE_BITS[sz] << 6)
                            | (mode << 3) | reg)
            self._emit_words(exts)
            return
        if src.kind == "dreg" and group != "cmp":
            exts = []
            mode, reg = self._ea(dst, sz, exts, here + 2)
            self._emit_word(base | (src.reg << 9) | ((4 + SIZE_BITS[sz]) << 6)
                            | (mode << 3) | reg)
            self._emit_words(exts)
            return
        raise AssemblerError(f"unsupported {mnem} operand combination "
                             f"({src.kind} -> {dst.kind})")


def _reverse16(mask: int) -> int:
    out = 0
    for i in range(16):
        if mask & (1 << i):
            out |= 1 << (15 - i)
    return out


def _split_top_commas_respecting_strings(text: str) -> List[str]:
    parts, cur, in_str = [], [], False
    for ch in text:
        if ch == '"':
            in_str = not in_str
        if ch == "," and not in_str:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur).strip())
    return [p for p in parts if p]


def assemble(source: str, origin: int = 0,
             symbols: Optional[Dict[str, int]] = None) -> Program:
    """Assemble ``source`` at ``origin`` and return the :class:`Program`."""
    return Assembler(symbols).assemble(source, origin)
