"""68000 instruction handler builders.

:func:`build_handler` maps a 16-bit opcode word to a specialised closure
``handler(cpu)`` or ``None`` if the word does not decode (the CPU then
raises the appropriate guest exception).  Closures capture everything
static about the encoding (size, registers, addressing mode) so the hot
interpreter loop does no re-decoding.

The full 68000 integer ISA is implemented, including the BCD arithmetic
(ABCD/SBCD/NBCD), MOVEP, TAS, CHK and TRAPV instructions that Palm OS
application code rarely uses.  For instructions whose condition-code
behaviour the 68000 manual leaves partially undefined (the BCD group's
N and V), the common "follows the binary result" convention is used.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:
    from .cpu import CPU

M32 = 0xFFFFFFFF

SIZE_BY_BITS = {0: 1, 1: 2, 2: 4}
MASKS = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF}
MSBS = {1: 0x80, 2: 0x8000, 4: 0x80000000}
NBITS = {1: 8, 2: 16, 4: 32}

Handler = Callable[["CPU"], None]
#: Read-modify-write kernels take ``(cpu, old)`` and return the new value.
ModifyFn = Callable[["CPU", int], int]


def sext32(value: int, size: int) -> int:
    """Sign-extend ``value`` of ``size`` bytes to an unsigned 32-bit int."""
    value &= MASKS[size]
    if value & MSBS[size]:
        value |= M32 ^ MASKS[size]
    return value


def to_signed(value: int, size: int) -> int:
    """Interpret ``value`` as a signed two's-complement integer."""
    value &= MASKS[size]
    if value & MSBS[size]:
        value -= MASKS[size] + 1
    return value


# ----------------------------------------------------------------------
# Addressing-mode classes (used to reject malformed encodings)
# ----------------------------------------------------------------------
def _ea_class(mode: int, reg: int) -> str | None:
    if mode == 0:
        return "dreg"
    if mode == 1:
        return "areg"
    if mode in (2, 3, 4, 5, 6):
        return "mem"
    if mode == 7:
        return {0: "absw", 1: "absl", 2: "pcdisp", 3: "pcidx", 4: "imm"}.get(reg)
    return None


def ea_is(mode: int, reg: int, spec: str) -> bool:
    """Does (mode, reg) belong to addressing class ``spec``?"""
    cls = _ea_class(mode, reg)
    if cls is None:
        return False
    if spec == "all":
        return True
    if spec == "data":
        return cls != "areg"
    if spec == "memory":
        return cls not in ("dreg", "areg")
    if spec == "control":
        return cls in ("mem", "absw", "absl", "pcdisp", "pcidx") and mode not in (3, 4)
    if spec == "control_post":  # control + postincrement (MOVEM load)
        return ea_is(mode, reg, "control") or mode == 3
    if spec == "control_pre":  # control + predecrement (MOVEM store)
        return ea_is(mode, reg, "control") or mode == 4
    if spec == "alterable":
        return cls in ("dreg", "areg", "mem", "absw", "absl")
    if spec == "data_alterable":
        return cls in ("dreg", "mem", "absw", "absl")
    if spec == "memory_alterable":
        return cls in ("mem", "absw", "absl")
    raise ValueError(f"unknown EA spec {spec!r}")


# ----------------------------------------------------------------------
# Effective-address computation and operand access
# ----------------------------------------------------------------------
def _indexed(cpu: CPU, base: int) -> int:
    ext = cpu.fetch_ext16()
    xreg = (ext >> 12) & 7
    idx = cpu.a[xreg] if ext & 0x8000 else cpu.d[xreg]
    if not ext & 0x0800:  # word index
        idx = sext32(idx & 0xFFFF, 2)
    disp = sext32(ext & 0xFF, 1)
    return (base + disp + idx) & M32


def ea_addr(cpu: CPU, mode: int, reg: int, size: int) -> int:
    """Compute the address of a memory operand, fetching extension words."""
    a = cpu.a
    if mode == 2:
        return a[reg]
    if mode == 3:
        addr = a[reg]
        inc = 2 if (size == 1 and reg == 7) else size
        a[reg] = (addr + inc) & M32
        return addr
    if mode == 4:
        dec = 2 if (size == 1 and reg == 7) else size
        addr = (a[reg] - dec) & M32
        a[reg] = addr
        return addr
    if mode == 5:
        return (a[reg] + sext32(cpu.fetch_ext16(), 2)) & M32
    if mode == 6:
        return _indexed(cpu, a[reg])
    # mode == 7
    if reg == 0:
        return sext32(cpu.fetch_ext16(), 2)
    if reg == 1:
        return cpu.fetch_ext32()
    if reg == 2:
        base = cpu.pc
        return (base + sext32(cpu.fetch_ext16(), 2)) & M32
    if reg == 3:
        return _indexed(cpu, cpu.pc)
    raise AssertionError(f"no address for mode={mode} reg={reg}")


def read_ea(cpu: CPU, mode: int, reg: int, size: int) -> int:
    if mode == 0:
        return cpu.d[reg] & MASKS[size]
    if mode == 1:
        return cpu.a[reg] & MASKS[size]
    if mode == 7 and reg == 4:
        if size == 4:
            return cpu.fetch_ext32()
        return cpu.fetch_ext16() & MASKS[size]
    return cpu.read(ea_addr(cpu, mode, reg, size), size)


def write_dreg(cpu: CPU, reg: int, size: int, value: int) -> None:
    mask = MASKS[size]
    cpu.d[reg] = (cpu.d[reg] & ~mask & M32) | (value & mask)


def write_ea(cpu: CPU, mode: int, reg: int, size: int,
             value: int) -> None:
    if mode == 0:
        write_dreg(cpu, reg, size, value)
    elif mode == 1:
        cpu.a[reg] = sext32(value, size)
    else:
        cpu.write(ea_addr(cpu, mode, reg, size), size, value)


def modify_ea(cpu: CPU, mode: int, reg: int, size: int,
              fn: Callable[[int], int]) -> int:
    """Read-modify-write an operand; returns the new value."""
    if mode == 0:
        old = cpu.d[reg] & MASKS[size]
        new = fn(old) & MASKS[size]
        write_dreg(cpu, reg, size, new)
        return new
    addr = ea_addr(cpu, mode, reg, size)
    old = cpu.read(addr, size)
    new = fn(old) & MASKS[size]
    cpu.write(addr, size, new)
    return new


# ----------------------------------------------------------------------
# Build-time operand specialisation
# ----------------------------------------------------------------------
# ea_addr/read_ea/write_ea/modify_ea re-dispatch on (mode, reg, size)
# at *execution* time even though all three are static per opcode word.
# The factories below bake that dispatch into closures when the table
# is built.  Runtime semantics — extension-word fetch order, cycle
# counting, address-register update timing, operand masking — are
# identical to the generic helpers, which remain for the dynamic call
# sites (e.g. MOVEM's once-per-execution register walk).

def make_ea_addr(mode: int, reg: int, size: int) -> Callable[[CPU], int]:
    """Closure computing a memory operand's address (modes 2-7)."""
    if mode == 2:
        def addr_of(cpu: CPU) -> int:
            return cpu.a[reg]
    elif mode == 3:
        inc = 2 if (size == 1 and reg == 7) else size

        def addr_of(cpu: CPU) -> int:
            a = cpu.a
            addr = a[reg]
            a[reg] = (addr + inc) & M32
            return addr
    elif mode == 4:
        dec = 2 if (size == 1 and reg == 7) else size

        def addr_of(cpu: CPU) -> int:
            a = cpu.a
            addr = (a[reg] - dec) & M32
            a[reg] = addr
            return addr
    elif mode == 5:
        def addr_of(cpu: CPU) -> int:
            return (cpu.a[reg] + sext32(cpu.fetch_ext16(), 2)) & M32
    elif mode == 6:
        def addr_of(cpu: CPU) -> int:
            return _indexed(cpu, cpu.a[reg])
    elif mode == 7 and reg == 0:
        def addr_of(cpu: CPU) -> int:
            return sext32(cpu.fetch_ext16(), 2)
    elif mode == 7 and reg == 1:
        def addr_of(cpu: CPU) -> int:
            return cpu.fetch_ext32()
    elif mode == 7 and reg == 2:
        def addr_of(cpu: CPU) -> int:
            base = cpu.pc
            return (base + sext32(cpu.fetch_ext16(), 2)) & M32
    elif mode == 7 and reg == 3:
        def addr_of(cpu: CPU) -> int:
            return _indexed(cpu, cpu.pc)
    else:
        raise AssertionError(f"no address for mode={mode} reg={reg}")
    return addr_of


_BUS_READ = {1: "read8", 2: "read16", 4: "read32"}
_BUS_WRITE = {1: "write8", 2: "write16", 4: "write32"}


def _mem_addr_code(mode: int, reg: int, size: int) -> Optional[str]:
    """Source lines leaving the operand address (unmasked) in ``addr``,
    for the register-relative modes 2-5 — the overwhelming majority of
    memory operands — or ``None`` for the extension-word modes that
    keep the shared ``make_ea_addr`` closures.  Inlining the address
    arithmetic into the reader/writer/modifier body saves one Python
    call per memory access on the replay hot path."""
    if mode == 2:
        return f"    addr = cpu.a[{reg}]\n"
    if mode == 3:
        inc = 2 if (size == 1 and reg == 7) else size
        return (f"    a = cpu.a\n"
                f"    addr = a[{reg}]\n"
                f"    a[{reg}] = (addr + {inc}) & {M32}\n")
    if mode == 4:
        dec = 2 if (size == 1 and reg == 7) else size
        return (f"    a = cpu.a\n"
                f"    addr = (a[{reg}] - {dec}) & {M32}\n"
                f"    a[{reg}] = addr\n")
    if mode == 5:
        return (f"    addr = (cpu.a[{reg}]"
                f" + sext32(cpu.fetch_ext16(), 2)) & {M32}\n")
    return None


def _specialize(src: str, extra_env: dict | None = None,
                name: str = "<ea-specialised>") -> Any:
    """Compile one specialised accessor from source (build-time only).

    ``extra_env`` extends the exec namespace: the whole-block fuser
    (:mod:`repro.m68k.fuse`) reuses this entry point to compile fused
    superblock bodies, injecting bound bus methods, the profiler's
    trace-append, handler closures and exception types per block.
    """
    env: dict = {"sext32": sext32}
    if extra_env:
        env.update(extra_env)
    code = _CODE_CACHE.get(src)
    if code is None:
        code = _CODE_CACHE[src] = compile(src, name, "exec")
    exec(code, env)
    return env["f"]


#: Source -> code-object cache: fused superblock bodies recompile the
#: same text on every emulator instance (same ROM, same hot blocks) —
#: the code object is environment-free, only ``exec`` binds per-block
#: state, so it is shared process-wide.  Bounded in practice by the
#: distinct hot blocks of the ROMs a process touches.
_CODE_CACHE: dict = {}


def _move_read_code(mode: int, reg: int, size: int) -> Optional[str]:
    """Source lines leaving the (masked) source operand in ``val``, or
    ``None`` when the mode needs the shared closures."""
    mask = MASKS[size]
    if mode == 0:
        return f"    val = cpu.d[{reg}] & {mask}\n"
    if mode == 1:
        return f"    val = cpu.a[{reg}] & {mask}\n"
    if mode == 7 and reg == 4:
        if size == 4:
            return "    val = cpu.fetch_ext32()\n"
        return f"    val = cpu.fetch_ext16() & {mask}\n"
    code = _mem_addr_code(mode, reg, size)
    if code is None:
        return None
    cost = 8 if size == 4 else 4
    return (code +
            f"    cpu.cycles += {cost}\n"
            f"    val = cpu.bus.{_BUS_READ[size]}(addr & {M32})\n")


def _move_write_code(mode: int, reg: int, size: int) -> Optional[str]:
    """Source lines storing ``val`` (already masked) to the
    destination operand, or ``None``."""
    if mode == 0:
        inv = ~MASKS[size] & M32
        return (f"    d = cpu.d\n"
                f"    d[{reg}] = (d[{reg}] & {inv}) | val\n")
    code = _mem_addr_code(mode, reg, size)
    if code is None:
        return None
    cost = 8 if size == 4 else 4
    return (code +
            f"    cpu.cycles += {cost}\n"
            f"    cpu.bus.{_BUS_WRITE[size]}(addr & {M32}, val)\n")


def make_reader(mode: int, reg: int, size: int) -> Callable[[CPU], int]:
    """Closure with the semantics of ``read_ea(cpu, mode, reg, size)``."""
    mask = MASKS[size]
    if mode == 0:
        def read(cpu: CPU) -> int:
            return cpu.d[reg] & mask
        return read
    if mode == 1:
        def read(cpu: CPU) -> int:
            return cpu.a[reg] & mask
        return read
    if mode == 7 and reg == 4:
        if size == 4:
            def read(cpu: CPU) -> int:
                return cpu.fetch_ext32()
        else:
            def read(cpu: CPU) -> int:
                return cpu.fetch_ext16() & mask
        return read
    cost = 8 if size == 4 else 4
    code = _mem_addr_code(mode, reg, size)
    if code is not None:
        return _specialize(
            "def f(cpu):\n" + code +
            f"    cpu.cycles += {cost}\n"
            f"    return cpu.bus.{_BUS_READ[size]}(addr & {M32})\n")
    addr_of = make_ea_addr(mode, reg, size)
    if size == 1:
        def read(cpu: CPU) -> int:
            addr = addr_of(cpu) & M32
            cpu.cycles += 4
            return cpu.bus.read8(addr)
    elif size == 2:
        def read(cpu: CPU) -> int:
            addr = addr_of(cpu) & M32
            cpu.cycles += 4
            return cpu.bus.read16(addr)
    else:
        def read(cpu: CPU) -> int:
            addr = addr_of(cpu) & M32
            cpu.cycles += 8
            return cpu.bus.read32(addr)
    return read


def make_writer(mode: int, reg: int,
                size: int) -> Callable[[CPU, int], None]:
    """Closure with the semantics of ``write_ea(cpu, ..., value)``."""
    mask = MASKS[size]
    if mode == 0:
        inv = ~mask & M32

        def write(cpu: CPU, value: int) -> None:
            d = cpu.d
            d[reg] = (d[reg] & inv) | (value & mask)
        return write
    if mode == 1:
        def write(cpu: CPU, value: int) -> None:
            cpu.a[reg] = sext32(value, size)
        return write
    cost = 8 if size == 4 else 4
    code = _mem_addr_code(mode, reg, size)
    if code is not None:
        return _specialize(
            "def f(cpu, value):\n" + code +
            f"    cpu.cycles += {cost}\n"
            f"    cpu.bus.{_BUS_WRITE[size]}(addr & {M32}, value & {mask})\n")
    addr_of = make_ea_addr(mode, reg, size)
    if size == 1:
        def write(cpu: CPU, value: int) -> None:
            addr = addr_of(cpu) & M32
            cpu.cycles += 4
            cpu.bus.write8(addr, value & 0xFF)
    elif size == 2:
        def write(cpu: CPU, value: int) -> None:
            addr = addr_of(cpu) & M32
            cpu.cycles += 4
            cpu.bus.write16(addr, value & 0xFFFF)
    else:
        def write(cpu: CPU, value: int) -> None:
            addr = addr_of(cpu) & M32
            cpu.cycles += 8
            cpu.bus.write32(addr, value & M32)
    return write


def make_modifier(mode: int, reg: int,
                  size: int) -> Callable[[CPU, ModifyFn], int]:
    """Closure ``modify(cpu, fn)`` with the semantics of ``modify_ea``,
    except ``fn`` takes ``(cpu, old)`` so callers can build it once at
    table-build time instead of allocating a lambda per execution."""
    mask = MASKS[size]
    if mode == 0:
        inv = ~mask & M32

        def modify(cpu: CPU, fn: ModifyFn) -> int:
            d = cpu.d
            old = d[reg] & mask
            new = fn(cpu, old) & mask
            d[reg] = (d[reg] & inv) | new
            return new
        return modify
    cost = 8 if size == 4 else 4
    code = _mem_addr_code(mode, reg, size)
    if code is not None:
        return _specialize(
            "def f(cpu, fn):\n" + code +
            f"    addr &= {M32}\n"
            f"    cpu.cycles += {cost}\n"
            f"    old = cpu.bus.{_BUS_READ[size]}(addr)\n"
            f"    new = fn(cpu, old) & {mask}\n"
            f"    cpu.cycles += {cost}\n"
            f"    cpu.bus.{_BUS_WRITE[size]}(addr, new)\n"
            f"    return new\n")
    addr_of = make_ea_addr(mode, reg, size)
    if size == 1:
        def modify(cpu: CPU, fn: ModifyFn) -> int:
            addr = addr_of(cpu) & M32
            cpu.cycles += 4
            old = cpu.bus.read8(addr)
            new = fn(cpu, old) & 0xFF
            cpu.cycles += 4
            cpu.bus.write8(addr, new)
            return new
    elif size == 2:
        def modify(cpu: CPU, fn: ModifyFn) -> int:
            addr = addr_of(cpu) & M32
            cpu.cycles += 4
            old = cpu.bus.read16(addr)
            new = fn(cpu, old) & 0xFFFF
            cpu.cycles += 4
            cpu.bus.write16(addr, new)
            return new
    else:
        def modify(cpu: CPU, fn: ModifyFn) -> int:
            addr = addr_of(cpu) & M32
            cpu.cycles += 8
            old = cpu.bus.read32(addr)
            new = fn(cpu, old) & M32
            cpu.cycles += 8
            cpu.bus.write32(addr, new)
            return new
    return modify


def _clr_fn(cpu: CPU, v: int) -> int:
    return 0


def _not_fn(cpu: CPU, v: int) -> int:
    return ~v


# ----------------------------------------------------------------------
# Flag computation
# ----------------------------------------------------------------------
def set_nz(cpu: CPU, r: int, size: int) -> None:
    cpu.n = 1 if r & MSBS[size] else 0
    cpu.z = 1 if (r & MASKS[size]) == 0 else 0


def flags_logic(cpu: CPU, r: int, size: int) -> None:
    set_nz(cpu, r, size)
    cpu.v = 0
    cpu.c = 0


def flags_add(cpu: CPU, a: int, b: int, size: int, *,
              with_x: bool = True) -> int:
    mask, msb = MASKS[size], MSBS[size]
    total = a + b
    r = total & mask
    cpu.c = 1 if total > mask else 0
    cpu.v = 1 if (~(a ^ b)) & (a ^ r) & msb else 0
    if with_x:
        cpu.x = cpu.c
    cpu.n = 1 if r & msb else 0
    cpu.z = 1 if r == 0 else 0
    return r


def flags_sub(cpu: CPU, a: int, b: int, size: int, *,
              with_x: bool = True) -> int:
    """Compute ``a - b`` and set NZVC (and X when requested)."""
    mask, msb = MASKS[size], MSBS[size]
    r = (a - b) & mask
    cpu.c = 1 if b > a else 0
    cpu.v = 1 if (a ^ b) & (a ^ r) & msb else 0
    if with_x:
        cpu.x = cpu.c
    cpu.n = 1 if r & msb else 0
    cpu.z = 1 if r == 0 else 0
    return r


def flags_cmp(cpu: CPU, a: int, b: int, size: int) -> int:
    """``flags_sub(..., with_x=False)`` without the keyword overhead —
    the compare instructions are hot enough for it to show."""
    mask, msb = MASKS[size], MSBS[size]
    r = (a - b) & mask
    cpu.c = 1 if b > a else 0
    cpu.v = 1 if (a ^ b) & (a ^ r) & msb else 0
    cpu.n = 1 if r & msb else 0
    cpu.z = 1 if r == 0 else 0
    return r


def cond_true(cpu: CPU, cc: int) -> bool:
    if cc == 0:  # T
        return True
    if cc == 1:  # F
        return False
    if cc == 2:  # HI
        return not (cpu.c or cpu.z)
    if cc == 3:  # LS
        return bool(cpu.c or cpu.z)
    if cc == 4:  # CC
        return not cpu.c
    if cc == 5:  # CS
        return bool(cpu.c)
    if cc == 6:  # NE
        return not cpu.z
    if cc == 7:  # EQ
        return bool(cpu.z)
    if cc == 8:  # VC
        return not cpu.v
    if cc == 9:  # VS
        return bool(cpu.v)
    if cc == 10:  # PL
        return not cpu.n
    if cc == 11:  # MI
        return bool(cpu.n)
    if cc == 12:  # GE
        return cpu.n == cpu.v
    if cc == 13:  # LT
        return cpu.n != cpu.v
    if cc == 14:  # GT
        return not cpu.z and cpu.n == cpu.v
    return bool(cpu.z or cpu.n != cpu.v)  # LE


#: ``COND_CHECKS[cc](cpu)`` == ``cond_true(cpu, cc)`` — the condition
#: code is static per opcode word, so handlers index this at build time.
COND_CHECKS = [
    lambda cpu: True,                                   # T
    lambda cpu: False,                                  # F
    lambda cpu: not (cpu.c or cpu.z),                   # HI
    lambda cpu: bool(cpu.c or cpu.z),                   # LS
    lambda cpu: not cpu.c,                              # CC
    lambda cpu: bool(cpu.c),                            # CS
    lambda cpu: not cpu.z,                              # NE
    lambda cpu: bool(cpu.z),                            # EQ
    lambda cpu: not cpu.v,                              # VC
    lambda cpu: bool(cpu.v),                            # VS
    lambda cpu: not cpu.n,                              # PL
    lambda cpu: bool(cpu.n),                            # MI
    lambda cpu: cpu.n == cpu.v,                         # GE
    lambda cpu: cpu.n != cpu.v,                         # LT
    lambda cpu: not cpu.z and cpu.n == cpu.v,           # GT
    lambda cpu: bool(cpu.z or cpu.n != cpu.v),          # LE
]

#: The same sixteen predicates as source expressions, for generated
#: handlers that inline the test instead of calling through a lambda.
COND_EXPRS = [
    "True", "False",
    "not (cpu.c or cpu.z)", "(cpu.c or cpu.z)",
    "not cpu.c", "cpu.c",
    "not cpu.z", "cpu.z",
    "not cpu.v", "cpu.v",
    "not cpu.n", "cpu.n",
    "cpu.n == cpu.v", "cpu.n != cpu.v",
    "not cpu.z and cpu.n == cpu.v", "(cpu.z or cpu.n != cpu.v)",
]


# ----------------------------------------------------------------------
# Binary-coded decimal arithmetic
# ----------------------------------------------------------------------
def _bcd_add(cpu: CPU, a: int, b: int) -> int:
    """ABCD core: a + b + X in packed BCD, one byte."""
    lo = (a & 0x0F) + (b & 0x0F) + cpu.x
    total = (a & 0xF0) + (b & 0xF0) + lo
    if lo > 0x09:
        total += 0x06
    carry = 0
    if total > 0x99:
        total -= 0xA0
        carry = 1
    r = total & 0xFF
    cpu.c = cpu.x = carry
    if r:
        cpu.z = 0
    cpu.n = 1 if r & 0x80 else 0
    return r


def _bcd_sub(cpu: CPU, a: int, b: int) -> int:
    """SBCD core: a - b - X in packed BCD, one byte."""
    lo = (a & 0x0F) - (b & 0x0F) - cpu.x
    total = (a & 0xF0) - (b & 0xF0) + lo
    if lo < 0:
        total -= 0x06
    carry = 0
    if total < 0:
        total += 0xA0
        carry = 1
    r = total & 0xFF
    cpu.c = cpu.x = carry
    if r:
        cpu.z = 0
    cpu.n = 1 if r & 0x80 else 0
    return r


def _build_bcd_pair(op: int, add: bool) -> Handler:
    """ABCD/SBCD: register form (mode 0) or -(Ay),-(Ax) (mode 1)."""
    ry = op & 7
    rx = (op >> 9) & 7
    mem_form = bool(op & 0x0008)
    core = _bcd_add if add else _bcd_sub

    def handler(cpu: CPU) -> None:
        if mem_form:
            decy = 2 if ry == 7 else 1
            cpu.a[ry] = (cpu.a[ry] - decy) & M32
            src = cpu.read(cpu.a[ry], 1)
            decx = 2 if rx == 7 else 1
            cpu.a[rx] = (cpu.a[rx] - decx) & M32
            dst = cpu.read(cpu.a[rx], 1)
            cpu.write(cpu.a[rx], 1, core(cpu, dst, src))
        else:
            src = cpu.d[ry] & 0xFF
            dst = cpu.d[rx] & 0xFF
            write_dreg(cpu, rx, 1, core(cpu, dst, src))

    return handler


# ----------------------------------------------------------------------
# Group 0: immediates and bit operations
# ----------------------------------------------------------------------
def _build_bitop(op: int) -> Optional[Handler]:
    mode, reg = (op >> 3) & 7, op & 7
    btype = (op >> 6) & 3  # 0 BTST, 1 BCHG, 2 BCLR, 3 BSET
    dynamic = bool(op & 0x0100)
    if dynamic:
        bitreg = (op >> 9) & 7
    spec = "data" if btype == 0 else "data_alterable"
    if not ea_is(mode, reg, spec) or (not dynamic and _ea_class(mode, reg) == "imm"):
        return None

    if mode == 0:
        def handler(cpu: CPU) -> None:
            num = cpu.d[bitreg] if dynamic else cpu.fetch_ext16()
            bit = 1 << (num & 31)
            val = cpu.d[reg]
            cpu.z = 0 if val & bit else 1
            if btype == 1:
                cpu.d[reg] = val ^ bit
            elif btype == 2:
                cpu.d[reg] = val & ~bit & M32
            elif btype == 3:
                cpu.d[reg] = val | bit
        return handler

    if mode == 7 and reg == 4:  # BTST Dn,#imm: no address to specialise;
        # keep the generic path (which rejects it exactly as before).
        def handler(cpu: CPU) -> None:
            num = cpu.d[bitreg] if dynamic else cpu.fetch_ext16()
            bit = 1 << (num & 7)
            addr = ea_addr(cpu, mode, reg, 1)
            val = cpu.read(addr, 1)
            cpu.z = 0 if val & bit else 1
        return handler

    addr_of = make_ea_addr(mode, reg, 1)

    def handler(cpu: CPU) -> None:
        # The bit number (an ext word for the static form) comes from
        # the instruction stream *before* the EA's extension words.
        num = cpu.d[bitreg] if dynamic else cpu.fetch_ext16()
        bit = 1 << (num & 7)
        addr = addr_of(cpu) & M32
        cpu.cycles += 4
        val = cpu.bus.read8(addr)
        cpu.z = 0 if val & bit else 1
        if btype == 1:
            cpu.cycles += 4
            cpu.bus.write8(addr, (val ^ bit) & 0xFF)
        elif btype == 2:
            cpu.cycles += 4
            cpu.bus.write8(addr, (val & ~bit) & 0xFF)
        elif btype == 3:
            cpu.cycles += 4
            cpu.bus.write8(addr, (val | bit) & 0xFF)

    return handler


def _build_movep(op: int) -> Handler:
    """MOVEP: byte-interleaved transfers for 8-bit peripherals."""
    dreg = (op >> 9) & 7
    areg = op & 7
    opmode = (op >> 6) & 7  # 4/5: mem->reg w/l, 6/7: reg->mem w/l
    size = 4 if opmode & 1 else 2
    to_reg = opmode < 6

    def handler(cpu: CPU) -> None:
        addr = (cpu.a[areg] + sext32(cpu.fetch_ext16(), 2)) & M32
        if to_reg:
            value = 0
            for i in range(size):
                value = (value << 8) | cpu.read((addr + 2 * i) & M32, 1)
            write_dreg(cpu, dreg, size, value)
        else:
            value = cpu.d[dreg] & MASKS[size]
            for i in range(size):
                shift = 8 * (size - 1 - i)
                cpu.write((addr + 2 * i) & M32, 1, (value >> shift) & 0xFF)

    return handler


def _build_group0(op: int) -> Optional[Handler]:
    if op & 0x0138 == 0x0108:  # MOVEP
        return _build_movep(op)
    if op & 0x0100 or (op >> 9) & 7 == 4:
        return _build_bitop(op)

    kind = (op >> 9) & 7  # 0 ORI 1 ANDI 2 SUBI 3 ADDI 5 EORI 6 CMPI
    if kind == 7:
        return None
    szbits = (op >> 6) & 3
    if szbits == 3:
        return None
    size = SIZE_BY_BITS[szbits]
    mode, reg = (op >> 3) & 7, op & 7

    # ORI/ANDI/EORI to CCR (byte) or SR (word).
    if mode == 7 and reg == 4 and kind in (0, 1, 5):
        bit_op = {0: lambda a, b: a | b, 1: lambda a, b: a & b, 5: lambda a, b: a ^ b}[kind]
        if size == 1:
            def handler(cpu: CPU) -> None:
                imm = cpu.fetch_ext16() & 0xFF
                cpu.ccr = bit_op(cpu.ccr, imm)
            return handler
        if size == 2:
            def handler(cpu: CPU) -> None:
                imm = cpu.fetch_ext16()
                cpu.sr = bit_op(cpu.sr, imm)
            return handler
        return None

    spec = "data" if kind == 6 else "data_alterable"
    if not ea_is(mode, reg, spec) or _ea_class(mode, reg) == "imm":
        return None

    mask = MASKS[size]

    if kind == 6:  # CMPI
        read = make_reader(mode, reg, size)
        if size == 4:
            def handler(cpu: CPU) -> None:
                imm = cpu.fetch_ext32()
                flags_cmp(cpu, read(cpu), imm, size)
        else:
            def handler(cpu: CPU) -> None:
                imm = cpu.fetch_ext16() & mask
                flags_cmp(cpu, read(cpu), imm, size)
        return handler

    modify = make_modifier(mode, reg, size)

    if kind in (2, 3):  # SUBI / ADDI
        arith = flags_sub if kind == 2 else flags_add
        if size == 4:
            def handler(cpu: CPU) -> None:
                imm = cpu.fetch_ext32()
                modify(cpu, lambda c, v: arith(c, v, imm, size))
        else:
            def handler(cpu: CPU) -> None:
                imm = cpu.fetch_ext16() & mask
                modify(cpu, lambda c, v: arith(c, v, imm, size))
        return handler

    bit_op = {0: lambda a, b: a | b, 1: lambda a, b: a & b, 5: lambda a, b: a ^ b}[kind]

    if size == 4:
        def handler(cpu: CPU) -> None:
            imm = cpu.fetch_ext32()
            r = modify(cpu, lambda c, v: bit_op(v, imm))
            flags_logic(cpu, r, size)
    else:
        def handler(cpu: CPU) -> None:
            imm = cpu.fetch_ext16() & mask
            r = modify(cpu, lambda c, v: bit_op(v, imm))
            flags_logic(cpu, r, size)

    return handler


# ----------------------------------------------------------------------
# Groups 1-3: MOVE / MOVEA
# ----------------------------------------------------------------------
def _build_move(op: int) -> Optional[Handler]:
    size = {1: 1, 2: 4, 3: 2}[op >> 12]
    src_mode, src_reg = (op >> 3) & 7, op & 7
    dst_mode, dst_reg = (op >> 6) & 7, (op >> 9) & 7
    if not ea_is(src_mode, src_reg, "all"):
        return None
    if src_mode == 1 and size == 1:
        return None

    if dst_mode == 1:  # MOVEA
        if size == 1:
            return None
        read = make_reader(src_mode, src_reg, size)
        if size == 4:
            def handler(cpu: CPU) -> None:
                cpu.a[dst_reg] = read(cpu)
        else:
            def handler(cpu: CPU) -> None:
                cpu.a[dst_reg] = sext32(read(cpu), 2)
        return handler

    if not ea_is(dst_mode, dst_reg, "data_alterable"):
        return None

    msb = MSBS[size]

    # MOVE is the most executed opcode by a wide margin; when both
    # operands use common addressing modes, fuse the read, the write
    # and the flag update into one generated body with no inner calls.
    src_code = _move_read_code(src_mode, src_reg, size)
    dst_code = _move_write_code(dst_mode, dst_reg, size)
    if src_code is not None and dst_code is not None:
        return _specialize(
            "def f(cpu):\n" + src_code + dst_code +
            f"    cpu.n = 1 if val & {msb} else 0\n"
            f"    cpu.z = 1 if val == 0 else 0\n"
            f"    cpu.v = 0\n"
            f"    cpu.c = 0\n")

    read = make_reader(src_mode, src_reg, size)
    write = make_writer(dst_mode, dst_reg, size)

    def handler(cpu: CPU) -> None:
        val = read(cpu)
        write(cpu, val)
        cpu.n = 1 if val & msb else 0
        cpu.z = 1 if val == 0 else 0
        cpu.v = 0
        cpu.c = 0

    return handler


# ----------------------------------------------------------------------
# Group 4: miscellaneous
# ----------------------------------------------------------------------
def _build_movem(op: int) -> Optional[Handler]:
    to_regs = bool(op & 0x0400)
    size = 4 if op & 0x0040 else 2
    mode, reg = (op >> 3) & 7, op & 7
    if to_regs:
        if not ea_is(mode, reg, "control_post"):
            return None
    else:
        if not ea_is(mode, reg, "control_pre"):
            return None

    def handler(cpu: CPU) -> None:
        mask = cpu.fetch_ext16()
        if to_regs:
            addr = cpu.a[reg] if mode == 3 else ea_addr(cpu, mode, reg, size)
            for i in range(16):
                if mask & (1 << i):
                    val = cpu.read(addr, size)
                    if size == 2:
                        val = sext32(val, 2)
                    if i < 8:
                        cpu.d[i] = val
                    else:
                        cpu.a[i - 8] = val
                    addr = (addr + size) & M32
            if mode == 3:
                cpu.a[reg] = addr
        elif mode == 4:
            # Predecrement store: mask bit 0 = A7 ... bit 15 = D0.
            snapshot = cpu.d[:] + cpu.a[:]
            addr = cpu.a[reg]
            for i in range(16):
                if mask & (1 << i):
                    addr = (addr - size) & M32
                    cpu.write(addr, size, snapshot[15 - i])
            cpu.a[reg] = addr
        else:
            snapshot = cpu.d[:] + cpu.a[:]
            addr = ea_addr(cpu, mode, reg, size)
            for i in range(16):
                if mask & (1 << i):
                    cpu.write(addr, size, snapshot[i])
                    addr = (addr + size) & M32

    return handler


def _build_group4(op: int) -> Optional[Handler]:
    mode, reg = (op >> 3) & 7, op & 7

    # Fixed encodings first.
    if op == 0x4E70:  # RESET
        def handler(cpu: CPU) -> None:
            hook = getattr(cpu.bus, "on_cpu_reset_instruction", None)
            if hook is not None:
                hook()
        return handler
    if op == 0x4E71:  # NOP
        return lambda cpu: None
    if op == 0x4E72:  # STOP #imm
        def handler(cpu: CPU) -> None:
            cpu.sr = cpu.fetch_ext16()
            cpu.stopped = True
        return handler
    if op == 0x4E76:  # TRAPV
        def handler(cpu: CPU) -> None:
            if cpu.v:
                from .cpu import VEC_TRAPV
                cpu.exception(VEC_TRAPV)
        return handler
    if op == 0x4E73:  # RTE
        def handler(cpu: CPU) -> None:
            sr = cpu.pop16()
            pc = cpu.pop32()
            cpu.sr = sr
            cpu.pc = pc
        return handler
    if op == 0x4E75:  # RTS
        def handler(cpu: CPU) -> None:
            cpu.pc = cpu.pop32()
        return handler
    if op == 0x4E77:  # RTR
        def handler(cpu: CPU) -> None:
            cpu.ccr = cpu.pop16() & 0xFF
            cpu.pc = cpu.pop32()
        return handler
    if op & 0xFFF0 == 0x4E40:  # TRAP #n
        vector = 32 + (op & 15)

        def handler(cpu: CPU) -> None:
            cpu.exception(vector)
        return handler
    if op & 0xFFF8 == 0x4E50:  # LINK An,#disp
        def handler(cpu: CPU) -> None:
            disp = sext32(cpu.fetch_ext16(), 2)
            cpu.push32(cpu.a[reg])
            cpu.a[reg] = cpu.a[7]
            cpu.a[7] = (cpu.a[7] + disp) & M32
        return handler
    if op & 0xFFF8 == 0x4E58:  # UNLK An
        def handler(cpu: CPU) -> None:
            cpu.a[7] = cpu.a[reg]
            cpu.a[reg] = cpu.pop32()
        return handler
    if op & 0xFFF8 == 0x4E60:  # MOVE An,USP
        def handler(cpu: CPU) -> None:
            cpu.usp = cpu.a[reg]
        return handler
    if op & 0xFFF8 == 0x4E68:  # MOVE USP,An
        def handler(cpu: CPU) -> None:
            cpu.a[reg] = cpu.usp
        return handler
    if op & 0xFFC0 == 0x4E80:  # JSR
        if not ea_is(mode, reg, "control"):
            return None
        addr_of = make_ea_addr(mode, reg, 4)

        def handler(cpu: CPU) -> None:
            target = addr_of(cpu)
            cpu.push32(cpu.pc)
            cpu.pc = target
        return handler
    if op & 0xFFC0 == 0x4EC0:  # JMP
        if not ea_is(mode, reg, "control"):
            return None
        addr_of = make_ea_addr(mode, reg, 4)

        def handler(cpu: CPU) -> None:
            cpu.pc = addr_of(cpu)
        return handler

    if op & 0xF1C0 == 0x41C0:  # LEA
        if not ea_is(mode, reg, "control"):
            return None
        areg = (op >> 9) & 7
        addr_of = make_ea_addr(mode, reg, 4)

        def handler(cpu: CPU) -> None:
            cpu.a[areg] = addr_of(cpu)
        return handler

    if op & 0xF1C0 == 0x4180:  # CHK <ea>,Dn
        if not ea_is(mode, reg, "data"):
            return None
        dreg = (op >> 9) & 7

        def handler(cpu: CPU) -> None:
            bound = to_signed(read_ea(cpu, mode, reg, 2), 2)
            value = to_signed(cpu.d[dreg] & 0xFFFF, 2)
            if value < 0 or value > bound:
                from .cpu import VEC_CHK
                cpu.n = 1 if value < 0 else 0
                cpu.exception(VEC_CHK)
        return handler

    if op & 0xFFC0 == 0x4AC0 and op != 0x4AFC:  # TAS
        if not ea_is(mode, reg, "data_alterable"):
            return None

        def handler(cpu: CPU) -> None:
            def fn(v: int) -> int:
                cpu.n = 1 if v & 0x80 else 0
                cpu.z = 1 if v == 0 else 0
                cpu.v = cpu.c = 0
                return v | 0x80
            modify_ea(cpu, mode, reg, 1, fn)
        return handler

    if op & 0xFFC0 == 0x4800 and mode != 0 or op & 0xFFF8 == 0x4800:  # NBCD
        if not ea_is(mode, reg, "data_alterable"):
            return None

        def handler(cpu: CPU) -> None:
            modify_ea(cpu, mode, reg, 1, lambda v: _bcd_sub(cpu, 0, v))
        return handler

    if op & 0xFFC0 == 0x40C0:  # MOVE SR,ea
        if not ea_is(mode, reg, "data_alterable"):
            return None
        write = make_writer(mode, reg, 2)

        def handler(cpu: CPU) -> None:
            write(cpu, cpu.sr)
        return handler
    if op & 0xFFC0 == 0x44C0:  # MOVE ea,CCR
        if not ea_is(mode, reg, "data"):
            return None
        read = make_reader(mode, reg, 2)

        def handler(cpu: CPU) -> None:
            cpu.ccr = read(cpu) & 0xFF
        return handler
    if op & 0xFFC0 == 0x46C0:  # MOVE ea,SR
        if not ea_is(mode, reg, "data"):
            return None
        read = make_reader(mode, reg, 2)

        def handler(cpu: CPU) -> None:
            cpu.sr = read(cpu)
        return handler

    if op & 0xFFF8 == 0x4840:  # SWAP Dn
        def handler(cpu: CPU) -> None:
            val = cpu.d[reg]
            val = ((val >> 16) | (val << 16)) & M32
            cpu.d[reg] = val
            flags_logic(cpu, val, 4)
        return handler
    if op & 0xFFC0 == 0x4840:  # PEA
        if not ea_is(mode, reg, "control"):
            return None
        addr_of = make_ea_addr(mode, reg, 4)

        def handler(cpu: CPU) -> None:
            cpu.push32(addr_of(cpu))
        return handler

    if op & 0xFFB8 == 0x4880 and mode == 0:  # EXT.W / EXT.L
        to_long = bool(op & 0x0040)

        def handler(cpu: CPU) -> None:
            if to_long:
                val = sext32(cpu.d[reg] & 0xFFFF, 2)
                cpu.d[reg] = val
                flags_logic(cpu, val, 4)
            else:
                val = sext32(cpu.d[reg] & 0xFF, 1) & 0xFFFF
                write_dreg(cpu, reg, 2, val)
                flags_logic(cpu, val, 2)
        return handler

    if op & 0xFB80 == 0x4880:  # MOVEM
        return _build_movem(op)

    szbits = (op >> 6) & 3
    if szbits != 3 and op & 0xFF00 in (0x4000, 0x4200, 0x4400, 0x4600):
        size = SIZE_BY_BITS[szbits]
        if not ea_is(mode, reg, "data_alterable"):
            return None
        variant = op & 0xFF00

        modify = make_modifier(mode, reg, size)

        if variant == 0x4200:  # CLR
            def handler(cpu: CPU) -> None:
                modify(cpu, _clr_fn)
                cpu.n = cpu.v = cpu.c = 0
                cpu.z = 1
            return handler

        if variant == 0x4400:  # NEG
            def neg_fn(cpu: CPU, v: int) -> int:
                return flags_sub(cpu, 0, v, size)

            def handler(cpu: CPU) -> None:
                modify(cpu, neg_fn)
            return handler

        if variant == 0x4000:  # NEGX
            mask, msb = MASKS[size], MSBS[size]

            def negx_fn(cpu: CPU, v: int) -> int:
                r = (0 - v - cpu.x) & mask
                cpu.c = 1 if (v + cpu.x) > 0 else 0
                cpu.x = cpu.c
                cpu.v = 1 if v & r & msb else 0
                cpu.n = 1 if r & msb else 0
                if r:
                    cpu.z = 0
                return r

            def handler(cpu: CPU) -> None:
                modify(cpu, negx_fn)
            return handler

        def handler(cpu: CPU) -> None:  # NOT
            r = modify(cpu, _not_fn)
            flags_logic(cpu, r, size)
        return handler

    if op & 0xFF00 == 0x4A00 and szbits != 3:  # TST
        size = SIZE_BY_BITS[szbits]
        if not ea_is(mode, reg, "data_alterable"):
            return None
        read = make_reader(mode, reg, size)
        msb = MSBS[size]

        def handler(cpu: CPU) -> None:
            val = read(cpu)
            cpu.n = 1 if val & msb else 0
            cpu.z = 1 if val == 0 else 0
            cpu.v = 0
            cpu.c = 0
        return handler

    return None


# ----------------------------------------------------------------------
# Group 5: ADDQ / SUBQ / Scc / DBcc
# ----------------------------------------------------------------------
def _build_group5(op: int) -> Optional[Handler]:
    mode, reg = (op >> 3) & 7, op & 7
    szbits = (op >> 6) & 3
    if szbits == 3:
        cc = (op >> 8) & 15
        check = COND_CHECKS[cc]
        if mode == 1:  # DBcc
            def handler(cpu: CPU) -> None:
                base = cpu.pc
                disp = sext32(cpu.fetch_ext16(), 2)
                if not check(cpu):
                    count = (cpu.d[reg] - 1) & 0xFFFF
                    cpu.d[reg] = (cpu.d[reg] & 0xFFFF0000) | count
                    if count != 0xFFFF:
                        cpu.pc = (base + disp) & M32
            return handler
        if not ea_is(mode, reg, "data_alterable"):
            return None
        modify = make_modifier(mode, reg, 1)

        def scc_fn(cpu: CPU, v: int) -> int:
            return 0xFF if check(cpu) else 0

        def handler(cpu: CPU) -> None:  # Scc
            modify(cpu, scc_fn)
        return handler

    size = SIZE_BY_BITS[szbits]
    data = ((op >> 9) & 7) or 8
    sub = bool(op & 0x0100)
    if mode == 1:
        if size == 1:
            return None

        if sub:
            def handler(cpu: CPU) -> None:  # ADDQ/SUBQ to An: whole register, no flags
                cpu.a[reg] = (cpu.a[reg] - data) & M32
        else:
            def handler(cpu: CPU) -> None:
                cpu.a[reg] = (cpu.a[reg] + data) & M32
        return handler

    if not ea_is(mode, reg, "data_alterable"):
        return None

    arith = flags_sub if sub else flags_add
    if mode == 0:
        # The data-register form is hot enough (loop counters, pointer
        # arithmetic) to bypass the modify/fn indirection entirely.
        mask = MASKS[size]
        inv = ~mask & M32

        def handler(cpu: CPU) -> None:
            d = cpu.d
            r = arith(cpu, d[reg] & mask, data, size)
            d[reg] = (d[reg] & inv) | r
        return handler

    modify = make_modifier(mode, reg, size)

    def quick_fn(cpu: CPU, v: int) -> int:
        return arith(cpu, v, data, size)

    def handler(cpu: CPU) -> None:
        modify(cpu, quick_fn)
    return handler


# ----------------------------------------------------------------------
# Group 6: branches
# ----------------------------------------------------------------------
def _build_group6(op: int) -> Handler:
    cc = (op >> 8) & 15
    disp8 = op & 0xFF

    if disp8 == 0:  # word displacement (fetched whether taken or not)
        if cc == 0:  # BRA.w
            def handler(cpu: CPU) -> None:
                base = cpu.pc
                disp = sext32(cpu.fetch_ext16(), 2)
                cpu.pc = (base + disp) & M32
        elif cc == 1:  # BSR.w: the return address follows the ext word
            def handler(cpu: CPU) -> None:
                base = cpu.pc
                disp = sext32(cpu.fetch_ext16(), 2)
                target = (base + disp) & M32
                cpu.push32(cpu.pc)
                cpu.pc = target
        else:
            return _specialize(
                "def f(cpu):\n"
                "    base = cpu.pc\n"
                "    disp = sext32(cpu.fetch_ext16(), 2)\n"
                f"    if {COND_EXPRS[cc]}:\n"
                f"        cpu.pc = (base + disp) & {M32}\n")
        return handler

    disp = sext32(disp8, 1)
    if cc == 0:  # BRA.s
        def handler(cpu: CPU) -> None:
            cpu.pc = (cpu.pc + disp) & M32
    elif cc == 1:  # BSR.s
        def handler(cpu: CPU) -> None:
            target = (cpu.pc + disp) & M32
            cpu.push32(cpu.pc)
            cpu.pc = target
    else:
        # Taken-short-branch is among the hottest opcodes: inline the
        # condition test into a generated body (no lambda call).
        return _specialize(
            "def f(cpu):\n"
            f"    if {COND_EXPRS[cc]}:\n"
            f"        cpu.pc = (cpu.pc + {disp}) & {M32}\n")

    return handler


# ----------------------------------------------------------------------
# Groups 8/9/B/C/D: two-operand arithmetic and logic
# ----------------------------------------------------------------------
def _build_divmul(op: int, signed: bool, is_mul: bool) -> Optional[Handler]:
    mode, reg = (op >> 3) & 7, op & 7
    dreg = (op >> 9) & 7
    if not ea_is(mode, reg, "data"):
        return None

    if is_mul:
        def handler(cpu: CPU) -> None:
            src = read_ea(cpu, mode, reg, 2)
            dst = cpu.d[dreg] & 0xFFFF
            if signed:
                product = (to_signed(src, 2) * to_signed(dst, 2)) & M32
            else:
                product = (src * dst) & M32
            cpu.d[dreg] = product
            flags_logic(cpu, product, 4)
        return handler

    def handler(cpu: CPU) -> None:
        divisor = read_ea(cpu, mode, reg, 2)
        if divisor == 0:
            from .cpu import VEC_ZERO_DIVIDE
            cpu.exception(VEC_ZERO_DIVIDE)
            return
        dividend = cpu.d[dreg]
        if signed:
            sdiv = to_signed(divisor, 2)
            sdvd = to_signed(dividend, 4)
            quot = int(sdvd / sdiv)  # truncate toward zero
            rem = sdvd - quot * sdiv
            if quot < -0x8000 or quot > 0x7FFF:
                cpu.v = 1
                cpu.c = 0
                return
            q, r = quot & 0xFFFF, rem & 0xFFFF
        else:
            quot, rem = dividend // divisor, dividend % divisor
            if quot > 0xFFFF:
                cpu.v = 1
                cpu.c = 0
                return
            q, r = quot, rem
        cpu.d[dreg] = (r << 16) | q
        cpu.n = 1 if q & 0x8000 else 0
        cpu.z = 1 if q == 0 else 0
        cpu.v = 0
        cpu.c = 0

    return handler


def _build_addsub(op: int, sub: bool) -> Optional[Handler]:
    mode, reg = (op >> 3) & 7, op & 7
    dreg = (op >> 9) & 7
    opmode = (op >> 6) & 7

    if opmode in (3, 7):  # ADDA / SUBA
        size = 2 if opmode == 3 else 4
        if not ea_is(mode, reg, "all"):
            return None
        read = make_reader(mode, reg, size)
        if size == 4:
            if sub:
                def handler(cpu: CPU) -> None:
                    cpu.a[dreg] = (cpu.a[dreg] - read(cpu)) & M32
            else:
                def handler(cpu: CPU) -> None:
                    cpu.a[dreg] = (cpu.a[dreg] + read(cpu)) & M32
        else:
            if sub:
                def handler(cpu: CPU) -> None:
                    cpu.a[dreg] = (cpu.a[dreg] - sext32(read(cpu), 2)) & M32
            else:
                def handler(cpu: CPU) -> None:
                    cpu.a[dreg] = (cpu.a[dreg] + sext32(read(cpu), 2)) & M32
        return handler

    size = SIZE_BY_BITS[opmode & 3]
    if opmode < 3:  # <ea> op Dn -> Dn
        if not ea_is(mode, reg, "all") or (mode == 1 and size == 1):
            return None
        read = make_reader(mode, reg, size)
        arith = flags_sub if sub else flags_add
        mask = MASKS[size]
        inv = ~mask & M32

        def handler(cpu: CPU) -> None:
            src = read(cpu)
            d = cpu.d
            r = arith(cpu, d[dreg] & mask, src, size)
            d[dreg] = (d[dreg] & inv) | r
        return handler

    # opmode 4-6
    if mode in (0, 1):  # ADDX / SUBX
        mem_form = mode == 1

        def handler(cpu: CPU) -> None:
            if mem_form:
                dec = 2 if (size == 1 and reg == 7) else size
                cpu.a[reg] = (cpu.a[reg] - dec) & M32
                src = cpu.read(cpu.a[reg], size)
                decd = 2 if (size == 1 and dreg == 7) else size
                cpu.a[dreg] = (cpu.a[dreg] - decd) & M32
                dst_addr = cpu.a[dreg]
                dst = cpu.read(dst_addr, size)
            else:
                src = cpu.d[reg] & MASKS[size]
                dst = cpu.d[dreg] & MASKS[size]
            mask, msb = MASKS[size], MSBS[size]
            if sub:
                r = (dst - src - cpu.x) & mask
                cpu.c = 1 if (src + cpu.x) > dst else 0
                cpu.v = 1 if (dst ^ src) & (dst ^ r) & msb else 0
            else:
                total = dst + src + cpu.x
                r = total & mask
                cpu.c = 1 if total > mask else 0
                cpu.v = 1 if (~(dst ^ src)) & (dst ^ r) & msb else 0
            cpu.x = cpu.c
            cpu.n = 1 if r & msb else 0
            if r:
                cpu.z = 0
            if mem_form:
                cpu.write(dst_addr, size, r)
            else:
                write_dreg(cpu, dreg, size, r)
        return handler

    if not ea_is(mode, reg, "memory_alterable"):
        return None

    modify = make_modifier(mode, reg, size)
    mask = MASKS[size]
    arith = flags_sub if sub else flags_add

    def arith_fn(cpu: CPU, v: int) -> int:
        return arith(cpu, v, cpu.d[dreg] & mask, size)

    def handler(cpu: CPU) -> None:  # Dn op <ea> -> <ea>
        modify(cpu, arith_fn)

    return handler


def _build_logic(op: int,
                 bit_op: Callable[[int, int], int]) -> Optional[Handler]:
    """OR (group 8) and AND (group C) share this shape."""
    mode, reg = (op >> 3) & 7, op & 7
    dreg = (op >> 9) & 7
    opmode = (op >> 6) & 7
    size = SIZE_BY_BITS[opmode & 3]
    mask = MASKS[size]

    if opmode < 3:  # <ea> op Dn -> Dn
        if not ea_is(mode, reg, "data"):
            return None
        read = make_reader(mode, reg, size)
        msb = MSBS[size]
        inv = ~mask & M32

        def handler(cpu: CPU) -> None:
            src = read(cpu)
            d = cpu.d
            r = bit_op(d[dreg] & mask, src)
            d[dreg] = (d[dreg] & inv) | r
            cpu.n = 1 if r & msb else 0
            cpu.z = 1 if r == 0 else 0
            cpu.v = 0
            cpu.c = 0
        return handler

    if not ea_is(mode, reg, "memory_alterable"):
        return None

    modify = make_modifier(mode, reg, size)

    def logic_fn(cpu: CPU, v: int) -> int:
        return bit_op(v, cpu.d[dreg] & mask)

    def handler(cpu: CPU) -> None:  # Dn op <ea> -> <ea>
        r = modify(cpu, logic_fn)
        flags_logic(cpu, r, size)

    return handler


def _build_group8(op: int) -> Optional[Handler]:
    opmode = (op >> 6) & 7
    if opmode == 3:
        return _build_divmul(op, signed=False, is_mul=False)
    if opmode == 7:
        return _build_divmul(op, signed=True, is_mul=False)
    if op & 0x01F0 == 0x0100:  # SBCD
        return _build_bcd_pair(op, add=False)
    return _build_logic(op, lambda a, b: a | b)


def _build_groupC(op: int) -> Optional[Handler]:
    opmode = (op >> 6) & 7
    if opmode == 3:
        return _build_divmul(op, signed=False, is_mul=True)
    if opmode == 7:
        return _build_divmul(op, signed=True, is_mul=True)
    if op & 0x01F8 in (0x0140, 0x0148, 0x0188):  # EXG
        rx, ry = (op >> 9) & 7, op & 7
        variant = op & 0x01F8

        def handler(cpu: CPU) -> None:
            if variant == 0x0140:
                cpu.d[rx], cpu.d[ry] = cpu.d[ry], cpu.d[rx]
            elif variant == 0x0148:
                cpu.a[rx], cpu.a[ry] = cpu.a[ry], cpu.a[rx]
            else:
                cpu.d[rx], cpu.a[ry] = cpu.a[ry], cpu.d[rx]
        return handler
    if op & 0x01F0 == 0x0100:  # ABCD
        return _build_bcd_pair(op, add=True)
    return _build_logic(op, lambda a, b: a & b)


def _build_groupB(op: int) -> Optional[Handler]:
    mode, reg = (op >> 3) & 7, op & 7
    dreg = (op >> 9) & 7
    opmode = (op >> 6) & 7

    if opmode in (3, 7):  # CMPA
        size = 2 if opmode == 3 else 4
        if not ea_is(mode, reg, "all"):
            return None
        read = make_reader(mode, reg, size)
        if size == 4:
            def handler(cpu: CPU) -> None:
                val = read(cpu)
                flags_cmp(cpu, cpu.a[dreg], val, 4)
        else:
            def handler(cpu: CPU) -> None:
                val = sext32(read(cpu), 2)
                flags_cmp(cpu, cpu.a[dreg], val, 4)
        return handler

    size = SIZE_BY_BITS[opmode & 3]
    if opmode < 3:  # CMP
        if not ea_is(mode, reg, "all") or (mode == 1 and size == 1):
            return None
        read = make_reader(mode, reg, size)
        mask = MASKS[size]

        def handler(cpu: CPU) -> None:
            src = read(cpu)
            flags_cmp(cpu, cpu.d[dreg] & mask, src, size)
        return handler

    if mode == 1:  # CMPM (Ay)+,(Ax)+
        def handler(cpu: CPU) -> None:
            inc_y = 2 if (size == 1 and reg == 7) else size
            src = cpu.read(cpu.a[reg], size)
            cpu.a[reg] = (cpu.a[reg] + inc_y) & M32
            inc_x = 2 if (size == 1 and dreg == 7) else size
            dst = cpu.read(cpu.a[dreg], size)
            cpu.a[dreg] = (cpu.a[dreg] + inc_x) & M32
            flags_cmp(cpu, dst, src, size)
        return handler

    if not ea_is(mode, reg, "data_alterable"):  # EOR Dn -> <ea>
        return None

    modify = make_modifier(mode, reg, size)
    mask = MASKS[size]

    def eor_fn(cpu: CPU, v: int) -> int:
        return v ^ (cpu.d[dreg] & mask)

    def handler(cpu: CPU) -> None:
        r = modify(cpu, eor_fn)
        flags_logic(cpu, r, size)

    return handler


# ----------------------------------------------------------------------
# Group E: shifts and rotates
# ----------------------------------------------------------------------
def _shift(cpu: CPU, kind: int, left: bool, val: int, cnt: int,
           size: int) -> int:
    """Perform one shift/rotate, setting flags; returns the result."""
    mask, msb, bits = MASKS[size], MSBS[size], NBITS[size]
    val &= mask
    if cnt == 0:
        cpu.c = cpu.x if kind == 2 else 0
        cpu.v = 0
        set_nz(cpu, val, size)
        return val

    if kind == 0:  # arithmetic
        if left:
            # V set if the sign bit changes at any point during the shift.
            if cnt >= bits:
                r = 0
                cpu.c = (val >> (bits - cnt)) & 1 if cnt == bits else 0
                cpu.v = 1 if val != 0 else 0
            else:
                r = (val << cnt) & mask
                cpu.c = (val >> (bits - cnt)) & 1
                window = val >> (bits - cnt - 1)  # sign bit + all bits shifted out
                all_zero = window == 0
                all_one = window == (1 << (cnt + 1)) - 1
                cpu.v = 0 if (all_zero or all_one) else 1
            cpu.x = cpu.c
        else:  # ASR
            sign = val & msb
            if cnt >= bits:
                r = mask if sign else 0
                cpu.c = 1 if sign else 0
            else:
                r = val >> cnt
                if sign:
                    r |= (mask << (bits - cnt)) & mask
                cpu.c = (val >> (cnt - 1)) & 1
            cpu.x = cpu.c
            cpu.v = 0
    elif kind == 1:  # logical
        if cnt > bits:
            r = 0
            cpu.c = 0
        elif left:
            r = (val << cnt) & mask
            cpu.c = (val >> (bits - cnt)) & 1
        else:
            r = val >> cnt
            cpu.c = (val >> (cnt - 1)) & 1
        cpu.x = cpu.c
        cpu.v = 0
    elif kind == 2:  # rotate with extend (ROXL/ROXR)
        r = val
        for _ in range(cnt):
            if left:
                out = 1 if r & msb else 0
                r = ((r << 1) | cpu.x) & mask
            else:
                out = r & 1
                r = (r >> 1) | (msb if cpu.x else 0)
            cpu.x = out
        cpu.c = cpu.x
        cpu.v = 0
    else:  # plain rotate
        e = cnt % bits
        if left:
            r = ((val << e) | (val >> (bits - e))) & mask if e else val
            cpu.c = r & 1
        else:
            r = ((val >> e) | (val << (bits - e))) & mask if e else val
            cpu.c = 1 if r & msb else 0
        cpu.v = 0
    set_nz(cpu, r, size)
    return r


def _build_groupE(op: int) -> Optional[Handler]:
    szbits = (op >> 6) & 3
    left = bool(op & 0x0100)
    if szbits == 3:  # memory form: one-bit word shift
        kind = (op >> 9) & 3
        mode, reg = (op >> 3) & 7, op & 7
        if not ea_is(mode, reg, "memory_alterable"):
            return None

        modify = make_modifier(mode, reg, 2)

        def shift_fn(cpu: CPU, v: int) -> int:
            return _shift(cpu, kind, left, v, 1, 2)

        def handler(cpu: CPU) -> None:
            modify(cpu, shift_fn)
        return handler

    size = SIZE_BY_BITS[szbits]
    kind = (op >> 3) & 3
    reg = op & 7
    count_field = (op >> 9) & 7
    by_register = bool(op & 0x0020)

    mask = MASKS[size]
    inv = ~mask & M32
    if by_register:
        def handler(cpu: CPU) -> None:
            d = cpu.d
            cnt = d[count_field] & 63
            r = _shift(cpu, kind, left, d[reg] & mask, cnt, size)
            d[reg] = (d[reg] & inv) | (r & mask)
    else:
        cnt = count_field or 8

        def handler(cpu: CPU) -> None:
            d = cpu.d
            r = _shift(cpu, kind, left, d[reg] & mask, cnt, size)
            d[reg] = (d[reg] & inv) | (r & mask)

    return handler


# ----------------------------------------------------------------------
# Master builder
# ----------------------------------------------------------------------
def build_handler(op: int) -> Optional[Handler]:
    """Decode one opcode word into a handler closure, or ``None``."""
    group = op >> 12
    if group == 0x0:
        return _build_group0(op)
    if group in (0x1, 0x2, 0x3):
        return _build_move(op)
    if group == 0x4:
        return _build_group4(op)
    if group == 0x5:
        return _build_group5(op)
    if group == 0x6:
        return _build_group6(op)
    if group == 0x7:
        if op & 0x0100:
            return None
        dreg = (op >> 9) & 7
        data = sext32(op & 0xFF, 1)
        n = 1 if data & 0x80000000 else 0
        z = 1 if data == 0 else 0

        def handler(cpu: CPU) -> None:
            cpu.d[dreg] = data
            cpu.n = n
            cpu.z = z
            cpu.v = 0
            cpu.c = 0
        return handler
    if group == 0x8:
        return _build_group8(op)
    if group == 0x9:
        return _build_addsub(op, sub=True)
    if group == 0xB:
        return _build_groupB(op)
    if group == 0xC:
        return _build_groupC(op)
    if group == 0xD:
        return _build_addsub(op, sub=False)
    if group == 0xE:
        return _build_groupE(op)
    return None  # 0xA (A-line) and 0xF (F-line) fault by design
