"""Dispatch-table construction for the 68000 interpreter.

Every 16-bit opcode word is decoded once, up front, into a handler
closure; the interpreter loop then runs with a single list index per
instruction.  Building the table costs well under a second and is done
once per process (cached on :class:`repro.m68k.cpu.CPU`).
"""

from __future__ import annotations

from typing import List, Optional

from .instructions import Handler, build_handler


def build_dispatch_table() -> List[Optional[Handler]]:
    """Build the 65536-entry opcode dispatch table."""
    return [build_handler(op) for op in range(0x10000)]


_TABLE: Optional[List[Optional[Handler]]] = None


def dispatch_table() -> List[Optional[Handler]]:
    """The process-wide dispatch table, built on first use.

    Shared by every :class:`~repro.m68k.cpu.CPU` instance and by the
    block-predecoding replay core, which snapshots handlers out of it.
    """
    global _TABLE
    if _TABLE is None:
        _TABLE = build_dispatch_table()
    return _TABLE
