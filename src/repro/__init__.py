"""A trace-driven simulator for Palm OS devices.

A from-scratch reproduction of Carroll, Flanagan & Baniya, *A
Trace-Driven Simulator For Palm OS Devices* (ISPASS 2005): a Palm m515
device model (68k CPU, DragonBall peripherals), a Palm OS kernel with
real guest-resident state, the five activity-log collection hacks, a
POSE-style replay emulator with profiling, and the cache case study.

Quickstart::

    from repro import (collect_session, replay_session, standard_apps,
                       UserScript, Button)

    apps = standard_apps()
    script = UserScript().at(100).press(Button.MEMO).tap(50, 120)
    session = collect_session(apps, script)           # the "handheld"
    emulator, profiler, result = replay_session(      # the "desktop"
        session.initial_state, session.log, apps=apps)
    trace = profiler.reference_trace()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from .apps import standard_apps
from .cache import (
    Cache,
    CacheConfig,
    RegionMix,
    paper_configurations,
    sweep_paper_grid,
    sweep_reference,
)
from .device import Button, PalmDevice
from .emulator import (
    Emulator,
    JitterModel,
    PlaybackDriver,
    Profiler,
    ReferenceTrace,
    replay_session,
)
from .hacks import HackManager, standard_hacks
from .palmos import AppSpec, DatabaseImage, PalmOS, Trap
from .tracelog import ActivityLog, InitialState, LogRecord, parse_log
from .traces import generate_desktop_trace
from .validation import correlate_final_states, correlate_logs
from .workloads import (
    CollectedSession,
    SessionSpec,
    TABLE1_SESSIONS,
    UserScript,
    collect_session,
    collect_table1_session,
)

__version__ = "1.0.0"

__all__ = [
    "standard_apps",
    "Cache",
    "CacheConfig",
    "RegionMix",
    "paper_configurations",
    "sweep_paper_grid",
    "sweep_reference",
    "Button",
    "PalmDevice",
    "Emulator",
    "JitterModel",
    "PlaybackDriver",
    "Profiler",
    "ReferenceTrace",
    "replay_session",
    "HackManager",
    "standard_hacks",
    "AppSpec",
    "DatabaseImage",
    "PalmOS",
    "Trap",
    "ActivityLog",
    "InitialState",
    "LogRecord",
    "parse_log",
    "generate_desktop_trace",
    "correlate_final_states",
    "correlate_logs",
    "CollectedSession",
    "SessionSpec",
    "TABLE1_SESSIONS",
    "UserScript",
    "collect_session",
    "collect_table1_session",
    "__version__",
]
