"""The seeded defect corpus: one planted guest program per defect class.

Each program is a tiny m68k routine (assembled with
:mod:`repro.m68k.asm`) that allocates through the real ``MemPtrNew``
trap and then commits exactly one memory crime.  The harness runs it on
a booted kernel with the sanitizer attached — the same way
``call_trap`` drives host-built thunks — and checks that the expected
finding appears at the expected address.

Programs publish their allocation pointer to a scratch slot *below*
the sanitized window (``PTR_SLOT``) so the harness can compute exact
expected addresses after the run; allocation addresses are fully
deterministic (same ROM, same boot, same heap walk), which is what lets
``tools/sanitize_baseline.json`` store absolute addresses and CI fail
only on *new* findings.

Every program is also its own elision test bed: a CFG walk plus
constant propagation over the program text feeds
:func:`repro.analysis.sanitizer.elide.compute_elision`, so each run
exercises the static layer, and :func:`differential` asserts the
elided and full-check runs report bit-identical findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...m68k.asm import assemble
from ...palmos.kernel import PalmOS
from ..static.dataflow import analyze_constprop
from ..static.walker import walk
from .core import MemorySanitizer
from .elide import ElisionResult, compute_elision

#: Where corpus programs live: between the frame buffer and the
#: dynamic heap, outside every region the kernel or sanitizer manages.
CODE_AT = 0x14000
#: Scratch slot (below the sanitized window) where programs publish
#: their allocation pointer for the harness.
PTR_SLOT = 0x13FFC
#: RAM size for corpus machines — small keeps the shadow map cheap.
RAM_SIZE = 2 << 20

_EXIT = "        dc.w    $ffff           ; host exit marker"


def _alloc(size: int) -> str:
    return (f"        move.l  #{size},-(sp)\n"
            f"        dc.w    $a020           ; MemPtrNew\n"
            f"        addq.l  #4,sp\n"
            f"        move.l  d0,${PTR_SLOT:x}\n"
            f"        movea.l d0,a0\n")


def _free() -> str:
    return (f"        movea.l ${PTR_SLOT:x},a0\n"
            f"        move.l  a0,-(sp)\n"
            f"        dc.w    $a021           ; MemPtrFree\n"
            f"        addq.l  #4,sp\n")


@dataclass(frozen=True)
class DefectProgram:
    """One corpus entry and its expected finding."""

    name: str
    source: str
    #: Expected finding code, or None for the clean control program.
    code: Optional[str]
    severity: Optional[str] = None
    #: Expected finding address relative to the published pointer.
    addr_offset: int = 0
    description: str = ""


PROGRAMS: Tuple[DefectProgram, ...] = (
    DefectProgram(
        name="oob-read",
        code="san-oob-read", severity="ERROR", addr_offset=32,
        description="reads one byte past a 32-byte allocation",
        source=(f"        org     ${CODE_AT:x}\n"
                + _alloc(32)
                + "        move.b  32(a0),d1       ; one past the end\n"
                + _free() + _EXIT),
    ),
    DefectProgram(
        name="oob-write",
        code="san-oob-write", severity="ERROR", addr_offset=16,
        description="writes one word past a 16-byte allocation",
        source=(f"        org     ${CODE_AT:x}\n"
                + _alloc(16)
                + "        move.w  d1,16(a0)       ; lands in the red zone\n"
                + _free() + _EXIT),
    ),
    DefectProgram(
        name="uaf",
        code="san-uaf", severity="ERROR", addr_offset=0,
        description="reads a chunk after freeing it",
        source=(f"        org     ${CODE_AT:x}\n"
                + _alloc(24)
                + _free()
                + "        movea.l ${:x},a0\n".format(PTR_SLOT)
                + "        move.b  (a0),d1         ; use after free\n"
                + _EXIT),
    ),
    DefectProgram(
        name="double-free",
        code="san-double-free", severity="ERROR", addr_offset=0,
        description="frees the same pointer twice",
        source=(f"        org     ${CODE_AT:x}\n"
                + _alloc(24)
                + _free()
                + _free()
                + _EXIT),
    ),
    DefectProgram(
        name="uninit-read",
        code="san-uninit-read", severity="WARNING", addr_offset=0,
        description="reads a fresh allocation before writing it",
        source=(f"        org     ${CODE_AT:x}\n"
                + _alloc(16)
                + "        move.b  (a0),d1         ; never written\n"
                + _free() + _EXIT),
    ),
    DefectProgram(
        name="leak",
        code="san-leak", severity="WARNING", addr_offset=0,
        description="allocates and exits without freeing",
        source=(f"        org     ${CODE_AT:x}\n"
                + _alloc(40)
                + "        move.b  d1,(a0)         ; touch it, keep it\n"
                + _EXIT),
    ),
    DefectProgram(
        name="clean",
        code=None,
        description="allocates, initialises, reads back, frees",
        source=(f"        org     ${CODE_AT:x}\n"
                + _alloc(16)
                + "        move.l  #$11223344,(a0)\n"
                + "        move.l  (a0),d1\n"
                + _free() + _EXIT),
    ),
)


@dataclass
class ProgramResult:
    """Outcome of one corpus program run."""

    program: DefectProgram
    ptr: int
    findings: List[Tuple[str, str, int]]  # (code, severity, address)
    elision: ElisionResult
    san_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def expected_address(self) -> Optional[int]:
        if self.program.code is None:
            return None
        return self.ptr + self.program.addr_offset

    @property
    def matched(self) -> bool:
        """True when the run shows exactly the planted defect class —
        right code, right severity, right address — and the clean
        program shows nothing."""
        if self.program.code is None:
            return not self.findings
        want = (self.program.code, self.program.severity or "",
                self.expected_address or 0)
        return want in self.findings

    def keys(self) -> Set[Tuple[str, int]]:
        """(code, address) pairs for the baseline gate."""
        return {(code, addr) for code, _sev, addr in self.findings}


def programs_by_name() -> Dict[str, DefectProgram]:
    return {p.name: p for p in PROGRAMS}


def _run_guest(kernel: PalmOS, entry: int, max_ticks: int = 50_000) -> None:
    """Run loaded guest code until its ``dc.w $ffff`` exit marker, the
    same way :meth:`PalmOS.call_trap` drives host-built thunks."""
    cpu = kernel.device.cpu
    saved_pc = cpu.pc
    saved_stopped = cpu.stopped
    done = {"flag": False}
    prev_fline = cpu.fline_handler

    def fline(c: object, op: int) -> bool:
        if op == 0xFFFF:
            done["flag"] = True
            cpu.stopped = True
            return True
        return bool(prev_fline(c, op)) if prev_fline else False

    cpu.fline_handler = fline
    cpu.stopped = False
    cpu.pc = entry
    deadline = kernel.device.tick + max_ticks
    while not done["flag"] and kernel.device.tick < deadline:
        kernel.device.advance(kernel.device.tick + 1)
    cpu.fline_handler = prev_fline
    if not done["flag"]:
        raise RuntimeError("corpus program did not reach its exit marker")
    cpu.pc = saved_pc
    cpu.stopped = saved_stopped


def _program_elision(kernel: PalmOS, start: int, end: int) -> ElisionResult:
    fetch = kernel.host.read16
    cfg = walk(fetch, [start], code_range=(start, end))
    const = analyze_constprop(cfg, fetch)
    return compute_elision(cfg, const,
                           heap_hi=int(kernel.device.mem.ram_limit))


def run_program(program: DefectProgram, *, elide: bool = True,
                ram_size: int = RAM_SIZE) -> ProgramResult:
    """Boot a fresh machine, plant the program, run it sanitized."""
    kernel = PalmOS(ram_size=ram_size)
    kernel.boot()
    blob = assemble(program.source)
    end = CODE_AT
    for addr, data in blob.segments:
        kernel.device.mem.load_ram(addr, data)
        end = max(end, addr + len(data))
    elision = _program_elision(kernel, CODE_AT, end)
    san = MemorySanitizer(
        elide_pcs=elision.safe_pcs if elide else frozenset(),
        attribution=elision.attribution)
    san.attach(kernel)
    try:
        _run_guest(kernel, CODE_AT)
    finally:
        report = san.detach()
    ptr = kernel.host.read32(PTR_SLOT)
    findings = [(f.code, f.severity.name, f.address or 0)
                for f in report.sorted()]
    return ProgramResult(program=program, ptr=ptr, findings=findings,
                         elision=elision, san_stats=san.stats())


def run_corpus(names: Optional[Sequence[str]] = None, *,
               elide: bool = True) -> List[ProgramResult]:
    table = programs_by_name()
    selected = (PROGRAMS if names is None
                else tuple(table[n] for n in names))
    return [run_program(p, elide=elide) for p in selected]


def differential(names: Optional[Sequence[str]] = None) -> List[str]:
    """Run every program with and without elision; the finding sets
    must be bit-identical (the elision proof is sound).  Returns the
    names that diverged (empty == pass)."""
    bad: List[str] = []
    for full, elided in zip(run_corpus(names, elide=False),
                            run_corpus(names, elide=True)):
        if sorted(full.findings) != sorted(elided.findings):
            bad.append(full.program.name)
    return bad


# ----------------------------------------------------------------------
# Baseline gate (same contract as tools/audit_baseline.json)
# ----------------------------------------------------------------------
def baseline_keys(results: Sequence[ProgramResult]) -> Dict[str, List[List[object]]]:
    """JSON-ready mapping: program name -> sorted (code, address)."""
    return {r.program.name: sorted([code, addr] for code, addr in r.keys())
            for r in results}


def new_findings_against(results: Sequence[ProgramResult],
                         baseline: Dict[str, List[List[object]]],
                         ) -> List[Tuple[str, str, int]]:
    """Findings not present in the committed baseline."""
    fresh: List[Tuple[str, str, int]] = []
    for r in results:
        known = {(str(c), int(a)) for c, a in baseline.get(r.program.name, [])}
        for code, addr in sorted(r.keys()):
            if (code, addr) not in known:
                fresh.append((r.program.name, code, addr))
    return fresh


def missing_classes(results: Sequence[ProgramResult]) -> List[str]:
    """Programs whose planted defect class was *not* detected — the
    other half of the gate (a sanitizer regression must fail CI even
    though it produces no new findings)."""
    return [r.program.name for r in results if not r.matched]
