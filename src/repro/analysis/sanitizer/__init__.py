"""Guest memory sanitizer: dynamic shadow checking with static elision.

The dynamic layer (:mod:`.shadow`, :mod:`.core`) keeps MemCheck-style
addressability/definedness bits over the allocator-managed part of
guest RAM and turns violations into typed findings.  The static layer
(:mod:`.elide`) proves accesses safe from the PR-4 dataflow facts and
emits a per-pc elision set so sanitized replay skips checks it can
discharge at analysis time.  :mod:`.corpus` holds the seeded defect
programs that prove every class is caught.
"""

from .core import AllocInfo, MemorySanitizer, REDZONE
from .elide import ElisionResult, compute_elision
from .shadow import A_BIT, D_BIT, OK, ShadowMap

__all__ = [
    "A_BIT",
    "AllocInfo",
    "D_BIT",
    "ElisionResult",
    "MemorySanitizer",
    "OK",
    "REDZONE",
    "ShadowMap",
    "compute_elision",
]
