"""Static discharge of shadow checks.

The dynamic sanitizer pays a range compare and a shadow probe for every
guest data access.  Most accesses in real Palm OS code cannot possibly
touch allocator-managed storage: they are stack-frame slots addressed
relative to the entry A7, or constant addresses aimed at globals, the
frame buffer, or the trap table.  The dataflow pre-pass (PR 4's
constant propagation over the PR 1 CFG) proves exactly those facts, so
this module turns them into a **per-pc elision set**: program-counter
values at which the bus hook may skip checking entirely.

Proof rules (both must hold for *every* memory operand of the
instruction, and the instruction must be fully modeled by the dataflow
pass and not part of an overlapping decode):

``stack``
    The effective address is ``entry-A7 + k`` with ``|k| <= 256`` and
    ``k + size <= 256``.  Guest stacks live in
    ``[STACK_BOTTOM, STACK_TOP)`` — disjoint from the sanitized heap
    window by more than the slack — so the access can never reach it.
    (The same A7-stays-in-the-stack assumption underpins the region
    audit's stack classification.)

``const``
    The effective address is a compile-time constant and the accessed
    byte range does not intersect the sanitized window
    ``[DYNAMIC_HEAP_BASE, ram_end)``.

Soundness: an elided access can never land in the sanitized window, so
skipping its shadow probe cannot hide a finding — full-check and elided
runs produce bit-identical reports (the differential suite asserts
this).

The pc window of a proven instruction is ``[addr+2, end]``: both cores
advance pc past the opcode word before the handler runs, and handlers
fetch their own extension words, so during execution pc sweeps exactly
that range and never collides with a neighbouring instruction's window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ...palmos import layout as L
from ..static.dataflow import ConstResult, MemOp
from ..static.walker import CFG

#: Maximum |entry-A7 offset| provable as a stack access.  STACK_BOTTOM
#: (0x1000) minus this stays far above address 0 and STACK_TOP (0x8000)
#: plus this stays far below DYNAMIC_HEAP_BASE (0x1D000).
STACK_SLACK = 256


@dataclass(frozen=True)
class ElisionResult:
    """The proven elision set plus accounting for reports."""

    safe_pcs: FrozenSet[int]
    #: pc value -> address of the owning instruction (covers *all*
    #: instructions, proven or not — used for finding attribution).
    attribution: Mapping[int, int]
    proven_insns: int
    candidate_insns: int
    total_insns: int
    by_rule: Mapping[str, int] = field(default_factory=dict)

    @property
    def proof_rate(self) -> float:
        """Fraction of candidate (memory-touching, modeled)
        instructions whose checks were discharged."""
        if not self.candidate_insns:
            return 0.0
        return self.proven_insns / self.candidate_insns

    def stats(self) -> Dict[str, object]:
        return {
            "total_insns": self.total_insns,
            "candidate_insns": self.candidate_insns,
            "proven_insns": self.proven_insns,
            "proof_rate": round(self.proof_rate, 4),
            "safe_pcs": len(self.safe_pcs),
            "by_rule": dict(self.by_rule),
        }


def _op_safe(op: MemOp, heap_lo: int, heap_hi: int) -> Optional[str]:
    """The rule name proving this operand safe, or None."""
    if op.base == "stack" and op.sp_off is not None:
        if abs(op.sp_off) <= STACK_SLACK and op.sp_off + op.size <= STACK_SLACK:
            return "stack"
        return None
    if op.base == "const" and op.addr is not None:
        if op.addr + op.size <= heap_lo or op.addr >= heap_hi:
            return "const"
        return None
    return None


def _pc_window(start: int, end: int) -> Iterable[int]:
    return range(start + 2, end + 2, 2)


def compute_elision(cfg: CFG, const: ConstResult, *,
                    heap_lo: int = L.DYNAMIC_HEAP_BASE,
                    heap_hi: int) -> ElisionResult:
    """Prove per-instruction access safety and build the elision set."""
    safe: set[int] = set()
    attribution: Dict[int, int] = {}
    by_rule: Dict[str, int] = {"stack": 0, "const": 0}
    proven = 0
    candidates = 0
    total = 0
    overlap_addrs = {a for pair in cfg.overlaps for a in pair}
    for insn in cfg.instructions():
        total += 1
        start, end = insn.addr, insn.end
        for pc in _pc_window(start, end):
            attribution.setdefault(pc, start)
        ops: Tuple[MemOp, ...] = const.mem_ops.get(start, ())
        if not ops:
            continue
        candidates += 1
        if start not in const.modeled or start in overlap_addrs:
            continue
        rules = [_op_safe(op, heap_lo, heap_hi) for op in ops]
        if any(r is None for r in rules):
            continue
        proven += 1
        for r in rules:
            assert r is not None
            by_rule[r] += 1
        safe.update(_pc_window(start, end))
    return ElisionResult(safe_pcs=frozenset(safe), attribution=attribution,
                         proven_insns=proven, candidate_insns=candidates,
                         total_insns=total, by_rule=by_rule)
