"""Byte-granular shadow state over guest RAM.

Two bits per guest byte, MemCheck style:

* **A** (addressable) — the byte belongs to live storage the guest may
  touch: a heap allocation's payload, or any RAM the allocator does not
  manage.  Red zones, chunk headers and free heap space have A clear.
* **D** (defined) — the byte has been written since it became
  addressable.  Fresh ``MemPtrNew`` payloads start with D clear so a
  read-before-write is visible; everything else starts defined.

The map only covers the allocator-managed window (the dynamic heap
through the end of RAM) — accesses below it (vectors, globals, stack,
event queue, framebuffer) can never touch heap storage and are
discharged by a range compare in the bus hook instead.
"""

from __future__ import annotations

A_BIT = 0x01
D_BIT = 0x02
OK = A_BIT | D_BIT


class ShadowMap:
    """Shadow bits for guest addresses in ``[lo, hi)``.

    The backing array is padded by four bytes so the widest bus access
    (32-bit) starting on the last in-window byte can be probed without
    a bounds check on the hot path.
    """

    def __init__(self, lo: int, hi: int):
        if hi <= lo:
            raise ValueError(f"empty shadow window [{lo:#x}, {hi:#x})")
        self.lo = lo
        self.hi = hi
        self._bytes = bytearray(b"\x03" * (hi - lo + 4))

    # -- hot-path access (the bus hook indexes ``raw`` directly) --------
    @property
    def raw(self) -> bytearray:
        return self._bytes

    def state(self, addr: int) -> int:
        """The shadow bits of one guest byte."""
        return self._bytes[addr - self.lo]

    # -- range marking ---------------------------------------------------
    def _fill(self, addr: int, length: int, value: int) -> None:
        if length <= 0:
            return
        start = max(addr, self.lo) - self.lo
        end = min(addr + length, self.hi) - self.lo
        if end <= start:
            return
        self._bytes[start:end] = bytes([value]) * (end - start)

    def mark_noaccess(self, addr: int, length: int) -> None:
        """Red zones, chunk headers, freed and never-allocated space."""
        self._fill(addr, length, 0)

    def mark_undefined(self, addr: int, length: int) -> None:
        """Addressable but not yet written (a fresh app allocation)."""
        self._fill(addr, length, A_BIT)

    def mark_ok(self, addr: int, length: int) -> None:
        """Addressable and defined."""
        self._fill(addr, length, OK)

    def set_defined(self, addr: int, length: int) -> None:
        """OR the D bit over a range (a write landed there); A bits are
        left untouched so writes into red zones stay unaddressable."""
        b = self._bytes
        start = max(addr, self.lo) - self.lo
        end = min(addr + length, self.hi) - self.lo
        for off in range(start, end):
            b[off] |= D_BIT

    # -- slow-path queries ------------------------------------------------
    def first_missing(self, addr: int, length: int, need: int) -> int:
        """The first address in ``[addr, addr+length)`` whose shadow
        lacks one of the ``need`` bits (callers guarantee one exists)."""
        b = self._bytes
        lo = self.lo
        for a in range(addr, addr + length):
            if b[a - lo] & need != need:
                return a
        return addr
