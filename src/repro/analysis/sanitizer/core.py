"""The dynamic sanitizer: shadow maintenance, heap hooks, findings.

:class:`MemorySanitizer` attaches to a booted :class:`~repro.palmos.kernel.PalmOS`
machine and watches every guest data access through a bus hook
(``MemoryMap.san``), classifying violations into typed findings through
the :mod:`repro.analysis.static.findings` engine:

==================  ========  ==========================================
code                severity  meaning
==================  ========  ==========================================
``san-oob-read``    ERROR     read past a live allocation (red zone hit)
``san-oob-write``   ERROR     write past a live allocation
``san-uaf``         ERROR     access inside a quarantined freed chunk
``san-double-free`` ERROR     ``MemPtrFree`` of an already-freed chunk
``san-uninit-read`` WARNING   read of a never-written app allocation
``san-leak``        WARNING   app allocation still live at detach
``san-wild``        ERROR     access to unmanaged heap space
==================  ========  ==========================================

Three layers keep the overhead inside the ~3x budget:

* accesses made while **kernel microcode** runs (trap semantics, the
  allocator itself) are exempt from checking — the kernel is trusted —
  but writes still mark bytes defined so app data written by the kernel
  (events, record copies) never reads back as uninitialized;
* a **per-pc elision set** (see :mod:`.elide`) discharges accesses the
  static pre-pass proved can never touch allocator-managed storage;
* the remaining accesses hit a **range compare** first (only the heap
  window carries shadow) and a byte-AND shadow probe second.

Red zones and the free-chunk quarantine are wired into
:class:`repro.palmos.heap.Heap` via the ``Heap.san`` attribute; the heap
calls back into :meth:`on_alloc`/:meth:`on_free`/:meth:`on_format`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, FrozenSet, Iterator, Mapping, Optional, Tuple

from ...palmos import layout as L
from ...palmos.heap import Heap, HeapError
from ..static.findings import Report, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...palmos.kernel import PalmOS

from .shadow import A_BIT, D_BIT, OK, ShadowMap

#: Bytes of unaddressable padding on each side of a sanitized payload.
REDZONE = 16
#: Freed chunks parked before their storage really returns to the heap.
QUARANTINE_CHUNKS = 16
#: Findings are deduplicated per (code, instruction); this caps the
#: total so a buggy loop cannot flood the report.
MAX_FINDINGS = 256


@dataclass(frozen=True)
class AllocInfo:
    """One sanitizer-tracked allocation (live or quarantined)."""

    ptr: int        # payload address handed to the guest
    size: int       # requested payload bytes
    chunk: int      # chunk payload base (ptr - red zone; == ptr when legacy)
    chunk_end: int  # end of the chunk (header excluded)
    owner: int
    heap_base: int
    pc: int         # guest pc at allocation time


class MemorySanitizer:
    """MemCheck-style shadow checking for replayed guest code."""

    def __init__(self, *, elide_pcs: Optional[FrozenSet[int]] = None,
                 attribution: Optional[Mapping[int, int]] = None,
                 redzone: int = REDZONE,
                 quarantine_chunks: int = QUARANTINE_CHUNKS,
                 max_findings: int = MAX_FINDINGS):
        if redzone % 2:
            raise ValueError("red zone size must keep payloads even")
        self.redzone = redzone
        self.quarantine_chunks = quarantine_chunks
        self.max_findings = max_findings
        self.report = Report()
        self._elide = elide_pcs if elide_pcs is not None else frozenset()
        self._attr: Dict[int, int] = dict(attribution or {})
        self._seen: set[Tuple[str, int]] = set()
        self.suppressed = 0

        self._kernel_depth = 0
        self._kernel_ref: Optional["PalmOS"] = None
        self._cpu: object = None
        self._shadow: Optional[ShadowMap] = None
        self._lo = 0
        self._hi = 0

        self.live: Dict[int, AllocInfo] = {}
        self._quarantine: Dict[int, Deque[AllocInfo]] = {}
        self._quarantined: Dict[int, AllocInfo] = {}

        #: Non-kernel guest data accesses seen by the bus hook.
        self.n_data = 0
        #: Accesses discharged by the static elision set.
        self.n_elided = 0
        #: Accesses that reached a shadow probe (inside the heap window).
        self.n_probed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._kernel_ref is not None

    def attach(self, kernel: "PalmOS") -> None:
        """Hook a booted machine: build shadow over the heap window,
        sweep both heaps into it, and install the bus and heap hooks."""
        if self._kernel_ref is not None:
            raise RuntimeError("sanitizer is already attached")
        mem = kernel.device.mem
        self._kernel_ref = kernel
        self._cpu = kernel.device.cpu
        self._lo = L.DYNAMIC_HEAP_BASE
        self._hi = int(mem.ram_limit)
        self._shadow = ShadowMap(self._lo, self._hi)
        for heap in (kernel.dyn_heap, kernel.sto_heap):
            self._sweep_heap(kernel, heap)
            heap.san = self
        kernel.sanitizer = self
        mem.san = self

    def detach(self, *, check_leaks: bool = True) -> Report:
        """Unhook, run the leak check, and return the report."""
        kernel = self._kernel_ref
        if kernel is None:
            raise RuntimeError("sanitizer is not attached")
        if check_leaks:
            self._leak_check()
        kernel.device.mem.san = None
        kernel.dyn_heap.san = None
        kernel.sto_heap.san = None
        kernel.sanitizer = None
        self._kernel_ref = None
        return self.report

    def _sweep_heap(self, kernel: "PalmOS", heap: Heap) -> None:
        """Adopt pre-existing heap state: used payloads are addressable
        and defined (their history is unknown — be conservative), free
        space and every header is out of bounds.  Chunks allocated
        before attach get no red zones; their headers double as ones."""
        assert self._shadow is not None
        host_heap = heap.with_access(kernel.host)
        for chunk in host_heap.chunks():
            if chunk.free:
                self._shadow.mark_noaccess(chunk.addr, chunk.size)
            else:
                self._shadow.mark_noaccess(chunk.addr, L.CHUNK_HEADER_SIZE)
                self._shadow.mark_ok(chunk.addr + L.CHUNK_HEADER_SIZE,
                                     chunk.size - L.CHUNK_HEADER_SIZE)

    # ------------------------------------------------------------------
    # Kernel microcode exemption
    # ------------------------------------------------------------------
    def kernel_enter(self) -> None:
        self._kernel_depth += 1

    def kernel_exit(self) -> None:
        self._kernel_depth -= 1

    # ------------------------------------------------------------------
    # Bus hook (hot paths)
    # ------------------------------------------------------------------
    def check_read(self, addr: int, size: int) -> None:
        if self._kernel_depth:
            return
        self.n_data += 1
        if getattr(self._cpu, "pc") in self._elide:
            self.n_elided += 1
            return
        if addr < self._lo or addr >= self._hi:
            return
        self.n_probed += 1
        assert self._shadow is not None
        sh = self._shadow.raw
        off = addr - self._lo
        v = sh[off]
        if size == 2:
            v &= sh[off + 1]
        elif size == 4:
            v &= sh[off + 1] & sh[off + 2] & sh[off + 3]
        if v == OK:
            return
        self._bad_read(addr, size, v)

    def check_write(self, addr: int, size: int) -> None:
        if self._kernel_depth:
            # Trusted microcode: never report, but keep the defined
            # bits honest — the kernel writes events and record bytes
            # into app-visible storage.
            if self._lo <= addr < self._hi:
                assert self._shadow is not None
                self._shadow.set_defined(addr, size)
            return
        self.n_data += 1
        if getattr(self._cpu, "pc") in self._elide:
            self.n_elided += 1
            return
        if addr < self._lo or addr >= self._hi:
            return
        self.n_probed += 1
        assert self._shadow is not None
        sh = self._shadow.raw
        off = addr - self._lo
        v = sh[off]
        if size == 2:
            v &= sh[off + 1]
        elif size == 4:
            v &= sh[off + 1] & sh[off + 2] & sh[off + 3]
        if v == OK:
            return
        if v & A_BIT:
            # Addressable but (partly) undefined: this write defines it.
            for i in range(size):
                sh[off + i] |= D_BIT
            return
        self._bad_write(addr, size)
        # The write really happens (findings never alter execution);
        # keep D bits of any addressable bytes it covered consistent.
        for i in range(size):
            if sh[off + i] & A_BIT:
                sh[off + i] |= D_BIT

    # ------------------------------------------------------------------
    # Violation slow paths
    # ------------------------------------------------------------------
    def _pc(self) -> int:
        pc = int(getattr(self._cpu, "pc"))
        return self._attr.get(pc, pc)

    def _emit(self, severity: Severity, code: str, message: str,
              address: int, pc: Optional[int] = None) -> None:
        at = self._pc() if pc is None else pc
        key = (code, at)
        if key in self._seen or len(self.report) >= self.max_findings:
            self.suppressed += 1
            return
        self._seen.add(key)
        self.report.add(severity, code, message, address=address, block=at)

    def _find_chunk(self, addr: int) -> Tuple[str, Optional[AllocInfo]]:
        for info in self._quarantined.values():
            if info.chunk - L.CHUNK_HEADER_SIZE <= addr < info.chunk_end:
                return "uaf", info
        for info in self.live.values():
            if info.chunk - L.CHUNK_HEADER_SIZE <= addr < info.chunk_end:
                return "oob", info
        return "wild", None

    def _bad_read(self, addr: int, size: int, bits: int) -> None:
        assert self._shadow is not None
        if bits & A_BIT:
            bad = self._shadow.first_missing(addr, size, OK)
            info = self.live.get(self._owning_ptr(bad))
            origin = (f" (allocated at pc {info.pc:#x})"
                      if info is not None else "")
            self._emit(Severity.WARNING, "san-uninit-read",
                       f"read of uninitialized byte at {bad:#x}"
                       f" ({size}-byte access at {addr:#x}){origin}", bad)
            return
        bad = self._shadow.first_missing(addr, size, A_BIT)
        kind, info = self._find_chunk(bad)
        if kind == "uaf":
            assert info is not None
            self._emit(Severity.ERROR, "san-uaf",
                       f"read of freed chunk at {bad:#x} "
                       f"({info.size} bytes at {info.ptr:#x}, "
                       f"freed after allocation at pc {info.pc:#x})", bad)
        elif kind == "oob":
            assert info is not None
            self._emit(Severity.ERROR, "san-oob-read",
                       f"out-of-bounds read at {bad:#x}, "
                       f"{bad - (info.ptr + info.size)} byte(s) past the "
                       f"{info.size}-byte allocation at {info.ptr:#x}", bad)
        else:
            self._emit(Severity.ERROR, "san-wild",
                       f"read of unallocated heap space at {bad:#x}", bad)

    def _bad_write(self, addr: int, size: int) -> None:
        assert self._shadow is not None
        bad = self._shadow.first_missing(addr, size, A_BIT)
        kind, info = self._find_chunk(bad)
        if kind == "uaf":
            assert info is not None
            self._emit(Severity.ERROR, "san-uaf",
                       f"write to freed chunk at {bad:#x} "
                       f"({info.size} bytes at {info.ptr:#x}, "
                       f"freed after allocation at pc {info.pc:#x})", bad)
        elif kind == "oob":
            assert info is not None
            self._emit(Severity.ERROR, "san-oob-write",
                       f"out-of-bounds write at {bad:#x}, "
                       f"{bad - (info.ptr + info.size)} byte(s) past the "
                       f"{info.size}-byte allocation at {info.ptr:#x}", bad)
        else:
            self._emit(Severity.ERROR, "san-wild",
                       f"write to unallocated heap space at {bad:#x}", bad)

    def _owning_ptr(self, addr: int) -> int:
        for ptr, info in self.live.items():
            if info.ptr <= addr < info.ptr + info.size:
                return ptr
        return -1

    # ------------------------------------------------------------------
    # Heap hooks (called by repro.palmos.heap.Heap)
    # ------------------------------------------------------------------
    def on_alloc(self, heap: Heap, chunk_payload: int, req_size: int,
                 owner: int) -> int:
        """A chunk sized for ``req_size`` plus two red zones was carved;
        mark shadow and return the guest-visible payload pointer."""
        assert self._shadow is not None
        csize, _, _ = heap.header_of(chunk_payload)
        chunk_end = chunk_payload - L.CHUNK_HEADER_SIZE + csize
        ptr = chunk_payload + self.redzone
        self._shadow.mark_noaccess(chunk_payload, self.redzone)
        if owner == L.OWNER_APP:
            self._shadow.mark_undefined(ptr, req_size)
        else:
            self._shadow.mark_ok(ptr, req_size)
        self._shadow.mark_noaccess(ptr + req_size, chunk_end - ptr - req_size)
        self.live[ptr] = AllocInfo(ptr=ptr, size=req_size,
                                   chunk=chunk_payload, chunk_end=chunk_end,
                                   owner=owner, heap_base=heap.base,
                                   pc=int(getattr(self._cpu, "pc")))
        return ptr

    def on_free(self, heap: Heap, ptr: int) -> None:
        """Quarantine a freed allocation.  Raises
        :class:`~repro.palmos.heap.HeapError` for double or wild frees
        (after recording the finding) so trap error codes are
        unchanged; the actual heap release is deferred to
        :meth:`drain`."""
        assert self._shadow is not None
        info = self.live.pop(ptr, None)
        if info is None:
            if ptr in self._quarantined:
                old = self._quarantined[ptr]
                self._emit(Severity.ERROR, "san-double-free",
                           f"double free of {old.size}-byte allocation "
                           f"at {ptr:#x}", ptr)
                raise HeapError(f"double free of chunk at "
                                f"{old.chunk - L.CHUNK_HEADER_SIZE:#x}")
            # A chunk allocated before attach: adopt it from its header.
            size, flags, owner = heap.header_of(ptr)
            if flags & L.CHUNK_FLAG_FREE:
                self._emit(Severity.ERROR, "san-double-free",
                           f"double free of chunk at {ptr:#x}", ptr)
                raise HeapError(f"double free of chunk at "
                                f"{ptr - L.CHUNK_HEADER_SIZE:#x}")
            info = AllocInfo(ptr=ptr, size=size - L.CHUNK_HEADER_SIZE,
                             chunk=ptr,
                             chunk_end=ptr - L.CHUNK_HEADER_SIZE + size,
                             owner=owner, heap_base=heap.base, pc=0)
        self._shadow.mark_noaccess(info.chunk, info.chunk_end - info.chunk)
        self._quarantine.setdefault(heap.base, deque()).append(info)
        self._quarantined[info.ptr] = info

    def drain(self, heap: Heap, all_chunks: bool = False) -> Iterator[int]:
        """Chunk payloads whose quarantine hold expired — the heap
        releases these for real (oldest first)."""
        fifo = self._quarantine.get(heap.base)
        if not fifo:
            return
        limit = 0 if all_chunks else self.quarantine_chunks
        while len(fifo) > limit:
            info = fifo.popleft()
            del self._quarantined[info.ptr]
            yield info.chunk

    def payload_size(self, ptr: int) -> Optional[int]:
        """The requested size of a sanitized live allocation, or None
        when ``ptr`` is not one (legacy chunks fall back to the
        header)."""
        info = self.live.get(ptr)
        return info.size if info is not None else None

    def on_format(self, heap: Heap) -> None:
        """The heap was wiped (boot): its whole window is free space."""
        assert self._shadow is not None
        self._shadow.mark_noaccess(heap.first_chunk,
                                   heap.limit - heap.first_chunk)
        self.live = {ptr: info for ptr, info in self.live.items()
                     if info.heap_base != heap.base}
        self._quarantine.pop(heap.base, None)
        self._quarantined = {ptr: info
                             for ptr, info in self._quarantined.items()
                             if info.heap_base != heap.base}

    # ------------------------------------------------------------------
    # Leak check
    # ------------------------------------------------------------------
    def _leak_check(self) -> None:
        for ptr in sorted(self.live):
            info = self.live[ptr]
            if info.owner != L.OWNER_APP:
                continue
            self._emit(Severity.WARNING, "san-leak",
                       f"{info.size}-byte allocation at {ptr:#x} still "
                       f"live at exit (allocated at pc {info.pc:#x})",
                       ptr, pc=info.pc)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def elision_rate(self) -> float:
        """Fraction of guest data accesses discharged statically."""
        return self.n_elided / self.n_data if self.n_data else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "data_accesses": self.n_data,
            "elided": self.n_elided,
            "probed": self.n_probed,
            "elision_rate": round(self.elision_rate, 4),
            "elide_pcs": len(self._elide),
            "live_allocations": len(self.live),
            "quarantined": len(self._quarantined),
            "findings": len(self.report),
            "suppressed": self.suppressed,
        }
