"""Framebuffer rendering: look at the emulated screen.

The m515's 160x160 16-bit framebuffer lives in guest RAM; these helpers
render it for debugging and documentation — as ASCII art (quick look in
a terminal) or as a PPM image file (lossless, viewable anywhere, no
imaging dependencies needed).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Union

from ..device import constants as C
from ..palmos import layout as L

#: Luminance ramp for ASCII rendering, dark to light.
_RAMP = "@%#*+=-:. "


def _read_framebuffer(kernel: Any) -> bytes:
    return kernel.host.read_bytes(L.FRAMEBUFFER, C.FRAMEBUFFER_SIZE)


def _pixel_rgb(hi: int, lo: int) -> tuple:
    """RGB565 -> 8-bit RGB."""
    value = (hi << 8) | lo
    r = (value >> 11) & 0x1F
    g = (value >> 5) & 0x3F
    b = value & 0x1F
    return (r << 3 | r >> 2, g << 2 | g >> 4, b << 3 | b >> 2)


def screen_ascii(kernel: Any, width: int = 80) -> str:
    """Render the framebuffer as ASCII art (downsampled)."""
    fb = _read_framebuffer(kernel)
    step = max(1, C.SCREEN_WIDTH // width)
    rows = []
    for y in range(0, C.SCREEN_HEIGHT, step * 2):  # chars are ~2:1
        row = []
        for x in range(0, C.SCREEN_WIDTH, step):
            offset = (y * C.SCREEN_WIDTH + x) * 2
            r, g, b = _pixel_rgb(fb[offset], fb[offset + 1])
            luminance = (2 * r + 5 * g + b) / 8 / 255
            row.append(_RAMP[min(len(_RAMP) - 1,
                                 int(luminance * len(_RAMP)))])
        rows.append("".join(row))
    return "\n".join(rows)


def screenshot_ppm(kernel: Any, path: Union[str, Path]) -> None:
    """Write the framebuffer as a binary PPM (P6) image."""
    fb = _read_framebuffer(kernel)
    header = f"P6\n{C.SCREEN_WIDTH} {C.SCREEN_HEIGHT}\n255\n".encode()
    body = bytearray()
    for i in range(0, len(fb), 2):
        body.extend(_pixel_rgb(fb[i], fb[i + 1]))
    Path(path).write_bytes(header + bytes(body))


def screen_histogram(kernel: Any) -> dict:
    """Colour histogram of the framebuffer (diagnostics)."""
    fb = _read_framebuffer(kernel)
    out: dict = {}
    for i in range(0, len(fb), 2):
        value = (fb[i] << 8) | fb[i + 1]
        out[value] = out.get(value, 0) + 1
    return out
