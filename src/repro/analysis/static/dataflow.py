"""Worklist abstract interpretation over the CFG: constant propagation.

The structural layer (:mod:`decode`, :mod:`walker`) answers *where*
control flow can go; this module answers *what values* flow there.  It
runs a classic worklist fixpoint over :class:`~.walker.CFG` basic
blocks with a three-level flat lattice per storage cell:

``⊥``
    (absent state) — the block has not been reached yet;
``const``
    a single 32-bit value, or a *symbolic* stack address
    ``('s', offset)`` meaning "the function's entry A7 plus offset";
``⊤``
    (``None``) — unknown.

Alongside the sixteen registers the state tracks **stack slots**: the
longwords a function has pushed, keyed by their entry-relative byte
offset.  That is what turns a trap call site's ``move.l #x,-(sp)`` /
``dc.w $Axxx`` idiom into recoverable trap *arguments*.

Soundness contract (differentially tested against ``repro.m68k.cpu``):
any register the analysis claims constant at a block entry equals the
interpreted register value every time execution reaches that address.
To keep that promise the transfer function havocs everything it cannot
model exactly: calls, traps and emucalls clobber all registers except
A7 (assumed balanced — the stack checker verifies that independently)
and drop every tracked slot; memory reads resolve to constants only
for stack slots this function wrote itself, or for addresses inside an
explicitly write-protected ``readonly_ranges`` window; a write through
an unknown or non-symbolic pointer kills all slots (it may alias the
stack).

Termination: every cell lives in a flat lattice, and the per-block
join only *drops* slots, so the fixpoint converges on its own for
ordinary code; loop heads additionally get **widened** (slots cleared)
after ``max_visits`` re-joins as a hard guarantee, with a larger
global cap for pathological graphs.  Widened blocks are reported in
:attr:`ConstResult.widened`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (Callable, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Set, Tuple, Union)

from .decode import (Insn, K_CALL, K_CONDBRANCH, K_EMUCALL, K_EXCEPTION,
                     K_NORMAL, K_TRAP)
from .walker import CFG, BasicBlock

M32 = 0xFFFFFFFF

#: Abstract value: ``None`` is ⊤, an ``int`` is a known 32-bit
#: constant, and ``('s', off)`` is the symbolic address "entry A7 +
#: off" (⊥ is represented by the *absence* of a block state).
Sym = Tuple[str, int]
RVal = Union[int, Sym, None]

#: The symbolic stack pointer every function starts with.
ENTRY_SP: Sym = ("s", 0)


def _sext(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value & M32


def _mask(size: int) -> int:
    return (1 << (8 * size)) - 1


def _s32(value: int) -> int:
    """Interpret a (possibly already-negative) int as signed 32-bit."""
    value &= M32
    return value - (1 << 32) if value & 0x80000000 else value


def val_add(x: RVal, y: RVal) -> RVal:
    """Abstract 32-bit addition (closed over symbolic sp values)."""
    if isinstance(x, int) and isinstance(y, int):
        return (x + y) & M32
    if isinstance(x, tuple) and isinstance(y, int):
        return (x[0], x[1] + _s32(y))
    if isinstance(y, tuple) and isinstance(x, int):
        return (y[0], y[1] + _s32(x))
    return None


def val_sub(x: RVal, y: RVal) -> RVal:
    """Abstract 32-bit subtraction; sym - sym folds to a constant."""
    if isinstance(x, int) and isinstance(y, int):
        return (x - y) & M32
    if isinstance(x, tuple) and isinstance(y, int):
        return (x[0], x[1] - _s32(y))
    if isinstance(x, tuple) and isinstance(y, tuple) and x[0] == y[0]:
        return (x[1] - y[1]) & M32
    return None


@dataclass(frozen=True)
class AbsState:
    """One immutable abstract machine state (block entry or exit).

    ``slots`` maps entry-relative stack offsets to the longword value
    stored there, sorted by offset so equal states compare equal.
    """

    d: Tuple[RVal, ...]
    a: Tuple[RVal, ...]
    slots: Tuple[Tuple[int, RVal], ...] = ()

    @classmethod
    def entry(cls) -> "AbsState":
        """The state a function is analyzed under: everything unknown
        except A7, which is the symbolic entry stack pointer."""
        return cls(d=(None,) * 8, a=(None,) * 7 + (ENTRY_SP,), slots=())

    def dreg(self, i: int) -> RVal:
        return self.d[i]

    def areg(self, i: int) -> RVal:
        return self.a[i]

    @property
    def sp(self) -> RVal:
        return self.a[7]

    def slot(self, off: int) -> RVal:
        for key, value in self.slots:
            if key == off:
                return value
        return None

    def constants(self) -> Dict[str, int]:
        """Registers with known integer values, as ``{"d0": v, ...}``."""
        out: Dict[str, int] = {}
        for i, value in enumerate(self.d):
            if isinstance(value, int):
                out[f"d{i}"] = value
        for i, value in enumerate(self.a):
            if isinstance(value, int):
                out[f"a{i}"] = value
        return out


def join(x: AbsState, y: AbsState) -> AbsState:
    """Pointwise join: keep a cell only where both states agree."""
    if x == y:
        return x
    d = tuple(vx if vx == vy else None for vx, vy in zip(x.d, y.d))
    a = tuple(vx if vx == vy else None for vx, vy in zip(x.a, y.a))
    ys = dict(y.slots)
    slots = tuple((off, value) for off, value in x.slots
                  if ys.get(off) == value)
    return AbsState(d=d, a=a, slots=slots)


def widen(state: AbsState) -> AbsState:
    """Loop-head widening: drop the (unbounded) slot map, keep the
    (finite, flat) register lattice to converge on its own."""
    if not state.slots:
        return state
    return AbsState(d=state.d, a=state.a, slots=())


@dataclass(frozen=True)
class MemOp:
    """One memory operand of one instruction, as far as the abstract
    interpreter could resolve it.

    ``base`` says how the address was derived: ``"const"`` (absolute,
    ``addr`` holds it), ``"stack"`` (entry-sp relative, ``sp_off``
    holds the offset), or ``"unknown"``.
    """

    insn: int
    write: bool
    size: int
    base: str
    addr: Optional[int] = None
    sp_off: Optional[int] = None
    #: Known 32-bit value being stored (writes only).
    value: Optional[int] = None

    @property
    def known(self) -> bool:
        return self.base != "unknown"

    def refs(self) -> int:
        """Bus references this access costs (the bus splits longword
        and wider accesses into 16-bit cycles)."""
        return max(1, (self.size + 1) // 2)


@dataclass(frozen=True)
class TrapSite:
    """One A-line call site with its recovered stack arguments.

    ``args[i]`` is the i-th longword above A7 at the trap word (the
    last-pushed argument first — C argument order), ``None`` where the
    value is not a compile-time constant.  ``sp_known`` is False when
    the analysis lost track of A7 entirely.
    """

    addr: int
    trap: int
    args: Tuple[Optional[int], ...] = ()
    sp_known: bool = True


@dataclass
class ConstResult:
    """Everything the constant-propagation fixpoint learned."""

    #: Abstract state at each analyzed block's entry / exit.
    block_in: Dict[int, AbsState] = field(default_factory=dict)
    block_out: Dict[int, AbsState] = field(default_factory=dict)
    #: State immediately before each instruction (joined when an
    #: instruction is shared by several blocks).
    insn_in: Dict[int, AbsState] = field(default_factory=dict)
    #: Memory operands per instruction address.
    mem_ops: Dict[int, Tuple[MemOp, ...]] = field(default_factory=dict)
    #: Instruction addresses whose memory behaviour is fully modeled
    #: (every dynamic access appears in ``mem_ops``).
    modeled: Set[int] = field(default_factory=set)
    #: Reachable A-line sites with recovered arguments.
    trap_sites: List[TrapSite] = field(default_factory=list)
    #: (dead_store_insn, overwriting_insn) pairs: the first stored a
    #: stack slot that was provably overwritten before any read.
    dead_stores: List[Tuple[int, int]] = field(default_factory=list)
    #: Blocks whose in-state was widened (slot map dropped).
    widened: Set[int] = field(default_factory=set)
    #: Join count per block (diagnostics).
    visits: Dict[int, int] = field(default_factory=dict)

    def constants_at(self, addr: int) -> Dict[str, int]:
        state = self.insn_in.get(addr)
        return state.constants() if state is not None else {}


def analyze_constprop(
        cfg: CFG, fetch: Callable[[int], int], *,
        readonly_ranges: Sequence[Tuple[int, int]] = (),
        max_visits: int = 12) -> ConstResult:
    """Run the constant-propagation fixpoint over ``cfg``.

    ``fetch`` reads a 16-bit guest word (same callable the walker
    used).  ``readonly_ranges`` lists half-open address windows whose
    contents can never change at runtime (write-protected flash); only
    reads inside them may resolve to image constants.  ``max_visits``
    is the per-loop-head join budget before widening.
    """
    result = ConstResult()
    entries = (set(cfg.roots) | cfg.function_entries) & set(cfg.blocks)
    if not entries:
        return result
    loop_heads = cfg.loop_heads()
    hard_cap = max_visits * 8

    in_state: Dict[int, AbsState] = {b: AbsState.entry()
                                     for b in entries}
    work: deque = deque(sorted(entries))
    queued: Set[int] = set(work)
    xfer = _Xfer(fetch, tuple(readonly_ranges))

    while work:
        start = work.popleft()
        queued.discard(start)
        block = cfg.blocks[start]
        state_in = in_state[start]
        state_out = xfer.run_block(block, state_in)
        if result.block_out.get(start) == state_out \
                and result.block_in.get(start) == state_in:
            continue
        result.block_in[start] = state_in
        result.block_out[start] = state_out
        for succ in block.succs:
            if succ not in cfg.blocks:
                continue
            current = in_state.get(succ)
            new = state_out if current is None else join(current, state_out)
            if new == current:
                continue
            count = result.visits.get(succ, 0) + 1
            result.visits[succ] = count
            if (count > max_visits and succ in loop_heads) \
                    or count > hard_cap:
                degraded = widen(new)
                if degraded != new:
                    result.widened.add(succ)
                new = degraded
            if new != current:
                in_state[succ] = new
                if succ not in queued:
                    work.append(succ)
                    queued.add(succ)
        # Call targets are function entries: they were seeded with the
        # generic entry state already, which the callee state can only
        # degrade toward — nothing to propagate along call edges.

    # Harvest: one deterministic pass with the fixpoint states,
    # recording per-instruction facts.
    harvest = _Harvest(result)
    for start in sorted(result.block_in):
        xfer.run_block(cfg.blocks[start], result.block_in[start],
                       harvest=harvest)
    result.trap_sites.sort(key=lambda site: site.addr)
    result.dead_stores.sort()
    return result


# ---------------------------------------------------------------------------
# Backward pass: nondeterminism reachability.
# ---------------------------------------------------------------------------

def nondet_reachability(
        cfg: CFG, nondet_traps: Iterable[int]) -> Dict[int, FrozenSet[int]]:
    """For every block, the set of ``nondet_traps`` indices some path
    from that block can reach (following fallthrough, branch *and*
    call edges — a called function's traps count as reachable).

    This is a backward may-analysis over the set-union lattice: the
    block's value is its own trap sites joined with every successor's
    value, iterated to fixpoint.
    """
    interesting = frozenset(nondet_traps)
    gen: Dict[int, Set[int]] = {}
    for start, block in cfg.blocks.items():
        gen[start] = {insn.trap for insn in block.insns
                      if insn.kind == K_TRAP and insn.trap in interesting}

    # Reverse edges over succs + calls so the worklist walks backward.
    rev: Dict[int, List[int]] = {n: [] for n in cfg.blocks}
    fwd: Dict[int, List[int]] = {}
    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        outs = [t for t in block.succs + block.calls if t in cfg.blocks]
        fwd[start] = outs
        for target in outs:
            rev[target].append(start)

    value: Dict[int, Set[int]] = {n: set(g) for n, g in gen.items()}
    work: deque = deque(sorted(cfg.blocks))
    queued = set(work)
    while work:
        node = work.popleft()
        queued.discard(node)
        new = set(gen[node])
        for target in fwd[node]:
            new |= value[target]
        if new != value[node]:
            value[node] = new
            for pred in rev[node]:
                if pred not in queued:
                    work.append(pred)
                    queued.add(pred)
    return {n: frozenset(v) for n, v in value.items()}


# ---------------------------------------------------------------------------
# Harvest bookkeeping.
# ---------------------------------------------------------------------------

class _Harvest:
    """Collects per-instruction facts during the final block pass."""

    def __init__(self, result: ConstResult):
        self.result = result
        #: slot offset -> insn addr of the pending (unread) store.
        self.pending_stores: Dict[int, int] = {}

    def insn_state(self, insn: Insn, state: AbsState) -> None:
        seen = self.result.insn_in.get(insn.addr)
        self.result.insn_in[insn.addr] = \
            state if seen is None else join(seen, state)

    def mem_ops(self, insn: Insn, ops: List[MemOp], modeled: bool) -> None:
        previous = self.result.mem_ops.get(insn.addr)
        merged = tuple(ops)
        if previous is not None and previous != merged:
            merged = _join_mem_ops(previous, merged)
        self.result.mem_ops[insn.addr] = merged
        if modeled and (previous is None or insn.addr in self.result.modeled):
            self.result.modeled.add(insn.addr)
        else:
            self.result.modeled.discard(insn.addr)
        self._track_dead_stores(insn, merged)

    def trap_site(self, site: TrapSite) -> None:
        existing = [s for s in self.result.trap_sites if s.addr == site.addr]
        if not existing:
            self.result.trap_sites.append(site)
            return
        old = existing[0]
        if old != site:
            # Joined over paths: keep only agreeing argument values.
            args = tuple(x if x == y else None
                         for x, y in zip(old.args, site.args))
            self.result.trap_sites.remove(old)
            self.result.trap_sites.append(TrapSite(
                site.addr, site.trap, args,
                old.sp_known and site.sp_known))

    def block_boundary(self) -> None:
        self.pending_stores.clear()

    def barrier(self) -> None:
        """A call/trap/unknown access: stop pairing dead stores."""
        self.pending_stores.clear()

    def _track_dead_stores(self, insn: Insn, ops: Tuple[MemOp, ...]) -> None:
        for op in ops:
            if op.write and op.base == "stack" and op.size == 4 \
                    and op.sp_off is not None:
                prior = self.pending_stores.get(op.sp_off)
                if prior is not None and prior != insn.addr:
                    self.result.dead_stores.append((prior, insn.addr))
                self.pending_stores[op.sp_off] = insn.addr
            elif op.write:
                # A write we cannot place may alias any slot.
                self.pending_stores.clear()
            elif op.base == "stack" and op.sp_off is not None:
                # Reads can touch [sp_off, sp_off+size): retire any
                # overlapping pending store.
                for off in list(self.pending_stores):
                    if off < op.sp_off + op.size and op.sp_off < off + 4:
                        del self.pending_stores[off]
            else:
                # Read through an unplaced pointer: may read anything.
                self.pending_stores.clear()


def _join_mem_ops(a: Tuple[MemOp, ...],
                  b: Tuple[MemOp, ...]) -> Tuple[MemOp, ...]:
    """Join the memory-operand lists of two paths through one insn:
    where they disagree, degrade the operand's address to unknown."""
    if len(a) != len(b):
        # Shapes differ (path-dependent EA side effects): keep the
        # writes/sizes of the longer list but mark every address
        # unknown so no downstream consumer trusts it.
        longer = a if len(a) >= len(b) else b
        return tuple(MemOp(op.insn, op.write, op.size, "unknown")
                     for op in longer)
    out: List[MemOp] = []
    for x, y in zip(a, b):
        if x == y:
            out.append(x)
        elif x.write == y.write and x.size == y.size:
            out.append(MemOp(x.insn, x.write, x.size, "unknown"))
        else:
            out.append(MemOp(x.insn, x.write or y.write,
                             max(x.size, y.size), "unknown"))
    return tuple(out)


# ---------------------------------------------------------------------------
# The abstract transfer function.
# ---------------------------------------------------------------------------

class _MutState:
    """Mutable working copy of an :class:`AbsState` for one block run."""

    __slots__ = ("d", "a", "slots")

    def __init__(self, frozen: AbsState):
        self.d: List[RVal] = list(frozen.d)
        self.a: List[RVal] = list(frozen.a)
        self.slots: Dict[int, RVal] = dict(frozen.slots)

    def freeze(self) -> AbsState:
        return AbsState(d=tuple(self.d), a=tuple(self.a),
                        slots=tuple(sorted(self.slots.items())))


class _Words:
    """Extension-word reader mirroring the interpreter's fetch order."""

    __slots__ = ("fetch", "addr")

    def __init__(self, fetch: Callable[[int], int], addr: int):
        self.fetch = fetch
        self.addr = addr

    def u16(self) -> int:
        word = self.fetch(self.addr) & 0xFFFF
        self.addr += 2
        return word

    def u32(self) -> int:
        return (self.u16() << 16) | self.u16()


class _Loc:
    """One evaluated operand location."""

    __slots__ = ("kind", "reg", "addr", "imm")

    def __init__(self, kind: str, reg: int = 0,
                 addr: RVal = None, imm: int = 0):
        self.kind = kind            # 'd' | 'a' | 'm' | 'i'
        self.reg = reg
        self.addr = addr            # for 'm'
        self.imm = imm              # for 'i'


class _Xfer:
    """Applies one instruction's abstract semantics to a _MutState.

    Everything not modeled exactly degrades to ⊤ — the differential
    test holds this class to the soundness contract in the module
    docstring, so "conservative" always wins over "clever" here.
    """

    def __init__(self, fetch: Callable[[int], int],
                 readonly_ranges: Tuple[Tuple[int, int], ...] = ()):
        self.fetch = fetch
        self.readonly = readonly_ranges
        self.ops: List[MemOp] = []
        self.modeled = True
        self._insn_addr = 0

    # -- block driver ---------------------------------------------------
    def run_block(self, block: BasicBlock, state_in: AbsState,
                  harvest: Optional[_Harvest] = None) -> AbsState:
        st = _MutState(state_in)
        if harvest is not None:
            harvest.block_boundary()
        for insn in block.insns:
            if harvest is not None:
                harvest.insn_state(insn, st.freeze())
            self.ops = []
            self.modeled = True
            self._insn_addr = insn.addr
            barrier = self.step(insn, st, harvest)
            if harvest is not None:
                harvest.mem_ops(insn, self.ops, self.modeled)
                if barrier:
                    harvest.barrier()
        return st.freeze()

    # -- per-instruction dispatch ---------------------------------------
    def step(self, insn: Insn, st: _MutState,
             harvest: Optional[_Harvest]) -> bool:
        """Apply ``insn``; returns True when the insn is a dead-store
        pairing barrier (call/trap/havoc)."""
        kind = insn.kind
        if kind == K_TRAP:
            if harvest is not None:
                harvest.trap_site(self._trap_site(insn, st))
            self._havoc_call(st)
            return True
        if kind in (K_CALL, K_EMUCALL, K_EXCEPTION):
            self._havoc_call(st)
            return True
        if kind == K_CONDBRANCH and (insn.word >> 12) == 5:
            # dbcc: the counter's low word decrements on the
            # fallthrough path only — path-dependent, so ⊤.
            self._set_d(st, insn.word & 7, None, 2)
            return False
        if kind == K_NORMAL:
            self._normal(insn, st)
            return False
        # branch / condbranch(bcc) / return / illegal / stop: no
        # register or memory effect to model.
        return False

    def _trap_site(self, insn: Insn, st: _MutState) -> TrapSite:
        sp = st.a[7]
        if not isinstance(sp, tuple):
            return TrapSite(insn.addr, insn.trap or 0, (), False)
        args: List[Optional[int]] = []
        for i in range(4):
            value = st.slots.get(sp[1] + 4 * i)
            args.append(value if isinstance(value, int) else None)
        while args and args[-1] is None:
            args.pop()
        return TrapSite(insn.addr, insn.trap or 0, tuple(args), True)

    def _havoc_call(self, st: _MutState) -> None:
        """Calls/traps clobber everything except A7 (assumed balanced;
        the stack checker verifies that separately) and may write any
        memory, so all tracked slots die."""
        for i in range(8):
            st.d[i] = None
        for i in range(7):
            st.a[i] = None
        st.slots.clear()

    def _havoc_unknown(self, st: _MutState, insn: Insn) -> None:
        sp = st.a[7]
        self._havoc_call(st)
        st.a[7] = val_add(sp, insn.sp_delta) \
            if insn.sp_delta is not None else None
        self.modeled = False

    # -- operand plumbing ----------------------------------------------
    def _ea(self, w: _Words, mode: int, reg: int, size: int,
            st: _MutState) -> _Loc:
        if mode == 0:
            return _Loc("d", reg)
        if mode == 1:
            return _Loc("a", reg)
        if mode == 2:
            return _Loc("m", addr=st.a[reg])
        if mode == 3:                                  # (An)+
            step = 2 if (reg == 7 and size == 1) else size
            addr = st.a[reg]
            st.a[reg] = val_add(addr, step)
            return _Loc("m", addr=addr)
        if mode == 4:                                  # -(An)
            step = 2 if (reg == 7 and size == 1) else size
            addr = val_sub(st.a[reg], step)
            st.a[reg] = addr
            return _Loc("m", addr=addr)
        if mode == 5:                                  # d16(An)
            disp = _sext(w.u16(), 16)
            return _Loc("m", addr=val_add(st.a[reg], disp))
        if mode == 6:                                  # d8(An,Xn)
            ext = w.u16()
            return _Loc("m", addr=self._indexed(ext, st.a[reg], st))
        # mode == 7
        if reg == 0:
            return _Loc("m", addr=_sext(w.u16(), 16))
        if reg == 1:
            return _Loc("m", addr=w.u32())
        if reg == 2:                                   # d16(PC)
            base = w.addr
            return _Loc("m", addr=(base + _s32(_sext(w.u16(), 16))) & M32)
        if reg == 3:                                   # d8(PC,Xn)
            base = w.addr
            ext = w.u16()
            return _Loc("m", addr=self._indexed(ext, base & M32, st))
        # reg == 4: immediate
        imm = w.u32() if size == 4 else (w.u16() & _mask(size))
        return _Loc("i", imm=imm)

    def _indexed(self, ext: int, base: RVal, st: _MutState) -> RVal:
        xreg = (ext >> 12) & 7
        index = st.a[xreg] if ext & 0x8000 else st.d[xreg]
        if not (ext & 0x0800):                         # word index
            index = _sext(index & 0xFFFF, 16) \
                if isinstance(index, int) else None
        disp = _sext(ext & 0xFF, 8)
        return val_add(val_add(base, disp), index)

    def _record(self, write: bool, addr: RVal, size: int,
                value: RVal = None) -> None:
        if isinstance(addr, tuple):
            op = MemOp(self._insn_addr, write, size, "stack",
                       sp_off=addr[1],
                       value=value if isinstance(value, int) else None)
        elif isinstance(addr, int):
            op = MemOp(self._insn_addr, write, size, "const", addr=addr,
                       value=value if isinstance(value, int) else None)
        else:
            op = MemOp(self._insn_addr, write, size, "unknown")
        self.ops.append(op)

    def _load(self, loc: _Loc, size: int, st: _MutState) -> RVal:
        """The operand's value, masked to ``size`` (⊤-safe)."""
        if loc.kind == "i":
            return loc.imm & _mask(size)
        if loc.kind in ("d", "a"):
            value = st.d[loc.reg] if loc.kind == "d" else st.a[loc.reg]
            if isinstance(value, int):
                return value & _mask(size)
            return value if size == 4 else None
        self._record(False, loc.addr, size)
        return self._read_mem(loc.addr, size, st)

    def _read_mem(self, addr: RVal, size: int, st: _MutState) -> RVal:
        if isinstance(addr, tuple):
            if size == 4:
                return st.slots.get(addr[1])
            return None
        if isinstance(addr, int):
            return self._read_image(addr, size)
        return None

    def _read_image(self, addr: int, size: int) -> RVal:
        """A constant memory read — sound only inside write-protected
        ranges, where the image can never change at runtime."""
        if not any(lo <= addr and addr + size <= hi
                   for lo, hi in self.readonly):
            return None
        if size == 1:
            word = self.fetch(addr & ~1) & 0xFFFF
            return (word >> 8) & 0xFF if addr % 2 == 0 else word & 0xFF
        if addr % 2:
            return None
        if size == 2:
            return self.fetch(addr) & 0xFFFF
        return ((self.fetch(addr) & 0xFFFF) << 16) \
            | (self.fetch(addr + 2) & 0xFFFF)

    def _store(self, loc: _Loc, size: int, value: RVal,
               st: _MutState) -> None:
        if loc.kind == "d":
            self._set_d(st, loc.reg, value, size)
            return
        if loc.kind == "a":
            self._set_a(st, loc.reg, value, size)
            return
        self._record(True, loc.addr, size, value)
        self._write_mem(loc.addr, size, value, st)

    def _write_mem(self, addr: RVal, size: int, value: RVal,
                   st: _MutState) -> None:
        if isinstance(addr, tuple):
            off = addr[1]
            for key in [k for k in st.slots
                        if k < off + size and off < k + 4]:
                del st.slots[key]
            if size == 4 and value is not None:
                st.slots[off] = value
        else:
            # Constant or unknown pointer: either may alias the stack
            # (the symbolic base is unknown), so every slot dies.
            st.slots.clear()

    def _set_d(self, st: _MutState, reg: int, value: RVal,
               size: int) -> None:
        if size == 4:
            st.d[reg] = value
            return
        old = st.d[reg]
        if isinstance(old, int) and isinstance(value, int):
            mask = _mask(size)
            st.d[reg] = (old & ~mask) | (value & mask)
        else:
            st.d[reg] = None

    def _set_a(self, st: _MutState, reg: int, value: RVal,
               size: int) -> None:
        """Address-register writes are always full-width; word sources
        sign-extend (movea.w / adda.w semantics)."""
        if size == 2:
            value = _sext(value, 16) if isinstance(value, int) else None
        st.a[reg] = value

    def _alu_d(self, st: _MutState, reg: int, size: int,
               fn: Callable[[int], Optional[int]]) -> None:
        """Apply ``fn`` to Dn's low ``size`` bytes (partial write)."""
        old = st.d[reg]
        if isinstance(old, int):
            new = fn(old & _mask(size))
            self._set_d(st, reg, new, size)
        else:
            self._set_d(st, reg, None, size)

    def _rmw_mem(self, loc: _Loc, size: int, st: _MutState,
                 fn: Callable[[int], Optional[int]]) -> None:
        """Read-modify-write a memory/register operand through ``fn``."""
        if loc.kind in ("d", "a"):
            if loc.kind == "d":
                self._alu_d(st, loc.reg, size, fn)
            else:
                old = st.a[loc.reg]
                new = fn(old & _mask(size)) if isinstance(old, int) else None
                self._set_a(st, loc.reg, new, size)
            return
        old = self._load(loc, size, st)
        new = fn(old) if isinstance(old, int) else None
        self._store(loc, size, new, st)

    # -- the structural dispatch (mirrors decode._decode_structure) -----
    def _normal(self, insn: Insn, st: _MutState) -> None:
        op = insn.word
        group = op >> 12
        mode, reg = (op >> 3) & 7, op & 7
        szbits = (op >> 6) & 3
        w = _Words(self.fetch, insn.addr + 2)

        # ---- fixed words ---------------------------------------------
        if op in (0x4E70, 0x4E71, 0x4E76):            # reset / nop / trapv
            return
        if op & 0xFFF8 == 0x4E50:                     # link An,#d
            disp = _s32(_sext(w.u16(), 16))
            sp = val_sub(st.a[7], 4)
            self._record(True, sp, 4, st.a[reg])
            self._write_mem(sp, 4, st.a[reg], st)
            st.a[reg] = sp
            st.a[7] = val_add(sp, disp)
            return
        if op & 0xFFF8 == 0x4E58:                     # unlk An
            sp = st.a[reg]
            self._record(False, sp, 4)
            st.a[reg] = self._read_mem(sp, 4, st)
            st.a[7] = val_add(sp, 4)
            return
        if op & 0xFFF8 == 0x4E68:                     # move usp,An
            st.a[reg] = None
            return
        if op & 0xFFF8 == 0x4E60:                     # move An,usp
            return

        # ---- group 1/2/3: move ---------------------------------------
        if group in (1, 2, 3):
            size = {1: 1, 3: 2, 2: 4}[group]
            src = self._ea(w, mode, reg, size, st)
            value = self._load(src, size, st)
            dmode, dreg = (op >> 6) & 7, (op >> 9) & 7
            dst = self._ea(w, dmode, dreg, size, st)
            self._store(dst, size, value, st)
            return

        # ---- group 0: immediates and bit ops -------------------------
        if group == 0:
            self._group0(op, mode, reg, szbits, w, st)
            return

        # ---- group 4 --------------------------------------------------
        if group == 4:
            self._group4(op, mode, reg, szbits, w, st, insn)
            return

        # ---- group 5: addq/subq, scc ---------------------------------
        if group == 5:
            if szbits == 3:                           # scc (dbcc handled)
                loc = self._ea(w, mode, reg, 1, st)
                if loc.kind == "m":                   # modify_ea reads first
                    self._load(loc, 1, st)
                self._store(loc, 1, None, st)
                return
            data = ((op >> 9) & 7) or 8
            size = _size_of(szbits)
            if mode == 1:                             # An: full-width
                st.a[reg] = (val_sub if op & 0x0100 else val_add)(
                    st.a[reg], data)
                return
            loc = self._ea(w, mode, reg, size, st)
            sub = bool(op & 0x0100)
            self._rmw_mem(loc, size, st,
                          lambda v: ((v - data) if sub else (v + data))
                          & _mask(size))
            return

        # ---- group 6/7 ------------------------------------------------
        if group == 6:                                # bcc: no effect
            return
        if group == 7:                                # moveq
            st.d[(op >> 9) & 7] = _sext(op & 0xFF, 8)
            return

        # ---- groups 8/9/B/C/D ----------------------------------------
        if group in (8, 9, 0xB, 0xC, 0xD):
            self._arith(op, group, mode, reg, w, st)
            return

        # ---- group E: shifts -----------------------------------------
        if group == 0xE:
            self._shift(op, mode, reg, szbits, w, st)
            return

        self._havoc_unknown(st, insn)

    # -- group 0: immediates, bit ops, movep ---------------------------
    def _group0(self, op: int, mode: int, reg: int, szbits: int,
                w: _Words, st: _MutState) -> None:
        if op & 0x0100:                               # dynamic bit / movep
            if mode == 1:                             # movep
                disp = _sext(w.u16(), 16)
                addr = val_add(st.a[reg], disp)
                span = 7 if op & 0x0040 else 3        # alternate bytes
                dreg = (op >> 9) & 7
                if op & 0x0080:                       # reg -> mem
                    self._record(True, None, span)
                    self._write_mem(addr, span, None, st)
                else:
                    self._record(False, None, span)
                    self._set_d(st, dreg, None, 4 if op & 0x0040 else 2)
                self.modeled = False                  # byte-interleaved
                return
            self._bitop(op, mode, reg, w, st)
            return
        kind = (op >> 9) & 7
        if kind == 4:                                 # static bit op
            w.u16()                                   # bit number
            self._bitop(op, mode, reg, w, st)
            return
        size = _size_of(szbits)
        if mode == 7 and reg == 4:                    # to ccr / sr
            w.u16()
            return
        imm = w.u32() if size == 4 else (w.u16() & _mask(size))
        ea = self._ea(w, mode, reg, size, st)
        if kind == 6:                                 # cmpi: read only
            self._load(ea, size, st)
            return
        m = _mask(size)
        fns: Dict[int, Callable[[int], Optional[int]]] = {
            0: lambda v: v | imm,                     # ori
            1: lambda v: v & imm,                     # andi
            2: lambda v: (v - imm) & m,               # subi
            3: lambda v: (v + imm) & m,               # addi
            5: lambda v: v ^ imm,                     # eori
        }
        self._rmw_mem(ea, size, st, fns[kind])

    def _bitop(self, op: int, mode: int, reg: int, w: _Words,
               st: _MutState) -> None:
        btype = (op >> 6) & 3                         # 0=btst 1/2/3 modify
        if mode == 0:                                 # Dn dest: long width
            if btype:
                st.d[reg] = None
            return
        ea = self._ea(w, mode, reg, 1, st)
        self._load(ea, 1, st)
        if btype:
            self._store(ea, 1, None, st)

    # -- group 4 --------------------------------------------------------
    def _group4(self, op: int, mode: int, reg: int, szbits: int,
                w: _Words, st: _MutState, insn: Insn) -> None:
        if op & 0xF1C0 == 0x41C0:                     # lea
            ea = self._ea(w, mode, reg, 4, st)
            st.a[(op >> 9) & 7] = ea.addr if ea.kind == "m" else None
            return
        if op & 0xF1C0 == 0x4180:                     # chk
            ea = self._ea(w, mode, reg, 2, st)
            self._load(ea, 2, st)
            return
        if op & 0xFFC0 == 0x40C0:                     # move sr,<ea>
            ea = self._ea(w, mode, reg, 2, st)
            self._store(ea, 2, None, st)
            return
        if op & 0xFFC0 in (0x44C0, 0x46C0):           # move <ea>,ccr / sr
            ea = self._ea(w, mode, reg, 2, st)
            self._load(ea, 2, st)
            return
        if op & 0xFFF8 == 0x4840:                     # swap
            value = st.d[reg]
            st.d[reg] = (((value >> 16) | (value << 16)) & M32
                         if isinstance(value, int) else None)
            return
        if op & 0xFFC0 == 0x4840:                     # pea
            ea = self._ea(w, mode, reg, 4, st)
            pushed = ea.addr if ea.kind == "m" else None
            sp = val_sub(st.a[7], 4)
            st.a[7] = sp
            self._record(True, sp, 4, pushed)
            self._write_mem(sp, 4, pushed, st)
            return
        if op & 0xFFB8 == 0x4880 and mode == 0:       # ext
            value = st.d[reg]
            if op & 0x0040:                           # ext.l word -> long
                st.d[reg] = (_sext(value & 0xFFFF, 16)
                             if isinstance(value, int) else None)
            else:                                     # ext.w byte -> word
                low = (_sext(value & 0xFF, 8) & 0xFFFF
                       if isinstance(value, int) else None)
                self._set_d(st, reg, low, 2)
            return
        if op & 0xFB80 == 0x4880:                     # movem
            self._movem(op, mode, reg, w, st)
            return
        if op & 0xFFC0 == 0x4800:                     # nbcd
            ea = self._ea(w, mode, reg, 1, st)
            self._rmw_mem(ea, 1, st, lambda v: None)
            return
        if op & 0xFFC0 == 0x4AC0:                     # tas
            ea = self._ea(w, mode, reg, 1, st)
            self._rmw_mem(ea, 1, st, lambda v: (v | 0x80) & 0xFF)
            return
        # negx / clr / neg / not / tst
        size = _size_of(szbits)
        m = _mask(size)
        ea = self._ea(w, mode, reg, size, st)
        top = op & 0xFF00
        if top == 0x4A00:                             # tst
            self._load(ea, size, st)
            return
        if top == 0x4200:                             # clr
            if ea.kind == "m":                        # modify_ea reads first
                self._load(ea, size, st)
            self._store(ea, size, 0, st)
            return
        if top == 0x4400:                             # neg
            self._rmw_mem(ea, size, st, lambda v: (-v) & m)
            return
        if top == 0x4600:                             # not
            self._rmw_mem(ea, size, st, lambda v: (~v) & m)
            return
        self._rmw_mem(ea, size, st, lambda v: None)   # negx (X flag)

    def _movem(self, op: int, mode: int, reg: int, w: _Words,
               st: _MutState) -> None:
        """Conservative movem: register loads havoc the masked
        registers; stores kill the written span.  Value transfer is
        deliberately not modeled (the mask's bit order differs between
        the control and predecrement forms — not worth the risk)."""
        to_regs = bool(op & 0x0400)
        size = 4 if op & 0x0040 else 2
        mask_word = w.u16()
        span = bin(mask_word).count("1") * size
        addr: RVal
        if mode == 3:                                 # (An)+ (load form)
            addr = st.a[reg]
            st.a[reg] = val_add(addr, span)
        elif mode == 4:                               # -(An) (store form)
            addr = val_sub(st.a[reg], span)
            st.a[reg] = addr
        else:
            loc = self._ea(w, mode, reg, size, st)
            addr = loc.addr if loc.kind == "m" else None
        if to_regs:
            self._record(False, addr, span)
            for i in range(16):                       # bit 0 = d0 ... a7
                if mask_word & (1 << i):
                    if i < 8:
                        st.d[i] = None
                    else:
                        st.a[i - 8] = None
        else:
            self._record(True, addr, span)
            self._write_mem(addr, span, None, st)

    # -- groups 8/9/B/C/D: two-operand arithmetic ----------------------
    def _arith(self, op: int, group: int, mode: int, reg: int,
               w: _Words, st: _MutState) -> None:
        opmode = (op >> 6) & 7
        dreg = (op >> 9) & 7
        if group in (8, 0xC) and opmode in (3, 7):    # div / mul
            ea = self._ea(w, mode, reg, 2, st)
            src = self._load(ea, 2, st)
            if group == 0x8:                          # div: packs q/r
                st.d[dreg] = None
                return
            old = st.d[dreg]
            if isinstance(src, int) and isinstance(old, int):
                if opmode == 3:                       # mulu
                    st.d[dreg] = ((old & 0xFFFF) * src) & M32
                else:                                 # muls
                    st.d[dreg] = (_s32(_sext(old & 0xFFFF, 16))
                                  * _s32(_sext(src, 16))) & M32
            else:
                st.d[dreg] = None
            return
        if group == 0xC and op & 0xF1F8 in (0xC140, 0xC148, 0xC188):
            ry = op & 7                               # exg
            if op & 0xF1F8 == 0xC140:
                st.d[dreg], st.d[ry] = st.d[ry], st.d[dreg]
            elif op & 0xF1F8 == 0xC148:
                st.a[dreg], st.a[ry] = st.a[ry], st.a[dreg]
            else:
                st.d[dreg], st.a[ry] = st.a[ry], st.d[dreg]
            return
        if opmode in (3, 7):                          # adda / suba / cmpa
            size = 2 if opmode == 3 else 4
            ea = self._ea(w, mode, reg, size, st)
            src = self._load(ea, size, st)
            if group == 0xB:                          # cmpa: flags only
                return
            if size == 2:
                src = _sext(src, 16) if isinstance(src, int) else None
            st.a[dreg] = (val_add if group == 0xD else val_sub)(
                st.a[dreg], src)
            return
        size = _size_of(opmode & 3)
        m = _mask(size)
        if opmode < 3:                                # <ea> op Dn -> Dn
            ea = self._ea(w, mode, reg, size, st)
            src = self._load(ea, size, st)
            if group == 0xB:                          # cmp: flags only
                return
            if isinstance(src, int):
                s = src & m
                fns: Dict[int, Callable[[int], Optional[int]]] = {
                    8: lambda v: v | s,
                    9: lambda v: (v - s) & m,
                    0xC: lambda v: v & s,
                    0xD: lambda v: (v + s) & m,
                }
                self._alu_d(st, dreg, size, fns[group])
            else:
                self._set_d(st, dreg, None, size)
            return
        # opmode 4..6: Dn op <ea> -> <ea>, plus the register-pair forms.
        if group == 0xB:
            if mode == 1:                             # cmpm (Ay)+,(Ax)+
                for areg in (reg, dreg):
                    step = 2 if (areg == 7 and size == 1) else size
                    addr = st.a[areg]
                    st.a[areg] = val_add(addr, step)
                    self._record(False, addr, size)
                return
            if mode == 0:                             # eor Dx,Dy
                src = st.d[dreg]
                if isinstance(src, int):
                    s = src & m
                    self._alu_d(st, reg, size, lambda v: v ^ s)
                else:
                    self._set_d(st, reg, None, size)
                return
            ea = self._ea(w, mode, reg, size, st)     # eor Dx,<ea>
            src = st.d[dreg]
            if isinstance(src, int):
                s = src & m
                self._rmw_mem(ea, size, st, lambda v: v ^ s)
            else:
                self._rmw_mem(ea, size, st, lambda v: None)
            return
        if mode in (0, 1):              # addx/subx/abcd/sbcd (Rx dest)
            if mode == 0:
                self._set_d(st, dreg, None, size)
                return
            step_src = 2 if (reg == 7 and size == 1) else size
            addr_src = val_sub(st.a[reg], step_src)   # -(Ay) read
            st.a[reg] = addr_src
            self._record(False, addr_src, size)
            step_dst = 2 if (dreg == 7 and size == 1) else size
            addr_dst = val_sub(st.a[dreg], step_dst)  # -(Ax) RMW
            st.a[dreg] = addr_dst
            self._record(False, addr_dst, size)
            self._record(True, addr_dst, size)
            self._write_mem(addr_dst, size, None, st)
            return
        ea = self._ea(w, mode, reg, size, st)         # or/sub/and/add
        src = st.d[dreg]
        if isinstance(src, int):
            s = src & m
            fns2: Dict[int, Callable[[int], Optional[int]]] = {
                8: lambda v: v | s,
                9: lambda v: (v - s) & m,
                0xC: lambda v: v & s,
                0xD: lambda v: (v + s) & m,
            }
            self._rmw_mem(ea, size, st, fns2[group])
        else:
            self._rmw_mem(ea, size, st, lambda v: None)

    # -- group E: shifts ------------------------------------------------
    def _shift(self, op: int, mode: int, reg: int, szbits: int,
               w: _Words, st: _MutState) -> None:
        if szbits == 3:                               # memory shift by 1
            ea = self._ea(w, mode, reg, 2, st)
            ttype = (op >> 9) & 3
            left = bool(op & 0x0100)
            if ttype == 2:                            # roxl/roxr: X flag
                self._rmw_mem(ea, 2, st, lambda v: None)
            else:
                fn = _shift_fn(ttype, left, 2, 1)
                self._rmw_mem(ea, 2, st, fn)
            return
        size = _size_of(szbits)
        ttype = (op >> 3) & 3
        left = bool(op & 0x0100)
        count: Optional[int]
        if op & 0x0020:                               # count from register
            cval = st.d[(op >> 9) & 7]
            count = (cval & 63) if isinstance(cval, int) else None
        else:
            count = ((op >> 9) & 7) or 8
        if count is None or ttype == 2:               # unknown count / rox
            self._set_d(st, reg, None, size)
            return
        self._alu_d(st, reg, size, _shift_fn(ttype, left, size, count))


def _size_of(bits: int) -> int:
    return {0: 1, 1: 2, 2: 4}[bits]


def _shift_fn(ttype: int, left: bool, size: int,
              count: int) -> Callable[[int], Optional[int]]:
    """Concrete shift/rotate on the low ``size`` bytes (no X flag)."""
    bits = 8 * size
    m = _mask(size)

    def fn(v: int) -> Optional[int]:
        if ttype == 0 and not left:                   # asr: sign fill
            sv = v - (1 << bits) if v & (1 << (bits - 1)) else v
            return (sv >> count) & m
        if ttype in (0, 1):                           # asl / lsl / lsr
            return (v << count) & m if left else (v & m) >> count
        c = count % bits                              # rol / ror
        if c == 0:
            return v & m
        if left:
            return ((v << c) | (v >> (bits - c))) & m
        return ((v >> c) | ((v << (bits - c)) & m)) & m

    return fn


