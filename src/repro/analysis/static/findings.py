"""Typed findings for the static analyzers.

Every check — the ROM CFG diagnostics, the trap census cross-check and
the activity-log determinism linter — reports through the same
:class:`Finding`/:class:`Report` pair, so the CLI and the tests can
treat "zero error-severity findings" as one uniform acceptance gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, List, Optional


class Severity(IntEnum):
    """Finding severity, ordered so ``max()`` picks the worst.

    This scale is shared by *every* diagnostic producer in the tree —
    the CFG analyzer, the semantic audit, the activity-log linter and
    the resilience subsystem's trace salvage
    (:func:`repro.resilience.salvage.salvage_log`) — so severities
    compare meaningfully across reports:

    * ``ERROR`` — the artifact is wrong: code that executes incorrectly
      on the emulated CPU, a record that cannot be replayed, a dynamic
      observation that contradicts a static guarantee.  CI gates fail
      on errors.
    * ``WARNING`` — replay or analysis proceeds but fidelity is at
      risk (an unhacked nondeterminism source, a salvaged-over record,
      an unmapped access on a maybe-dead path).
    * ``INFO`` — diagnostics and summaries; never gating.
    """

    INFO = 0
    WARNING = 1
    ERROR = 2

    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a static check.

    ``code`` is a stable machine-readable identifier (kebab-case);
    ``address`` is the guest address the finding anchors to (or the
    record index, for activity-log findings); ``block`` is the start
    address of the containing basic block when the finding came out of
    the CFG.
    """

    severity: Severity
    code: str
    message: str
    address: Optional[int] = None
    block: Optional[int] = None

    def format(self) -> str:
        where = f"{self.address:#010x}: " if self.address is not None else ""
        return f"{self.severity.label():7s} [{self.code}] {where}{self.message}"


class Report:
    """An ordered collection of findings with severity accounting."""

    def __init__(self, findings: Optional[List[Finding]] = None):
        self.findings: List[Finding] = list(findings or [])

    def add(self, severity: Severity, code: str, message: str,
            address: Optional[int] = None,
            block: Optional[int] = None) -> Finding:
        finding = Finding(severity, code, message, address, block)
        self.findings.append(finding)
        return finding

    def extend(self, other: "Report") -> None:
        self.findings.extend(other.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    # -- severity accounting -------------------------------------------
    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity(Severity.WARNING)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding is present."""
        return not self.errors

    def codes(self) -> List[str]:
        return [f.code for f in self.findings]

    def has(self, code: str) -> bool:
        return any(f.code == code for f in self.findings)

    def at(self, address: int) -> List[Finding]:
        return [f for f in self.findings if f.address == address]

    def sorted(self) -> List[Finding]:
        """Findings in stable presentation order: worst severity first,
        then by anchor address (address-less findings last), preserving
        insertion order between ties.  Every renderer and baseline diff
        uses this order so output never depends on check scheduling.
        """
        return sorted(
            self.findings,
            key=lambda f: (-int(f.severity),
                           f.address is None,
                           f.address if f.address is not None else 0))

    # -- rendering ------------------------------------------------------
    def format(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [f.format() for f in self.sorted()
                 if f.severity >= min_severity]
        counts = (f"{len(self.errors)} error(s), "
                  f"{len(self.warnings)} warning(s), "
                  f"{len(self.by_severity(Severity.INFO))} info")
        lines.append(counts)
        return "\n".join(lines)


@dataclass(frozen=True)
class CheckContext:
    """Address-space facts the CFG checks need.

    ``flash_range`` is the write-protected flash window; ``code_range``
    bounds the region control flow may legitimately target.
    """

    code_range: tuple = (0, 1 << 32)
    flash_range: Optional[tuple] = None
