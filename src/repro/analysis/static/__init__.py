"""Static analysis of guest m68k code and activity logs.

Entry points:

* :func:`analyze_rom` — build the shipped ROM, walk it into a CFG and
  run every structural diagnostic (what ``palm-repro lint`` runs);
* :func:`audit_rom` — the *semantic* audit on top of the dataflow
  engine: constant propagation, trap-argument recovery, static region
  classification and nondeterminism reachability (``palm-repro audit``);
* :func:`cross_check` — validate the CFG against the per-address
  opcode record of a profiled replay;
* :func:`cross_check_regions` — validate the audit's per-instruction
  region predictions against a profiled replay's per-pc references;
* :func:`lint_archive` — the activity-log determinism linter
  (:func:`deep_findings` adds the semantic half of ``lint --deep``).
"""

from .analyzer import RomAnalysis, analyze_image, analyze_rom, run_checks
from .audit import (AuditResult, RegionModel, RegionPrediction, audit_image,
                    audit_rom, cross_check_regions, load_baseline,
                    new_findings_against, save_baseline)
from .census import TrapCensus, cross_check
from .dataflow import (AbsState, ConstResult, MemOp, TrapSite,
                       analyze_constprop, nondet_reachability)
from .decode import Insn, decode_insn, is_legal
from .findings import CheckContext, Finding, Report, Severity
from .tracelint import (deep_findings, lint_archive, lint_log,
                        lint_playback_result)
from .walker import CFG, BasicBlock, walk

__all__ = [
    "analyze_image", "analyze_rom", "run_checks", "RomAnalysis",
    "audit_image", "audit_rom", "AuditResult", "RegionModel",
    "RegionPrediction", "cross_check_regions",
    "load_baseline", "save_baseline", "new_findings_against",
    "analyze_constprop", "nondet_reachability",
    "AbsState", "ConstResult", "MemOp", "TrapSite",
    "TrapCensus", "cross_check",
    "decode_insn", "is_legal", "Insn",
    "CheckContext", "Finding", "Report", "Severity",
    "lint_archive", "lint_log", "lint_playback_result", "deep_findings",
    "CFG", "BasicBlock", "walk",
]
