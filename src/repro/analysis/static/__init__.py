"""Static analysis of guest m68k code and activity logs.

Three entry points:

* :func:`analyze_rom` — build the shipped ROM, walk it into a CFG and
  run every diagnostic (what ``palm-repro lint`` runs);
* :func:`cross_check` — validate the CFG against the per-address
  opcode record of a profiled replay;
* :func:`lint_archive` — the activity-log determinism linter.
"""

from .analyzer import RomAnalysis, analyze_image, analyze_rom, run_checks
from .census import TrapCensus, cross_check
from .decode import Insn, decode_insn, is_legal
from .findings import CheckContext, Finding, Report, Severity
from .tracelint import lint_archive, lint_log, lint_playback_result
from .walker import CFG, BasicBlock, walk

__all__ = [
    "analyze_image", "analyze_rom", "run_checks", "RomAnalysis",
    "TrapCensus", "cross_check",
    "decode_insn", "is_legal", "Insn",
    "CheckContext", "Finding", "Report", "Severity",
    "lint_archive", "lint_log", "lint_playback_result",
    "CFG", "BasicBlock", "walk",
]
