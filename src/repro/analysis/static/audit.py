"""Semantic whole-image audit: dataflow-driven findings and the
static/dynamic region cross-check.

Where :mod:`analyzer` reports *structural* problems (illegal opcodes,
odd targets), this module runs the abstract interpreter from
:mod:`dataflow` over the walked CFG and reports *semantic* ones:

* **untraced nondeterminism** — reachable call sites of
  ``SysRandom`` / ``KeyCurrentState`` / ``TimGetTicks`` whose trap has
  no logging hack installed, so a recorded session cannot replay them
  deterministically (severity follows :data:`NONDET_TRAPS`;
  ``TimGetTicks`` is only a WARNING because the replay clock itself is
  virtualized);
* **self-modifying code** — a store whose propagated constant address
  overlaps a decoded instruction (``code-write``), which would
  invalidate every static result including the CFG itself;
* **semantic flash writes** — constant-pointer stores into the
  write-protected flash window that only dataflow can see (the
  structural ``flash-write`` check covers absolute operands);
* **dead stores** and **widened loops** as INFO-level diagnostics.

It also produces per-instruction **region predictions** (which memory
regions each instruction's data references can touch), checked against
a profiled replay's ``Profiler.reference_pcs`` by
:func:`cross_check_regions` — a dynamic reference from a region the
static analysis excluded is an analyzer bug surfaced as a typed
finding, turning every profiled replay into a test of the dataflow
engine.

Baselines: :func:`AuditResult.baseline_keys` /
:func:`new_findings_against` implement the CI gate — the committed
``tools/audit_baseline.json`` freezes the known findings and CI fails
only when a *new* (code, address) pair appears.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Set, Tuple, Union)

from ...palmos.traps import Trap
from .census import TrapCensus
from .decode import K_BRANCH, K_CALL, K_NORMAL
from .dataflow import (ConstResult, MemOp, TrapSite, analyze_constprop,
                       nondet_reachability)
from .findings import Finding, Report, Severity
from .walker import CFG, walk

#: Nondeterminism sources (§3's determinism argument): trap index ->
#: severity when a call site is reachable without a logging hack.
#: ``TimGetTicks`` stays a WARNING: the replay clock is virtualized, so
#: an unhacked call diverges only if the tick interleaving does.
NONDET_TRAPS: Dict[int, Severity] = {
    int(Trap.SysRandom): Severity.ERROR,
    int(Trap.KeyCurrentState): Severity.ERROR,
    int(Trap.TimGetTicks): Severity.WARNING,
}

#: Region codes, mirrored from device.memmap (no import cycle: the
#: analysis layer must not depend on a live device).
REGION_RAM = 0
REGION_FLASH = 1
REGION_HW = 2
REGION_CARD = 3
_REGION_NAMES = {REGION_RAM: "ram", REGION_FLASH: "flash",
                 REGION_HW: "hw", REGION_CARD: "card"}

#: Opcode predicates for instructions that may vector mid-execution
#: (chk, divu/divs, move-to-sr): their exception-frame pushes would be
#: attributed to the instruction itself, so the region cross-check
#: skips them.
def _may_vector(word: int) -> bool:
    return (word & 0xF1C0 == 0x4180          # chk
            or word & 0xF0C0 == 0x80C0       # divu / divs
            or word & 0xFFC0 == 0x46C0)      # move <ea>,sr


def standard_hack_traps() -> FrozenSet[int]:
    """Trap indices the paper's standard logging-hack set covers —
    the static default when no live kernel is available to ask
    (:func:`repro.hacks.manager.installed_hack_traps`)."""
    from ...hacks.logging_hacks import standard_hacks
    return frozenset(int(h.trap) for h in standard_hacks())


@dataclass(frozen=True)
class RegionModel:
    """The address-space geometry the classifier works against.

    A static mirror of :meth:`repro.device.memmap.MemoryMap.region_of`
    for a given RAM/flash size; anything it cannot place returns
    ``None`` (an access there would raise a bus error at runtime)."""

    ram_range: Tuple[int, int]
    flash_range: Tuple[int, int]
    card_range: Tuple[int, int]
    hw_base: int

    @classmethod
    def from_geometry(cls, ram_size: Optional[int] = None,
                      flash_size: Optional[int] = None) -> "RegionModel":
        from ...device import constants as C
        from ...device.memcard import CARD_WINDOW_BASE, CARD_WINDOW_MAX
        ram = ram_size if ram_size is not None else C.RAM_SIZE
        flash = flash_size if flash_size is not None else C.FLASH_SIZE
        return cls(
            ram_range=(C.RAM_BASE, C.RAM_BASE + ram),
            flash_range=(C.FLASH_BASE, C.FLASH_BASE + flash),
            card_range=(CARD_WINDOW_BASE, CARD_WINDOW_BASE + CARD_WINDOW_MAX),
            hw_base=C.HWREG_BASE)

    def classify(self, addr: int, size: int = 1) -> Optional[int]:
        """The region of ``[addr, addr+size)``, or None when unmapped
        or straddling two regions."""
        first = self._point(addr)
        if size > 1 and self._point(addr + size - 1) != first:
            return None
        return first

    def _point(self, addr: int) -> Optional[int]:
        if self.ram_range[0] <= addr < self.ram_range[1]:
            return REGION_RAM
        if self.flash_range[0] <= addr < self.flash_range[1]:
            return REGION_FLASH
        if self.card_range[0] <= addr < self.card_range[1]:
            return REGION_CARD
        if addr >= self.hw_base:
            return REGION_HW
        return None


def _mask_bit(write: bool, region: int) -> int:
    """Same packing as :func:`repro.emulator.profiling.ref_mask_bit`:
    reads in the low nibble, writes in the high nibble."""
    return 1 << (region | (4 if write else 0))


def _sole_region(nibble: int) -> Optional[int]:
    """The single region encoded in a 4-bit kind nibble, or None when
    the nibble is empty or names more than one region."""
    if nibble == 0 or nibble & (nibble - 1):
        return None
    return nibble.bit_length() - 1


def describe_mask(mask: int) -> str:
    """Render a reference bitmask as e.g. ``read:ram+write:hw``."""
    parts = []
    for bit in range(8):
        if mask & (1 << bit):
            kind = "write" if bit >= 4 else "read"
            parts.append(f"{kind}:{_REGION_NAMES[bit & 3]}")
    return "+".join(parts) or "none"


@dataclass(frozen=True)
class RegionPrediction:
    """Predicted data-reference behaviour of one instruction.

    ``mask`` ORs a :func:`_mask_bit` per possible (kind, region);
    ``complete`` promises that *every* dynamic data reference of this
    instruction is covered by ``mask`` (the cross-check only trusts
    complete predictions).  ``refs`` is the per-execution bus-reference
    count when complete."""

    insn: int
    mask: int
    complete: bool
    refs: int


@dataclass
class AuditResult:
    """Everything :func:`audit_image` / :func:`audit_rom` produce."""

    cfg: CFG
    const: ConstResult
    census: TrapCensus
    report: Report
    region_model: RegionModel
    code_range: Tuple[int, int]
    #: function entry -> sorted callee entries (jsr/bsr/trap edges,
    #: including iteratively resolved indirect calls).
    call_graph: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    predictions: Dict[int, RegionPrediction] = field(default_factory=dict)
    nondet_reach: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    hacked_traps: FrozenSet[int] = frozenset()
    #: indirect jsr/jmp site -> constant target the dataflow resolved.
    resolved_indirect: Dict[int, int] = field(default_factory=dict)
    rounds: int = 1
    program: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def trap_sites(self) -> List[TrapSite]:
        return self.const.trap_sites

    def region_facts(self) -> Dict[int, Tuple[Optional[int], Optional[int]]]:
        """Per-instruction proven access regions for the fused replay
        core (:meth:`repro.m68k.blockcore.BlockCore.load_facts`).

        ``pc -> (read_region, write_region)``, each component the single
        region every dynamic data reference of that kind provably hits,
        or ``None`` when unproven (no complete prediction, no reference
        of that kind, or more than one possible region).  Only complete
        predictions participate: an incomplete mask may under-cover the
        dynamic behaviour, and the fused code generator uses a fact to
        drop the region dispatch entirely.
        """
        facts: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        for pc, p in self.predictions.items():
            if not p.complete or not p.mask:
                continue
            read = _sole_region(p.mask & 0x0F)
            write = _sole_region((p.mask >> 4) & 0x0F)
            if read is not None or write is not None:
                facts[pc] = (read, write)
        return facts

    def baseline_keys(self) -> List[Tuple[str, Optional[int]]]:
        """The (code, address) identity of every WARNING+ finding —
        what the committed CI baseline freezes."""
        return sorted({(f.code, f.address) for f in self.report
                       if f.severity >= Severity.WARNING},
                      key=lambda k: (k[0], k[1] if k[1] is not None else -1))

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "code_range": list(self.code_range),
            "rounds": self.rounds,
            "findings": [
                {"severity": f.severity.label(), "code": f.code,
                 "message": f.message, "address": f.address}
                for f in self.report],
            "trap_signatures": self.census.signatures(),
            "call_graph": {f"{entry:#x}": [f"{c:#x}" for c in callees]
                           for entry, callees in sorted(
                               self.call_graph.items())},
            "resolved_indirect": {f"{site:#x}": f"{target:#x}"
                                  for site, target in sorted(
                                      self.resolved_indirect.items())},
            "stats": {
                "blocks": len(self.cfg.blocks),
                "instructions": len(self.cfg.insn_map),
                "trap_sites": len(self.trap_sites),
                "complete_predictions": sum(
                    1 for p in self.predictions.values() if p.complete),
                "widened_blocks": len(self.const.widened),
                "errors": len(self.report.errors),
                "warnings": len(self.report.warnings),
            },
        }


def load_baseline(path: Union[str, Path]) -> Set[Tuple[str, Optional[int]]]:
    """Read a committed audit baseline (the ``baseline_keys`` of a
    previous run, as JSON)."""
    data = json.loads(Path(path).read_text())
    return {(str(code), None if addr is None else int(addr))
            for code, addr in data["findings"]}


def save_baseline(result: AuditResult, path: Union[str, Path]) -> None:
    payload = {"version": 1,
               "findings": [[code, addr]
                            for code, addr in result.baseline_keys()]}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def new_findings_against(result: AuditResult,
                         baseline: Set[Tuple[str, Optional[int]]]
                         ) -> List[Finding]:
    """WARNING+ findings not present in the baseline — the only thing
    the CI gate fails on."""
    return [f for f in result.report
            if f.severity >= Severity.WARNING
            and (f.code, f.address) not in baseline]


# ---------------------------------------------------------------------------
# The audit proper.
# ---------------------------------------------------------------------------

def audit_image(image: bytes, base: int, roots: Iterable[int], *,
                code_end: Optional[int] = None,
                trap_targets: Optional[Dict[int, int]] = None,
                function_entries: Iterable[int] = (),
                region_model: Optional[RegionModel] = None,
                hacked_traps: Optional[Iterable[int]] = None,
                handler_roots: Iterable[int] = (),
                readonly_code: bool = True,
                max_rounds: int = 4) -> AuditResult:
    """Semantically audit a raw code image mapped at ``base``.

    The walk and the constant propagation iterate: every round, any
    ``jsr/jmp (An)`` whose register the dataflow proved constant adds
    a new root, until nothing new resolves (at most ``max_rounds``).
    ``readonly_code=True`` lets constant reads *inside the image* fold
    to image bytes — only sound when the image window is
    write-protected at runtime (flash), so pass False for RAM images.
    ``hacked_traps`` defaults to the standard logging-hack set;
    ``handler_roots`` marks event-handler entry points for the
    nondeterminism-reachability findings.
    """
    hi = code_end if code_end is not None else base + len(image)
    model = region_model or RegionModel.from_geometry()
    hacked = frozenset(hacked_traps if hacked_traps is not None
                       else standard_hack_traps())

    def fetch(addr: int) -> int:
        off = addr - base
        if 0 <= off + 1 < len(image):
            return (image[off] << 8) | image[off + 1]
        return 0

    readonly = ((base, hi),) if readonly_code else ()
    all_roots = list(dict.fromkeys(roots))
    resolved: Dict[int, int] = {}
    rounds = 0
    while True:
        rounds += 1
        cfg = walk(fetch, all_roots, code_range=(base, hi),
                   trap_targets=trap_targets)
        cfg.function_entries.update(
            e for e in function_entries if e in cfg.blocks)
        const = analyze_constprop(cfg, fetch, readonly_ranges=readonly)
        fresh = _resolve_indirect(cfg, const, (base, hi))
        new_targets = {t for s, t in fresh.items() if s not in resolved}
        resolved.update(fresh)
        if rounds >= max_rounds or not (new_targets - set(all_roots)):
            break
        all_roots.extend(sorted(new_targets - set(all_roots)))

    for site, target in resolved.items():
        block = cfg.block_of(site)
        insn = cfg.instruction_at(site)
        if block is not None and insn is not None and target in cfg.blocks:
            if insn.kind == K_CALL and target not in block.calls:
                block.calls.append(target)
                cfg.function_entries.add(target)
            elif insn.kind == K_BRANCH and target not in block.succs:
                block.succs.append(target)
            cfg._reachable = None       # edges changed: recompute lazily

    census = TrapCensus.from_cfg(cfg)
    census.attach_arguments(const.trap_sites)
    reach = nondet_reachability(cfg, NONDET_TRAPS)
    result = AuditResult(
        cfg=cfg, const=const, census=census, report=Report(),
        region_model=model, code_range=(base, hi),
        call_graph=_call_graph(cfg),
        nondet_reach=reach, hacked_traps=hacked,
        resolved_indirect=resolved, rounds=rounds)
    result.predictions = _predict_regions(cfg, const, model)
    _semantic_checks(result, handler_roots)
    return result


def _resolve_indirect(cfg: CFG, const: ConstResult,
                      code_range: Tuple[int, int]) -> Dict[int, int]:
    """Indirect ``jsr/jmp (An)`` sites whose An is a propagated
    constant inside the code range."""
    lo, hi = code_range
    out: Dict[int, int] = {}
    for insn in cfg.instructions():
        if not insn.indirect:
            continue
        word = insn.word
        if word & 0xFF80 != 0x4E80:     # jsr/jmp family only
            continue
        mode, reg = (word >> 3) & 7, word & 7
        if mode != 2:                   # only plain (An) is resolvable
            continue
        state = const.insn_in.get(insn.addr)
        if state is None:
            continue
        target = state.areg(reg)
        if isinstance(target, int) and lo <= target < hi \
                and target % 2 == 0:
            out[insn.addr] = target
    return out


def _call_graph(cfg: CFG) -> Dict[int, Tuple[int, ...]]:
    """Function entry -> sorted callee entries.  A block is attributed
    to every function whose entry reaches it intra-procedurally."""
    entries = sorted((set(cfg.roots) | cfg.function_entries)
                     & set(cfg.blocks))
    graph: Dict[int, Set[int]] = {}
    for entry in entries:
        callees: Set[int] = set()
        seen: Set[int] = set()
        work = [entry]
        while work:
            start = work.pop()
            if start in seen or start not in cfg.blocks:
                continue
            seen.add(start)
            block = cfg.blocks[start]
            callees.update(c for c in block.calls if c in cfg.blocks)
            for succ in block.succs:
                if succ not in seen:
                    work.append(succ)
        graph[entry] = callees
    return {entry: tuple(sorted(c)) for entry, c in graph.items()}


def _predict_regions(cfg: CFG, const: ConstResult,
                     model: RegionModel) -> Dict[int, RegionPrediction]:
    predictions: Dict[int, RegionPrediction] = {}
    for addr, ops in const.mem_ops.items():
        if not ops:
            continue
        mask = 0
        refs = 0
        complete = addr in const.modeled
        for op in ops:
            region = _op_region(op, model)
            if region is None:
                complete = False
                continue
            mask |= _mask_bit(op.write, region)
            refs += op.refs()
        predictions[addr] = RegionPrediction(addr, mask, complete, refs)
    return predictions


def _op_region(op: MemOp, model: RegionModel) -> Optional[int]:
    if op.base == "stack":
        # The stack lives in RAM on every supported geometry: the
        # kernel points the reset A7 into the RAM heap and the audit's
        # symbolic offsets stay within the function frame.
        return REGION_RAM
    if op.base == "const" and op.addr is not None:
        return model.classify(op.addr, op.size)
    return None


def _semantic_checks(result: AuditResult,
                     handler_roots: Iterable[int]) -> None:
    cfg, const, report = result.cfg, result.const, result.report
    model = result.region_model
    reachable_insns = {insn.addr for start in cfg.reachable
                       for insn in cfg.blocks[start].insns}
    insn_starts = sorted(cfg.insn_map)

    # -- writes into decoded code (self-modifying code) ----------------
    for addr in sorted(const.mem_ops):
        if addr not in reachable_insns:
            continue
        insn = cfg.insn_map[addr]
        for op in const.mem_ops[addr]:
            if not op.write or op.base != "const" or op.addr is None:
                continue
            hit = _overlaps_insn(cfg, insn_starts, op.addr, op.size)
            if hit is not None:
                report.add(Severity.ERROR, "code-write",
                           f"store of {op.size} byte(s) to {op.addr:#010x} "
                           f"overlaps the instruction at {hit:#010x} — "
                           f"self-modifying code invalidates the static "
                           f"CFG", address=addr)
            region = model.classify(op.addr, op.size)
            if region == REGION_FLASH \
                    and (op.addr, op.size) not in insn.writes:
                report.add(Severity.ERROR, "semantic-flash-write",
                           f"propagated pointer stores {op.size} byte(s) "
                           f"into write-protected flash at {op.addr:#010x}",
                           address=addr)
            elif region is None:
                report.add(Severity.WARNING, "unmapped-access",
                           f"{op.size}-byte write to {op.addr:#010x} maps "
                           f"to no region (bus error at runtime)",
                           address=addr)
        for op in const.mem_ops[addr]:
            if op.write or op.base != "const" or op.addr is None:
                continue
            if model.classify(op.addr, op.size) is None:
                report.add(Severity.WARNING, "unmapped-access",
                           f"{op.size}-byte read from {op.addr:#010x} maps "
                           f"to no region (bus error at runtime)",
                           address=addr)

    # -- untraced nondeterminism ---------------------------------------
    for site in const.trap_sites:
        severity = NONDET_TRAPS.get(site.trap)
        if severity is None or site.trap in result.hacked_traps:
            continue
        if site.addr not in reachable_insns:
            continue
        name = result.census.name_of(site.trap)
        report.add(severity, "untraced-nondeterminism",
                   f"{name} call site has no logging hack installed: "
                   f"its result cannot be replayed deterministically",
                   address=site.addr)
    for root in sorted(set(handler_roots)):
        reach = result.nondet_reach.get(root)
        if not reach:
            continue
        exposed = sorted(t for t in reach
                         if t not in result.hacked_traps)
        if exposed:
            names = ", ".join(result.census.name_of(t) for t in exposed)
            report.add(Severity.WARNING, "nondet-reachable-from-handler",
                       f"event handler can reach unhacked "
                       f"nondeterminism source(s): {names}",
                       address=root)

    # -- diagnostics ----------------------------------------------------
    for dead, overwriter in const.dead_stores:
        if dead in reachable_insns:
            report.add(Severity.INFO, "dead-store",
                       f"stack store is overwritten at {overwriter:#010x} "
                       f"before any read", address=dead)
    for start in sorted(const.widened):
        report.add(Severity.INFO, "widened-loop",
                   "loop head exceeded the join budget; stack-slot "
                   "tracking was widened away", address=start)
    for start in sorted(cfg.reachable):
        block = cfg.blocks[start]
        if block.indirect_exit and block.insns \
                and block.terminator.addr not in result.resolved_indirect:
            report.add(Severity.INFO, "unresolved-indirect",
                       "indirect control transfer could not be resolved "
                       "by constant propagation",
                       address=block.terminator.addr)
    complete = sum(1 for p in result.predictions.values() if p.complete)
    report.add(Severity.INFO, "audit-summary",
               f"{len(const.trap_sites)} trap sites "
               f"({sum(1 for s in const.trap_sites if s.args)} with "
               f"recovered args), {len(result.predictions)} region "
               f"predictions ({complete} complete), "
               f"{len(result.resolved_indirect)} indirect calls resolved "
               f"in {result.rounds} round(s)")


def _overlaps_insn(cfg: CFG, insn_starts: List[int], addr: int,
                   size: int) -> Optional[int]:
    """The start of a decoded instruction overlapped by a write to
    ``[addr, addr+size)``, else None."""
    from bisect import bisect_right
    idx = bisect_right(insn_starts, addr + size - 1) - 1
    while idx >= 0:
        start = insn_starts[idx]
        insn = cfg.insn_map[start]
        if start >= addr + size:
            idx -= 1
            continue
        if insn.end > addr:
            return start
        break
    return None


# ---------------------------------------------------------------------------
# Whole-ROM convenience (mirrors analyzer.analyze_rom).
# ---------------------------------------------------------------------------

def audit_rom(apps: Optional[Sequence] = None, *,
              hacked_traps: Optional[Iterable[int]] = None,
              ram_size: Optional[int] = None,
              flash_size: Optional[int] = None) -> AuditResult:
    """Build the shipped ROM and audit it semantically.

    ``hacked_traps`` defaults to the standard logging-hack set (pass
    :func:`repro.hacks.manager.installed_hack_traps` output for a live
    kernel).  ``ram_size``/``flash_size`` pin the region model to a
    session's geometry."""
    from ...apps import standard_apps
    from ...palmos.rom import RomBuilder

    builder = RomBuilder(standard_apps() if apps is None else list(apps))
    program = builder.build()
    origin, code = program.segments[0]
    image = bytes(code)

    reset_pc = int.from_bytes(image[4:8], "big")
    stubs = builder.stub_addresses(program)
    app_entries = [addr for _, addr in builder.app_entries(program)]
    roots = [reset_pc,
             program.symbols["trap_dispatcher"],
             program.symbols["rom_isr"],
             program.symbols["rom_unimplemented"]]
    roots += sorted(set(stubs.values()))
    roots += app_entries

    result = audit_image(
        image, origin, roots,
        trap_targets=stubs,
        function_entries=app_entries,
        region_model=RegionModel.from_geometry(ram_size, flash_size),
        hacked_traps=hacked_traps,
        # Event delivery enters through the ISR and the app entries.
        handler_roots=[program.symbols["rom_isr"], *app_entries])
    result.program = program
    return result


# ---------------------------------------------------------------------------
# The dynamic cross-check.
# ---------------------------------------------------------------------------

def cross_check_regions(result: AuditResult,
                        reference_pcs: Dict[int, int]) -> Report:
    """Compare static region predictions against a profiled replay's
    per-pc reference masks (``Profiler.reference_pcs``).

    Soundness direction only: a dynamic (kind, region) the static mask
    excludes is an ERROR (the analysis promised completeness for that
    instruction); a predicted-but-never-observed bit is fine (the path
    was simply not taken).  Only K_NORMAL instructions with complete
    predictions inside the audited window participate — traps, calls
    and returns push exception frames or return addresses that belong
    to the control-transfer machinery, not the operand stream.
    """
    report = Report()
    lo, hi = result.code_range
    checked = 0
    mismatched = 0
    for pc in sorted(reference_pcs):
        if not (lo <= pc < hi):
            continue
        insn = result.cfg.instruction_at(pc)
        prediction = result.predictions.get(pc)
        if insn is None or prediction is None or not prediction.complete:
            continue
        if insn.kind != K_NORMAL or _may_vector(insn.word):
            continue
        checked += 1
        dynamic = reference_pcs[pc]
        extra = dynamic & ~prediction.mask
        if extra:
            mismatched += 1
            report.add(Severity.ERROR, "region-mismatch",
                       f"dynamic references {describe_mask(extra)} were "
                       f"excluded by the static prediction "
                       f"({describe_mask(prediction.mask)})", address=pc)
    report.add(Severity.INFO, "region-cross-check",
               f"{checked} instructions checked against dynamic "
               f"per-pc references: {mismatched} mismatch(es)")
    return report
