"""Recursive-descent disassembly walker and CFG construction.

The walker starts from a set of *roots* (reset vector, trap stubs, app
entry points), decodes instructions with
:func:`repro.analysis.static.decode.decode_insn`, and follows every
statically-known control-flow edge: fallthrough, ``bra``/``jmp``,
conditional branches, ``bsr``/``jsr`` calls, and — when the caller
supplies a trap-to-stub mapping — A-line trap edges.  The result is a
:class:`CFG` of basic blocks with reachability and dominator
computation, which the diagnostics engine in
:mod:`repro.analysis.static.analyzer` walks for findings.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .decode import (Insn, K_BRANCH, K_CALL, K_CONDBRANCH, K_ILLEGAL,
                     K_RETURN, K_TRAP, decode_insn)


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``succs`` holds intra-procedural successors (fallthrough and branch
    targets); ``calls`` holds statically-resolved ``jsr``/``bsr`` and
    trap-stub targets, which are control transfers that come back.
    """

    start: int
    insns: List[Insn] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    calls: List[int] = field(default_factory=list)
    #: True when the block ends in a jmp/jsr whose target is unknown.
    indirect_exit: bool = False

    @property
    def end(self) -> int:
        return self.insns[-1].end if self.insns else self.start

    @property
    def terminator(self) -> Optional[Insn]:
        return self.insns[-1] if self.insns else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BasicBlock({self.start:#x}..{self.end:#x}, "
                f"{len(self.insns)} insns, succs={[hex(s) for s in self.succs]})")


class CFG:
    """The control-flow graph a :func:`walk` produces."""

    def __init__(self, roots: Tuple[int, ...]):
        self.roots = roots
        self.blocks: Dict[int, BasicBlock] = {}
        self.insn_map: Dict[int, Insn] = {}
        #: jsr/bsr/trap targets — function entries for the stack checker.
        self.function_entries: Set[int] = set()
        #: (insn_addr, target) pairs whose target fell outside the range.
        self.out_of_range_targets: List[Tuple[int, int]] = []
        #: Block starts whose final instruction falls through past the
        #: end of the walkable range (no terminator was ever found).
        self.unterminated: List[int] = []
        #: (earlier_insn_addr, entry_addr) pairs where a control-flow
        #: target lands *inside* an already-decoded instruction.
        self.overlaps: List[Tuple[int, int]] = []
        self._reachable: Optional[Set[int]] = None
        self._sorted_starts: Optional[List[int]] = None

    # -- queries --------------------------------------------------------
    def instruction_at(self, addr: int) -> Optional[Insn]:
        """The instruction *starting* at ``addr``, if the walker saw one."""
        return self.insn_map.get(addr)

    def contains_address(self, addr: int) -> bool:
        """True when ``addr`` is a discovered instruction start."""
        return addr in self.insn_map

    def block_of(self, addr: int) -> Optional[BasicBlock]:
        """The basic block whose address range covers ``addr``."""
        if self._sorted_starts is None:
            self._sorted_starts = sorted(self.blocks)
        idx = bisect_right(self._sorted_starts, addr) - 1
        if idx < 0:
            return None
        block = self.blocks[self._sorted_starts[idx]]
        return block if block.start <= addr < block.end else None

    def instructions(self) -> Iterator[Insn]:
        for addr in sorted(self.insn_map):
            yield self.insn_map[addr]

    # -- reachability ---------------------------------------------------
    @property
    def reachable(self) -> Set[int]:
        """Block starts reachable from the roots (following call edges)."""
        if self._reachable is None:
            seen: Set[int] = set()
            work = deque(r for r in self.roots if r in self.blocks)
            while work:
                start = work.popleft()
                if start in seen:
                    continue
                seen.add(start)
                block = self.blocks[start]
                for nxt in block.succs + block.calls:
                    if nxt in self.blocks and nxt not in seen:
                        work.append(nxt)
            self._reachable = seen
        return self._reachable

    def unreachable_blocks(self) -> List[BasicBlock]:
        """Blocks the roots cannot reach, in deterministic order.

        The result is sorted by block start address so reports and
        baselines never depend on set iteration order.
        """
        return [self.blocks[s] for s in sorted(self.blocks)
                if s not in self.reachable]

    def reachable_instructions(self) -> Iterator[Insn]:
        for start in sorted(self.reachable):
            yield from self.blocks[start].insns

    # -- graph structure ------------------------------------------------
    def predecessors(self) -> Dict[int, List[int]]:
        """Intra-procedural predecessor lists, deterministically ordered.

        Only ``succs`` edges count (a call returns to its fallthrough
        block, it does not make the callee a predecessor).
        """
        preds: Dict[int, List[int]] = {n: [] for n in self.blocks}
        for start in sorted(self.blocks):
            for succ in self.blocks[start].succs:
                if succ in preds:
                    preds[succ].append(start)
        return preds

    def back_edges(self) -> List[Tuple[int, int]]:
        """(source, target) succ edges that close a cycle.

        Found by an iterative DFS over ``succs`` from the roots and
        every function entry; an edge is a back edge when its target is
        still on the DFS stack.  Deterministic: children are visited in
        sorted order.
        """
        entries = sorted(set(self.roots) | self.function_entries)
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[int, int] = {n: WHITE for n in self.blocks}
        edges: List[Tuple[int, int]] = []
        for entry in entries:
            if entry not in self.blocks or color[entry] != WHITE:
                continue
            stack: List[Tuple[int, Iterator[int]]] = []
            color[entry] = GREY
            stack.append((entry, iter(sorted(self.blocks[entry].succs))))
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if child not in self.blocks:
                        continue
                    if color[child] == GREY:
                        edges.append((node, child))
                    elif color[child] == WHITE:
                        color[child] = GREY
                        stack.append(
                            (child, iter(sorted(self.blocks[child].succs))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return sorted(edges)

    def loop_heads(self) -> Set[int]:
        """Block starts that are the target of at least one back edge."""
        return {target for _, target in self.back_edges()}

    # -- dominators -----------------------------------------------------
    def dominators(self) -> Dict[int, Set[int]]:
        """Iterative dominator sets over the intra-procedural graph.

        Entry nodes are the roots plus every function entry (call edges
        do not count as graph edges — a call returns to its fallthrough
        block).  Returns ``{block_start: set_of_dominating_starts}``
        for every reachable block; each block dominates itself.
        """
        nodes = self.reachable
        entries = {s for s in nodes
                   if s in set(self.roots) | self.function_entries}
        preds: Dict[int, Set[int]] = {n: set() for n in nodes}
        for start in nodes:
            for succ in self.blocks[start].succs:
                if succ in nodes:
                    preds[succ].add(start)
        dom: Dict[int, Set[int]] = {}
        for n in nodes:
            dom[n] = {n} if n in entries else set(nodes)
        changed = True
        while changed:
            changed = False
            for n in sorted(nodes):
                if n in entries:
                    continue
                incoming = [dom[p] for p in preds[n]]
                new = set.intersection(*incoming) | {n} if incoming else {n}
                if new != dom[n]:
                    dom[n] = new
                    changed = True
        return dom


def walk(fetch: Callable[[int], int], roots: Iterable[int], *,
         code_range: Tuple[int, int] = (0, 1 << 32),
         trap_targets: Optional[Dict[int, int]] = None) -> CFG:
    """Discover all statically-reachable code from ``roots``.

    ``fetch`` reads a 16-bit word at a guest address.  ``code_range``
    bounds the addresses the walker will decode (half-open); targets
    outside it are recorded, not followed.  ``trap_targets`` maps an
    A-line trap index to its stub address so trap words become call
    edges instead of opaque fallthroughs.
    """
    lo, hi = code_range
    traps = trap_targets or {}
    cfg = CFG(tuple(dict.fromkeys(roots)))

    leaders: Set[int] = set()
    pending: deque = deque()

    def enqueue(addr: int, source: Optional[int] = None) -> bool:
        if not (lo <= addr < hi):
            if source is not None:
                cfg.out_of_range_targets.append((source, addr))
            return False
        leaders.add(addr)
        pending.append(addr)
        return True

    for root in cfg.roots:
        enqueue(root)

    # -- phase 1: discover instructions --------------------------------
    while pending:
        cur = pending.popleft()
        block_head = cur
        while lo <= cur < hi and cur not in cfg.insn_map:
            insn = decode_insn(fetch, cur)
            cfg.insn_map[cur] = insn
            if insn.target is not None:
                if enqueue(insn.target, cur) and insn.kind == K_CALL:
                    cfg.function_entries.add(insn.target)
            if insn.kind == K_TRAP and insn.trap in traps:
                stub = traps[insn.trap]
                if enqueue(stub, cur):
                    cfg.function_entries.add(stub)
            if insn.kind in (K_CONDBRANCH, K_CALL):
                leaders.add(insn.end)
            if not insn.falls_through():
                break
            cur = insn.end
        else:
            # The linear walk left the decodable range (or merged into
            # already-decoded code).  Out-of-range fallthrough means the
            # run from this leader never found a terminator.
            if not (lo <= cur < hi):
                cfg.unterminated.append(block_head)

    # -- overlap detection ----------------------------------------------
    starts = sorted(cfg.insn_map)
    for i in range(1, len(starts)):
        prev, here = starts[i - 1], starts[i]
        if cfg.insn_map[prev].end > here:
            cfg.overlaps.append((prev, here))

    # -- phase 2: slice into basic blocks -------------------------------
    for leader in sorted(a for a in leaders if a in cfg.insn_map):
        if leader in cfg.blocks:
            continue
        block = BasicBlock(leader)
        addr = leader
        while addr in cfg.insn_map:
            insn = cfg.insn_map[addr]
            block.insns.append(insn)
            if insn.kind == K_TRAP and insn.trap in traps:
                block.calls.append(traps[insn.trap])
            if insn.kind == K_BRANCH:
                if insn.target is not None:
                    block.succs.append(insn.target)
                else:
                    block.indirect_exit = True
                break
            if insn.kind == K_CONDBRANCH:
                if insn.target is not None:
                    block.succs.append(insn.target)
                block.succs.append(insn.end)
                break
            if insn.kind == K_CALL:
                if insn.target is not None:
                    block.calls.append(insn.target)
                else:
                    block.indirect_exit = True
                block.succs.append(insn.end)
                break
            if insn.kind in (K_RETURN, K_ILLEGAL) or not insn.falls_through():
                break
            addr = insn.end
            if addr in leaders:              # next insn starts a block
                block.succs.append(addr)
                break
        cfg.blocks[leader] = block

    # Successors that point at addresses we never decoded (out of range)
    # stay in the lists; reachability simply skips them, and the
    # analyzer reports the out_of_range_targets entries.
    return cfg
