"""Structural decoding of single 68000 instructions.

The CFG walker needs more than the disassembler's text: lengths,
control-flow successors, statically-known memory effects and stack
deltas.  :func:`decode_insn` produces an :class:`Insn` carrying all of
that.

Legality is **decoder-driven**: a word is illegal exactly when the
interpreter's dispatch table (:mod:`repro.m68k.decoder`) maps it to
``None`` — so the analyzer and the CPU can never disagree about which
words execute.  The instruction *length* accounting below mirrors the
interpreter's extension-word fetches; a test sweeps all 65536 words and
checks it against :func:`repro.m68k.disasm.disassemble_one`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ...m68k.disasm import disassemble_one

M32 = 0xFFFFFFFF

# Instruction kinds (control-flow classification).
K_NORMAL = "normal"          # falls through
K_BRANCH = "branch"          # bra / jmp: one successor (maybe unknown)
K_CONDBRANCH = "condbranch"  # bcc / dbcc: target + fallthrough
K_CALL = "call"              # bsr / jsr: fallthrough + call edge
K_RETURN = "return"          # rts / rte / rtr: no successors
K_TRAP = "trap"              # A-line word: falls through (dispatcher resumes)
K_EMUCALL = "emucall"        # F-line word: falls through (host services it)
K_STOP = "stop"              # stop #imm: falls through after an interrupt
K_ILLEGAL = "illegal"        # no handler in the dispatch table
K_EXCEPTION = "exception"    # trap #n / illegal mnemonic: vectors away

_dispatch_cache: Optional[list] = None


def _dispatch() -> list:
    """The interpreter's 65536-entry dispatch table (shared, lazy)."""
    global _dispatch_cache
    if _dispatch_cache is None:
        from ...m68k.cpu import CPU
        if CPU._dispatch is not None:
            _dispatch_cache = CPU._dispatch
        else:
            from ...m68k.decoder import build_dispatch_table
            _dispatch_cache = build_dispatch_table()
            CPU._dispatch = _dispatch_cache
    return _dispatch_cache


def is_legal(op: int) -> bool:
    """True when the interpreter has a handler for this opcode word
    (A-line and F-line words count as legal: the emulator services
    them through its handlers)."""
    group = op >> 12
    if group in (0xA, 0xF):
        return True
    return _dispatch()[op] is not None


@dataclass
class Insn:
    """One decoded instruction with its static effects."""

    addr: int
    word: int
    length: int
    text: str
    kind: str = K_NORMAL
    #: Statically-known control-flow target (branch/call), else None.
    target: Optional[int] = None
    #: True for jmp/jsr through a register or index (unknown target).
    indirect: bool = False
    #: A-line trap index (word & 0xFFF) when kind == K_TRAP.
    trap: Optional[int] = None
    #: F-line payload word (word & 0xFFF) when kind == K_EMUCALL.
    emucall: Optional[int] = None
    #: Statically-known absolute (addr, size) reads / writes.
    reads: List[Tuple[int, int]] = field(default_factory=list)
    writes: List[Tuple[int, int]] = field(default_factory=list)
    #: Net effect on A7 in bytes, or None when not statically known.
    sp_delta: Optional[int] = 0
    #: (frame_register, displacement) for link, register for unlk.
    link: Optional[Tuple[int, int]] = None
    unlk: Optional[int] = None

    @property
    def end(self) -> int:
        return self.addr + self.length

    def falls_through(self) -> bool:
        return self.kind in (K_NORMAL, K_CONDBRANCH, K_CALL, K_TRAP,
                             K_EMUCALL, K_STOP, K_EXCEPTION)


def _signed(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


class _Words:
    """Extension-word reader mirroring the interpreter's fetches."""

    def __init__(self, fetch: Callable[[int], int], addr: int):
        self._fetch = fetch
        self.addr = addr

    def u16(self) -> int:
        word = self._fetch(self.addr) & 0xFFFF
        self.addr += 2
        return word

    def u32(self) -> int:
        return (self.u16() << 16) | self.u16()


class _EA:
    """One decoded effective address."""

    __slots__ = ("mode", "reg", "abs_addr", "size")

    def __init__(self, mode: int, reg: int, abs_addr: Optional[int],
                 size: int):
        self.mode = mode
        self.reg = reg
        self.abs_addr = abs_addr  # statically-known address, else None
        self.size = size

    def sp_delta(self) -> int:
        """A7 side effect of evaluating this EA (postinc/predec)."""
        if self.reg != 7:
            return 0
        # On A7 byte-sized postinc/predec still move by 2 (the 68000
        # keeps the stack pointer word-aligned).
        step = max(self.size, 2)
        if self.mode == 3:
            return step
        if self.mode == 4:
            return -step
        return 0


def _read_ea(w: _Words, mode: int, reg: int, size: int) -> _EA:
    """Consume an EA's extension words; return its static address."""
    abs_addr: Optional[int] = None
    if mode == 5:                      # d16(An)
        w.u16()
    elif mode == 6:                    # d8(An,Xn)
        w.u16()
    elif mode == 7:
        if reg == 0:                   # (xxx).w
            abs_addr = _signed(w.u16(), 16) & M32
        elif reg == 1:                 # (xxx).l
            abs_addr = w.u32()
        elif reg == 2:                 # d16(PC)
            base = w.addr
            abs_addr = (base + _signed(w.u16(), 16)) & M32
        elif reg == 3:                 # d8(PC,Xn)
            w.u16()
        elif reg == 4:                 # #imm
            if size == 4:
                w.u32()
            else:
                w.u16()
    return _EA(mode, reg, abs_addr, size)


def _size_of(bits: int) -> int:
    return {0: 1, 1: 2, 2: 4}[bits]


def decode_insn(fetch: Callable[[int], int], addr: int,
                want_text: bool = True) -> Insn:
    """Decode the instruction at ``addr`` into an :class:`Insn`.

    ``fetch`` reads a 16-bit word.  Never raises: illegal words come
    back with ``kind == K_ILLEGAL`` and length 2.  ``want_text=False``
    skips the disassembly rendering (``text`` comes back empty) — the
    block-cache predecoder only needs lengths and kinds, and the text
    formatting dominates decode time.
    """
    w = _Words(fetch, addr)
    op = w.u16()
    group = op >> 12

    if group == 0xA:
        text = disassemble_one(fetch, addr)[0] if want_text else ""
        return Insn(addr, op, 2, text, kind=K_TRAP, trap=op & 0xFFF)
    if group == 0xF:
        text = disassemble_one(fetch, addr)[0] if want_text else ""
        return Insn(addr, op, 2, text, kind=K_EMUCALL, emucall=op & 0xFFF)
    if not is_legal(op):
        return Insn(addr, op, 2, f"dc.w ${op:04x}", kind=K_ILLEGAL)

    insn = Insn(addr, op, 2, "")
    _decode_structure(w, op, insn)
    insn.length = w.addr - addr
    if want_text:
        insn.text, _ = disassemble_one(fetch, addr)
    return insn


def _apply_ea_effects(insn: Insn, ea: _EA, *, read: bool = False,
                      write: bool = False) -> None:
    """Record an EA's static memory accesses and A7 side effects."""
    if ea.abs_addr is not None:
        if read:
            insn.reads.append((ea.abs_addr, ea.size))
        if write:
            insn.writes.append((ea.abs_addr, ea.size))
    if insn.sp_delta is not None:
        insn.sp_delta += ea.sp_delta()


def _decode_structure(w: _Words, op: int, insn: Insn) -> None:
    """Classify ``op`` and account for its extension words.

    Only called for words the dispatch table accepts, so the patterns
    below can assume interpreter-legal encodings.
    """
    group = op >> 12
    mode, reg = (op >> 3) & 7, op & 7
    szbits = (op >> 6) & 3

    # ---- fixed words -------------------------------------------------
    if op in (0x4E75, 0x4E73, 0x4E77):            # rts / rte / rtr
        insn.kind = K_RETURN
        insn.sp_delta = None
        return
    if op in (0x4E70, 0x4E71, 0x4E76):            # reset / nop / trapv
        return
    if op == 0x4AFC:                              # illegal (deliberate)
        insn.kind = K_EXCEPTION
        return
    if op == 0x4E72:                              # stop #imm
        w.u16()
        insn.kind = K_STOP
        return
    if op & 0xFFF0 == 0x4E40:                     # trap #n
        insn.kind = K_EXCEPTION
        return
    if op & 0xFFF8 == 0x4E50:                     # link An,#d
        disp = _signed(w.u16(), 16)
        insn.link = (reg, disp)
        insn.sp_delta = None                      # checker pairs link/unlk
        return
    if op & 0xFFF8 == 0x4E58:                     # unlk An
        insn.unlk = reg
        insn.sp_delta = None                      # checker pairs link/unlk
        return
    if op & 0xFFF0 == 0x4E60:                     # move An,usp / usp,An
        return

    # ---- group 1/2/3: move -------------------------------------------
    if group in (1, 2, 3):
        size = {1: 1, 3: 2, 2: 4}[group]
        src = _read_ea(w, mode, reg, size)
        dmode, dreg = (op >> 6) & 7, (op >> 9) & 7
        dst = _read_ea(w, dmode, dreg, size)
        _apply_ea_effects(insn, src, read=src.mode >= 2)
        _apply_ea_effects(insn, dst, write=dst.mode >= 2)
        if dst.mode == 1 and dreg == 7:           # movea to a7
            insn.sp_delta = None
        return

    # ---- group 0: immediates and bit ops -----------------------------
    if group == 0:
        if op & 0x0100:                           # dynamic bit op / movep
            if mode == 1:                         # movep
                w.u16()
                return
            btype = (op >> 6) & 3
            ea = _read_ea(w, mode, reg, 1)
            _apply_ea_effects(insn, ea, read=ea.mode >= 2,
                              write=btype != 0 and ea.mode >= 2)
            return
        kind = (op >> 9) & 7
        if kind == 4:                             # static bit op
            w.u16()
            btype = (op >> 6) & 3
            ea = _read_ea(w, mode, reg, 1)
            _apply_ea_effects(insn, ea, read=ea.mode >= 2,
                              write=btype != 0 and ea.mode >= 2)
            return
        # ori/andi/subi/addi/eori/cmpi (szbits == 3 is illegal, filtered)
        size = _size_of(szbits)
        if mode == 7 and reg == 4:                # to ccr / sr
            w.u16()
            return
        if size == 4:
            w.u32()
        else:
            w.u16()
        ea = _read_ea(w, mode, reg, size)
        writes = kind != 6 and ea.mode >= 2       # cmpi only reads
        _apply_ea_effects(insn, ea, read=ea.mode >= 2, write=writes)
        return

    # ---- group 4 ------------------------------------------------------
    if group == 4:
        if op & 0xF1C0 == 0x41C0:                 # lea
            areg = (op >> 9) & 7
            start = w.addr
            ea = _read_ea(w, mode, reg, 4)
            if areg == 7:
                if ea.mode == 5 and ea.reg == 7:  # lea d16(a7),a7
                    insn.sp_delta = _signed(_reread16(w, start), 16)
                else:
                    insn.sp_delta = None
            return
        if op & 0xF1C0 == 0x4180:                 # chk (may vector, but
            ea = _read_ea(w, mode, reg, 2)        # normally falls through)
            _apply_ea_effects(insn, ea, read=ea.mode >= 2)
            return
        if op & 0xFFC0 == 0x4E80:                 # jsr
            ea = _read_ea(w, mode, reg, 4)
            insn.kind = K_CALL
            insn.target = ea.abs_addr
            insn.indirect = ea.abs_addr is None
            return
        if op & 0xFFC0 == 0x4EC0:                 # jmp
            ea = _read_ea(w, mode, reg, 4)
            insn.kind = K_BRANCH
            insn.target = ea.abs_addr
            insn.indirect = ea.abs_addr is None
            return
        if op & 0xFFC0 == 0x40C0:                 # move sr,<ea>
            ea = _read_ea(w, mode, reg, 2)
            _apply_ea_effects(insn, ea, write=ea.mode >= 2)
            return
        if op & 0xFFC0 in (0x44C0, 0x46C0):       # move <ea>,ccr / sr
            ea = _read_ea(w, mode, reg, 2)
            _apply_ea_effects(insn, ea, read=ea.mode >= 2)
            return
        if op & 0xFFF8 == 0x4840:                 # swap
            return
        if op & 0xFFC0 == 0x4840:                 # pea
            ea = _read_ea(w, mode, reg, 4)
            if insn.sp_delta is not None:
                insn.sp_delta -= 4
            return
        if op & 0xFFB8 == 0x4880 and mode == 0:   # ext
            return
        if op & 0xFB80 == 0x4880:                 # movem
            to_regs = bool(op & 0x0400)
            size = 4 if op & 0x0040 else 2
            mask = w.u16()
            count = bin(mask).count("1")
            ea = _read_ea(w, mode, reg, size)
            span = count * size
            if ea.abs_addr is not None:
                if to_regs:
                    insn.reads.append((ea.abs_addr, span))
                else:
                    insn.writes.append((ea.abs_addr, span))
            if ea.reg == 7 and ea.mode in (3, 4) and insn.sp_delta is not None:
                insn.sp_delta += span if ea.mode == 3 else -span
            return
        if op & 0xFFC0 == 0x4800:                 # nbcd
            ea = _read_ea(w, mode, reg, 1)
            _apply_ea_effects(insn, ea, read=ea.mode >= 2, write=ea.mode >= 2)
            return
        if op & 0xFFC0 == 0x4AC0:                 # tas
            ea = _read_ea(w, mode, reg, 1)
            _apply_ea_effects(insn, ea, read=ea.mode >= 2, write=ea.mode >= 2)
            return
        # negx / clr / neg / not / tst
        size = _size_of(szbits)
        ea = _read_ea(w, mode, reg, size)
        top = op & 0xFF00
        writes = top != 0x4A00 and ea.mode >= 2   # tst only reads
        reads = top not in (0x4200,) and ea.mode >= 2  # clr only writes
        _apply_ea_effects(insn, ea, read=reads, write=writes)
        return

    # ---- group 5: addq/subq, scc, dbcc -------------------------------
    if group == 5:
        if szbits == 3:
            if mode == 1:                         # dbcc
                target = (w.addr + _signed(w.u16(), 16)) & M32
                insn.kind = K_CONDBRANCH
                insn.target = target
                return
            ea = _read_ea(w, mode, reg, 1)        # scc
            _apply_ea_effects(insn, ea, write=ea.mode >= 2)
            return
        data = ((op >> 9) & 7) or 8
        size = _size_of(szbits)
        ea = _read_ea(w, mode, reg, size)
        _apply_ea_effects(insn, ea, read=ea.mode >= 2, write=ea.mode >= 2)
        if ea.mode == 1 and ea.reg == 7 and insn.sp_delta is not None:
            insn.sp_delta += -data if op & 0x0100 else data
        return

    # ---- group 6: branches -------------------------------------------
    if group == 6:
        cc = (op >> 8) & 15
        disp8 = op & 0xFF
        if disp8:
            target = (w.addr + _signed(disp8, 8)) & M32
        else:
            target = (w.addr + _signed(w.u16(), 16)) & M32
        insn.target = target
        if cc == 0:
            insn.kind = K_BRANCH
        elif cc == 1:
            insn.kind = K_CALL
        else:
            insn.kind = K_CONDBRANCH
        return

    # ---- group 7: moveq ----------------------------------------------
    if group == 7:
        return

    # ---- groups 8/9/B/C/D: two-operand arithmetic --------------------
    if group in (8, 9, 0xB, 0xC, 0xD):
        opmode = (op >> 6) & 7
        if group in (8, 0xC) and opmode in (3, 7):   # mul / div
            ea = _read_ea(w, mode, reg, 2)
            _apply_ea_effects(insn, ea, read=ea.mode >= 2)
            return
        if group == 0xC and op & 0x01F8 in (0x0140, 0x0148, 0x0188) \
                and opmode in (5, 6):                # exg
            return
        if opmode in (3, 7):                         # adda / suba / cmpa
            size = 2 if opmode == 3 else 4
            dreg = (op >> 9) & 7
            ea = _read_ea(w, mode, reg, size)
            _apply_ea_effects(insn, ea, read=ea.mode >= 2)
            if dreg == 7 and group in (9, 0xD):
                if ea.mode == 7 and ea.reg == 4:     # adda/suba #imm,sp
                    imm = _reread_imm(w, size)
                    if insn.sp_delta is not None:
                        insn.sp_delta += imm if group == 0xD else -imm
                else:
                    insn.sp_delta = None
            return
        size = _size_of(opmode & 3)
        if opmode < 3:                               # <ea> op Dn -> Dn
            ea = _read_ea(w, mode, reg, size)
            _apply_ea_effects(insn, ea, read=ea.mode >= 2)
            return
        # Dn op <ea> -> <ea> (or cmpm / addx / subx / eor): all the
        # memory destinations are read-modify-write.
        if group == 0xB and mode == 1:               # cmpm
            return
        if group in (9, 0xD) and mode in (0, 1):     # addx / subx
            return
        ea = _read_ea(w, mode, reg, size)
        _apply_ea_effects(insn, ea, read=ea.mode >= 2, write=ea.mode >= 2)
        return

    # ---- group E: shifts ---------------------------------------------
    if group == 0xE:
        if szbits == 3:                              # memory shift
            ea = _read_ea(w, mode, reg, 2)
            _apply_ea_effects(insn, ea, read=ea.mode >= 2, write=ea.mode >= 2)
        return


def _reread16(w: _Words, at: int) -> int:
    """Re-read an already-consumed extension word (for lea d16(a7),a7)."""
    return w._fetch(at) & 0xFFFF


def _reread_imm(w: _Words, size: int) -> int:
    """Re-read (signed) the immediate the EA reader just consumed."""
    if size == 4:
        hi = w._fetch(w.addr - 4) & 0xFFFF
        lo = w._fetch(w.addr - 2) & 0xFFFF
        return _signed((hi << 16) | lo, 32)
    return _signed(w._fetch(w.addr - 2) & 0xFFFF, 16)
