"""Static Palm OS trap census and the static/dynamic cross-check.

The census enumerates every reachable ``0xA000|trap`` word in the CFG
and resolves it to a trap name via :mod:`repro.palmos.traps`.  The
cross-check compares the statically discovered instruction stream with
the per-address opcode record of a profiled replay
(``Profiler.opcode_addresses``): any dynamically executed ROM address
the walker never discovered — or whose statically-decoded word differs
— is a decoder or walker bug.  This turns every profiling run into a
continuous test of the decoder itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from ...palmos.traps import Trap
from .decode import K_TRAP
from .findings import Report, Severity
from .walker import CFG

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .dataflow import TrapSite


@dataclass
class TrapCensus:
    """Reachable A-line trap sites, grouped by trap index.

    With :meth:`attach_arguments` the census is upgraded from "which
    traps are callable" to "which traps are callable *with which
    constant arguments*": the dataflow engine recovers the longword
    stack slots above the caller's SP at each trap site (Palm OS uses
    the C calling convention — arguments pushed right to left, so
    slot 0 is the first argument)."""

    #: trap index -> sorted list of call-site addresses.
    sites: Dict[int, List[int]] = field(default_factory=dict)
    #: call-site address -> recovered argument tuple (``None`` entries
    #: are arguments the dataflow could not prove constant).
    site_args: Dict[int, Tuple[Optional[int], ...]] = field(
        default_factory=dict)

    @classmethod
    def from_cfg(cls, cfg: CFG) -> "TrapCensus":
        census = cls()
        for insn in cfg.reachable_instructions():
            if insn.kind == K_TRAP:
                census.sites.setdefault(insn.trap, []).append(insn.addr)
        for addrs in census.sites.values():
            addrs.sort()
        return census

    def name_of(self, index: int) -> str:
        try:
            return Trap(index).name
        except ValueError:
            return f"trap_{index:#05x}"

    def names(self) -> Dict[str, int]:
        """Trap name -> static call-site count."""
        return {self.name_of(idx): len(addrs)
                for idx, addrs in sorted(self.sites.items())}

    # -- recovered arguments (dataflow upgrade) --------------------------
    def attach_arguments(self, trap_sites: Iterable["TrapSite"]) -> None:
        """Attach the dataflow engine's recovered per-site arguments
        (an iterable of :class:`~repro.analysis.static.dataflow.TrapSite`)."""
        known = {addr for addrs in self.sites.values() for addr in addrs}
        for site in trap_sites:
            if site.addr in known:
                self.site_args[site.addr] = site.args

    def arguments_at(self, addr: int) -> Tuple[Optional[int], ...]:
        """The recovered argument tuple for one call site (empty when
        no argument slot was provably constant)."""
        return self.site_args.get(addr, ())

    def signatures(self) -> Dict[str, List[List[Optional[int]]]]:
        """Trap name -> sorted unique recovered argument tuples.

        The answer to "which traps are callable with which constant
        arguments"; sites with no recovered arguments contribute an
        empty tuple, so every census'd trap appears.
        """
        by_name: Dict[str, set] = {}
        for idx, addrs in sorted(self.sites.items()):
            name = self.name_of(idx)
            bucket = by_name.setdefault(name, set())
            for addr in addrs:
                bucket.add(self.site_args.get(addr, ()))
        def order(args: Tuple[Optional[int], ...]
                  ) -> Tuple[int, List[Tuple[bool, int]]]:
            return (len(args), [(v is None, v or 0) for v in args])
        return {name: [list(args) for args in sorted(tuples, key=order)]
                for name, tuples in by_name.items()}

    def __len__(self) -> int:
        return sum(len(a) for a in self.sites.values())

    def compare_dynamic(self, trap_counts: Dict[int, int]) -> Report:
        """Check a dynamic trap histogram against the static census.

        Every trap observed at runtime must have at least one static
        call site — a dynamically-executed trap the walker never saw
        means the CFG is incomplete.
        """
        report = Report()
        for index, count in sorted(trap_counts.items()):
            if count and index not in self.sites:
                report.add(
                    Severity.ERROR, "trap-not-in-cfg",
                    f"trap {self.name_of(index)} executed {count}x "
                    f"dynamically but has no static call site")
        return report


def cross_check(cfg: CFG, opcode_addresses: Dict[int, int],
                code_range: Optional[Tuple[int, int]] = None) -> Report:
    """Validate the CFG against a profiled replay's executed stream.

    ``opcode_addresses`` maps pc -> executed opcode word (from
    ``Profiler.opcode_addresses``).  ``code_range`` restricts the check
    to the statically-analyzed window (the flash ROM); addresses outside
    it (RAM-resident code, if any) are ignored.
    """
    report = Report()
    lo, hi = code_range if code_range else (0, 1 << 32)
    missing = 0
    mismatched = 0
    checked = 0
    for pc in sorted(opcode_addresses):
        if not (lo <= pc < hi):
            continue
        checked += 1
        insn = cfg.instruction_at(pc)
        if insn is None:
            missing += 1
            report.add(
                Severity.ERROR, "dynamic-not-static",
                f"executed instruction not discovered by the static "
                f"walker (word ${opcode_addresses[pc]:04x})", address=pc)
        elif insn.word != opcode_addresses[pc]:
            mismatched += 1
            report.add(
                Severity.ERROR, "word-mismatch",
                f"static decode read ${insn.word:04x} but the CPU "
                f"executed ${opcode_addresses[pc]:04x}", address=pc)
    report.add(
        Severity.INFO, "cross-check",
        f"{checked} executed ROM addresses checked against the CFG: "
        f"{missing} missing, {mismatched} word mismatches")
    return report
