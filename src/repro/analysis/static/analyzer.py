"""The diagnostics engine: CFG checks and whole-ROM analysis.

:func:`run_checks` walks a :class:`~repro.analysis.static.walker.CFG`
and emits typed findings; :func:`analyze_rom` builds the shipped ROM,
walks it from every known entry point (reset vector, trap stubs,
interrupt service routine, application entries) and returns the CFG,
the findings and the static trap census in one :class:`RomAnalysis`.

The checks are deliberately conservative: a finding of severity ERROR
means "this executes wrongly on the emulated CPU" (illegal opcode on a
reachable path, a statically-known write into the write-protected
flash window, a word/long access to an odd address, a branch to an odd
or out-of-range target), not a style opinion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ...palmos.traps import (CALL_APP_RETURNED, CALL_BOOT, CALL_DELAY_TRY,
                             CALL_EVT_TRY, CALL_GET_APP, CALL_PANIC, Trap)
from .census import TrapCensus
from .decode import K_EMUCALL, K_ILLEGAL, K_RETURN, K_TRAP
from .findings import CheckContext, Report, Severity
from .walker import CFG, walk

_KNOWN_EMUCALLS = {int(t) for t in Trap} | {
    CALL_BOOT, CALL_GET_APP, CALL_EVT_TRY, CALL_APP_RETURNED,
    CALL_DELAY_TRY, CALL_PANIC,
}


def run_checks(cfg: CFG, ctx: CheckContext,
               candidates: Sequence[int] = ()) -> Report:
    """Run every CFG diagnostic; returns the findings."""
    report = Report()
    _check_reachable_instructions(cfg, ctx, report)
    _check_structure(cfg, ctx, report)
    for entry in sorted(cfg.function_entries & cfg.reachable):
        _check_stack_balance(cfg, entry, report)
    for addr in candidates:
        if not cfg.contains_address(addr):
            report.add(Severity.INFO, "unreachable-code",
                       "expected code was never discovered by the walker",
                       address=addr)
    insns = len(cfg.insn_map)
    covered = sum(i.length for i in cfg.insn_map.values())
    report.add(Severity.INFO, "coverage",
               f"{len(cfg.blocks)} blocks, {insns} instructions, "
               f"{covered} bytes, {len(cfg.reachable)} reachable blocks")
    return report


def _check_reachable_instructions(cfg: CFG, ctx: CheckContext,
                                  report: Report) -> None:
    flash = ctx.flash_range
    for start in sorted(cfg.reachable):
        for insn in cfg.blocks[start].insns:
            if insn.kind == K_ILLEGAL:
                report.add(Severity.ERROR, "illegal-opcode",
                           f"illegal opcode ${insn.word:04x} on a "
                           f"reachable path", address=insn.addr, block=start)
            if insn.kind == K_TRAP:
                try:
                    Trap(insn.trap)
                except ValueError:
                    report.add(Severity.ERROR, "unknown-trap",
                               f"A-line trap index {insn.trap:#05x} has no "
                               f"Palm OS trap assigned",
                               address=insn.addr, block=start)
            if insn.kind == K_EMUCALL and (insn.emucall >> 1) \
                    not in _KNOWN_EMUCALLS:
                report.add(Severity.WARNING, "unknown-emucall",
                           f"F-line word ${insn.word:04x} is not a known "
                           f"emucall", address=insn.addr, block=start)
            if insn.target is not None and insn.target & 1:
                report.add(Severity.ERROR, "odd-target",
                           f"control transfer to odd address "
                           f"{insn.target:#010x}",
                           address=insn.addr, block=start)
            for addr, size in insn.reads + insn.writes:
                if size >= 2 and addr & 1:
                    report.add(Severity.ERROR, "unaligned-access",
                               f"{size}-byte access to odd address "
                               f"{addr:#010x}", address=insn.addr,
                               block=start)
            if flash is not None:
                for addr, size in insn.writes:
                    if flash[0] <= addr < flash[1]:
                        report.add(Severity.ERROR, "flash-write",
                                   f"statically-known write of {size} "
                                   f"byte(s) into the write-protected "
                                   f"flash window at {addr:#010x}",
                                   address=insn.addr, block=start)


def _check_structure(cfg: CFG, ctx: CheckContext, report: Report) -> None:
    for source, target in cfg.out_of_range_targets:
        report.add(Severity.ERROR, "target-out-of-range",
                   f"control transfer to {target:#010x}, outside the "
                   f"code range {ctx.code_range[0]:#x}..{ctx.code_range[1]:#x}",
                   address=source)
    for block_head in cfg.unterminated:
        report.add(Severity.ERROR, "unterminated-block",
                   "straight-line code runs past the end of the code "
                   "range without a terminator", address=block_head,
                   block=block_head)
    for earlier, entry in cfg.overlaps:
        report.add(Severity.WARNING, "mid-instruction-entry",
                   f"control-flow target lands inside the instruction "
                   f"at {earlier:#010x}", address=entry)


def _check_stack_balance(cfg: CFG, entry: int, report: Report) -> None:
    """Check that every return path of the subroutine at ``entry`` has
    a zero net A7 delta (``link``/``unlk`` pairs cancel exactly).

    Paths with statically-unknown stack effects are skipped rather than
    guessed at; conflicting deltas at a join point are reported as a
    WARNING (a loop that accumulates stack is almost always a bug, but
    the tracker is intentionally simple).
    """
    if entry not in cfg.blocks:
        return
    states: Dict[int, Tuple[int, tuple]] = {entry: (0, ())}
    work = [entry]
    while work:
        start = work.pop()
        delta, frames = states[start]
        known = True
        block = cfg.blocks[start]
        for insn in block.insns:
            if insn.link is not None:
                frames = frames + ((insn.link[0], delta),)
                delta = delta - 4 + insn.link[1]
            elif insn.unlk is not None:
                if frames and frames[-1][0] == insn.unlk:
                    delta = frames[-1][1]
                    frames = frames[:-1]
                else:
                    known = False      # unpaired unlk: give up on path
                    break
            elif insn.kind == K_RETURN:
                if delta != 0:
                    report.add(Severity.ERROR, "stack-imbalance",
                               f"subroutine {entry:#010x} returns with a "
                               f"net stack delta of {delta:+d} bytes",
                               address=insn.addr, block=start)
                known = False          # a return ends the path
                break
            elif insn.sp_delta is None:
                known = False          # unknown effect: give up on path
                break
            else:
                delta += insn.sp_delta
        if not known:
            continue
        for succ in block.succs:
            if succ not in cfg.blocks:
                continue
            if succ in states:
                if states[succ] != (delta, frames):
                    report.add(Severity.WARNING, "stack-varies",
                               f"subroutine {entry:#010x} reaches "
                               f"{succ:#010x} with differing stack "
                               f"depths", address=succ, block=succ)
            else:
                states[succ] = (delta, frames)
                work.append(succ)


@dataclass
class RomAnalysis:
    """Everything :func:`analyze_rom`/:func:`analyze_image` produce."""

    cfg: CFG
    report: Report
    census: TrapCensus
    ctx: CheckContext
    #: The assembled :class:`~repro.m68k.asm.Program` (ROM analyses only).
    program: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.report.ok


def analyze_image(image: bytes, base: int, roots: Iterable[int], *,
                  code_end: Optional[int] = None,
                  trap_targets: Optional[Dict[int, int]] = None,
                  function_entries: Iterable[int] = (),
                  candidates: Sequence[int] = (),
                  flash_range: Optional[Tuple[int, int]] = None
                  ) -> RomAnalysis:
    """Walk and check a raw code image mapped at ``base``.

    ``code_end`` bounds the walk (default: end of the image);
    ``function_entries`` adds known subroutine entries (for the stack
    checker) beyond what ``jsr``/``bsr`` discover — e.g. application
    entries only ever called through a register.
    """
    hi = code_end if code_end is not None else base + len(image)
    ctx = CheckContext(code_range=(base, hi), flash_range=flash_range)

    def fetch(addr: int) -> int:
        off = addr - base
        if 0 <= off + 1 < len(image):
            return (image[off] << 8) | image[off + 1]
        return 0

    cfg = walk(fetch, roots, code_range=(base, hi),
               trap_targets=trap_targets)
    cfg.function_entries.update(
        e for e in function_entries if e in cfg.blocks)
    report = run_checks(cfg, ctx, candidates=candidates)
    return RomAnalysis(cfg, report, TrapCensus.from_cfg(cfg), ctx)


def analyze_rom(apps: Optional[Sequence] = None) -> RomAnalysis:
    """Build the shipped ROM and analyze it end to end.

    ``apps`` defaults to the standard application set the CLI ships.
    Roots are every entry point the hardware or kernel can reach
    directly: the reset vector's initial PC, the trap dispatcher, the
    interrupt service routine, the unimplemented-trap handler, every
    trap stub and every application entry.
    """
    from ...apps import standard_apps
    from ...device import constants as C
    from ...palmos.rom import RomBuilder

    builder = RomBuilder(standard_apps() if apps is None else list(apps))
    program = builder.build()
    origin, code = program.segments[0]
    image = bytes(code)

    reset_pc = int.from_bytes(image[4:8], "big")
    stubs = builder.stub_addresses(program)
    app_entries = [addr for _, addr in builder.app_entries(program)]
    roots = [reset_pc,
             program.symbols["trap_dispatcher"],
             program.symbols["rom_isr"],
             program.symbols["rom_unimplemented"]]
    roots += sorted(set(stubs.values()))
    roots += app_entries

    analysis = analyze_image(
        image, origin, roots,
        trap_targets=stubs,
        # Apps are invoked via jsr (a0); make them subroutine entries
        # for the stack checker even though no static jsr names them.
        function_entries=app_entries,
        flash_range=(C.FLASH_BASE, C.FLASH_BASE + C.FLASH_SIZE))
    analysis.program = program
    return analysis
