"""The activity-log determinism linter.

Replay is only deterministic when the activity log is internally
consistent: ticks within an epoch never run backwards, no record is
duplicated, every boot has a recorded ``SysRandom`` seed to consume,
and every record decodes.  This module checks those properties
*statically* — before a replay is attempted — which is the static
analogue of the paper's replay-correlation validation (§5): a log that
fails these checks cannot drive a faithful replay, no matter how good
the emulator is.

``lint_playback_result`` adds the dynamic half: after a replay, a
non-zero ``seeds_missing`` means the guest consumed seeds that were
never logged (the recorder under-recorded the session).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

from ...palmos.database import DatabaseImage
from ...tracelog.log import MAX_LOG_RECORDS, ActivityLog
from ...tracelog.parser import split_epochs
from ...tracelog.records import LogEventType, LogRecord
from .findings import Report, Severity


def lint_log(log: ActivityLog) -> Report:
    """Check a decoded activity log for replay-determinism hazards.

    Findings use ``address`` for the record index within the log.
    """
    report = Report()
    if len(log) > MAX_LOG_RECORDS:
        report.add(Severity.ERROR, "log-overflow",
                   f"{len(log)} records exceed the {MAX_LOG_RECORDS}-record "
                   f"database limit")

    epochs = split_epochs(log)
    index = 0
    for epoch_no, epoch in enumerate(epochs):
        prev_tick: Optional[int] = None
        prev_rtc: Optional[int] = None
        seen = set()
        for rec in epoch:
            if prev_tick is not None and rec.tick < prev_tick:
                report.add(
                    Severity.ERROR, "non-monotonic-tick",
                    f"record {index} ({rec.type.name}) has tick "
                    f"{rec.tick}, before the preceding record's "
                    f"{prev_tick} (epoch {epoch_no})", address=index)
            prev_tick = rec.tick
            if prev_rtc is not None and rec.rtc < prev_rtc:
                report.add(
                    Severity.WARNING, "non-monotonic-rtc",
                    f"record {index} ({rec.type.name}) has rtc "
                    f"{rec.rtc}, before the preceding record's "
                    f"{prev_rtc}", address=index)
            prev_rtc = rec.rtc
            key = (rec.type, rec.tick, rec.rtc, rec.data)
            if key in seen:
                report.add(
                    Severity.WARNING, "duplicate-record",
                    f"record {index} duplicates an earlier "
                    f"{rec.type.name} record (tick {rec.tick}, "
                    f"data {rec.data:#x})", address=index)
            seen.add(key)
            if rec.type == LogEventType.RANDOM and rec.data == 0:
                report.add(
                    Severity.WARNING, "zero-seed",
                    f"record {index} logs a zero SysRandom seed "
                    f"(zero seeds do not reseed and are never logged "
                    f"by a correct recorder)", address=index)
            index += 1

    # The seed queue is global (consumed one per non-zero SysRandom
    # call, in insertion order) and every epoch's boot path calls
    # SysRandom once, so the log needs at least one seed per epoch or
    # replay will underrun the queue.
    seeds = len(log.of_type(LogEventType.RANDOM))
    if seeds < len(epochs):
        report.add(
            Severity.ERROR, "seed-underrun",
            f"{seeds} recorded SysRandom seed(s) for {len(epochs)} "
            f"epoch(s); each boot consumes one, so replay will fall "
            f"back to emulator entropy")
    report.add(
        Severity.INFO, "log-summary",
        f"{len(log)} records in {len(epochs)} epoch(s), {seeds} seed(s), "
        f"ticks {log.first_tick}..{log.last_tick}")
    return report


def lint_archive(path: Union[str, Path]) -> Report:
    """Lint a session archive (a directory containing
    ``activity_log.pdb``, or the ``.pdb`` file itself).

    Corrupt records are reported individually — the rest of the log is
    still linted — so one bad record doesn't hide the others.
    """
    path = Path(path)
    if path.is_dir():
        path = path / "activity_log.pdb"
    report = Report()
    if not path.exists():
        report.add(Severity.ERROR, "missing-log",
                   f"no activity log at {path}")
        return report
    try:
        image = DatabaseImage.from_pdb_bytes(path.read_bytes())
    except Exception as exc:
        report.add(Severity.ERROR, "corrupt-database",
                   f"activity log is not a readable PDB: {exc}")
        return report
    records = []
    for i, raw in enumerate(image.records):
        try:
            records.append(LogRecord.decode(raw.data))
        except Exception as exc:
            report.add(Severity.ERROR, "corrupt-record",
                       f"record {i} does not decode: {exc}", address=i)
    report.extend(lint_log(ActivityLog(records)))
    return report


#: Audit finding codes that bear on replay determinism — the subset
#: ``lint --deep`` surfaces alongside the log checks.
DETERMINISM_CODES = frozenset({
    "untraced-nondeterminism",
    "nondet-reachable-from-handler",
    "code-write",
    "semantic-flash-write",
})


def deep_findings(apps: Optional[Sequence[Any]] = None,
                  hacked_traps: Optional[Iterable[int]] = None) -> Report:
    """The semantic half of ``lint --deep``: audit the ROM the session
    replays on and keep the determinism-relevant findings.

    A log can pass every structural check and still replay wrong if
    the *code* can reach a nondeterminism source no hack traces
    (``untraced-nondeterminism``) or rewrites itself out from under the
    recorded instruction stream (``code-write``).  ``hacked_traps``
    defaults to the standard logging-hack set.
    """
    from .audit import audit_rom
    result = audit_rom(apps, hacked_traps=hacked_traps)
    report = Report()
    for finding in result.report:
        if finding.code in DETERMINISM_CODES:
            report.findings.append(finding)
    contributed = len(report)
    report.add(Severity.INFO, "deep-lint",
               f"semantic ROM audit contributed {contributed} "
               f"determinism finding(s) from {len(result.trap_sites)} "
               f"trap site(s)")
    return report


def lint_playback_result(result: Any) -> Report:
    """The dynamic half: check a finished replay's counters.

    ``result`` is a :class:`~repro.emulator.playback.PlaybackResult`.
    A non-zero ``seeds_missing`` means the guest called SysRandom with
    a non-zero seed more times than the recorder logged — a seed was
    consumed but never logged, so the replayed RNG state has diverged.
    """
    report = Report()
    if result.seeds_missing:
        report.add(Severity.ERROR, "seed-underrun",
                   f"replay consumed {result.seeds_missing} seed(s) "
                   f"beyond the recorded queue ({result.seeds_served} "
                   f"served); the session under-recorded SysRandom")
    return report
