"""Energy extension: the battery-consumption argument.

§4.1 cites Su [22]: "adding a cache not only increases performance but
can reduce the battery consumption for portable devices."  The paper
itself stops at access time; this extension module carries the same
miss-rate data through a simple per-access energy model so the claim
can be quantified.

Energies are relative units (one RAM access = 1).  The defaults follow
the usual ordering for the era's parts: a small on-chip cache access is
much cheaper than a DRAM access, and flash reads cost several times
DRAM (mirroring their 3x access-time cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..cache.hierarchy import RegionMix

E_CACHE_HIT = 0.2
E_RAM = 1.0
E_FLASH = 3.0


@dataclass(frozen=True)
class EnergyModel:
    e_cache_hit: float = E_CACHE_HIT
    e_ram: float = E_RAM
    e_flash: float = E_FLASH

    def no_cache_energy(self, mix: RegionMix) -> float:
        """Average energy per reference without a cache."""
        if mix.total == 0:
            return 0.0
        return (mix.ram_refs * self.e_ram
                + mix.flash_refs * self.e_flash) / mix.total

    def cached_energy(self, mix: RegionMix, miss_rate: float) -> float:
        """Average energy per reference with a cache.

        Every access pays the cache-probe energy; misses additionally
        pay the backing-store access, split by the trace's region mix.
        """
        if mix.total == 0:
            return 0.0
        miss_cost = (mix.ram_refs / mix.total * self.e_ram
                     + mix.flash_refs / mix.total * self.e_flash)
        return self.e_cache_hit + miss_rate * miss_cost

    def savings(self, mix: RegionMix, miss_rate: float) -> float:
        """Fractional memory-energy reduction a cache buys."""
        base = self.no_cache_energy(mix)
        if base == 0:
            return 0.0
        return 1.0 - self.cached_energy(mix, miss_rate) / base


# ----------------------------------------------------------------------
# Instruction-level energy (after Lee et al. [14], "An accurate
# instruction-level energy consumption model for embedded RISC
# processors"): classify each executed opcode and weight it by a
# per-class core-energy cost.  Relative units; one register-to-register
# move = 1.
# ----------------------------------------------------------------------
OPCODE_CLASS_ENERGY = {
    "move": 1.0,
    "alu": 1.1,
    "shift": 1.2,
    "mul": 4.5,
    "div": 9.0,
    "branch": 0.9,
    "control": 1.5,    # jsr/rts/trap/rte, exception machinery
    "system": 1.3,     # A-line / F-line
    "other": 1.0,
}


def classify_opcode(op: int) -> str:
    """Map a 68000 opcode word to an energy class."""
    group = op >> 12
    if group in (0x1, 0x2, 0x3, 0x7):
        return "move"
    if group == 0xE:
        return "shift"
    if group in (0x8, 0xC):
        opmode = (op >> 6) & 7
        if opmode in (3, 7):
            return "div" if group == 0x8 else "mul"
        return "alu"
    if group in (0x0, 0x5, 0x9, 0xB, 0xD):
        return "alu"
    if group == 0x6:
        return "branch"
    if group == 0x4:
        if op & 0xFF80 == 0x4E80 or op in (0x4E75, 0x4E73, 0x4E77):
            return "control"
        if op & 0xFFF0 == 0x4E40:
            return "control"
        return "alu"
    if group in (0xA, 0xF):
        return "system"
    return "other"


def instruction_energy(opcode_histogram: Any) -> dict:
    """Aggregate core energy from a profiler's opcode histogram.

    Returns ``{"total": float, "by_class": {...}, "instructions": int}``
    in relative units.
    """
    import numpy as np

    histogram = np.asarray(opcode_histogram)
    by_class: dict = {}
    for op in np.nonzero(histogram)[0]:
        cls = classify_opcode(int(op))
        count = int(histogram[op])
        by_class[cls] = by_class.get(cls, 0) + count
    total = sum(OPCODE_CLASS_ENERGY[cls] * count
                for cls, count in by_class.items())
    return {
        "total": total,
        "by_class": by_class,
        "instructions": int(histogram.sum()),
    }
