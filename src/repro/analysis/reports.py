"""Paper-style report formatting.

One formatter per table/figure in the evaluation, so benchmarks print
rows directly comparable to the paper's.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..cache.hierarchy import RegionMix
from ..cache.sweep import (
    PAPER_ASSOCIATIVITIES,
    PAPER_LINE_SIZES,
    PAPER_SIZES,
    SweepPoint,
    grid_by_config,
)
from ..device import constants as C


def _hms(ticks: int) -> str:
    seconds = ticks // C.TICKS_PER_SECOND
    return f"{seconds // 3600:d}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"


def format_table1(rows: Sequence[dict]) -> str:
    """Table 1: Volunteer User Session Data.

    Each row: ``{"session", "events", "elapsed_ticks", "ram_refs",
    "flash_refs", "ave_mem_cyc"}``.
    """
    out = ["Table 1. Volunteer User Session Data.",
           f"{'Session':<10}{'Events':>8}{'Elapsed Time':>14}"
           f"{'RAM Refs':>12}{'Flash Refs':>12}{'Ave Mem Cyc':>13}"]
    for row in rows:
        out.append(
            f"{row['session']:<10}{row['events']:>8}"
            f"{_hms(row['elapsed_ticks']):>14}"
            f"{row['ram_refs']:>12,}{row['flash_refs']:>12,}"
            f"{row['ave_mem_cyc']:>13.2f}")
    return "\n".join(out)


def _grid_table(title: str, points: Sequence[SweepPoint],
                cell: Callable[[SweepPoint], str]) -> str:
    grid = grid_by_config(points)
    header = f"{'size':>6} | " + " | ".join(
        f"{line}B/{assoc}w" for line in PAPER_LINE_SIZES
        for assoc in PAPER_ASSOCIATIVITIES)
    out = [title, header, "-" * len(header)]
    for size in PAPER_SIZES:
        cells = []
        for line in PAPER_LINE_SIZES:
            for assoc in PAPER_ASSOCIATIVITIES:
                point = grid.get((size, line, assoc))
                cells.append(cell(point) if point else "   n/a")
        out.append(f"{size // 1024:>5}K | " + " | ".join(cells))
    return "\n".join(out)


def format_miss_rates(points: Sequence[SweepPoint],
                      title: str = "Figure 5. Miss Rates For 56 Cache "
                                   "Configurations (%).") -> str:
    return _grid_table(title, points,
                       lambda p: f"{100 * p.miss_rate:6.2f}")


def format_access_times(points: Sequence[SweepPoint], mix: RegionMix,
                        title: str = "Figure 6. Average Effective Memory "
                                     "Access Times (cycles).") -> str:
    body = _grid_table(title, points,
                       lambda p: f"{mix.cached_time(p.miss_rate):6.3f}")
    return (f"{body}\n(no cache: {mix.no_cache_time():.3f} cycles; "
            f"flash share {100 * mix.flash_fraction:.1f}%)")


def format_overhead(points: Sequence, title: str = "Figure 3. Average "
                    "Overhead Per Hack Call vs Database Size.") -> str:
    out = [title,
           f"{'records':>10}{'cycles/call':>14}{'ms/call':>10}"]
    for p in points:
        out.append(f"{p.records:>10,}{p.avg_cycles:>14,.0f}{p.avg_ms:>10.3f}")
    return "\n".join(out)


def format_overhead_multi(curves: Dict[str, Sequence],
                          title: str = "Figure 3. Average Overhead For "
                          "Each Hack (ms/call).") -> str:
    names = list(curves)
    sizes = [p.records for p in curves[names[0]]]
    header = f"{'records':>10} | " + " | ".join(f"{n[:16]:>16}" for n in names)
    out = [title, header, "-" * len(header)]
    for i, size in enumerate(sizes):
        cells = " | ".join(f"{curves[n][i].avg_ms:>16.3f}" for n in names)
        out.append(f"{size:>10,} | {cells}")
    return "\n".join(out)


def format_validation(log_summary: str, state_summary: str) -> str:
    return ("Section 3 validation\n"
            "====================\n"
            f"{log_summary}\n\n{state_summary}")


def format_opcode_table(top: List[tuple], total: int,
                        title: str = "Most-executed opcodes.") -> str:
    from ..m68k.disasm import disassemble_one

    out = [title, f"{'opcode':>8}  {'count':>12}  {'share':>7}  mnemonic"]
    for op, count in top:
        words = [op, 0, 0]

        def fetch(addr: int, _w: List[int] = words) -> int:
            return _w[(addr // 2) % 3]

        try:
            text, _ = disassemble_one(fetch, 0)
        except Exception:
            text = "?"
        out.append(f"  ${op:04x}  {count:>12,}  {100 * count / total:>6.2f}%  "
                   f"{text}  (extension words not shown)"
                   if _needs_ext(op) else
                   f"  ${op:04x}  {count:>12,}  {100 * count / total:>6.2f}%  {text}")
    return "\n".join(out)


def _needs_ext(op: int) -> bool:
    """Whether the opcode takes extension words the histogram lacks."""
    mode = (op >> 3) & 7
    reg = op & 7
    return mode >= 5 or (mode == 7 and reg != 4) or (op & 0xF000) == 0x0000
