"""Analysis helpers: paper-style reports and the energy extension."""

from .energy import (E_CACHE_HIT, E_FLASH, E_RAM, EnergyModel,
                     OPCODE_CLASS_ENERGY, classify_opcode, instruction_energy)
from .screen import screen_ascii, screen_histogram, screenshot_ppm
from .reports import (
    format_access_times,
    format_miss_rates,
    format_opcode_table,
    format_overhead,
    format_overhead_multi,
    format_table1,
    format_validation,
)

__all__ = [
    "EnergyModel",
    "OPCODE_CLASS_ENERGY",
    "classify_opcode",
    "instruction_energy",
    "E_CACHE_HIT",
    "E_RAM",
    "E_FLASH",
    "format_table1",
    "format_miss_rates",
    "format_access_times",
    "format_overhead",
    "format_overhead_multi",
    "format_validation",
    "screen_ascii",
    "screen_histogram",
    "screenshot_ppm",
    "format_opcode_table",
]
