"""Exit-path instrumentation and driving-vector synthesis.

The generated source of a fused block branches only over a closed
vocabulary of conditions — budget gates, region-dispatch arms,
alignment checks, watch-page checks, handler-bridge re-checks, irq
checks, condition codes, dbcc counters, the ``sl`` escape and the bulk
guard.  :func:`instrument` rewrites the AST so every branch arm
(including each implicit ``else``) reports itself through an
``__arm__(i)`` marker, and classifies each arm from its unparsed
condition text.  :func:`build_vectors` then synthesizes a driving
battery aimed at that classification: a benign functional core, a
budget battery seeded from the reference probe's per-step cycle
schedule, and targeted vectors per arm class (odd addresses, flash and
external bus addresses, straddles, watch hits, scripted irq and
invalidation, bulk-guard accept/reject shapes).

Arms a battery fails to reach are reported by the validator as
``tv-uncovered`` warnings — a *certified* pass covers every arm, and
nothing is ever silently skipped.
"""

from __future__ import annotations

import ast
import random
import re
from dataclasses import dataclass
from types import CodeType
from typing import Any, Dict, List, Optional, Set, Tuple

from .machine import (KIND_READ, KIND_WRITE, M32, REGION_RAM, RunResult,
                      Vector)

_INT_RE = re.compile(r"\b\d+\b")
_ALIGN_RE = re.compile(r"[A-Za-z_]\w* & 1")


@dataclass
class Arm:
    """One branch arm of the generated source (``taken`` is the
    condition-true side; the partner id is always ``arm_id ^ 1``).
    ``dead`` arms were *proven* unreachable by in-block constant
    propagation (e.g. the flash arm of an access whose address a
    ``lea`` pinned to a RAM literal) — no coverage obligation."""

    arm_id: int
    kind: str
    cond: str
    taken: bool
    dead: bool = False


class _ArmMarker(ast.NodeTransformer):
    """Insert ``__arm__(i)`` as the first statement of every ``if``
    body and ``orelse`` (materializing the implicit else, which is
    semantically neutral)."""

    def __init__(self) -> None:
        self.arms: List[Arm] = []
        self._n = 0

    @staticmethod
    def _marker(i: int) -> ast.Expr:
        return ast.Expr(value=ast.Call(
            func=ast.Name(id="__arm__", ctx=ast.Load()),
            args=[ast.Constant(i)], keywords=[]))

    def visit_If(self, node: ast.If) -> ast.If:
        self.generic_visit(node)
        cond = ast.unparse(node.test)
        i = self._n
        self._n += 2
        self.arms.append(Arm(i, "", cond, True))
        self.arms.append(Arm(i + 1, "", cond, False))
        node.body.insert(0, self._marker(i))
        node.orelse.insert(0, self._marker(i + 1))
        setattr(node, "_tv_arms", (i, i + 1))
        return node


def _classify(cond: str, prov: Any) -> str:
    """Map a condition's unparsed text onto the codegen vocabulary."""
    if "limit" in cond:
        return "gate"
    if "wdis" in cond:
        return "bulk"
    if "wpages" in cond:
        return "watch"
    if "block.valid" in cond or "cpu.pc" in cond:
        return "bridge"
    if cond.startswith("irq"):
        return "irq"
    if cond == "sl":
        return "sl"
    if _ALIGN_RE.fullmatch(cond):
        return "align"
    if "!= 65535" in cond:
        return "dbcc"
    for text in _INT_RE.findall(cond):
        v = int(text)
        if prov.ram_limit - 8 <= v <= prov.ram_limit:
            return "region"
        if prov.flash_base - 8 <= v <= prov.flash_limit:
            return "region"
    if "cpu." in cond:
        return "cc"
    return "generic"


# -- in-block constant propagation (dead-arm proof) ----------------------

class _Unknown(Exception):
    """Expression depends on vector-controlled state."""


_BINOPS = {
    ast.Add: lambda x, y: x + y, ast.Sub: lambda x, y: x - y,
    ast.Mult: lambda x, y: x * y, ast.BitAnd: lambda x, y: x & y,
    ast.BitOr: lambda x, y: x | y, ast.BitXor: lambda x, y: x ^ y,
    ast.LShift: lambda x, y: x << y, ast.RShift: lambda x, y: x >> y,
    ast.FloorDiv: lambda x, y: x // y if y else 0,
    ast.Mod: lambda x, y: x % y if y else 0,
}

_CMPOPS = {
    ast.Eq: lambda x, y: x == y, ast.NotEq: lambda x, y: x != y,
    ast.Lt: lambda x, y: x < y, ast.LtE: lambda x, y: x <= y,
    ast.Gt: lambda x, y: x > y, ast.GtE: lambda x, y: x >= y,
}


def _ckey(node: ast.expr) -> Optional[str]:
    """Constant-map key for an assignable target, or None."""
    if isinstance(node, ast.Name):
        return node.id
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "cpu"):
        return f"cpu.{node.attr}"
    if (isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("a", "d")
            and isinstance(node.slice, ast.Constant)):
        return f"{node.value.id}[{node.slice.value}]"
    return None


def _ev(node: ast.expr, env: Dict[str, int]) -> int:
    if isinstance(node, ast.Constant) and isinstance(node.value,
                                                    (int, bool)):
        return int(node.value)
    key = _ckey(node)
    if key is not None:
        if key in env:
            return env[key]
        raise _Unknown
    if isinstance(node, ast.BinOp):
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise _Unknown
        return op(_ev(node.left, env), _ev(node.right, env))
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.Not):
            return int(not _ev(node.operand, env))
        if isinstance(node.op, ast.USub):
            return -_ev(node.operand, env)
        if isinstance(node.op, ast.Invert):
            return ~_ev(node.operand, env)
        raise _Unknown
    if isinstance(node, ast.BoolOp):
        is_and = isinstance(node.op, ast.And)
        result = 1 if is_and else 0
        for value in node.values:
            result = _ev(value, env)
            if is_and and not result:
                return result
            if not is_and and result:
                return result
        return result
    if isinstance(node, ast.Compare):
        left = _ev(node.left, env)
        for op, rhs in zip(node.ops, node.comparators):
            fn = _CMPOPS.get(type(op))
            if fn is None:
                raise _Unknown
            right = _ev(rhs, env)
            if not fn(left, right):
                return 0
            left = right
        return 1
    if isinstance(node, ast.IfExp):
        return (_ev(node.body, env) if _ev(node.test, env)
                else _ev(node.orelse, env))
    raise _Unknown


def _subtree_arms(stmts: List[ast.stmt]) -> Set[int]:
    out: Set[int] = set()
    for st in stmts:
        for sub in ast.walk(st):
            pair = getattr(sub, "_tv_arms", None)
            if pair:
                out.update(pair)
    return out


def _clobber(target: ast.expr, env: Dict[str, int]) -> None:
    """Drop whatever ``target`` may alias.  Unkeyable targets
    (``ex[0]``, ``ram[...]`` slices, token lists) cannot alias the
    tracked registers; an ``a``/``d`` subscript with a non-constant
    index clobbers that whole file."""
    key = _ckey(target)
    if key is not None:
        env.pop(key, None)
        return
    if (isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in ("a", "d")):
        prefix = target.value.id + "["
        for k in [k for k in env if k.startswith(prefix)]:
            del env[k]


def _invalidate(stmts: List[ast.stmt], env: Dict[str, int]) -> None:
    """Drop constants a possibly-executed subtree may clobber."""
    for st in stmts:
        for sub in ast.walk(st):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    _clobber(target, env)
            elif (isinstance(sub, ast.Call)
                  and isinstance(sub.func, ast.Name)
                  and sub.func.id.startswith("h")
                  and sub.func.id[1:].isdigit()):
                env.clear()
                return


def _flow(stmts: List[ast.stmt], env: Dict[str, int],
          dead: Set[int]) -> bool:
    """Interpret the straight-line constants; returns False when the
    statement list always terminates (return/raise/continue)."""
    for idx, st in enumerate(stmts):
        if isinstance(st, ast.Assign) and len(st.targets) == 1:
            key = _ckey(st.targets[0])
            if key is None:
                _clobber(st.targets[0], env)
            else:
                try:
                    env[key] = _ev(st.value, env)
                except _Unknown:
                    env.pop(key, None)
        elif isinstance(st, ast.Expr):
            call = st.value
            if (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id.startswith("h")
                    and call.func.id[1:].isdigit()):
                env.clear()    # handler bridge: clobbers everything
        elif isinstance(st, (ast.Return, ast.Raise, ast.Continue,
                             ast.Break)):
            return False
        elif isinstance(st, ast.While):
            return True        # loop body: registers are loop-variant
        elif isinstance(st, ast.If):
            pair = getattr(st, "_tv_arms", None)
            try:
                taken: Optional[bool] = bool(_ev(st.test, env))
            except _Unknown:
                taken = None
            if taken is None:
                _invalidate([st], env)
                continue
            live, off = ((st.body, st.orelse) if taken
                         else (st.orelse, st.body))
            if pair:
                dead.add(pair[1] if taken else pair[0])
            dead.update(_subtree_arms(off))
            if not _flow(live, env, dead):
                dead.update(_subtree_arms(stmts[idx + 1:]))
                return False
    return True


def instrument(prov: Any) -> Tuple[CodeType, List[Arm]]:
    """Parse, mark and classify ``prov.source``; returns the compiled
    instrumented module code plus the arm table (with proven-dead
    arms flagged)."""
    tree = ast.parse(prov.source)
    marker = _ArmMarker()
    tree = marker.visit(tree)
    ast.fix_missing_locations(tree)
    code = compile(tree, f"<transval:{prov.pc:#x}>", "exec")
    for arm in marker.arms:
        arm.kind = _classify(arm.cond, prov)
    dead: Set[int] = set()
    fn = tree.body[0]
    if isinstance(fn, ast.FunctionDef):
        try:
            _flow(fn.body, {}, dead)
        except RecursionError:
            dead = set()
    for arm in marker.arms:
        arm.dead = arm.arm_id in dead
    return code, marker.arms


# -- vector synthesis ----------------------------------------------------

def _code_pages(prov: Any) -> Set[int]:
    pages: Set[int] = set()
    for start, data in prov.code:
        for a in range(start & ~0xFF, start + len(data), 0x100):
            pages.add(a >> 8)
    return pages


def benign_aregs(prov: Any, salt: int = 0) -> Tuple[int, ...]:
    """Eight distinct even RAM-interior addresses, clear of the
    block's own code pages (stores there would trip the production
    self-watch and turn every vector into an sl-exit)."""
    avoid = _code_pages(prov)
    span = prov.ram_limit - prov.ram_base
    base = prov.ram_base + min(0x40000, span // 4) + (salt & 0xFFE)
    out: List[int] = []
    cand = base
    while len(out) < 8:
        if cand + 8 >= prov.ram_limit:
            cand = prov.ram_base + 0x2000 + (salt & 0xFE)
        if all((cand + off) >> 8 not in avoid for off in (0, 4, 8)):
            out.append(cand & ~1 & M32)
        cand += 0x828
    return tuple(out)


def _probe_read_addrs(prov: Any, probe: RunResult) -> List[int]:
    """Data addresses the benign run loaded from, excluding the
    block's own instruction bytes (seeding those would desynchronize
    the baked extension words from the live fetches)."""
    spans = [(start, start + len(data)) for start, data in prov.code]
    out: List[int] = []
    for tok in probe.tokens:
        if (tok >> 32) & 0xF != KIND_READ:
            continue
        addr = tok & M32
        if any(s - 4 <= addr < e for s, e in spans):
            continue
        if addr not in out:
            out.append(addr)
    return out[:8]


def _probe_write_pages(prov: Any, probe: RunResult) -> List[int]:
    pages: List[int] = []
    own = set(prov.pages)
    for tok in probe.tokens:
        if (tok >> 32) & 0xF == KIND_WRITE:
            page = (tok & M32) >> 8
            if page not in pages and page not in own:
                pages.append(page)
    return pages


_STATIC_TOKEN_CACHE: Dict[str, List[int]] = {}


def _static_tokens(prov: Any) -> List[int]:
    """Trace-token constants baked into the generated source (the
    static-addressed accesses' reads/writes).  These name data the
    block touches on paths the benign probe may never have reached.
    Memoized by source hash — the search loop asks per vector."""
    cached = _STATIC_TOKEN_CACHE.get(prov.source_hash)
    if cached is not None:
        return cached
    out: List[int] = []
    for node in ast.walk(ast.parse(prov.source)):
        if (isinstance(node, ast.Constant)
                and isinstance(node.value, int)
                and not isinstance(node.value, bool)
                and (node.value >> 32) & 0xF in (KIND_READ, KIND_WRITE)
                and node.value >> 40 == 0):
            out.append(node.value)
    if len(_STATIC_TOKEN_CACHE) > 512:
        _STATIC_TOKEN_CACHE.clear()
    _STATIC_TOKEN_CACHE[prov.source_hash] = out
    return out


def _static_write_pages(prov: Any) -> List[int]:
    """RAM pages of statically-addressed writes, own pages excluded."""
    own = set(prov.pages)
    pages: List[int] = []
    for tok in _static_tokens(prov):
        kb = tok >> 32
        if kb & 0xF == KIND_WRITE and (kb >> 4) == REGION_RAM:
            page = (tok & M32) >> 8
            if page not in pages and page not in own:
                pages.append(page)
    return pages


def _static_read_addrs(prov: Any) -> List[int]:
    spans = [(start, start + len(data)) for start, data in prov.code]
    out: List[int] = []
    for tok in _static_tokens(prov):
        kb = tok >> 32
        if kb & 0xF == KIND_READ and (kb >> 4) == REGION_RAM:
            addr = tok & M32
            if (addr not in out
                    and not any(s - 4 <= addr < e for s, e in spans)):
                out.append(addr)
    return out


def _subsample(values: List[int], cap: int) -> List[int]:
    if len(values) <= cap:
        return values
    step = len(values) / cap
    return [values[int(i * step)] for i in range(cap)]


def build_vectors(prov: Any, probe: RunResult,
                  rng: random.Random) -> List[Vector]:
    """The driving battery for one block (see module docstring)."""
    aregs = benign_aregs(prov)
    base_d = (3, 1, 4, 1, 5, 9, 2, 6)
    big_budget = 40000 if not prov.loop else 3000
    vecs: List[Vector] = []

    def add(label: str, **kw: Any) -> None:
        kw.setdefault("d", base_d)
        kw.setdefault("a", aregs)
        kw.setdefault("budget", big_budget)
        vecs.append(Vector(label=label, **kw))

    add("benign")
    for i, fl in enumerate(((1, 1, 1, 1, 1), (0, 1, 0, 1, 0),
                            (1, 0, 1, 0, 1))):
        add(f"flags{i}", x=fl[0], n=fl[1], z=fl[2], v=fl[3], c=fl[4])
    for i in range(4):
        add(f"rand{i}",
            d=tuple(rng.getrandbits(32) for _ in range(8)),
            a=benign_aregs(prov, salt=rng.getrandbits(10) | 2),
            x=rng.getrandbits(1), n=rng.getrandbits(1),
            z=rng.getrandbits(1), v=rng.getrandbits(1),
            c=rng.getrandbits(1))
    # Degenerate data shapes: equal / zero / negative / all-ones
    # registers drive the eq/lt/mi/cs condition-code arms that random
    # values almost never hit (compare results collapse to 0).
    for name, val in (("eq-d", 7), ("zero-d", 0), ("one-d", 1),
                      ("neg-d", 0x80000000), ("ones-d", 0xFFFFFFFF)):
        add(name, d=(val,) * 8)
    add("odd-a", a=tuple(v | 1 for v in aregs))
    # Single-register bus shapes: point one address register at a
    # time into flash / external space / an odd address so accesses
    # deep in the block (after an early fault would have ended the
    # all-registers variants) still reach their region arms.
    for r in range(8):
        add(f"flash-a{r}", a=tuple(
            (prov.flash_base + 0x900 + 0x20 * r) & ~1 if i == r else v
            for i, v in enumerate(aregs)))
        add(f"ext-a{r}", a=tuple(
            0xFE000000 + 0x100 * r if i == r else v
            for i, v in enumerate(aregs)))
        add(f"odd-a{r}", a=tuple(
            v | 1 if i == r else v for i, v in enumerate(aregs)))
    flash_span = prov.flash_limit - prov.flash_base
    add("flash-a", a=tuple((prov.flash_base
                            + min(0x800 * (i + 1), flash_span - 16)) & ~1
                           for i in range(8)))
    add("ext-a", a=tuple((0xFF000000 + 0x1000 * i) for i in range(8)))
    add("straddle-a", a=tuple((prov.ram_limit - 2) & M32
                              for _ in range(8)))
    pages = _probe_write_pages(prov, probe)
    if pages:
        add("watch", watch_pages=frozenset(pages[:4]))
    # Statically-addressed writes on paths the probe never took still
    # have watch arms; their pages are readable straight off the token
    # constants in the generated source.
    static_pages = [p for p in _static_write_pages(prov)
                    if p not in pages]
    for i in range(0, min(len(static_pages), 12), 4):
        add(f"watch-static{i // 4}",
            watch_pages=frozenset(static_pages[i:i + 4]))
    # Memory seeding: load the benign run's data reads with the
    # degenerate words (0, 1, -1) that drive compare-driven branches
    # whose operands live in memory.
    reads = _probe_read_addrs(prov, probe)
    for addr in _static_read_addrs(prov):
        if addr not in reads and len(reads) < 12:
            reads.append(addr)
    if reads:
        for word in (0x0000, 0x0001, 0xFFFF):
            seed = bytes((word >> 8, word & 0xFF)) * 2
            add(f"memseed-{word:04x}",
                mem_seed=tuple((addr & ~1, seed) for addr in reads))
        # Loaded-pointer variants: values that, read back as 32-bit
        # addresses, are an odd RAM pointer / a flash-window pointer /
        # an external address — these reach the align and region arms
        # of accesses whose address register is itself loaded from
        # memory (movea chains), which register-only vectors cannot.
        for tag, val in (("oddptr", ((prov.ram_limit >> 1) + 0x101) | 1),
                         ("flashptr", (prov.flash_base + 0x906) & ~1),
                         ("extptr", 0xFE00F000)):
            seed = bytes(((val >> 24) & 0xFF, (val >> 16) & 0xFF,
                          (val >> 8) & 0xFF, val & 0xFF))
            add(f"memseed-{tag}",
                mem_seed=tuple((addr & ~1, seed) for addr in reads))
    # Scripted async events at each handler bridge.
    bridge_ks = sorted(k for k in range(prov.insn_count)
                       if f"h{k}" in prov.env)[:6]
    for k in bridge_ks:
        add(f"irq@{k}", irq_after=(((k, 0), 7),))
        add(f"inval@{k}", invalidate_after=((k, 0),))
    # Budget battery: place the limit around every per-step cycle
    # boundary the reference probe observed, so each gate fires and
    # each gate's off-by-a-batch neighborhood is exercised.
    cycles0 = vecs[0].cycles0
    limits: List[int] = []
    seen: Set[int] = set()
    for cb in probe.cycles_before[1:]:
        for lim in (cb, cb + 2, cb + 4):
            if lim > cycles0 and lim not in seen:
                seen.add(lim)
                limits.append(lim)
    for i, lim in enumerate(_subsample(limits, 48)):
        add(f"budget{i}@{lim}", budget=lim - cycles0)
        add(f"budget1.{i}@{lim}", d=(1,) * 8, budget=lim - cycles0)
        # All-ones incoming flags: a gate exit must materialize the
        # deferred flags of the insns it did run — with zero incoming
        # flags a dropped materialization whose reference value is
        # also zero would slip through unobserved.
        add(f"budgetf.{i}@{lim}", budget=lim - cycles0,
            x=1, n=1, z=1, v=1, c=1)
    if prov.bulk:
        _bulk_vectors(prov, add)
    return vecs


def _bulk_vectors(prov: Any, add: Any) -> None:
    """Accept and reject shapes for the counted-fill bulk guard."""
    sq = prov.entries[-2][3]
    z = sq & 7
    w0 = prov.entries[0][3]
    areg = (w0 >> 9) & 7
    avoid = _code_pages(prov)
    fill = prov.ram_base + (prov.ram_limit - prov.ram_base) // 2
    while any((fill + off) >> 8 in avoid for off in range(0, 0x400, 0x100)):
        fill += 0x400
    fill &= ~1

    def regs(count: int, addr: int) -> Dict[str, Tuple[int, ...]]:
        d = tuple(count if i == z else v
                  for i, v in enumerate((3, 1, 4, 1, 5, 9, 2, 6)))
        a = tuple(addr if i == areg else v
                  for i, v in enumerate(benign_aregs(prov, salt=0x30)))
        return {"d": d, "a": a}

    add("bulk-take", budget=200000, **regs(40, fill))
    add("bulk-odd", budget=200000, **regs(40, fill + 1))
    add("bulk-watched", budget=200000,
        watch_pages=frozenset({(fill + 0x40) >> 8}), **regs(40, fill))
    add("bulk-short", budget=200000, **regs(6, fill))
    add("bulk-tight", budget=400, **regs(40, fill))
    add("bulk-edge", budget=200000,
        **regs(40, (prov.ram_limit - 16) & ~1))


def random_vector(prov: Any, rng: random.Random, i: int,
                  probe: Optional[RunResult] = None) -> Vector:
    """Extra search vector for arms the standard battery missed.

    The deterministic battery varies one dimension at a time; arms
    nested under branch combinations (a watch hit on a path only odd
    data reaches, a gate inside a taken-branch arm, ...) need joint
    variation, so the search draws every dimension at once: per-
    register address class, data words, flags, watch pages, memory
    seeds and a budget placed inside the probe's cycle schedule.
    """
    base = benign_aregs(prov, salt=rng.getrandbits(10) | 4)
    a: List[int] = []
    for r in range(8):
        roll = rng.random()
        if roll < 0.55:
            a.append(base[r])
        elif roll < 0.70:
            a.append(base[r] | 1)
        elif roll < 0.85:
            span = prov.flash_limit - prov.flash_base
            a.append((prov.flash_base
                      + min(0x880 * (r + 1), span - 16)) & ~1)
        else:
            a.append((0xFE000000 + 0x1000 * r + 0x40 * i) & M32)
    kwargs: Dict[str, Any] = {}
    own = set(prov.pages)
    pool = _static_write_pages(prov)
    reads = _static_read_addrs(prov)
    if probe is not None:
        for page in _probe_write_pages(prov, probe):
            if page not in pool:
                pool.append(page)
        for addr in _probe_read_addrs(prov, probe):
            if addr not in reads:
                reads.append(addr)
    pool = [p for p in pool if p not in own]
    if pool and rng.random() < 0.5:
        kwargs["watch_pages"] = frozenset(
            rng.sample(pool, min(len(pool), 4)))
    if reads and rng.random() < 0.6:
        word = rng.choice((0x0000, 0x0001, 0xFFFF,
                           rng.getrandbits(16),
                           ((prov.ram_limit >> 1) + 0x101) | 1,
                           (prov.flash_base + 0x906) & ~1))
        seed = bytes(((word >> 24) & 0xFF, (word >> 16) & 0xFF,
                      (word >> 8) & 0xFF, word & 0xFF))
        kwargs["mem_seed"] = tuple((addr & ~1, seed)
                                   for addr in reads[:8])
    schedule = probe.cycles_before if probe is not None else []
    if len(schedule) > 1 and rng.random() < 0.4:
        cycles0 = 1000
        lim = rng.choice(schedule[1:]) + rng.choice((0, 2, 4))
        if lim > cycles0:
            kwargs["budget"] = lim - cycles0
    return Vector(
        d=tuple(rng.getrandbits(32) for _ in range(8)),
        a=tuple(a),
        x=rng.getrandbits(1), n=rng.getrandbits(1),
        z=rng.getrandbits(1), v=rng.getrandbits(1), c=rng.getrandbits(1),
        budget=kwargs.pop("budget", 3000 if prov.loop else 40000),
        label=f"search{i}", **kwargs)
