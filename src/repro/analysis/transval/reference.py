"""Reference semantics for one superblock: the interpreted per-entry
loop of :meth:`repro.m68k.blockcore.BlockCore.run_until_cycles`,
executed with the *real* specialized per-insn handlers over the
harness machine.

Two modes:

* **natural** (``count=None``) — stop exactly where the interpreted
  loop (plus its dispatcher) would: per-insn budget gate, pc
  self-check, invalidation, serviceable interrupt, stop, or a guest
  fault.  Used by the probe pass to learn the block's per-step cycle
  schedule (which seeds the budget battery).
* **claim** (``count=k``) — execute exactly ``k`` instructions in
  entry order, journaling for each step whether any stop condition
  held *before* it.  The validator replays the generated side's
  executed-instruction claim this way and turns violated stop
  conditions into gate/exit findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Set, Tuple

from .machine import HarnessState, RunResult


@dataclass
class StepLog:
    """Per-step stop-condition journal from a claim-mode run."""

    #: ``cpu.cycles`` before each executed instruction.
    cycles_before: List[int] = field(default_factory=list)
    #: Steps where the budget gate should have fired first.
    budget_stops: List[int] = field(default_factory=list)
    #: Steps where a serviceable interrupt was pending first.
    irq_stops: List[int] = field(default_factory=list)
    #: Steps where the block was already invalidated.
    invalid_stops: List[int] = field(default_factory=list)
    #: Steps where ``cpu.pc`` no longer matched the entry address
    #: (claim mode stops there; the remaining claim is unexecutable).
    pc_stop: Optional[int] = None
    #: Steps where the CPU was stopped.
    stopped_stops: List[int] = field(default_factory=list)


def _serviceable(cpu: Any) -> bool:
    irq = cpu.pending_irq
    return bool(irq and (irq > cpu.imask or irq == 7))


def run_reference(prov: Any, state: HarnessState,
                  count: Optional[int] = None,
                  max_steps: int = 8192) -> Tuple[RunResult, StepLog]:
    """Execute the reference semantics over ``state``; see module doc."""
    entries: List[tuple] = prov.entries
    n_entries = len(entries)
    loop: bool = prov.loop
    bridges: Set[int] = {k for k in range(n_entries)
                         if f"h{k}" in prov.env}
    cpu = state.cpu
    limit = state.limit
    block = state.block
    log = StepLog()
    executed = 0
    fault: Optional[Tuple[str, str]] = None
    idx = 0
    done = False
    while not done and executed < max_steps:
        if idx >= n_entries:
            if not loop:
                break
            idx = 0
        if count is None:
            # Natural mode: dispatcher + interpreted-loop stop order.
            if cpu.cycles >= limit or cpu.pc != entries[idx][0] \
                    or not block.valid:
                break
            if _serviceable(cpu) or cpu.stopped:
                break
        else:
            if executed >= count:
                break
            # Claim mode: journal the conditions, execute regardless.
            if cpu.cycles >= limit:
                log.budget_stops.append(executed)
            if _serviceable(cpu):
                log.irq_stops.append(executed)
            if not block.valid:
                log.invalid_stops.append(executed)
            if cpu.stopped:
                log.stopped_stops.append(executed)
            if cpu.pc != entries[idx][0]:
                # The claimed instruction is unreachable: control left
                # the chain.  Executing it anyway would diverge from
                # any semantics; stop and let the validator flag it.
                log.pc_stop = executed
                break
        pc, nxt, token, _op, handler = entries[idx]
        log.cycles_before.append(cpu.cycles)
        state.step = executed
        state.tokens.append(token)
        cpu.pc = nxt
        cpu.cycles += 4
        executed += 1
        try:
            handler(cpu)
        except Exception as exc:  # guest fault: journal and stop
            fault = (type(exc).__name__, repr(exc.args))
            done = True
        if not done and idx in bridges:
            state.apply_bridge_script(idx)
        idx += 1
    state.step = -1
    return state.snapshot(executed, fault), log
