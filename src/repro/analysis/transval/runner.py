"""The ``palm-repro verify-codegen`` corpus run.

One call does the whole gate: replay the standard session over the
built-in ROM with an eager-fusing superblock core, validate every
distinct fused block the replay produced, re-derive the proof
obligation behind every elided check (PR-4 region-dispatch elisions
and PR-6 sanitizer elisions), and run the seeded miscompile self-test
that proves the validator still catches real defects.  Results come
back as one :class:`repro.analysis.static.findings.Report` plus
throughput accounting for the benchmark artifact.

The CI gate compares the report against a committed baseline with the
same ``(code, address)`` key scheme as the semantic audit — known
accepted findings never break the build, new ones always do.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Set, Tuple,
                    Union)

from ..static.findings import Finding, Report, Severity
from .corpus import selftest
from .machine import Workspace
from .validator import (audit_region_elisions,
                        audit_sanitizer_elisions, validate_block,
                        workspace_for)

#: Emulator geometry of the standard corpus — must match the CLI's
#: ``_EMU_KW`` so the replayed ROM is the audited ROM.
EMU_KW: Dict[str, int] = {"ram_size": 8 << 20, "flash_size": 1 << 20}


@dataclass
class VerifyStats:
    """Corpus-level accounting for one verify-codegen run."""

    blocks: int = 0          #: distinct (pc, source hash) blocks validated
    duplicates: int = 0      #: re-fusions skipped by deduplication
    vectors: int = 0         #: total driving vectors executed
    arms: int = 0            #: live instrumented arms across the corpus
    arms_covered: int = 0    #: live arms reached by some vector
    arms_dead: int = 0       #: arms proven unreachable by const-prop
    elisions: int = 0        #: region-dispatch elisions audited
    sanitizer_elisions: int = 0  #: sanitizer elision pcs audited
    wall: float = 0.0        #: validation wall time, seconds
    replay_wall: float = 0.0  #: corpus replay wall time, seconds

    @property
    def blocks_per_sec(self) -> float:
        return self.blocks / self.wall if self.wall > 0 else 0.0

    @property
    def coverage(self) -> float:
        return self.arms_covered / self.arms if self.arms else 1.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "blocks": self.blocks,
            "duplicates": self.duplicates,
            "vectors": self.vectors,
            "arms": self.arms,
            "arms_covered": self.arms_covered,
            "arms_dead": self.arms_dead,
            "arm_coverage": round(self.coverage, 6),
            "elisions": self.elisions,
            "sanitizer_elisions": self.sanitizer_elisions,
            "validation_wall_s": round(self.wall, 3),
            "replay_wall_s": round(self.replay_wall, 3),
            "blocks_per_sec": round(self.blocks_per_sec, 3),
        }


def _quickstart_script() -> Any:
    from ...device import Button
    from ...workloads import UserScript

    return (UserScript("quickstart").at(100)
            .press(Button.MEMO).wait(50)
            .tap(40, 120).wait(60).tap(90, 140).wait(60)
            .press(Button.UP).wait(80)
            .press(Button.DATEBOOK).wait(80)
            .tap(50, 10).wait(40).tap(90, 50).wait(40))


def _load_archive(directory: Union[str, Path]) -> Tuple[Any, Any]:
    from ...tracelog import ActivityLog, InitialState

    root = Path(directory)
    state = InitialState.load(root / "initial_state")
    log = ActivityLog.load(root / "activity_log.pdb")
    return state, log


def collect_provenances(session_dir: Optional[str] = None,
                        sanitize: bool = True,
                        progress: Optional[Callable[[str], None]] = None
                        ) -> Tuple[List[Any], frozenset, float]:
    """Replay the corpus session with ``fuse_threshold=1`` and return
    ``(provenances, claimed_sanitizer_elision_pcs, replay_wall)``.

    ``session_dir`` names a collected archive; without one the
    standard quickstart session is collected in-process (the same
    script ``palm-repro collect --session quickstart`` freezes).

    The replay itself runs without the sanitizer — fused codegen is
    disabled under an attached sanitizer (fused bodies bypass shadow
    checks), so a sanitized replay would yield an empty corpus.  The
    claimed set is instead taken from the sanitizer the production
    replay path would build for this very emulator (same ROM audit,
    same heap ceiling), so the elision audit still checks the set
    that ships, not a convenient recomputation.
    """
    from ...apps import standard_apps
    from ...emulator.playback import _session_sanitizer, replay_session

    apps = standard_apps()
    if session_dir is not None:
        state, log = _load_archive(session_dir)
    else:
        if progress:
            progress("collecting quickstart session ...")
        from ...workloads import collect_session

        session = collect_session(apps, _quickstart_script(),
                                  name="quickstart",
                                  ram_size=EMU_KW["ram_size"])
        state, log = session.initial_state, session.log
    if progress:
        progress("replaying corpus session (eager fusion) ...")
    provs: List[Any] = []
    start = time.perf_counter()
    emulator, _profiler, _result = replay_session(
        state, log, apps=apps, profile=True,
        emulator_kwargs=dict(EMU_KW), core="fast",
        fuse_threshold=1,
        on_fuse=lambda block: provs.append(block.prov))
    replay_wall = time.perf_counter() - start
    claimed: frozenset = frozenset()
    if sanitize:
        san = _session_sanitizer(emulator, apps, dict(EMU_KW),
                                 elide=True)
        claimed = frozenset(san._elide)
    return provs, claimed, replay_wall


def _dedupe(provs: List[Any], stats: VerifyStats) -> List[Any]:
    seen: Set[Tuple[int, str]] = set()
    unique: List[Any] = []
    for prov in provs:
        key = (prov.pc, prov.source_hash)
        if key in seen:
            stats.duplicates += 1
            continue
        seen.add(key)
        unique.append(prov)
    return unique


def _fresh_region_facts() -> Dict[int, Tuple[Optional[int],
                                             Optional[int]]]:
    from ...apps import standard_apps
    from ..static.audit import audit_rom

    return audit_rom(apps=standard_apps(),
                     ram_size=EMU_KW["ram_size"],
                     flash_size=EMU_KW["flash_size"]).region_facts()


def _fresh_sanitizer_safe() -> frozenset:
    from ...apps import standard_apps
    from ..sanitizer.elide import compute_elision
    from ..static.audit import audit_rom

    audit = audit_rom(apps=standard_apps(),
                      ram_size=EMU_KW["ram_size"],
                      flash_size=EMU_KW["flash_size"])
    elision = compute_elision(audit.cfg, audit.const,
                              heap_hi=EMU_KW["ram_size"])
    return elision.safe_pcs


def verify_codegen(session_dir: Optional[str] = None,
                   run_selftest: bool = True,
                   audit_elisions: bool = True,
                   progress: Optional[Callable[[str], None]] = None
                   ) -> Tuple[Report, VerifyStats]:
    """The full verify-codegen gate; see module docstring."""
    stats = VerifyStats()
    report = Report()
    provs, claimed, stats.replay_wall = collect_provenances(
        session_dir, sanitize=audit_elisions, progress=progress)
    unique = _dedupe(provs, stats)
    if progress:
        progress(f"validating {len(unique)} distinct fused block(s) "
                 f"({stats.duplicates} duplicate fusion(s) skipped) ...")
    workspaces: Dict[Tuple[int, int, int, int], Workspace] = {}
    start = time.perf_counter()
    for i, prov in enumerate(unique):
        geom = (prov.ram_base, prov.ram_limit,
                prov.flash_base, prov.flash_limit)
        ws = workspaces.get(geom)
        if ws is None:
            ws = workspaces[geom] = workspace_for(prov)
        block_report, block_stats = validate_block(prov, ws=ws)
        report.extend(block_report)
        stats.blocks += 1
        stats.vectors += block_stats.vectors
        stats.arms += block_stats.arms
        stats.arms_covered += block_stats.arms_covered
        stats.arms_dead += block_stats.arms_dead
        if progress and (i + 1) % 25 == 0:
            progress(f"  {i + 1}/{len(unique)} blocks validated")
    stats.wall = time.perf_counter() - start
    if audit_elisions:
        if progress:
            progress("auditing elided checks against fresh "
                     "derivations ...")
        stats.elisions = sum(len(p.elisions) for p in unique)
        report.extend(audit_region_elisions(unique,
                                            _fresh_region_facts()))
        stats.sanitizer_elisions = len(claimed)
        report.extend(audit_sanitizer_elisions(claimed,
                                               _fresh_sanitizer_safe()))
    if run_selftest:
        if progress:
            progress("running seeded miscompile self-test ...")
        report.extend(selftest(unique))
    return report, stats


# -- baseline plumbing (same JSON scheme as the semantic audit) ----------

def baseline_keys(report: Report) -> List[Tuple[str, Optional[int]]]:
    """The (code, address) identity of every WARNING+ finding."""
    return sorted({(f.code, f.address) for f in report
                   if f.severity >= Severity.WARNING},
                  key=lambda k: (k[0], k[1] if k[1] is not None else -1))


def load_baseline(path: Union[str, Path]
                  ) -> Set[Tuple[str, Optional[int]]]:
    data = json.loads(Path(path).read_text())
    return {(str(code), None if addr is None else int(addr))
            for code, addr in data["findings"]}


def save_baseline(report: Report, path: Union[str, Path]) -> None:
    payload = {"version": 1,
               "findings": [[code, addr]
                            for code, addr in baseline_keys(report)]}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def new_findings_against(report: Report,
                         baseline: Set[Tuple[str, Optional[int]]]
                         ) -> List[Finding]:
    """WARNING+ findings not present in the baseline — the only thing
    the CI gate fails on."""
    return [f for f in report
            if f.severity >= Severity.WARNING
            and (f.code, f.address) not in baseline]
