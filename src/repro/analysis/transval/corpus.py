"""Seeded miscompile corpus: mutated generated source.

A validator that has never caught a bug is indistinguishable from one
that cannot.  Each mutator here plants one representative defect class
into the *generated Python* of a real fused block — exactly the kind
of wrong-output bug a codegen regression would produce — and
:func:`selftest` asserts the validator reports the expected finding
code for every class.  The classes:

* ``dropped-flag-write`` — the first ``cpu.n = ...`` materialization
  is deleted (a lost deferred-flag commit) → ``tv-mismatch-flags``;
* ``swapped-region-arm`` — a RAM read token's region bits become the
  flash encoding (wrong dispatch arm wired to the trace stream) →
  ``tv-mismatch-token``;
* ``off-by-one-cycle-batch`` — one batched ``cpu.cycles = cyc + K``
  sync loses an instruction's worth of cycles → ``tv-mismatch-cycles``;
* ``stale-token`` — the first trace-token emission drops a token (a
  missed flush) → ``tv-mismatch-token``.

Mutations are AST transforms over ``prov.source`` re-serialized with
``ast.unparse``; the mutated provenance is validated through the
ordinary :func:`repro.analysis.transval.validator.validate_block`
path, so the self-test exercises the full machinery.
"""

from __future__ import annotations

import ast
import copy
import hashlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..static.findings import Report, Severity
from .validator import validate_block

_KB_RAM_READ = 0x1 << 32
_KB_FLASH_READ = 0x11 << 32


def _unparse(tree: ast.Module) -> str:
    return ast.unparse(tree) + "\n"


def _is_flag_write(node: ast.stmt) -> bool:
    return (isinstance(node, ast.Assign) and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and node.targets[0].attr == "n"
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == "cpu")


def drop_flag_write(source: str) -> Optional[str]:
    """Delete every ``cpu.n = ...`` assignment.  (Dropping a single
    early write can be folded away by a later overwrite — a semantic
    no-op that tests nothing — so the mutant loses the whole
    materialization chain; the battery's flag-variant vectors start
    with both n=0 and n=1, making the loss observable either way.)
    """
    tree = ast.parse(source)

    class T(ast.NodeTransformer):
        count = 0

        def visit_Assign(self, node: ast.Assign) -> Any:
            if _is_flag_write(node):
                self.count += 1
                return None
            return node

    t = T()
    tree = t.visit(tree)
    ast.fix_missing_locations(tree)
    return _unparse(tree) if t.count else None


def swap_region_token(source: str) -> Optional[str]:
    """Rewrite the first RAM-read token constant into the flash-read
    encoding (covers both folded static tokens and the ``q | kb``
    dynamic form, whose kind constant is a plain literal)."""
    tree = ast.parse(source)

    class T(ast.NodeTransformer):
        done = False

        def visit_Constant(self, node: ast.Constant) -> Any:
            if (not self.done and isinstance(node.value, int)
                    and not isinstance(node.value, bool)
                    and (node.value >> 32) == 0x1):
                self.done = True
                return ast.copy_location(
                    ast.Constant(node.value | _KB_FLASH_READ), node)
            return node

    t = T()
    tree = t.visit(tree)
    ast.fix_missing_locations(tree)
    return _unparse(tree) if t.done else None


def cycle_batch_off(source: str) -> Optional[str]:
    """Shrink the first non-trivial ``cpu.cycles = cyc + K`` batch by
    one instruction's fetch cost."""
    tree = ast.parse(source)

    class T(ast.NodeTransformer):
        done = False

        def visit_Assign(self, node: ast.Assign) -> Any:
            if (not self.done and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and node.targets[0].attr == "cycles"
                    and isinstance(node.value, ast.BinOp)
                    and isinstance(node.value.op, ast.Add)
                    and isinstance(node.value.right, ast.Constant)
                    and isinstance(node.value.right.value, int)
                    and node.value.right.value >= 4):
                self.done = True
                node.value.right = ast.copy_location(
                    ast.Constant(node.value.right.value - 4),
                    node.value.right)
            return node

    t = T()
    tree = t.visit(tree)
    ast.fix_missing_locations(tree)
    return _unparse(tree) if t.done else None


def drop_token(source: str) -> Optional[str]:
    """Remove the first emitted trace token: delete the first
    ``append(...)`` statement, or drop the first element of the first
    ``extend((...))`` tuple."""
    tree = ast.parse(source)

    class T(ast.NodeTransformer):
        done = False

        def visit_Expr(self, node: ast.Expr) -> Any:
            if self.done or not isinstance(node.value, ast.Call):
                return node
            call = node.value
            if not isinstance(call.func, ast.Name):
                return node
            if call.func.id == "append":
                self.done = True
                return None
            if (call.func.id == "extend" and call.args
                    and isinstance(call.args[0], ast.Tuple)
                    and len(call.args[0].elts) > 1):
                self.done = True
                call.args[0].elts = call.args[0].elts[1:]
            return node

    t = T()
    tree = t.visit(tree)
    ast.fix_missing_locations(tree)
    return _unparse(tree) if t.done else None


#: class name -> (mutator, expected finding code)
MISCOMPILE_CLASSES: Dict[str, Tuple[Callable[[str], Optional[str]],
                                    str]] = {
    "dropped-flag-write": (drop_flag_write, "tv-mismatch-flags"),
    "swapped-region-arm": (swap_region_token, "tv-mismatch-token"),
    "off-by-one-cycle-batch": (cycle_batch_off, "tv-mismatch-cycles"),
    "stale-token": (drop_token, "tv-mismatch-token"),
}


def mutate_prov(prov: Any, mutator: Callable[[str], Optional[str]]
                ) -> Optional[Any]:
    """A provenance clone carrying the mutated source (or None when
    the block lacks the construct the mutator targets)."""
    mutated = mutator(prov.source)
    if mutated is None or mutated == prov.source:
        return None
    clone = copy.copy(prov)
    clone.source = mutated
    clone.source_hash = hashlib.sha256(mutated.encode()).hexdigest()
    return clone


def selftest(provs: List[Any]) -> Report:
    """Prove every miscompile class is caught on at least one block.

    For each class, the first block the mutator applies to is mutated
    and re-validated; the expected finding code must appear.  A class
    no block supports, or a mutant that validates clean, is an
    error-severity ``tv-selftest`` finding — the gate must fail when
    the validator loses its teeth.
    """
    report = Report()
    for name, (mutator, expected) in MISCOMPILE_CLASSES.items():
        hit = False
        for prov in provs:
            clone = mutate_prov(prov, mutator)
            if clone is None:
                continue
            mutant_report, _stats = validate_block(clone)
            if mutant_report.has(expected):
                hit = True
                report.add(Severity.INFO, "tv-selftest",
                           f"miscompile class '{name}' detected on "
                           f"block {prov.pc:#x} as {expected}",
                           address=prov.pc, block=prov.pc)
            else:
                codes = sorted(set(mutant_report.codes()))
                report.add(Severity.ERROR, "tv-selftest",
                           f"miscompile class '{name}' NOT detected "
                           f"on block {prov.pc:#x}: expected "
                           f"{expected}, got {codes or 'a clean pass'}",
                           address=prov.pc, block=prov.pc)
                hit = True
            break
        if not hit:
            report.add(Severity.ERROR, "tv-selftest",
                       f"miscompile class '{name}': no block in the "
                       f"corpus supports the mutation; the class is "
                       f"untested")
    return report
