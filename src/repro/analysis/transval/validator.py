"""Per-block translation validation and elision auditing.

:func:`validate_block` proves one fused superblock equivalent to the
per-insn reference semantics over a driving battery (see
:mod:`.engine`): both sides run against identical harness machines and
every observable is compared — pc, batched cycle accounting, the five
condition flags, registers, memory effects, the packed trace-token
stream (position-exact, including the vectorized counted-fill
prelude), watch hits and fallback bus calls.  On top of the state
comparison, claim-mode reference runs discharge the *scheduling*
obligations: every per-insn budget gate the interpreted loop would
have taken must fire in the generated code (``tv-gate-missing``), and
every early exit must be justified by a stop condition the reference
machine actually exhibits (``tv-mismatch-exit``).

Anything the validator cannot prove is a typed finding — unreachable
arms are ``tv-uncovered`` warnings, uninstrumentable sources are
``tv-unsupported`` — never a silent pass.

:func:`audit_region_elisions` / :func:`audit_sanitizer_elisions`
re-derive the proof obligation behind every elided check (PR-4 region
facts, PR-6 sanitizer elisions) and flag any elision the freshly
computed facts no longer justify.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Set, Tuple

from ..static.findings import Report, Severity
from .engine import build_vectors, instrument, random_vector
from .machine import (HarnessState, RunResult, Vector, Workspace,
                      make_gen_env)
from .reference import StepLog, run_reference

#: Extra random vectors tried for arms the standard battery missed.
SEARCH_BUDGET = 16


@dataclass
class BlockStats:
    """Accounting for one validated block."""

    pc: int = 0
    source_hash: str = ""
    vectors: int = 0
    arms: int = 0
    arms_covered: int = 0
    arms_dead: int = 0
    findings: int = 0


def workspace_for(prov: Any) -> Workspace:
    return Workspace(prov.ram_base, prov.ram_limit,
                     prov.flash_base, prov.flash_limit)


def _serviceable(pending: int, imask: int) -> bool:
    return bool(pending and (pending > imask or pending == 7))


def _run_gen(code: Any, prov: Any, ws: Workspace, vector: Vector,
             covered: Set[int]) -> RunResult:
    state = HarnessState(ws, vector, prov.pages, prov.region, prov.pc)
    env = make_gen_env(state, prov, covered.add)
    exec(code, env)
    fn = env["f"]
    ex = [0]
    fault: Optional[Tuple[str, str]] = None
    try:
        fn(state.cpu, state.limit, ex)
    except Exception as exc:
        fault = (type(exc).__name__, repr(exc.args))
    result = state.snapshot(ex[0], fault)
    ws.restore()
    return result


def _run_ref(prov: Any, ws: Workspace, vector: Vector,
             count: Optional[int]) -> Tuple[RunResult, StepLog]:
    state = HarnessState(ws, vector, prov.pages, prov.region, prov.pc)
    result, log = run_reference(prov, state, count=count)
    ws.restore()
    return result, log


def _is_branch_insn(op: int) -> bool:
    """bcc/bra (group 6) and dbcc both exit the fused body even when
    the taken target coincides with the next chained entry — those
    exits are state-exact and the dispatcher re-enters, so they are
    always legitimate."""
    return (op >> 12) == 6 or (op & 0xF0F8) == 0x50C8


class _Mismatch(Exception):
    """Internal: carries the first divergence for one vector."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail


def _check_pair(prov: Any, vector: Vector, gen: RunResult,
                ref: RunResult, log: StepLog) -> None:
    """Raise :class:`_Mismatch` on the first observable divergence."""
    if log.pc_stop is not None:
        raise _Mismatch(
            "tv-mismatch-exit",
            f"claims {gen.executed} insns executed but control left "
            f"the chain after step {log.pc_stop} (ref pc {ref.pc:#x})")
    if gen.fault != ref.fault:
        raise _Mismatch("tv-mismatch-fault",
                        f"gen fault {gen.fault} != ref fault {ref.fault}")
    if gen.tokens != ref.tokens:
        n = min(len(gen.tokens), len(ref.tokens))
        at = next((i for i in range(n)
                   if gen.tokens[i] != ref.tokens[i]), n)
        gt = f"{gen.tokens[at]:#x}" if at < len(gen.tokens) else "<end>"
        rt = f"{ref.tokens[at]:#x}" if at < len(ref.tokens) else "<end>"
        raise _Mismatch(
            "tv-mismatch-token",
            f"trace token stream diverges at index {at}: "
            f"gen {gt} != ref {rt} "
            f"({len(gen.tokens)} vs {len(ref.tokens)} tokens)")
    if gen.pc != ref.pc:
        raise _Mismatch("tv-mismatch-pc",
                        f"pc {gen.pc:#x} != ref {ref.pc:#x}")
    if gen.cycles != ref.cycles:
        raise _Mismatch("tv-mismatch-cycles",
                        f"cycles {gen.cycles} != ref {ref.cycles}")
    if gen.flags != ref.flags:
        raise _Mismatch(
            "tv-mismatch-flags",
            f"flags x/n/z/v/c {gen.flags} != ref {ref.flags}")
    if gen.d != ref.d or gen.a != ref.a:
        which = "d" if gen.d != ref.d else "a"
        raise _Mismatch("tv-mismatch-reg",
                        f"{which}-registers diverge: "
                        f"gen {getattr(gen, which)} != "
                        f"ref {getattr(ref, which)}")
    if (gen.sr != ref.sr or gen.stopped != ref.stopped
            or gen.pending_irq != ref.pending_irq
            or gen.valid != ref.valid):
        raise _Mismatch(
            "tv-mismatch-reg",
            f"machine state diverges: sr {gen.sr:#x}/{ref.sr:#x} "
            f"stopped {gen.stopped}/{ref.stopped} "
            f"irq {gen.pending_irq}/{ref.pending_irq} "
            f"valid {gen.valid}/{ref.valid}")
    if gen.mem_effects != ref.mem_effects:
        only_g = {k: v for k, v in gen.mem_effects.items()
                  if ref.mem_effects.get(k) != v}
        only_r = {k: v for k, v in ref.mem_effects.items()
                  if gen.mem_effects.get(k) != v}
        raise _Mismatch(
            "tv-mismatch-mem",
            f"memory effects diverge: gen-only {dict(list(only_g.items())[:4])} "
            f"ref-only {dict(list(only_r.items())[:4])}")
    # Event tuples end with the token-list length at the time of the
    # event; that interleaving position is a batching artifact (fused
    # code flushes trace tokens per segment, the reference per insn)
    # and the real trace order is already proven by the token-stream
    # comparison above — so compare events with the position stripped.
    gen_ev = [e[:-1] for e in gen.events]
    ref_ev = [e[:-1] for e in ref.events]
    if gen_ev != ref_ev:
        raise _Mismatch(
            "tv-mismatch-mem",
            f"watch/bus event journal diverges: "
            f"gen {gen_ev[:4]} != ref {ref_ev[:4]}")
    # -- scheduling obligations ----------------------------------------
    gates = [j for j in log.budget_stops if j > 0]
    if gates:
        raise _Mismatch(
            "tv-gate-missing",
            f"budget exhausted before step {gates[0]} "
            f"(cycles {log.cycles_before[gates[0]]} >= limit) but the "
            f"generated code ran {gen.executed - gates[0]} insn(s) past "
            f"the gate")
    for stops, why in ((log.irq_stops, "serviceable interrupt pending"),
                       (log.invalid_stops, "block invalidated"),
                       (log.stopped_stops, "cpu stopped")):
        late = [j for j in stops if j > 0]
        if late:
            raise _Mismatch(
                "tv-mismatch-exit",
                f"{why} before step {late[0]} but the generated code "
                f"kept executing")
    # -- exit legitimacy -----------------------------------------------
    count = gen.executed
    n = prov.insn_count
    if gen.fault is not None or (not prov.loop and count >= n):
        return
    limit = vector.cycles0 + vector.budget
    next_idx = count % n if prov.loop else count
    if count and _is_branch_insn(prov.entries[(count - 1) % n][3]):
        return
    justified = (
        ref.pc != prov.entries[next_idx][0]
        or ref.cycles >= limit
        or _serviceable(ref.pending_irq, vector.imask)
        or not ref.valid
        or ref.stopped
        or bool(ref.sl_steps and ref.sl_steps[-1] == count - 1))
    if not justified:
        raise _Mismatch(
            "tv-mismatch-exit",
            f"premature exit after {count}/{n} insns: pc {ref.pc:#x} "
            f"continues the chain, {limit - ref.cycles} cycles of "
            f"budget remain and no escape condition holds")


def validate_block(prov: Any, ws: Optional[Workspace] = None,
                   seed: int = 0x7A11) -> Tuple[Report, BlockStats]:
    """Validate one fused block; returns (findings, stats)."""
    report = Report()
    stats = BlockStats(pc=prov.pc, source_hash=prov.source_hash)
    where = f"block {prov.pc:#x} [{prov.source_hash[:12]}]"
    try:
        code, arms = instrument(prov)
    except (SyntaxError, ValueError) as exc:
        report.add(Severity.WARNING, "tv-unsupported",
                   f"{where}: cannot instrument generated source: {exc}",
                   address=prov.pc, block=prov.pc)
        return report, stats
    live_arms = [a for a in arms if not a.dead]
    stats.arms = len(live_arms)
    stats.arms_dead = len(arms) - len(live_arms)
    if ws is None:
        ws = workspace_for(prov)
    ws.load_code(prov.code, prov.region)
    rng = random.Random(seed ^ prov.pc)
    covered: Set[int] = set()

    # Reference probe: natural-stop run on the benign vector seeds the
    # budget battery with the block's real per-step cycle schedule.
    probe_vec = Vector(d=(3, 1, 4, 1, 5, 9, 2, 6),
                       a=_probe_aregs(prov),
                       budget=3000 if prov.loop else 40000,
                       label="probe")
    probe_state = HarnessState(ws, probe_vec, prov.pages, prov.region,
                               prov.pc)
    probe, probe_log = run_reference(prov, probe_state, count=None)
    probe.cycles_before = probe_log.cycles_before
    ws.restore()
    # Second probe with unit counters: loop-exit paths (dbcc/bne with
    # a counter of one) have their own gates and cycle schedule.
    alt_state = HarnessState(
        ws, Vector(d=(1,) * 8, a=probe_vec.a, budget=probe_vec.budget,
                   label="probe-one"),
        prov.pages, prov.region, prov.pc)
    _alt, alt_log = run_reference(prov, alt_state, count=None)
    ws.restore()
    for cb in alt_log.cycles_before:
        if cb not in probe.cycles_before:
            probe.cycles_before.append(cb)

    vectors = build_vectors(prov, probe, rng)
    mismatched: Set[str] = set()
    for vector in vectors:
        stats.vectors += 1
        _run_vector(code, prov, ws, vector, covered, report,
                    where, mismatched)
        if len(mismatched) >= 8:
            break
    uncovered = [a for a in live_arms if a.arm_id not in covered]
    for i in range(SEARCH_BUDGET):
        if not uncovered:
            break
        vector = random_vector(prov, rng, i, probe=probe)
        stats.vectors += 1
        _run_vector(code, prov, ws, vector, covered, report,
                    where, mismatched)
        uncovered = [a for a in live_arms if a.arm_id not in covered]
    stats.arms_covered = stats.arms - len(uncovered)
    # A proven-dead arm that executed anyway means the dead-arm proof
    # (in-block constant propagation) is wrong — say so loudly.
    for arm in arms:
        if arm.dead and arm.arm_id in covered:
            report.add(Severity.ERROR, "tv-unsupported",
                       f"{where}: arm `{arm.cond}` was proven "
                       f"unreachable but executed; constant "
                       f"propagation is unsound for this block",
                       address=prov.pc, block=prov.pc)
    for arm in uncovered:
        side = "taken" if arm.taken else "else"
        report.add(Severity.WARNING, "tv-uncovered",
                   f"{where}: {arm.kind} arm ({side}) of "
                   f"`{arm.cond}` not reached by {stats.vectors} "
                   f"vectors; equivalence on that path is unproven",
                   address=prov.pc, block=prov.pc)
    stats.findings = len(report)
    return report, stats


def _probe_aregs(prov: Any) -> Tuple[int, ...]:
    from .engine import benign_aregs
    return benign_aregs(prov)


def _run_vector(code: Any, prov: Any, ws: Workspace, vector: Vector,
                covered: Set[int], report: Report, where: str,
                mismatched: Set[str]) -> None:
    try:
        gen = _run_gen(code, prov, ws, vector, covered)
    except Exception as exc:  # harness failure, not a guest fault
        ws.restore()
        report.add(Severity.WARNING, "tv-unsupported",
                   f"{where}: vector '{vector.label}' failed to "
                   f"execute: {type(exc).__name__}: {exc}",
                   address=prov.pc, block=prov.pc)
        return
    if (prov.elisions and gen.fault is not None
            and gen.fault[0] in ("error", "IndexError")):
        # A buffer-level error inside the generated body means the
        # vector drove an elision-specialized access outside its
        # statically proven region — a precondition production inputs
        # cannot violate (that is what the elision audit certifies).
        # The vector proves nothing either way; skip it.
        return
    ref, log = _run_ref(prov, ws, vector, gen.executed)
    try:
        _check_pair(prov, vector, gen, ref, log)
    except _Mismatch as mm:
        # One finding per (code) per block: later vectors hitting the
        # same defect add noise, not information.
        if mm.code not in mismatched:
            mismatched.add(mm.code)
            report.add(Severity.ERROR, mm.code,
                       f"{where}: vector '{vector.label}': {mm.detail}",
                       address=prov.pc, block=prov.pc)


# -- elision auditing ----------------------------------------------------

def audit_region_elisions(provs: Iterable[Any],
                          fresh_facts: Dict[int, Tuple[Optional[int],
                                                       Optional[int]]]
                          ) -> Report:
    """Re-derive the proof obligation behind every region-dispatch
    elision: the access's freshly computed dataflow fact must still
    name the region the generator baked in, and the block must be
    flash-resident (facts are only stable there)."""
    report = Report()
    for prov in provs:
        for addr, rw, fact in prov.elisions:
            where = (f"block {prov.pc:#x} [{prov.source_hash[:12]}] "
                     f"{rw} at {addr:#x}")
            if prov.region != 1:
                report.add(Severity.ERROR, "tv-elide-region",
                           f"{where}: region dispatch elided in a "
                           f"RAM-resident block; self-modifying code "
                           f"can invalidate the fact",
                           address=addr, block=prov.pc)
                continue
            fresh = fresh_facts.get(addr)
            current = (fresh[0] if rw == "read" else fresh[1]) \
                if fresh is not None else None
            if current != fact:
                report.add(Severity.ERROR, "tv-elide-region",
                           f"{where}: baked region {fact} no longer "
                           f"justified (fresh fact: {current})",
                           address=addr, block=prov.pc)
    return report


def audit_sanitizer_elisions(claimed: Iterable[int],
                             fresh_safe: Iterable[int]) -> Report:
    """Every pc whose sanitizer check was elided must still be proven
    safe by a fresh :func:`compute_elision` derivation."""
    report = Report()
    fresh = set(fresh_safe)
    for pc in sorted(set(claimed)):
        if pc not in fresh:
            report.add(Severity.ERROR, "tv-elide-sanitizer",
                       f"sanitizer check elided at {pc:#x} but the "
                       f"fresh dataflow derivation cannot prove the "
                       f"access safe",
                       address=pc)
    return report
