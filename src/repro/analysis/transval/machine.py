"""Harness machine for the translation validator.

The validator proves a fused body equivalent to the per-insn reference
semantics by running both against *the same* closed model machine: a
real :class:`repro.m68k.cpu.CPU` attached to a :class:`ModelBus` that
reproduces the ``MemoryMap`` inline arms — trace token before
alignment check, write-watch before store, deterministic values for
bus regions outside RAM/flash — while journaling every observable
(packed trace tokens, watch hits, fallback bus calls, dirtied memory).

Both sides of a comparison get their own :class:`HarnessState` built
from one :class:`Vector` over one shared :class:`Workspace`, so every
divergence between the journals is a divergence introduced by the
generated code.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ...m68k.cpu import CPU
from ...m68k.errors import AddressError, BusError
from ...m68k.instructions import _shift

M32 = 0xFFFFFFFF

#: Packed-token kind bits (profiler encoding: ``(kind | region<<4) << 32``).
KIND_FETCH = 0
KIND_READ = 1
KIND_WRITE = 2
REGION_RAM = 0
REGION_FLASH = 1
REGION_EXT = 2

_ST2 = struct.Struct(">H")
_ST4 = struct.Struct(">I")


def pack_token(addr: int, kind: int, region: int) -> int:
    return (addr & M32) | ((kind | (region << 4)) << 32)


def _ext_value(addr: int, size: int, seed: int) -> int:
    """Deterministic value for a read outside RAM/flash: both sides of
    a comparison see the same bus, so any model works — it only has to
    be a pure function of (address, size, seed)."""
    h = ((addr * 0x9E3779B1) ^ (size * 0x85EBCA6B) ^ seed) & M32
    return h & ((1 << (8 * size)) - 1)


@dataclass(frozen=True)
class Vector:
    """One driving state: initial registers/flags, the cycle budget,
    the watch configuration and the scripted asynchronous events."""

    d: Tuple[int, ...]
    a: Tuple[int, ...]
    x: int = 0
    n: int = 0
    z: int = 0
    v: int = 0
    c: int = 0
    cycles0: int = 1000
    budget: int = 40000            # limit - cycles0
    imask: int = 3
    watch_pages: FrozenSet[int] = frozenset()
    #: ``(insn index k, nth bridge call at k) -> pending irq level`` —
    #: injected right after the bridged handler returns.
    irq_after: Tuple[Tuple[Tuple[int, int], int], ...] = ()
    #: ``(insn index k, nth bridge call at k)`` -> invalidate the block
    #: right after the bridged handler returns.
    invalidate_after: Tuple[Tuple[int, int], ...] = ()
    #: ``(addr, bytes)`` patches applied to the workspace before the
    #: run (both sides see them; they drive data-dependent branches
    #: whose operands live in memory, e.g. ``cmpi`` + ``beq``).
    mem_seed: Tuple[Tuple[int, bytes], ...] = ()
    bus_seed: int = 0x5EED
    label: str = "base"


class TrackedBuf(bytearray):
    """A bytearray journaling every mutation as ``(start, length)``."""

    def __init__(self, *args: Any) -> None:
        super().__init__(*args)
        self.dirty: List[Tuple[int, int]] = []

    def note(self, start: int, length: int) -> None:
        self.dirty.append((start, length))

    def __setitem__(self, key: Any, value: Any) -> None:
        if isinstance(key, slice):
            start, stop, _step = key.indices(len(self))
            self.dirty.append((start, max(0, stop - start)))
        else:
            self.dirty.append((int(key), 1))
        super().__setitem__(key, value)


class Workspace:
    """Shared RAM/flash images at the real device geometry, reset to a
    deterministic pattern (plus the block's code bytes) between runs.

    Allocated once and reused across blocks and vectors: restoring
    only the journaled dirty spans keeps a validation run at a few
    microseconds of memory traffic instead of two 8 MB copies."""

    def __init__(self, ram_base: int, ram_limit: int,
                 flash_base: int, flash_limit: int, seed: int = 7) -> None:
        self.ram_base = ram_base
        self.ram_limit = ram_limit
        self.flash_base = flash_base
        self.flash_limit = flash_limit
        ram_size = ram_limit - ram_base
        flash_size = flash_limit - flash_base
        rng = np.arange(ram_size, dtype=np.uint32)
        self._ram_pat = bytearray(
            ((rng * 131 + seed) % 251).astype(np.uint8).tobytes())
        rng = np.arange(flash_size, dtype=np.uint32)
        self._flash_pat = bytearray(
            ((rng * 137 + seed + 1) % 251).astype(np.uint8).tobytes())
        self.ram = TrackedBuf(self._ram_pat)
        self.flash = TrackedBuf(self._flash_pat)
        self._code_spans: List[
            Tuple[TrackedBuf, int, bytearray, bytes]] = []

    def _pat_for(self, buf: TrackedBuf) -> bytearray:
        return self._ram_pat if buf is self.ram else self._flash_pat

    def load_code(self, code: List[Tuple[int, bytes]], region: int) -> None:
        """Overlay the block's instruction bytes onto the pattern (and
        the live buffers) so both the baked-in extension words and the
        reference handlers' live fetches see the same image."""
        for buf, base, pat, orig in self._code_spans:
            pat[base:base + len(orig)] = orig
            buf[base:base + len(orig)] = orig
        self._code_spans = []
        buf = self.ram if region == 0 else self.flash
        pat = self._pat_for(buf)
        base_addr = self.ram_base if region == 0 else self.flash_base
        for start, data in code:
            off = start - base_addr
            self._code_spans.append((buf, off, pat, bytes(pat[off:off + len(data)])))
        for start, data in code:
            off = start - base_addr
            pat[off:off + len(data)] = data
            buf[off:off + len(data)] = data
        self.ram.dirty.clear()
        self.flash.dirty.clear()

    @staticmethod
    def _merge(dirty: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
        if not dirty:
            return []
        spans = sorted((s, s + n) for s, n in dirty if n)
        out: List[Tuple[int, int]] = []
        cs, ce = spans[0]
        for s, e in spans[1:]:
            if s <= ce:
                ce = max(ce, e)
            else:
                out.append((cs, ce))
                cs, ce = s, e
        out.append((cs, ce))
        return [(s, e - s) for s, e in out]

    def effects(self) -> Dict[int, int]:
        """RAM bytes changed since the last restore, as offset->value
        (unchanged-but-touched bytes are dropped, so rewriting the
        pattern value is not an 'effect')."""
        out: Dict[int, int] = {}
        pat = self._ram_pat
        size = len(pat)
        for start, n in self._merge(self.ram.dirty):
            # A faulted partial write can journal a span beyond the
            # buffer (note() precedes the store that raised); clamp so
            # the snapshot never dies on a journal artifact.
            for i in range(max(0, start), min(start + n, size)):
                if self.ram[i] != pat[i]:
                    out[i] = self.ram[i]
        return out

    def restore(self) -> None:
        for buf in (self.ram, self.flash):
            pat = self._pat_for(buf)
            for start, n in self._merge(buf.dirty):
                buf[start:start + n] = pat[start:start + n]
            buf.dirty.clear()


class _FakeBlock:
    """Stands in for the ``_Block`` a fused body closes over: only its
    ``valid`` flag is consulted (after handler bridges)."""

    __slots__ = ("valid",)

    def __init__(self) -> None:
        self.valid = True


class ModelBus:
    """``MemoryMap``-equivalent bus over a :class:`Workspace`.

    Order of operations mirrors the inline arms exactly: trace token
    first, then (writes) the watch-page check, then the alignment
    check, then the byte lanes.  Accesses outside RAM/flash are
    journaled and answered from a pure deterministic model; flash
    writes raise :class:`BusError` (replay write-protects flash)."""

    def __init__(self, state: "HarnessState") -> None:
        self.st = state

    # -- helpers ---------------------------------------------------------
    def _tok(self, addr: int, kind: int, region: int, size: int) -> None:
        st = self.st
        st.tokens.append(pack_token(addr, kind, region))
        if size == 4:
            st.tokens.append(pack_token(addr + 2, kind, region))

    def _check_watch(self, addr: int, size: int) -> None:
        st = self.st
        p1 = addr >> 8
        p2 = (addr + 2) >> 8 if size == 4 else p1
        if p1 in st.watch_pages or p2 in st.watch_pages:
            st.whit(addr)
            if size == 4:
                st.whit(addr + 2)

    def _read(self, addr: int, size: int) -> int:
        st = self.st
        ws = st.ws
        addr &= M32
        if addr <= ws.ram_limit - size:
            self._tok(addr, KIND_READ, REGION_RAM, size)
            if size > 1 and addr & 1:
                raise AddressError(addr, size)
            off = addr - ws.ram_base
            return self._load(ws.ram, off, size)
        if ws.flash_base <= addr <= ws.flash_limit - size:
            self._tok(addr, KIND_READ, REGION_FLASH, size)
            if size > 1 and addr & 1:
                raise AddressError(addr, size)
            return self._load(ws.flash, addr - ws.flash_base, size)
        self._tok(addr, KIND_READ, REGION_EXT, size)
        if size > 1 and addr & 1:
            raise AddressError(addr, size)
        value = _ext_value(addr, size, st.bus_seed)
        st.events.append(("busread", addr, size, value, len(st.tokens)))
        st._note_sl()
        return value

    def _write(self, addr: int, size: int, value: int) -> None:
        st = self.st
        ws = st.ws
        addr &= M32
        if addr <= ws.ram_limit - size:
            self._tok(addr, KIND_WRITE, REGION_RAM, size)
            self._check_watch(addr, size)
            if size > 1 and addr & 1:
                raise AddressError(addr, size)
            self._store(ws.ram, addr - ws.ram_base, size, value)
            return
        if ws.flash_base <= addr <= ws.flash_limit - size:
            st.events.append(("buswrite", addr, size, value & M32,
                              len(st.tokens)))
            raise BusError(addr)
        self._tok(addr, KIND_WRITE, REGION_EXT, size)
        if size > 1 and addr & 1:
            raise AddressError(addr, size)
        st.events.append(("buswrite", addr, size, value & M32,
                          len(st.tokens)))
        st._note_sl()

    @staticmethod
    def _load(buf: TrackedBuf, off: int, size: int) -> int:
        if size == 1:
            return buf[off]
        if size == 2:
            return int(_ST2.unpack_from(buf, off)[0])
        return int(_ST4.unpack_from(buf, off)[0])

    @staticmethod
    def _store(buf: TrackedBuf, off: int, size: int, value: int) -> None:
        if size == 1:
            buf[off] = value & 0xFF
        elif size == 2:
            buf.note(off, 2)
            _ST2.pack_into(buf, off, value & 0xFFFF)
        else:
            buf.note(off, 4)
            _ST4.pack_into(buf, off, value & M32)

    # -- the Bus protocol -----------------------------------------------
    def read8(self, addr: int) -> int:
        return self._read(addr, 1)

    def read16(self, addr: int) -> int:
        return self._read(addr, 2)

    def read32(self, addr: int) -> int:
        return self._read(addr, 4)

    def write8(self, addr: int, value: int) -> None:
        self._write(addr, 1, value)

    def write16(self, addr: int, value: int) -> None:
        self._write(addr, 2, value)

    def write32(self, addr: int, value: int) -> None:
        self._write(addr, 4, value)

    def fetch16(self, addr: int) -> int:
        st = self.st
        ws = st.ws
        addr &= M32
        if addr <= ws.ram_limit - 2:
            region, buf, off = REGION_RAM, ws.ram, addr - ws.ram_base
        elif ws.flash_base <= addr <= ws.flash_limit - 2:
            region, buf, off = REGION_FLASH, ws.flash, addr - ws.flash_base
        else:
            st.tokens.append(pack_token(addr, KIND_FETCH, REGION_EXT))
            if addr & 1:
                raise AddressError(addr, 2)
            return _ext_value(addr, 2, st.bus_seed ^ 0xFE7C)
        st.tokens.append(pack_token(addr, KIND_FETCH, region))
        if addr & 1:
            raise AddressError(addr, 2)
        return self._load(buf, off, 2)


@dataclass
class RunResult:
    """Everything observable about one side's run."""

    executed: int = 0
    fault: Optional[Tuple[str, str]] = None
    pc: int = 0
    cycles: int = 0
    d: Tuple[int, ...] = ()
    a: Tuple[int, ...] = ()
    flags: Tuple[int, int, int, int, int] = (0, 0, 0, 0, 0)
    sr: int = 0
    stopped: bool = False
    pending_irq: int = 0
    valid: bool = True
    tokens: List[int] = field(default_factory=list)
    events: List[tuple] = field(default_factory=list)
    mem_effects: Dict[int, int] = field(default_factory=dict)
    #: Per-step ``cpu.cycles`` before each executed instruction
    #: (reference side only; drives gate obligations + budget battery).
    cycles_before: List[int] = field(default_factory=list)
    #: Step indices that performed a watch hit or fallback bus access
    #: (sl-escape justifications).
    sl_steps: List[int] = field(default_factory=list)


class HarnessState:
    """One side's machine: CPU + bus + journals, built from a vector."""

    def __init__(self, ws: Workspace, vector: Vector, block_pages: Tuple[int, ...],
                 region: int, entry_pc: int) -> None:
        self.ws = ws
        self.vector = vector
        self.tokens: List[int] = []
        self.events: List[tuple] = []
        self.watch_pages: set = set(vector.watch_pages)
        if region == 0:
            # Production invariant: a RAM-resident block's own pages
            # are always write-watched while the block is valid.
            self.watch_pages.update(block_pages)
        self.block_pages = frozenset(block_pages)
        for addr, data in vector.mem_seed:
            if addr + len(data) <= ws.ram_limit:
                off = addr - ws.ram_base
                ws.ram[off:off + len(data)] = data
            elif (ws.flash_base <= addr
                  and addr + len(data) <= ws.flash_limit):
                off = addr - ws.flash_base
                ws.flash[off:off + len(data)] = data
        self.block = _FakeBlock()
        self.bus_seed = vector.bus_seed
        self.bus = ModelBus(self)
        cpu = CPU(self.bus)
        cpu.d[:] = [v & M32 for v in vector.d]
        cpu.a[:] = [v & M32 for v in vector.a]
        cpu.pc = entry_pc
        cpu.cycles = vector.cycles0
        cpu.x, cpu.n, cpu.z = vector.x, vector.n, vector.z
        cpu.v, cpu.c = vector.v, vector.c
        cpu.imask = vector.imask
        cpu.pending_irq = 0
        self.cpu = cpu
        self.limit = vector.cycles0 + vector.budget
        self._irq_after = dict(vector.irq_after)
        self._inval_after = frozenset(vector.invalidate_after)
        self._bridge_calls: Dict[int, int] = {}
        #: Current step index (maintained by the reference executor;
        #: the generated side marks steps only via whit/bus events).
        self.step = -1
        self.sl_steps: List[int] = []

    def whit(self, addr: int) -> None:
        """CodeWatch.hit equivalent: journal, un-watch the page, and
        invalidate the block when one of its own pages is hit."""
        self.events.append(("whit", addr & M32, len(self.tokens)))
        page = (addr & M32) >> 8
        self.watch_pages.discard(page)
        if page in self.block_pages:
            self.block.valid = False
        self._note_sl()

    def _note_sl(self) -> None:
        if self.step >= 0 and (not self.sl_steps
                               or self.sl_steps[-1] != self.step):
            self.sl_steps.append(self.step)

    def apply_bridge_script(self, k: int) -> None:
        """Scripted asynchronous events, applied right after the
        bridged handler for insn ``k`` returns (same point on both
        sides)."""
        occ = self._bridge_calls.get(k, 0)
        self._bridge_calls[k] = occ + 1
        if (k, occ) in self._inval_after:
            self.block.valid = False
        irq = self._irq_after.get((k, occ))
        if irq is not None:
            self.cpu.pending_irq = irq

    def snapshot(self, executed: int,
                 fault: Optional[Tuple[str, str]]) -> RunResult:
        cpu = self.cpu
        res = RunResult(
            executed=executed, fault=fault,
            pc=cpu.pc, cycles=cpu.cycles,
            d=tuple(cpu.d), a=tuple(cpu.a),
            flags=(cpu.x, cpu.n, cpu.z, cpu.v, cpu.c),
            sr=cpu.sr, stopped=cpu.stopped,
            pending_irq=cpu.pending_irq,
            valid=self.block.valid,
            tokens=list(self.tokens),
            events=list(self.events),
            mem_effects=self.ws.effects(),
            sl_steps=list(self.sl_steps))
        return res


def make_gen_env(state: HarnessState, prov: Any,
                 arm_recorder: Callable[[int], Any]) -> Dict[str, Any]:
    """The environment a fused body is re-specialized against for
    validation: same names as :class:`repro.m68k.fuse._Fuser`'s, bound
    to the harness journals instead of the live device."""
    ws = state.ws
    bus = state.bus

    def wrap_pk(st: struct.Struct) -> Callable[..., None]:
        size = st.size

        def pk(buf: TrackedBuf, off: int, val: int) -> None:
            buf.note(off, size)
            st.pack_into(buf, off, val)
        return pk

    env: Dict[str, Any] = {
        "append": state.tokens.append,
        "extend": state.tokens.extend,
        "wpages": state.watch_pages,
        "whit": state.whit,
        "block": state.block,
        "AddressError": AddressError,
        "_shift": _shift,
        "br1": bus.read8, "br2": bus.read16, "br4": bus.read32,
        "bw1": bus.write8, "bw2": bus.write16, "bw4": bus.write32,
        "ram": ws.ram, "flash": ws.flash,
        "pk2": wrap_pk(_ST2), "pk4": wrap_pk(_ST4),
        "up2": _ST2.unpack_from, "up4": _ST4.unpack_from,
        "__arm__": arm_recorder,
    }
    entries = prov.entries
    for k in range(len(entries)):
        name = f"h{k}"
        if name in prov.env:
            handler = entries[k][4]

            def bridge(cpu: CPU, _h: Any = handler, _k: int = k) -> None:
                _h(cpu)
                state.apply_bridge_script(_k)
            env[name] = bridge
    if "np" in prov.env:
        env["np"] = np
        env["tdyn"] = prov.env["tdyn"]
        env["tval"] = prov.env["tval"]
        env["wdis"] = state.watch_pages.isdisjoint

        def bulk(chunk: Any) -> None:
            state.tokens.extend(int(t) for t in chunk)
        env["bulk"] = bulk
    return env
