"""Translation validation for the fused superblock codegen.

Proves, block by block, that the Python the fuser emits is equivalent
to the per-insn specialized handlers it was derived from — per exit
path: pc, batched cycle accounting and budget gates, deferred
condition flags, registers, memory effects, bus-region dispatch and
the emitted trace-token stream.  A second pass audits every elided
check (region-dispatch elisions from the dataflow facts, sanitizer
elisions from the static safety proof) by re-deriving the proof
obligation, and a seeded miscompile corpus keeps the validator honest.

Anything the machinery cannot prove becomes a typed finding — never a
silent pass.
"""

from .corpus import MISCOMPILE_CLASSES, mutate_prov, selftest
from .machine import HarnessState, RunResult, Vector, Workspace
from .reference import StepLog, run_reference
from .runner import (VerifyStats, baseline_keys, collect_provenances,
                     load_baseline, new_findings_against, save_baseline,
                     verify_codegen)
from .validator import (BlockStats, audit_region_elisions,
                        audit_sanitizer_elisions, validate_block,
                        workspace_for)

__all__ = [
    "BlockStats",
    "HarnessState",
    "MISCOMPILE_CLASSES",
    "RunResult",
    "StepLog",
    "Vector",
    "VerifyStats",
    "Workspace",
    "audit_region_elisions",
    "audit_sanitizer_elisions",
    "baseline_keys",
    "collect_provenances",
    "load_baseline",
    "mutate_prov",
    "new_findings_against",
    "run_reference",
    "save_baseline",
    "selftest",
    "validate_block",
    "verify_codegen",
    "workspace_for",
]
