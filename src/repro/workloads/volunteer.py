"""Synthetic volunteer users and the Table 1 sessions.

The paper's cache study rests on four sessions collected from a
volunteer operating a Palm m515 normally for one to six days (Table 1:
1243/933/755/1622 events over 24:34 to 141:27 hours).  We cannot have
that volunteer; :class:`SyntheticUser` is the substitution — a seeded
stochastic model that produces the same *shape* of usage: short bouts
of interactive work (memos, address lookups, Puzzle games) separated
by long idle stretches, exactly the regime where virtual-time dozing
makes day-long sessions replayable in seconds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..device import constants as C
from ..device.constants import Button
from .scripts import UserScript

TICKS_PER_HOUR = 3600 * C.TICKS_PER_SECOND


@dataclass
class SessionSpec:
    """One volunteer session (Table 1 row)."""

    name: str
    seed: int
    hours: float          # paper's "Elapsed Time"
    bouts: int            # activity bursts across the session
    contacts: int = 30    # AddrDB preload size

    @property
    def ticks(self) -> int:
        return int(self.hours * TICKS_PER_HOUR)


#: The four volunteer sessions of Table 1.  Elapsed times match the
#: paper (24:34:31, 48:28:56, 24:52:55, 141:27:26); bout counts are
#: calibrated so the collected activity logs land near the paper's
#: event counts (1243, 933, 755, 1622).
TABLE1_SESSIONS: List[SessionSpec] = [
    SessionSpec("session1", seed=1001, hours=24.5753, bouts=43),
    SessionSpec("session2", seed=1002, hours=48.4822, bouts=34),
    SessionSpec("session3", seed=1003, hours=24.8819, bouts=31),
    SessionSpec("session4", seed=1004, hours=141.4572, bouts=72),
]


class SyntheticUser:
    """A seeded stochastic user of the standard application suite."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    # -- activity bouts ---------------------------------------------------
    def _memo_bout(self, script: UserScript) -> None:
        rng = self.rng
        script.press(Button.MEMO)
        script.wait(rng.randint(20, 80))
        for _ in range(rng.randint(2, 5)):
            script.tap(rng.randint(10, 150), rng.randint(85, 155))
            script.wait(rng.randint(30, 150))
        if rng.random() < 0.6:
            script.press(Button.UP)      # review the list
            script.wait(rng.randint(40, 120))
        if rng.random() < 0.25:
            script.press(Button.DOWN)    # delete the oldest memo
            script.wait(rng.randint(20, 60))

    def _address_bout(self, script: UserScript) -> None:
        rng = self.rng
        script.press(Button.ADDRESS)
        script.wait(rng.randint(20, 80))
        for _ in range(rng.randint(2, 6)):
            if rng.random() < 0.7:
                script.press(Button.DOWN if rng.random() < 0.6 else Button.UP)
            else:
                script.tap(rng.randint(5, 150), rng.randint(10, 100))
            script.wait(rng.randint(25, 90))

    def _puzzle_bout(self, script: UserScript) -> None:
        rng = self.rng
        script.press(Button.DATEBOOK)
        script.wait(rng.randint(30, 100))
        for _ in range(rng.randint(6, 18)):
            script.tap(rng.randint(0, 159), rng.randint(0, 159),
                       hold_ticks=rng.randint(3, 6))
            script.wait(rng.randint(15, 70))
        if rng.random() < 0.3:
            script.press(Button.UP)      # reshuffle
            script.wait(rng.randint(30, 80))

    def _doodle_bout(self, script: UserScript) -> None:
        """A short stylus drag (handwriting-like input)."""
        rng = self.rng
        x, y = rng.randint(20, 120), rng.randint(20, 120)
        points = [(x, y)]
        for _ in range(rng.randint(3, 10)):
            x = max(0, min(159, x + rng.randint(-15, 15)))
            y = max(0, min(159, y + rng.randint(-15, 15)))
            points.append((x, y))
        script.drag(points, ticks_per_point=2)
        script.wait(rng.randint(20, 60))

    _BOUTS = ("memo", "address", "puzzle", "doodle")

    def build_script(self, spec: SessionSpec) -> UserScript:
        """Generate the full session script for ``spec``."""
        rng = self.rng
        script = UserScript(name=spec.name)
        script.at(rng.randint(80, 200))  # settle after the reset
        # Idle gaps sum to roughly the session length.
        active_budget = spec.bouts * 600  # ~6 s of interaction per bout
        idle_total = max(spec.ticks - active_budget, spec.bouts)
        weights = [rng.random() for _ in range(spec.bouts)]
        total_weight = sum(weights)
        for i in range(spec.bouts):
            kind = rng.choices(self._BOUTS, weights=[3, 2, 3, 2])[0]
            if kind == "memo":
                self._memo_bout(script)
            elif kind == "address":
                self._address_bout(script)
            elif kind == "puzzle":
                self._puzzle_bout(script)
            else:
                self._doodle_bout(script)
            gap = int(idle_total * weights[i] / total_weight)
            script.wait(max(gap, 50))
        return script


def build_session_script(spec: SessionSpec) -> UserScript:
    return SyntheticUser(spec.seed).build_script(spec)


def preload_contacts(kernel, count: int) -> None:
    """Install an address book the session can browse (setup hook)."""
    db = kernel.dm_host.find("AddrDB")
    if not db:
        db = kernel.dm_host.create("AddrDB", "DATA", "addr")
    payloads = [f"Contact{i:03d} 555-{i:04d}".encode("latin-1")[:20]
                for i in range(count)]
    kernel.dm_host.bulk_append(db, payloads)


def collect_table1_session(spec: SessionSpec, apps=None,
                           ram_size: int = 8 << 20):
    """Collect one Table 1 session end to end."""
    from ..apps import standard_apps
    from .sessions import collect_session

    return collect_session(
        apps if apps is not None else standard_apps(),
        build_session_script(spec),
        name=spec.name,
        entropy_seed=0xB0B0 + spec.seed,
        ram_size=ram_size,
        default_app="launcher",
        setup=lambda kernel: preload_contacts(kernel, spec.contacts),
    )
