"""Workloads: user scripts, session collection, synthetic volunteers."""

from .gremlins import (
    GremlinConfig,
    Gremlins,
    derive_entropy_seed,
    gremlin_session,
)
from .scripts import UserScript
from .sessions import CollectedSession, SessionFormatError, collect_session
from .volunteer import (
    SessionSpec,
    SyntheticUser,
    TABLE1_SESSIONS,
    build_session_script,
    collect_table1_session,
    preload_contacts,
)

__all__ = [
    "UserScript",
    "Gremlins",
    "GremlinConfig",
    "gremlin_session",
    "derive_entropy_seed",
    "CollectedSession",
    "SessionFormatError",
    "collect_session",
    "SessionSpec",
    "SyntheticUser",
    "TABLE1_SESSIONS",
    "build_session_script",
    "collect_table1_session",
    "preload_contacts",
]
