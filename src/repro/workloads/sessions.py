"""Session collection: the paper's §2.1 procedure, end to end.

A *session* is "the period of time that inputs are collected".  The
chronology (quoted from the paper):

1. Instrument a handheld to collect user inputs
2. Transfer the initial state of a handheld to the desktop
3. Start collecting inputs
4. Allow the user to operate the handheld normally
5. Transfer the activity log from the handheld to the desktop

:func:`collect_session` performs all five against a simulated m515
driven by a :class:`~repro.workloads.scripts.UserScript`, returning the
desktop-side bundle a replay needs — plus the handheld's own final
state, which §3.4's validation compares against the emulated one.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..device import constants as C
from ..hacks import HackManager
from ..palmos import AppSpec, PalmOS
from ..palmos.database import DatabaseImage
from ..tracelog import ActivityLog, InitialState, create_log_database, read_activity_log
from .scripts import UserScript

#: Version of the :meth:`CollectedSession.to_json` container.
SESSION_JSON_FORMAT = "repro-collected-session"
SESSION_JSON_VERSION = 1


class SessionFormatError(ValueError):
    """A serialized :class:`CollectedSession` is not one, or was written
    by an incompatible version of the container."""


def _b64(blob: bytes) -> str:
    return base64.b64encode(blob).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


@dataclass
class CollectedSession:
    """Everything a collection run produces."""

    name: str
    initial_state: InitialState
    log: ActivityLog
    final_state: List[DatabaseImage] = field(default_factory=list)
    elapsed_ticks: int = 0
    instructions: int = 0

    @property
    def events(self) -> int:
        return len(self.log)

    def elapsed_hms(self) -> str:
        seconds = self.elapsed_ticks // C.TICKS_PER_SECOND
        return f"{seconds // 3600:02d}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"

    # -- serialization ----------------------------------------------------
    def to_json(self) -> dict:
        """A JSON-safe, versioned snapshot of the whole session bundle.

        Binary payloads (flash image, PDB databases, the activity log's
        PDB encoding, the card image) travel base64; the round trip
        through :meth:`from_json` is stable: ``from_json(to_json())``
        serializes back to the identical dict.
        """
        state = self.initial_state
        return {
            "_format": SESSION_JSON_FORMAT,
            "_version": SESSION_JSON_VERSION,
            "name": self.name,
            "elapsed_ticks": self.elapsed_ticks,
            "instructions": self.instructions,
            "initial_state": {
                "flash": _b64(state.flash_image),
                "databases": [_b64(db.to_pdb_bytes())
                              for db in state.databases],
                "rtc_base": state.rtc_base,
                "card_name": state.card_name,
                "card_image": (_b64(state.card_image)
                               if state.card_image is not None else None),
            },
            "log": _b64(self.log.to_database_image().to_pdb_bytes()),
            "final_state": [_b64(db.to_pdb_bytes())
                            for db in self.final_state],
        }

    @classmethod
    def from_json(cls, data: dict) -> "CollectedSession":
        if not isinstance(data, dict) or data.get("_format") != SESSION_JSON_FORMAT:
            raise SessionFormatError(
                f"not a serialized CollectedSession "
                f"(_format={data.get('_format')!r}"
                if isinstance(data, dict) else
                f"not a serialized CollectedSession ({type(data).__name__})")
        if data.get("_version") != SESSION_JSON_VERSION:
            raise SessionFormatError(
                f"unsupported CollectedSession version "
                f"{data.get('_version')!r} (this build reads version "
                f"{SESSION_JSON_VERSION})")
        try:
            raw_state = data["initial_state"]
            state = InitialState(
                flash_image=_unb64(raw_state["flash"]),
                databases=[DatabaseImage.from_pdb_bytes(_unb64(blob))
                           for blob in raw_state["databases"]],
                rtc_base=raw_state["rtc_base"],
                card_name=raw_state["card_name"],
                card_image=(_unb64(raw_state["card_image"])
                            if raw_state["card_image"] is not None else None),
            )
            log = ActivityLog.from_database_image(
                DatabaseImage.from_pdb_bytes(_unb64(data["log"])))
            final_state = [DatabaseImage.from_pdb_bytes(_unb64(blob))
                           for blob in data["final_state"]]
            return cls(name=data["name"], initial_state=state, log=log,
                       final_state=final_state,
                       elapsed_ticks=data["elapsed_ticks"],
                       instructions=data["instructions"])
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, SessionFormatError):
                raise
            raise SessionFormatError(
                f"malformed CollectedSession container: {exc}") from exc


def collect_session(
    apps: Sequence[AppSpec],
    script: UserScript,
    name: str = "session",
    entropy_seed: int = 0x0D15_EA5E,
    rtc_base: Optional[int] = None,
    ram_size: int = 4 << 20,
    flash_size: int = 1 << 20,
    default_app: Optional[str] = None,
    setup=None,
    card=None,
    idle_tail_ticks: int = 100,
) -> CollectedSession:
    """Run one collection session on a fresh simulated handheld.

    ``setup(kernel)``, if given, runs after the factory boot and before
    instrumentation — the place to pre-install user databases.
    ``card`` is the memory card the script may insert; its contents are
    snapshotted into the initial state (the card extension).
    """
    kernel = PalmOS(apps=apps, ram_size=ram_size, flash_size=flash_size,
                    rtc_base=rtc_base, entropy_seed=entropy_seed,
                    default_app=default_app)
    kernel.boot()  # factory boot: formats storage, creates psysLaunchDB
    if setup is not None:
        setup(kernel)

    # 1. Instrument: empty common database + the five hacks.
    create_log_database(kernel)
    HackManager(kernel).install_standard()

    # 2. Transfer the initial state (ROMTransfer + backup bits + HotSync).
    initial_state = InitialState.capture(kernel, card=card)

    # 3./4. The session proper: soft reset, then the user drives it.
    kernel.boot()
    start_instructions = kernel.device.cpu.instructions
    script.apply(kernel.device, card=card)
    kernel.device.advance(script.duration_ticks() + idle_tail_ticks)
    kernel.device.run_until_idle()

    # 5. Transfer the activity log (and the final state for validation).
    log = read_activity_log(kernel)
    final_state = kernel.hotsync_backup()
    return CollectedSession(
        name=name,
        initial_state=initial_state,
        log=log,
        final_state=final_state,
        elapsed_ticks=kernel.device.tick,
        instructions=kernel.device.cpu.instructions - start_instructions,
    )
