"""Gremlins: random-input torture testing.

The real Palm OS Emulator ships a "Gremlins" mode that batters an
application with pseudo-random pen and key input to shake out crashes.
This module recreates it on top of the collection pipeline — with the
twist that a Gremlins session here is *collected and replayable* like
any other session, so a crash found by a gremlin run can be replayed
instruction-for-instruction.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterable

from ..device import constants as C
from ..device.constants import Button
from .scripts import UserScript


def derive_entropy_seed(seed: int, apps: Iterable, events: int) -> int:
    """Device entropy seed for a gremlin session, derived from the full
    (seed, app mix, event count) configuration.

    The old ``0x6E6E + seed`` formula ignored everything but the base
    seed, so two campaign cells sharing a base seed but differing in app
    mix or event budget silently shared one entropy stream — their
    "independent" sessions were correlated.  Hashing the whole tuple
    gives every distinct configuration its own stream while staying
    fully deterministic.
    """
    names = ",".join(sorted(getattr(a, "name", str(a)) for a in apps))
    digest = hashlib.sha256(
        f"gremlins-entropy|{seed}|{names}|{events}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") or 0x6E6E

#: Buttons a gremlin may mash (POWER and HOTSYNC excluded: power
#: handling and sync are out of the model's scope).
_GREMLIN_BUTTONS = [Button.UP, Button.DOWN, Button.DATEBOOK,
                    Button.ADDRESS, Button.TODO, Button.MEMO]


@dataclass
class GremlinConfig:
    events: int = 300            # approximate number of input gestures
    min_gap_ticks: int = 5
    max_gap_ticks: int = 120
    drag_probability: float = 0.2
    button_probability: float = 0.25
    max_drag_points: int = 12


class Gremlins:
    """A seeded random user."""

    def __init__(self, seed: int, config: GremlinConfig | None = None):
        self.seed = seed
        self.config = config or GremlinConfig()

    def build_script(self) -> UserScript:
        rng = random.Random(self.seed)
        cfg = self.config
        script = UserScript(name=f"gremlins-{self.seed}")
        script.at(rng.randint(80, 150))
        for _ in range(cfg.events):
            roll = rng.random()
            if roll < cfg.button_probability:
                script.press(rng.choice(_GREMLIN_BUTTONS),
                             hold_ticks=rng.randint(2, 8))
            elif roll < cfg.button_probability + cfg.drag_probability:
                points = []
                x = rng.randrange(C.SCREEN_WIDTH)
                y = rng.randrange(C.SCREEN_HEIGHT)
                for _ in range(rng.randint(2, cfg.max_drag_points)):
                    x = max(0, min(C.SCREEN_WIDTH - 1,
                                   x + rng.randint(-25, 25)))
                    y = max(0, min(C.SCREEN_HEIGHT - 1,
                                   y + rng.randint(-25, 25)))
                    points.append((x, y))
                script.drag(points, ticks_per_point=rng.randint(2, 4))
            else:
                script.tap(rng.randrange(C.SCREEN_WIDTH),
                           rng.randrange(C.SCREEN_HEIGHT),
                           hold_ticks=rng.randint(2, 10))
            script.wait(rng.randint(cfg.min_gap_ticks, cfg.max_gap_ticks))
        return script


def gremlin_session(seed: int, apps=None, events: int = 300,
                    ram_size: int = 8 << 20):
    """Collect one Gremlins session; returns the CollectedSession."""
    from ..apps import standard_apps
    from .sessions import collect_session

    script = Gremlins(seed, GremlinConfig(events=events)).build_script()
    app_list = list(apps) if apps is not None else standard_apps()
    return collect_session(app_list, script, name=script.name,
                           entropy_seed=derive_entropy_seed(seed, app_list,
                                                            events),
                           ram_size=ram_size,
                           default_app="launcher")
