"""User action scripts.

A :class:`UserScript` is the reproduction's stand-in for the volunteer
user's hands: a deterministic schedule of stylus and button actions in
tick time, applied to a device's stimulus queue.  The paper's first two
test workloads "followed a predefined script of actions" (§3.2) —
exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..device import constants as C


@dataclass
class UserScript:
    """A deterministic schedule of user input."""

    name: str = "script"
    actions: List[Tuple[int, str, tuple]] = field(default_factory=list)
    _cursor: int = 0  # running tick for the fluent builders

    # -- fluent builders ------------------------------------------------
    def at(self, tick: int) -> "UserScript":
        """Move the script cursor to an absolute tick."""
        self._cursor = tick
        return self

    def wait(self, ticks: int) -> "UserScript":
        self._cursor += ticks
        return self

    def wait_seconds(self, seconds: float) -> "UserScript":
        self._cursor += int(seconds * C.TICKS_PER_SECOND)
        return self

    def tap(self, x: int, y: int, hold_ticks: int = 4) -> "UserScript":
        """Tap the screen: pen down, short hold, pen up."""
        self.actions.append((self._cursor, "pen_down", (x, y)))
        self.actions.append((self._cursor + hold_ticks, "pen_up", ()))
        self._cursor += hold_ticks + 2
        return self

    def drag(self, points: List[Tuple[int, int]],
             ticks_per_point: int = 2) -> "UserScript":
        """Drag the stylus through ``points``."""
        if not points:
            return self
        x0, y0 = points[0]
        self.actions.append((self._cursor, "pen_down", (x0, y0)))
        tick = self._cursor
        for x, y in points[1:]:
            tick += ticks_per_point
            self.actions.append((tick, "pen_move", (x, y)))
        self.actions.append((tick + ticks_per_point, "pen_up", ()))
        self._cursor = tick + ticks_per_point + 2
        return self

    def press(self, button: int, hold_ticks: int = 3) -> "UserScript":
        """Press and release a hardware button."""
        self.actions.append((self._cursor, "button_down", (button,)))
        self.actions.append((self._cursor + hold_ticks, "button_up", (button,)))
        self._cursor += hold_ticks + 2
        return self

    def insert_card(self) -> "UserScript":
        """Insert the session's memory card (supplied to ``apply``)."""
        self.actions.append((self._cursor, "card_insert", ()))
        self._cursor += 2
        return self

    def remove_card(self) -> "UserScript":
        self.actions.append((self._cursor, "card_remove", ()))
        self._cursor += 2
        return self

    # -- composition ------------------------------------------------------
    def extend(self, other: "UserScript") -> "UserScript":
        offset = self._cursor
        for tick, kind, args in other.actions:
            self.actions.append((tick + offset, kind, args))
        self._cursor = offset + other.duration_ticks()
        return self

    def duration_ticks(self) -> int:
        last = max((tick for tick, _, _ in self.actions), default=0)
        return max(last, self._cursor)

    # -- application --------------------------------------------------------
    def apply(self, device, card=None) -> None:
        """Schedule every action on the device's stimulus queue.

        ``card`` is the session's memory card, required when the script
        contains ``insert_card`` actions.
        """
        for tick, kind, args in sorted(self.actions, key=lambda a: a[0]):
            if kind == "pen_down":
                device.schedule_pen_down(tick, *args)
            elif kind == "pen_move":
                device.schedule_pen_move(tick, *args)
            elif kind == "pen_up":
                device.schedule_pen_up(tick)
            elif kind == "button_down":
                device.schedule_button_press(tick, *args)
            elif kind == "button_up":
                device.schedule_button_release(tick, *args)
            elif kind == "card_insert":
                if card is None:
                    raise ValueError("script inserts a card but none "
                                     "was supplied")
                device.schedule_card_insert(tick, card)
            elif kind == "card_remove":
                device.schedule_card_remove(tick)
            else:
                raise ValueError(f"unknown action kind {kind!r}")
