"""Dinero-format trace interchange.

The BYU Trace Distribution Center (the paper's Figure 7 source, [21])
distributed traces consumable by dineroIII/IV; this module round-trips
our reference traces through that classic text format so they can be
fed to other cache simulators — and traces from elsewhere can be fed
to ours.

Format: one access per line, ``<label> <hex address>``, where label is
0 = data read, 1 = data write, 2 = instruction fetch.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

import numpy as np

from ..device.memmap import KIND_FETCH, KIND_READ, KIND_WRITE
from ..emulator.profiling import ReferenceTrace

#: dinero labels.
DIN_READ = 0
DIN_WRITE = 1
DIN_FETCH = 2

_KIND_TO_DIN = {KIND_READ: DIN_READ, KIND_WRITE: DIN_WRITE,
                KIND_FETCH: DIN_FETCH}
_DIN_TO_KIND = {DIN_READ: KIND_READ, DIN_WRITE: KIND_WRITE,
                DIN_FETCH: KIND_FETCH}


def write_dinero(trace: ReferenceTrace, path: Union[str, Path]) -> int:
    """Write a reference trace as a dinero text file; returns the
    number of records written."""
    kinds = trace.kind
    addresses = trace.addresses
    with open(path, "w") as handle:
        for kind, addr in zip(kinds, addresses):
            handle.write(f"{_KIND_TO_DIN[int(kind)]} {int(addr):x}\n")
    return len(addresses)


def read_dinero(path: Union[str, Path]) -> ReferenceTrace:
    """Read a dinero text file into a reference trace.

    Region nibbles are synthesised from the address (below 16 MB = RAM,
    otherwise flash) since the format does not carry them.
    """
    labels = []
    addresses = []
    with open(path) as handle:
        for line in handle:
            parts = line.split()
            if len(parts) < 2:
                continue
            labels.append(int(parts[0]))
            addresses.append(int(parts[1], 16))
    addr_arr = np.array(addresses, dtype=np.uint32)
    kind_arr = np.array([_DIN_TO_KIND.get(label, KIND_READ)
                         for label in labels], dtype=np.uint8)
    region = np.where(addr_arr < (16 << 20), 0, 1).astype(np.uint8)
    return ReferenceTrace(addresses=addr_arr,
                          kinds=(kind_arr | (region << 4)).astype(np.uint8))
