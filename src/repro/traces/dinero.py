"""Dinero-format trace interchange.

The BYU Trace Distribution Center (the paper's Figure 7 source, [21])
distributed traces consumable by dineroIII/IV; this module round-trips
our reference traces through that classic text format so they can be
fed to other cache simulators — and traces from elsewhere can be fed
to ours.

Format: one access per line, ``<label> <hex address>``, where label is
0 = data read, 1 = data write, 2 = instruction fetch.

Both directions work in chunked numpy passes rather than per-record
Python: formatting batches ~64 K records into one string per
``write`` call, and parsing decodes a chunk's hex addresses with a
nibble lookup table over the zero-padded character matrix.  Malformed
records (unknown label, bad or oversized address, missing field) raise
:class:`DineroFormatError` with the offending line number instead of
being silently coerced.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..device.memmap import KIND_FETCH, KIND_READ, KIND_WRITE
from ..emulator.profiling import ReferenceTrace

#: dinero labels.
DIN_READ = 0
DIN_WRITE = 1
DIN_FETCH = 2

_KIND_TO_DIN = {KIND_READ: DIN_READ, KIND_WRITE: DIN_WRITE,
                KIND_FETCH: DIN_FETCH}
_DIN_TO_KIND = {DIN_READ: KIND_READ, DIN_WRITE: KIND_WRITE,
                DIN_FETCH: KIND_FETCH}

#: Records per formatting/parsing chunk.
_CHUNK = 1 << 16

#: ASCII code point -> hex nibble value, 255 for non-hex characters.
_HEX_LUT = np.full(128, 255, dtype=np.uint8)
for _i, _c in enumerate("0123456789abcdef"):
    _HEX_LUT[ord(_c)] = _i
for _i, _c in enumerate("ABCDEF", 10):
    _HEX_LUT[ord(_c)] = _i


class DineroFormatError(ValueError):
    """A record in a dinero trace file could not be decoded."""


#: Hex nibble value -> lowercase ASCII code point.
_HEX_CHARS = np.frombuffer(b"0123456789abcdef", dtype=np.uint8)


def _format_chunk(addresses: np.ndarray, kinds: np.ndarray) -> bytes:
    """One chunk of ``<label> <hex address>\\n`` lines as raw bytes.

    Fully vectorized, and byte-identical to ``f"{label} {addr:x}"``
    per line: the address hex is variable-width (no zero padding), so
    the lines are assembled by ragged scatter — per-line byte offsets
    from a cumulative sum of line lengths, hex digits gathered from
    the (n, 8) nibble matrix starting at each address's first
    significant nibble.
    """
    n = len(addresses)
    lut = np.full(16, 255, dtype=np.uint8)
    for kind, din in _KIND_TO_DIN.items():
        lut[kind] = din
    labels = lut[kinds & 0x0F]
    if (labels == 255).any():
        bad = int(np.flatnonzero(labels == 255)[0])
        raise DineroFormatError(
            f"reference {bad}: kind {int(kinds[bad] & 0x0F)} has no "
            "dinero label (not fetch/read/write)")
    addresses = np.ascontiguousarray(addresses, dtype=np.uint32)
    nibbles = np.empty((n, 8), dtype=np.uint8)
    for col in range(8):
        nibbles[:, col] = (addresses >> np.uint32((7 - col) * 4)) \
            & np.uint32(0xF)
    # First significant nibble; an all-zero address keeps one digit.
    first = np.where(addresses == 0, 7,
                     np.argmax(nibbles != 0, axis=1)).astype(np.int64)
    width = 8 - first                          # hex digits per line
    lengths = width + 3                        # label + space + ... + \n
    ends = np.cumsum(lengths)
    starts = ends - lengths
    out = np.empty(int(ends[-1]), dtype=np.uint8)
    out[starts] = labels + ord("0")
    out[starts + 1] = ord(" ")
    out[ends - 1] = ord("\n")
    # Ragged gather/scatter of the hex digits: ``intra`` is each
    # digit's position within its own line's hex field.
    total_hex = int(width.sum())
    intra = np.arange(total_hex) - np.repeat(np.cumsum(width) - width,
                                             width)
    flat_pos = np.repeat(starts + 2, width) + intra
    src_col = np.repeat(first, width) + intra
    out[flat_pos] = _HEX_CHARS[
        nibbles[np.repeat(np.arange(n), width), src_col]]
    return out.tobytes()


def write_dinero_chunks(path: Union[str, Path], chunks) -> int:
    """Write ``(addresses, kinds)`` chunk pairs as a dinero text file
    without ever materializing the whole trace; returns the record
    count."""
    n = 0
    with open(path, "wb") as handle:
        for addresses, kinds in chunks:
            if len(addresses) == 0:
                continue
            handle.write(_format_chunk(np.asarray(addresses),
                                       np.asarray(kinds)))
            n += len(addresses)
    return n


def write_dinero(trace: ReferenceTrace, path: Union[str, Path]) -> int:
    """Write a reference trace as a dinero text file; returns the
    number of records written.  Formatting is the vectorized chunked
    fast path of :func:`write_dinero_chunks` (byte-identical output to
    the historical per-line formatter)."""
    return write_dinero_chunks(path, trace.chunks(_CHUNK))


def _parse_chunk(lines: list, first_line_number: int):
    """Decode one chunk of text lines; returns (addresses, kinds) with
    blank lines dropped."""
    arr = np.char.strip(np.char.replace(
        np.asarray(lines, dtype=np.str_), "\t", " "))
    arr = arr[np.char.str_len(arr) > 0]
    if len(arr) == 0:
        return (np.empty(0, dtype=np.uint32), np.empty(0, dtype=np.uint8))

    def fail(bad_mask: np.ndarray, what: str):
        idx = int(np.flatnonzero(bad_mask)[0])
        # Recover the original (1-based) line number of the bad record.
        nonblank = [i for i, line in enumerate(lines) if line.strip()]
        lineno = first_line_number + nonblank[idx]
        raise DineroFormatError(
            f"line {lineno}: {what}: {str(arr[idx])!r}")

    label, _, rest = np.char.partition(arr, " ").T
    addr_str = np.char.partition(np.char.lstrip(rest), " ")[:, 0]

    kinds = np.empty(len(arr), dtype=np.uint8)
    known = np.zeros(len(arr), dtype=bool)
    for din, kind in _DIN_TO_KIND.items():
        mask = label == str(din)
        kinds[mask] = kind
        known |= mask
    if not known.all():
        fail(~known, "unknown dinero label")

    width = np.char.str_len(addr_str)
    bad = (width == 0) | (width > 8)
    if bad.any():
        fail(bad, "missing or oversized address")
    padded = np.char.rjust(addr_str, 8, "0")
    # A U8 string array is a contiguous (n, 8) code-point matrix.
    chars = np.ascontiguousarray(padded).view(np.uint32).reshape(-1, 8)
    nibbles = _HEX_LUT[np.minimum(chars, 127)]
    bad = (chars > 127).any(axis=1) | (nibbles == 255).any(axis=1)
    if bad.any():
        fail(bad, "invalid hex address")
    addresses = np.zeros(len(arr), dtype=np.uint32)
    for col in range(8):
        addresses <<= np.uint32(4)
        addresses |= nibbles[:, col]
    return addresses, kinds


def read_dinero_chunks(path: Union[str, Path]):
    """Read a dinero text file as a stream of ``(addresses, kinds)``
    chunk views — the whole file is never resident, so dinero→PTRC
    conversion runs in bounded memory however large the trace.

    Region nibbles are synthesised from the address (below 16 MB = RAM,
    otherwise flash) since the format does not carry them.  Raises
    :class:`DineroFormatError` on malformed records.
    """
    lineno = 1
    with open(path) as handle:
        while True:
            lines = handle.readlines(_CHUNK * 12)
            if not lines:
                break
            addresses, kinds = _parse_chunk(lines, lineno)
            lineno += len(lines)
            if len(addresses):
                region = np.where(addresses < (16 << 20), 0, 1) \
                    .astype(np.uint8)
                yield addresses, (kinds | (region << 4)).astype(np.uint8)


def read_dinero(path: Union[str, Path]) -> ReferenceTrace:
    """Read a dinero text file into an in-RAM reference trace (chunked
    parse via :func:`read_dinero_chunks`, then one concatenation)."""
    addr_chunks = []
    kind_chunks = []
    for addresses, kinds in read_dinero_chunks(path):
        addr_chunks.append(addresses)
        kind_chunks.append(kinds)
    if addr_chunks:
        addr_arr = np.concatenate(addr_chunks)
        kind_arr = np.concatenate(kind_chunks)
    else:
        addr_arr = np.empty(0, dtype=np.uint32)
        kind_arr = np.empty(0, dtype=np.uint8)
    return ReferenceTrace(addresses=addr_arr, kinds=kind_arr)


# -- streaming PTRC interchange -------------------------------------------

def dinero_to_container(din_path: Union[str, Path],
                        ptrc_path: Union[str, Path], **kwargs) -> dict:
    """Convert a dinero text file to a PTRC container, chunk by chunk
    (neither file is ever fully resident).  Returns the manifest."""
    from .container import ContainerWriter

    with ContainerWriter(ptrc_path, **kwargs) as writer:
        for addresses, kinds in read_dinero_chunks(din_path):
            writer.append_reference(addresses, kinds)
    return writer.manifest


def container_to_dinero(container, din_path: Union[str, Path]) -> int:
    """Write a PTRC container's references as a dinero text file,
    streaming chunk by chunk; returns the record count.  ``container``
    is an open ``TraceContainer`` or a path."""
    from .container import TraceContainer

    if isinstance(container, (str, Path)):
        with TraceContainer(container) as opened:
            return write_dinero_chunks(din_path, opened.reference_chunks())
    return write_dinero_chunks(din_path, container.reference_chunks())
