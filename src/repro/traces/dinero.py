"""Dinero-format trace interchange.

The BYU Trace Distribution Center (the paper's Figure 7 source, [21])
distributed traces consumable by dineroIII/IV; this module round-trips
our reference traces through that classic text format so they can be
fed to other cache simulators — and traces from elsewhere can be fed
to ours.

Format: one access per line, ``<label> <hex address>``, where label is
0 = data read, 1 = data write, 2 = instruction fetch.

Both directions work in chunked numpy passes rather than per-record
Python: formatting batches ~64 K records into one string per
``write`` call, and parsing decodes a chunk's hex addresses with a
nibble lookup table over the zero-padded character matrix.  Malformed
records (unknown label, bad or oversized address, missing field) raise
:class:`DineroFormatError` with the offending line number instead of
being silently coerced.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..device.memmap import KIND_FETCH, KIND_READ, KIND_WRITE
from ..emulator.profiling import ReferenceTrace

#: dinero labels.
DIN_READ = 0
DIN_WRITE = 1
DIN_FETCH = 2

_KIND_TO_DIN = {KIND_READ: DIN_READ, KIND_WRITE: DIN_WRITE,
                KIND_FETCH: DIN_FETCH}
_DIN_TO_KIND = {DIN_READ: KIND_READ, DIN_WRITE: KIND_WRITE,
                DIN_FETCH: KIND_FETCH}

#: Records per formatting/parsing chunk.
_CHUNK = 1 << 16

#: ASCII code point -> hex nibble value, 255 for non-hex characters.
_HEX_LUT = np.full(128, 255, dtype=np.uint8)
for _i, _c in enumerate("0123456789abcdef"):
    _HEX_LUT[ord(_c)] = _i
for _i, _c in enumerate("ABCDEF", 10):
    _HEX_LUT[ord(_c)] = _i


class DineroFormatError(ValueError):
    """A record in a dinero trace file could not be decoded."""


def write_dinero(trace: ReferenceTrace, path: Union[str, Path]) -> int:
    """Write a reference trace as a dinero text file; returns the
    number of records written."""
    addresses = trace.addresses
    n = len(addresses)
    lut = np.full(16, 255, dtype=np.uint8)
    for kind, din in _KIND_TO_DIN.items():
        lut[kind] = din
    labels = lut[trace.kind]
    with open(path, "w") as handle:
        for start in range(0, n, _CHUNK):
            # One join + one write per chunk; the per-element cost is a
            # single format expression over pre-extracted ints.
            addr = addresses[start:start + _CHUNK].tolist()
            lab = labels[start:start + _CHUNK].tolist()
            handle.write("\n".join(
                f"{d} {a:x}" for d, a in zip(lab, addr)))
            handle.write("\n")
    return n


def _parse_chunk(lines: list, first_line_number: int):
    """Decode one chunk of text lines; returns (addresses, kinds) with
    blank lines dropped."""
    arr = np.char.strip(np.char.replace(
        np.asarray(lines, dtype=np.str_), "\t", " "))
    arr = arr[np.char.str_len(arr) > 0]
    if len(arr) == 0:
        return (np.empty(0, dtype=np.uint32), np.empty(0, dtype=np.uint8))

    def fail(bad_mask: np.ndarray, what: str):
        idx = int(np.flatnonzero(bad_mask)[0])
        # Recover the original (1-based) line number of the bad record.
        nonblank = [i for i, line in enumerate(lines) if line.strip()]
        lineno = first_line_number + nonblank[idx]
        raise DineroFormatError(
            f"line {lineno}: {what}: {str(arr[idx])!r}")

    label, _, rest = np.char.partition(arr, " ").T
    addr_str = np.char.partition(np.char.lstrip(rest), " ")[:, 0]

    kinds = np.empty(len(arr), dtype=np.uint8)
    known = np.zeros(len(arr), dtype=bool)
    for din, kind in _DIN_TO_KIND.items():
        mask = label == str(din)
        kinds[mask] = kind
        known |= mask
    if not known.all():
        fail(~known, "unknown dinero label")

    width = np.char.str_len(addr_str)
    bad = (width == 0) | (width > 8)
    if bad.any():
        fail(bad, "missing or oversized address")
    padded = np.char.rjust(addr_str, 8, "0")
    # A U8 string array is a contiguous (n, 8) code-point matrix.
    chars = np.ascontiguousarray(padded).view(np.uint32).reshape(-1, 8)
    nibbles = _HEX_LUT[np.minimum(chars, 127)]
    bad = (chars > 127).any(axis=1) | (nibbles == 255).any(axis=1)
    if bad.any():
        fail(bad, "invalid hex address")
    addresses = np.zeros(len(arr), dtype=np.uint32)
    for col in range(8):
        addresses <<= np.uint32(4)
        addresses |= nibbles[:, col]
    return addresses, kinds


def read_dinero(path: Union[str, Path]) -> ReferenceTrace:
    """Read a dinero text file into a reference trace.

    Region nibbles are synthesised from the address (below 16 MB = RAM,
    otherwise flash) since the format does not carry them.  Raises
    :class:`DineroFormatError` on malformed records.
    """
    addr_chunks = []
    kind_chunks = []
    lineno = 1
    with open(path) as handle:
        while True:
            lines = handle.readlines(_CHUNK * 12)
            if not lines:
                break
            addresses, kinds = _parse_chunk(lines, lineno)
            lineno += len(lines)
            if len(addresses):
                addr_chunks.append(addresses)
                kind_chunks.append(kinds)
    if addr_chunks:
        addr_arr = np.concatenate(addr_chunks)
        kind_arr = np.concatenate(kind_chunks)
    else:
        addr_arr = np.empty(0, dtype=np.uint32)
        kind_arr = np.empty(0, dtype=np.uint8)
    region = np.where(addr_arr < (16 << 20), 0, 1).astype(np.uint8)
    return ReferenceTrace(addresses=addr_arr,
                          kinds=(kind_arr | (region << 4)).astype(np.uint8))
