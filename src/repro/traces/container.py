"""PTRC: the chunked, compressed, indexed on-disk trace container.

The replay pipeline records memory references as packed uint64 tokens
(``addr | kinds_byte << 32`` — the profiler's in-RAM format).  A PTRC
file stores that token stream in fixed-size chunks so the cache layer
can simulate population-scale traces out of core: chunks are written
incrementally during replay, and read back either as zero-copy numpy
views over an ``mmap`` (``raw`` codec) or through a bounded decode
window (``zlib``/``zstd`` codecs) — resident memory never exceeds a
few chunks no matter how large the archive is.

On-disk layout (all integers little-endian)::

    header   32 B   magic "PTRC01", version, codec, chunk_tokens
    frames   N ×    frame header 24 B ("PTCK", payload bytes, token
                    count, crc32 of the *raw* token bytes, first/last
                    address) + payload
    index    N × 28 B   one record per chunk: payload offset, payload
                    bytes, token count, crc32, first/last address
    manifest JSON   session metadata, codec, token totals, sha256
                    digest of the raw token stream, archive membership
    footer   56 B   offsets/sizes of index + manifest, total tokens,
                    crc32 of the index block, magic "PTRCEND1"

Every chunk frame is self-describing, so a file whose writer died
before the footer was written (a *torn tail*) is recoverable by
walking frames from the header — :func:`scan_frames` underlies
``repro.resilience.salvage.salvage_container``.  Frame headers are
24 bytes and payloads are multiples of 8, so raw-codec payloads are
always 8-byte aligned and the mmap views are true zero-copy arrays.

The digest is computed over the *uncompressed* token bytes: the same
trace has the same identity no matter which codec stored it.  The
fleet journal records it per session and verifies it on ``--resume``.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from hashlib import sha256
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..device.memmap import KIND_WRITE, REGION_HW

MAGIC = b"PTRC01"
VERSION = 1
FRAME_MAGIC = b"PTCK"
FOOTER_MAGIC = b"PTRCEND1"

_HEADER = struct.Struct("<6sH8sII8x")          # 32 bytes
_FRAME = struct.Struct("<4sIIIII")             # 24 bytes
_FOOTER = struct.Struct("<QQQQQI4x8s")         # 56 bytes
HEADER_SIZE = _HEADER.size
FRAME_HEADER_SIZE = _FRAME.size
FOOTER_SIZE = _FOOTER.size

#: Default tokens per chunk: 1 Mi tokens = 8 MiB raw.  Large enough
#: that zlib gets real context and the per-chunk kernel set-up cost
#: amortizes, small enough that a decode window stays far under the
#: 256 MB out-of-core budget.
DEFAULT_CHUNK_TOKENS = 1 << 20

_MASK32 = np.uint64(0xFFFFFFFF)

_INDEX_DTYPE = np.dtype([
    ("offset", "<u8"),    # file offset of the chunk *payload*
    ("nbytes", "<u4"),    # payload size as stored (compressed)
    ("tokens", "<u4"),    # token count
    ("crc32", "<u4"),     # crc32 of the raw (uncompressed) token bytes
    ("first", "<u4"),     # first address in the chunk
    ("last", "<u4"),      # last address in the chunk
])


class TraceContainerError(ValueError):
    """A PTRC file is not one, is torn, or failed an integrity check."""


# -- codecs ---------------------------------------------------------------

def _load_zstd():
    """The zstd module if any binding is importable, else ``None``.
    The container gates zstd behind this probe instead of requiring
    it: zlib is always available and is the default codec."""
    try:
        import zstandard  # type: ignore
        return ("zstandard", zstandard)
    except ImportError:
        pass
    try:
        from compression import zstd  # type: ignore
        return ("compression.zstd", zstd)
    except ImportError:
        return None


_ZSTD = _load_zstd()


def available_codecs() -> Tuple[str, ...]:
    codecs = ["raw", "zlib"]
    if _ZSTD is not None:
        codecs.append("zstd")
    return tuple(codecs)


def _check_codec(codec: str) -> None:
    if codec in ("raw", "zlib"):
        return
    if codec == "zstd":
        if _ZSTD is None:
            raise TraceContainerError(
                "codec 'zstd' requires the zstandard module, which is "
                "not installed — use 'zlib' (default) or 'raw'")
        return
    raise TraceContainerError(
        f"unknown codec {codec!r} (known: raw, zlib, zstd)")


def _encode(codec: str, level: int, raw: bytes) -> bytes:
    if codec == "raw":
        return raw
    if codec == "zlib":
        return zlib.compress(raw, level)
    name, mod = _ZSTD  # type: ignore[misc]
    if name == "zstandard":
        return mod.ZstdCompressor(level=level).compress(raw)
    return mod.compress(raw, level)


def _decode(codec: str, payload: bytes, raw_nbytes: int) -> bytes:
    if codec == "raw":
        return payload
    try:
        if codec == "zlib":
            return zlib.decompress(payload)
        name, mod = _ZSTD  # type: ignore[misc]
        if name == "zstandard":
            return mod.ZstdDecompressor().decompress(
                payload, max_output_size=raw_nbytes)
        return mod.decompress(payload)
    except Exception as exc:
        # Corrupt payload bytes surface as codec-specific errors
        # (zlib.error, ZstdError); containers promise one typed error.
        raise TraceContainerError(
            f"undecodable {codec} chunk payload: {exc}") from exc


# -- token packing --------------------------------------------------------

def pack_tokens(addresses: np.ndarray, kinds: np.ndarray) -> np.ndarray:
    """(addresses, packed kinds byte) -> uint64 token array, the
    profiler's ``addr | kinds << 32`` convention."""
    return (addresses.astype(np.uint64) & _MASK32) \
        | (kinds.astype(np.uint64) << np.uint64(32))


def unpack_tokens(tokens: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """uint64 token array -> (uint32 addresses, uint8 kinds byte)."""
    return ((tokens & _MASK32).astype(np.uint32),
            (tokens >> np.uint64(32)).astype(np.uint8))


def cache_chunks(token_chunks: Iterable[np.ndarray],
                 memory_only: bool = True,
                 ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Adapt a token-chunk stream for the out-of-core cache kernels:
    yields ``(addresses, writes)`` per chunk, with hardware-register
    references dropped (``ReferenceTrace.memory_only`` semantics).
    Empty chunks are skipped — the kernels' chunk protocol carries no
    information in them."""
    for chunk in token_chunks:
        addrs, kinds = unpack_tokens(np.asarray(chunk, dtype=np.uint64))
        if memory_only:
            mask = (kinds >> 4) != REGION_HW
            addrs = addrs[mask]
            kinds = kinds[mask]
        if len(addrs):
            yield addrs, (kinds & 0x0F) == KIND_WRITE


def reference_counts(token_chunks: Iterable[np.ndarray]) -> dict:
    """``ReferenceTrace.counts()``-shaped region/kind totals from a
    token-chunk stream, one chunk resident at a time."""
    from ..device.memmap import (KIND_FETCH, KIND_READ, REGION_FLASH,
                                 REGION_RAM)
    packed = np.zeros(256, dtype=np.int64)
    for chunk in token_chunks:
        kinds = (np.asarray(chunk, dtype=np.uint64)
                 >> np.uint64(32)).astype(np.uint8)
        packed += np.bincount(kinds, minlength=256)
    out = {}
    for region, name in [(REGION_RAM, "ram"), (REGION_FLASH, "flash"),
                         (REGION_HW, "hw")]:
        base = region << 4
        out[name] = int(packed[base:base + 16].sum())
    for kind, name in [(KIND_FETCH, "fetch"), (KIND_READ, "read"),
                       (KIND_WRITE, "write")]:
        out[name] = int(packed[kind::16].sum())
    return out


# -- writer ---------------------------------------------------------------

class ContainerWriter:
    """Incremental PTRC writer.

    Feed it uint64 token blocks of any size with :meth:`append_tokens`
    (the profiler's flush path calls it chunk by chunk during replay);
    it re-chunks them to ``chunk_tokens`` and writes one frame per
    chunk.  :meth:`close` flushes the tail, then writes index,
    manifest and footer.  Until ``close`` returns the file has no
    footer — a crash leaves a torn but salvageable prefix.
    """

    def __init__(self, path, *, codec: str = "zlib",
                 chunk_tokens: int = DEFAULT_CHUNK_TOKENS,
                 level: int = 6,
                 session: Optional[dict] = None,
                 archive: Optional[dict] = None):
        _check_codec(codec)
        if chunk_tokens < 1:
            raise TraceContainerError("chunk_tokens must be >= 1")
        self.path = os.fspath(path)
        self.codec = codec
        self.chunk_tokens = int(chunk_tokens)
        self.level = level
        self.session = dict(session or {})
        self.archive = dict(archive) if archive else None
        self._buf = np.empty(self.chunk_tokens, dtype=np.uint64)
        self._fill = 0
        self._entries: List[tuple] = []
        self._digest = sha256()
        self._tokens = 0
        self._closed = False
        self._manifest: Optional[dict] = None
        self._fh = open(self.path, "wb")
        try:
            self._fh.write(_HEADER.pack(
                MAGIC, VERSION, codec.encode("ascii").ljust(8, b"\0"),
                self.chunk_tokens, 0))
        except BaseException:
            self._fh.close()
            raise

    # -- feeding ----------------------------------------------------------
    def append_tokens(self, tokens: np.ndarray) -> None:
        if self._closed:
            raise TraceContainerError("writer is closed")
        tokens = np.ascontiguousarray(tokens, dtype=np.uint64)
        pos = 0
        n = len(tokens)
        while pos < n:
            take = min(self.chunk_tokens - self._fill, n - pos)
            self._buf[self._fill:self._fill + take] = tokens[pos:pos + take]
            self._fill += take
            pos += take
            if self._fill == self.chunk_tokens:
                self._emit(self._buf)
                self._fill = 0

    def append_reference(self, addresses: np.ndarray,
                         kinds: np.ndarray) -> None:
        """Convenience: append an (addresses, kinds) block."""
        self.append_tokens(pack_tokens(addresses, kinds))

    def _emit(self, chunk: np.ndarray) -> None:
        raw = chunk.astype("<u8", copy=False).tobytes()
        self._digest.update(raw)
        crc = zlib.crc32(raw)
        payload = _encode(self.codec, self.level, raw)
        first = int(chunk[0] & _MASK32)
        last = int(chunk[-1] & _MASK32)
        self._fh.write(_FRAME.pack(FRAME_MAGIC, len(payload), len(chunk),
                                   crc, first, last))
        offset = self._fh.tell()
        self._fh.write(payload)
        self._entries.append((offset, len(payload), len(chunk),
                              crc, first, last))
        self._tokens += len(chunk)

    # -- finishing --------------------------------------------------------
    @property
    def tokens_written(self) -> int:
        return self._tokens + self._fill

    @property
    def digest(self) -> str:
        """The sha256 of the raw token stream.  Final once closed."""
        if self._manifest is not None:
            return self._manifest["digest"]
        tail = self._buf[:self._fill].astype("<u8", copy=False).tobytes()
        d = self._digest.copy()
        d.update(tail)
        return d.hexdigest()

    @property
    def manifest(self) -> Optional[dict]:
        return self._manifest

    def close(self) -> dict:
        """Flush the tail chunk, write index + manifest + footer, and
        return the manifest."""
        if self._closed:
            return self._manifest  # type: ignore[return-value]
        if self._fill:
            self._emit(self._buf[:self._fill])
            self._fill = 0
        index = np.zeros(len(self._entries), dtype=_INDEX_DTYPE)
        for i, entry in enumerate(self._entries):
            index[i] = entry
        index_blob = index.tobytes()
        manifest = {
            "format": "PTRC",
            "version": VERSION,
            "codec": self.codec,
            "chunk_tokens": self.chunk_tokens,
            "tokens": self._tokens,
            "chunks": len(self._entries),
            "payload_bytes": int(index["nbytes"].sum()) if len(index) else 0,
            "digest": self._digest.hexdigest(),
            "session": self.session,
        }
        if self.archive is not None:
            manifest["archive"] = self.archive
        manifest_blob = json.dumps(
            manifest, sort_keys=True, separators=(",", ":")).encode("utf-8")
        index_offset = self._fh.tell()
        self._fh.write(index_blob)
        manifest_offset = self._fh.tell()
        self._fh.write(manifest_blob)
        self._fh.write(_FOOTER.pack(
            index_offset, len(index_blob), manifest_offset,
            len(manifest_blob), self._tokens, zlib.crc32(index_blob),
            FOOTER_MAGIC))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._closed = True
        self._manifest = manifest
        return manifest

    def abort(self) -> None:
        """Close the handle without finalizing (leaves a torn file)."""
        if not self._closed:
            self._fh.close()
            self._closed = True

    def __enter__(self) -> "ContainerWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


# -- reader ---------------------------------------------------------------

class TraceContainer:
    """A PTRC file opened for reading.

    Raw-codec chunks come back as zero-copy ``uint64`` views over one
    shared mmap; compressed chunks are decoded one bounded window at a
    time.  Either way :meth:`chunks` never materializes more than one
    chunk of raw tokens.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._fh = open(self.path, "rb")
        try:
            size = os.fstat(self._fh.fileno()).st_size
            if size < HEADER_SIZE + FOOTER_SIZE:
                raise TraceContainerError(
                    f"{self.path}: too short to be a PTRC container "
                    "(torn tail? try salvage_container)")
            head = self._fh.read(HEADER_SIZE)
            magic, version, codec_raw, chunk_tokens, _flags = \
                _HEADER.unpack(head)
            if magic != MAGIC:
                raise TraceContainerError(
                    f"{self.path}: bad magic {magic!r} (not a PTRC file)")
            if version != VERSION:
                raise TraceContainerError(
                    f"{self.path}: unsupported PTRC version {version}")
            self.codec = codec_raw.rstrip(b"\0").decode("ascii")
            _check_codec(self.codec)
            self.chunk_tokens = chunk_tokens
            self._fh.seek(size - FOOTER_SIZE)
            (index_offset, index_nbytes, manifest_offset, manifest_nbytes,
             tokens, index_crc, footer_magic) = \
                _FOOTER.unpack(self._fh.read(FOOTER_SIZE))
            if footer_magic != FOOTER_MAGIC:
                raise TraceContainerError(
                    f"{self.path}: missing footer — torn container "
                    "(writer died before close; try salvage_container)")
            self._fh.seek(index_offset)
            index_blob = self._fh.read(index_nbytes)
            if len(index_blob) != index_nbytes \
                    or zlib.crc32(index_blob) != index_crc:
                raise TraceContainerError(
                    f"{self.path}: index block corrupt")
            self.index = np.frombuffer(index_blob, dtype=_INDEX_DTYPE)
            self._fh.seek(manifest_offset)
            try:
                self.manifest = json.loads(
                    self._fh.read(manifest_nbytes).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise TraceContainerError(
                    f"{self.path}: manifest corrupt: {exc}") from exc
            self.tokens = int(tokens)
            if int(self.index["tokens"].sum()) != self.tokens:
                raise TraceContainerError(
                    f"{self.path}: index token total "
                    f"{int(self.index['tokens'].sum())} != footer "
                    f"{self.tokens}")
            # Only the raw codec hands out zero-copy views into the
            # file, so only it needs the mapping; compressed chunks
            # are pread() one at a time — touched map pages would
            # otherwise stay resident and streaming RSS would grow
            # with the file instead of staying one-chunk flat.
            self._mmap = None
            if size > 0 and self.codec == "raw":
                import mmap as _mmap
                self._mmap = _mmap.mmap(self._fh.fileno(), 0,
                                        access=_mmap.ACCESS_READ)
        except BaseException:
            self._fh.close()
            raise

    # -- introspection ----------------------------------------------------
    @property
    def digest(self) -> str:
        return self.manifest.get("digest", "")

    @property
    def n_chunks(self) -> int:
        return len(self.index)

    def __len__(self) -> int:
        return self.tokens

    # -- access -----------------------------------------------------------
    def chunk(self, i: int) -> np.ndarray:
        """Chunk ``i`` as a uint64 token array (zero-copy for raw)."""
        entry = self.index[i]
        offset = int(entry["offset"])
        nbytes = int(entry["nbytes"])
        count = int(entry["tokens"])
        if self.codec == "raw":
            return np.frombuffer(self._mmap, dtype="<u8",
                                 count=count, offset=offset)
        payload = os.pread(self._fh.fileno(), nbytes, offset)
        if len(payload) != nbytes:
            raise TraceContainerError(
                f"{self.path}: chunk {i} short read "
                f"({len(payload)} of {nbytes} bytes)")
        raw = _decode(self.codec, payload, count * 8)
        if len(raw) != count * 8:
            raise TraceContainerError(
                f"{self.path}: chunk {i} decoded to {len(raw)} bytes, "
                f"expected {count * 8}")
        return np.frombuffer(raw, dtype="<u8")

    def chunks(self, start: int = 0,
               stop: Optional[int] = None) -> Iterator[np.ndarray]:
        """Iterate token chunks ``start..stop`` (bounded memory)."""
        stop = len(self.index) if stop is None else stop
        for i in range(start, stop):
            yield self.chunk(i)

    def reference_chunks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate ``(addresses, kinds)`` pairs, one per chunk."""
        for chunk in self.chunks():
            yield unpack_tokens(chunk)

    def cache_chunks(self, memory_only: bool = True,
                     ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate ``(addresses, writes)`` pairs for the out-of-core
        cache kernels (hardware references dropped by default)."""
        return cache_chunks(self.chunks(), memory_only=memory_only)

    def counts(self) -> dict:
        """``ReferenceTrace.counts()``-shaped totals, streamed chunk by
        chunk (the whole trace is never resident)."""
        return reference_counts(self.chunks())

    def tokens_array(self) -> np.ndarray:
        """The whole trace as one uint64 array (materializes!  For
        small traces and tests; population archives should stream)."""
        if not len(self.index):
            return np.empty(0, dtype=np.uint64)
        return np.concatenate(list(self.chunks()))

    def reference_trace(self):
        """The whole trace as a ReferenceTrace (materializes!)."""
        from ..emulator.profiling import ReferenceTrace
        addrs, kinds = unpack_tokens(self.tokens_array())
        return ReferenceTrace(addresses=addrs, kinds=kinds)

    # -- integrity --------------------------------------------------------
    def verify(self, deep: bool = True) -> dict:
        """Check per-chunk crc32s and the manifest digest.  Returns a
        report dict; raises :class:`TraceContainerError` on the first
        mismatch.  ``deep=False`` checks structure only (offsets and
        sizes in bounds), without decoding payloads."""
        size = os.fstat(self._fh.fileno()).st_size
        for i, entry in enumerate(self.index):
            end = int(entry["offset"]) + int(entry["nbytes"])
            if end > size:
                raise TraceContainerError(
                    f"{self.path}: chunk {i} extends past end of file")
        report = {"chunks": len(self.index), "tokens": self.tokens,
                  "codec": self.codec, "deep": bool(deep)}
        if not deep:
            return report
        digest = sha256()
        for i, entry in enumerate(self.index):
            chunk = self.chunk(i)
            raw = chunk.astype("<u8", copy=False).tobytes()
            if zlib.crc32(raw) != int(entry["crc32"]):
                raise TraceContainerError(
                    f"{self.path}: chunk {i} crc32 mismatch")
            if len(chunk):
                if int(chunk[0] & _MASK32) != int(entry["first"]) \
                        or int(chunk[-1] & _MASK32) != int(entry["last"]):
                    raise TraceContainerError(
                        f"{self.path}: chunk {i} first/last address "
                        "mismatch")
            digest.update(raw)
        if digest.hexdigest() != self.digest:
            raise TraceContainerError(
                f"{self.path}: digest mismatch — manifest says "
                f"{self.digest[:12]}…, stream is "
                f"{digest.hexdigest()[:12]}…")
        report["digest"] = self.digest
        return report

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        self._fh.close()

    def __enter__(self) -> "TraceContainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_container(path) -> TraceContainer:
    return TraceContainer(path)


def open_chunk_source(path) -> Union[TraceContainer, "TraceArchive"]:
    """A chunk source for the out-of-core cache layer: a single PTRC
    file, or an archive directory (streams all members)."""
    path = os.fspath(path)
    if os.path.isdir(path):
        return TraceArchive(path)
    return TraceContainer(path)


def write_container(tokens: Union[np.ndarray, Iterable[np.ndarray]],
                    path, **kwargs) -> dict:
    """Write a token array (or an iterable of token blocks) to a PTRC
    file; returns the manifest."""
    with ContainerWriter(path, **kwargs) as writer:
        if isinstance(tokens, np.ndarray):
            writer.append_tokens(tokens)
        else:
            for block in tokens:
                writer.append_tokens(np.asarray(block, dtype=np.uint64))
    return writer.manifest  # type: ignore[return-value]


def from_reference_trace(trace, path, **kwargs) -> dict:
    """Write a ReferenceTrace to a PTRC file; returns the manifest.
    Streams through the trace's ``chunks()`` windows, so the packed
    uint64 copy never exceeds one chunk."""
    with ContainerWriter(path, **kwargs) as writer:
        if hasattr(trace, "chunks"):
            for addrs, kinds in trace.chunks():
                writer.append_reference(addrs, kinds)
        else:
            writer.append_reference(trace.addresses, trace.kinds)
    return writer.manifest  # type: ignore[return-value]


# -- torn-tail recovery ---------------------------------------------------

def scan_frames(path) -> Tuple[List[dict], List[Tuple[str, str]], dict]:
    """Walk chunk frames from the header, ignoring index and footer.

    The recovery primitive behind salvage: returns ``(entries,
    problems, info)`` where ``entries`` are index-record dicts for
    every intact chunk prefix, ``problems`` is a list of ``(code,
    message)`` describing where and why the walk stopped, and ``info``
    carries the parsed header fields.  A clean, footer-complete file
    scans with no problems (the index/manifest/footer region is
    recognized and skipped).
    """
    problems: List[Tuple[str, str]] = []
    entries: List[dict] = []
    with open(path, "rb") as fh:
        size = os.fstat(fh.fileno()).st_size
        head = fh.read(HEADER_SIZE)
        if len(head) < HEADER_SIZE:
            return [], [("truncated-header",
                         f"file is {size} bytes, header needs "
                         f"{HEADER_SIZE}")], {}
        magic, version, codec_raw, chunk_tokens, _flags = \
            _HEADER.unpack(head)
        if magic != MAGIC:
            return [], [("bad-magic",
                         f"magic {magic!r} is not {MAGIC!r}")], {}
        codec = codec_raw.rstrip(b"\0").decode("ascii", "replace")
        info = {"version": version, "codec": codec,
                "chunk_tokens": chunk_tokens, "size": size}
        if version != VERSION:
            return [], [("bad-version",
                         f"unsupported version {version}")], info
        try:
            _check_codec(codec)
        except TraceContainerError as exc:
            return [], [("bad-codec", str(exc))], info
        pos = HEADER_SIZE
        while pos < size:
            fh.seek(pos)
            frame_head = fh.read(FRAME_HEADER_SIZE)
            if len(frame_head) < FRAME_HEADER_SIZE:
                problems.append((
                    "torn-frame-header",
                    f"chunk {len(entries)}: only "
                    f"{len(frame_head)} of {FRAME_HEADER_SIZE} header "
                    f"bytes at offset {pos}"))
                break
            fmagic, nbytes, count, crc, first, last = \
                _FRAME.unpack(frame_head)
            if fmagic != FRAME_MAGIC:
                # Most likely the index block of a complete file —
                # stop quietly; a trailing-garbage diagnosis belongs
                # to the caller comparing against the footer.
                break
            payload = fh.read(nbytes)
            if len(payload) < nbytes:
                problems.append((
                    "torn-chunk",
                    f"chunk {len(entries)}: only {len(payload)} of "
                    f"{nbytes} payload bytes at offset "
                    f"{pos + FRAME_HEADER_SIZE}"))
                break
            try:
                raw = _decode(codec, payload, count * 8)
            except Exception as exc:
                problems.append((
                    "undecodable-chunk",
                    f"chunk {len(entries)}: payload does not decode: "
                    f"{exc}"))
                break
            if len(raw) != count * 8 or zlib.crc32(raw) != crc:
                problems.append((
                    "corrupt-chunk",
                    f"chunk {len(entries)}: crc or length mismatch "
                    f"(header says {count} tokens, crc {crc:#010x})"))
                break
            entries.append({"offset": pos + FRAME_HEADER_SIZE,
                            "nbytes": nbytes, "tokens": count,
                            "crc32": crc, "first": first, "last": last})
            pos += FRAME_HEADER_SIZE + nbytes
    return entries, problems, info


def recover_container(path, out_path, *,
                      session: Optional[dict] = None) -> Tuple[dict, dict]:
    """Rewrite the intact chunk prefix of a (possibly torn) container
    as a clean, footer-complete PTRC file at ``out_path``.

    Returns ``(manifest, recovery)`` where ``recovery`` reports what
    was kept and dropped.  Raises :class:`TraceContainerError` when
    nothing recoverable remains (bad magic / truncated header).
    """
    entries, problems, info = scan_frames(path)
    if not entries and problems and problems[0][0] in (
            "truncated-header", "bad-magic", "bad-version", "bad-codec"):
        raise TraceContainerError(
            f"{os.fspath(path)}: unrecoverable: {problems[0][1]}")
    codec = info.get("codec", "zlib")
    chunk_tokens = info.get("chunk_tokens", DEFAULT_CHUNK_TOKENS)
    kept_tokens = 0
    with open(path, "rb") as src, \
            ContainerWriter(out_path, codec=codec,
                            chunk_tokens=chunk_tokens,
                            session=session) as writer:
        for entry in entries:
            src.seek(entry["offset"])
            payload = src.read(entry["nbytes"])
            raw = _decode(codec, payload, entry["tokens"] * 8)
            writer.append_tokens(np.frombuffer(raw, dtype="<u8"))
            kept_tokens += entry["tokens"]
    recovery = {
        "chunks_kept": len(entries),
        "tokens_kept": kept_tokens,
        "problems": [{"code": code, "message": msg}
                     for code, msg in problems],
    }
    return writer.manifest, recovery  # type: ignore[return-value]


# -- multi-session archives -----------------------------------------------

ARCHIVE_MANIFEST = "archive.json"
ARCHIVE_FORMAT = "PTRC-archive"


class TraceArchive:
    """A directory of member PTRC files with a JSON membership
    manifest — the fleet's per-campaign trace store.

    Members are addressed by id (the fleet uses session ids); the
    manifest records each member's file name, digest and token count,
    plus campaign-level metadata.  :meth:`chunks` chains all members'
    chunk streams, so a multi-hundred-million-reference population
    trace simulates through the same bounded-memory kernel path as a
    single session.
    """

    def __init__(self, root, *, create: bool = False,
                 meta: Optional[dict] = None):
        self.root = os.fspath(root)
        self._manifest_path = os.path.join(self.root, ARCHIVE_MANIFEST)
        if os.path.exists(self._manifest_path):
            with open(self._manifest_path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if data.get("format") != ARCHIVE_FORMAT:
                raise TraceContainerError(
                    f"{self._manifest_path}: not a PTRC archive manifest")
            self._data = data
        elif create:
            os.makedirs(self.root, exist_ok=True)
            self._data = {"format": ARCHIVE_FORMAT, "version": 1,
                          "meta": dict(meta or {}), "members": []}
            self._save()
        else:
            raise TraceContainerError(
                f"{self.root}: no {ARCHIVE_MANIFEST} (pass create=True "
                "to start a new archive)")

    def _save(self) -> None:
        blob = json.dumps(self._data, indent=2, sort_keys=True)
        tmp = self._manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path)

    @property
    def meta(self) -> dict:
        return self._data.get("meta", {})

    def members(self) -> List[dict]:
        return list(self._data["members"])

    def member(self, member_id: str) -> Optional[dict]:
        for m in self._data["members"]:
            if m["id"] == member_id:
                return dict(m)
        return None

    @property
    def total_tokens(self) -> int:
        return sum(int(m["tokens"]) for m in self._data["members"])

    def add(self, container_path, member_id: str) -> dict:
        """Register (or replace) a member.  The file must live inside
        the archive root; its manifest supplies digest and counts."""
        path = os.fspath(container_path)
        rel = os.path.relpath(path, self.root)
        if rel.startswith(".."):
            raise TraceContainerError(
                f"member file {path} is outside archive root {self.root}")
        with TraceContainer(path) as container:
            record = {"id": member_id, "file": rel,
                      "digest": container.digest,
                      "tokens": container.tokens,
                      "chunks": container.n_chunks,
                      "codec": container.codec}
        self._data["members"] = [m for m in self._data["members"]
                                 if m["id"] != member_id] + [record]
        self._data["members"].sort(key=lambda m: m["id"])
        self._save()
        return record

    def open(self, member_id: str) -> TraceContainer:
        record = self.member(member_id)
        if record is None:
            raise TraceContainerError(
                f"{self.root}: no member {member_id!r}")
        return TraceContainer(os.path.join(self.root, record["file"]))

    def chunks(self) -> Iterator[np.ndarray]:
        """Chain every member's chunk stream, in member-id order."""
        for record in self._data["members"]:
            with TraceContainer(
                    os.path.join(self.root, record["file"])) as container:
                yield from container.chunks()

    def cache_chunks(self, memory_only: bool = True,
                     ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        return cache_chunks(self.chunks(), memory_only=memory_only)

    def counts(self) -> dict:
        """Archive-wide ``ReferenceTrace.counts()``-shaped totals,
        streamed member by member."""
        return reference_counts(self.chunks())

    def verify(self, deep: bool = False) -> Dict[str, dict]:
        """Verify every member (digest match against the membership
        record; ``deep`` adds the per-chunk crc walk)."""
        reports = {}
        for record in self._data["members"]:
            with TraceContainer(
                    os.path.join(self.root, record["file"])) as container:
                if container.digest != record["digest"]:
                    raise TraceContainerError(
                        f"{self.root}: member {record['id']} digest "
                        f"mismatch — manifest says "
                        f"{record['digest'][:12]}…, file has "
                        f"{container.digest[:12]}…")
                reports[record["id"]] = container.verify(deep=deep)
        return reports
