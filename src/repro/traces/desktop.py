"""Synthetic desktop address traces (Figure 7's comparison data).

Figure 7 shows miss rates for a desktop trace from BYU's Trace
Distribution Center, demonstrating that the small caches in the Palm
study "exhibit the same miss rate trends found in larger caches used in
desktop systems".  That repository is long gone; this module generates
a synthetic desktop-style trace with a controlled locality structure —
a program counter walking basic blocks over a Zipf-popular set of
functions, a call stack, and data references split across stack, heap
and globals — which is all the trend comparison requires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np


@dataclass
class DesktopTraceConfig:
    """Knobs for the synthetic desktop workload."""

    functions: int = 400            # distinct code regions
    function_size: int = 512        # bytes of code each
    mean_block: int = 6             # instructions per basic block
    call_probability: float = 0.08
    return_probability: float = 0.07
    data_probability: float = 0.35  # data refs per instruction
    stack_share: float = 0.45       # of data refs
    heap_objects: int = 2000
    heap_object_size: int = 64
    global_size: int = 16 * 1024
    zipf_s: float = 1.2             # function/object popularity skew

    code_base: int = 0x0040_0000
    heap_base: int = 0x0800_0000
    stack_base: int = 0x7FFF_0000
    global_base: int = 0x0060_0000


def _zipf_weights(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -s
    return weights / weights.sum()


def generate_desktop_trace(length: int, seed: int = 0,
                           config: DesktopTraceConfig | None = None
                           ) -> np.ndarray:
    """Generate ``length`` byte addresses of a desktop-style workload."""
    cfg = config or DesktopTraceConfig()
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)

    func_weights = _zipf_weights(cfg.functions, cfg.zipf_s)
    func_choice = np_rng.choice(cfg.functions, size=length,
                                p=func_weights)
    heap_weights = _zipf_weights(cfg.heap_objects, cfg.zipf_s)
    heap_choice = np_rng.choice(cfg.heap_objects, size=length,
                                p=heap_weights)

    out = np.empty(length, dtype=np.uint32)
    pos = 0
    func_cursor = 0  # rolling index into the pre-drawn choices

    pc_func = 0
    pc_off = 0
    call_stack: list = []
    stack_ptr = cfg.stack_base

    while pos < length:
        # --- one basic block of instruction fetches ---
        block = max(1, int(rng.expovariate(1.0 / cfg.mean_block)))
        for _ in range(block):
            if pos >= length:
                break
            addr = cfg.code_base + pc_func * cfg.function_size + pc_off
            out[pos] = addr & 0xFFFFFFFF
            pos += 1
            pc_off = (pc_off + 2) % cfg.function_size

            # --- interleaved data reference ---
            if pos < length and rng.random() < cfg.data_probability:
                roll = rng.random()
                if roll < cfg.stack_share:
                    daddr = stack_ptr - rng.randrange(0, 64, 4)
                elif roll < cfg.stack_share + 0.35:
                    obj = int(heap_choice[func_cursor % length])
                    daddr = (cfg.heap_base + obj * cfg.heap_object_size
                             + rng.randrange(0, cfg.heap_object_size, 4))
                else:
                    daddr = cfg.global_base + rng.randrange(
                        0, cfg.global_size, 4)
                out[pos] = daddr & 0xFFFFFFFF
                pos += 1

        # --- control flow ---
        roll = rng.random()
        if roll < cfg.call_probability and len(call_stack) < 64:
            call_stack.append((pc_func, pc_off))
            stack_ptr -= 32
            pc_func = int(func_choice[func_cursor % length])
            func_cursor += 1
            pc_off = 0
        elif roll < cfg.call_probability + cfg.return_probability and call_stack:
            pc_func, pc_off = call_stack.pop()
            stack_ptr += 32
        else:
            # Branch within the current function.
            pc_off = rng.randrange(0, cfg.function_size, 2)

    return out
