"""Address traces: the profiler's reference traces, the PTRC streaming
container, dinero interchange, and synthetic desktop workloads for the
Figure 7 comparison."""

from ..emulator.profiling import ReferenceTrace
from .container import (
    DEFAULT_CHUNK_TOKENS,
    ContainerWriter,
    TraceArchive,
    TraceContainer,
    TraceContainerError,
    available_codecs,
    from_reference_trace,
    open_chunk_source,
    open_container,
    recover_container,
    scan_frames,
    write_container,
)
from .desktop import DesktopTraceConfig, generate_desktop_trace
from .dinero import (
    DineroFormatError,
    container_to_dinero,
    dinero_to_container,
    read_dinero,
    read_dinero_chunks,
    write_dinero,
    write_dinero_chunks,
)

__all__ = [
    "ReferenceTrace",
    "DesktopTraceConfig",
    "generate_desktop_trace",
    "DEFAULT_CHUNK_TOKENS",
    "ContainerWriter",
    "TraceArchive",
    "TraceContainer",
    "TraceContainerError",
    "available_codecs",
    "from_reference_trace",
    "open_chunk_source",
    "open_container",
    "recover_container",
    "scan_frames",
    "write_container",
    "DineroFormatError",
    "container_to_dinero",
    "dinero_to_container",
    "read_dinero",
    "read_dinero_chunks",
    "write_dinero",
    "write_dinero_chunks",
]
