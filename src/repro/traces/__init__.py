"""Address traces: the profiler's reference traces plus synthetic
desktop workloads for the Figure 7 comparison."""

from ..emulator.profiling import ReferenceTrace
from .desktop import DesktopTraceConfig, generate_desktop_trace

__all__ = ["ReferenceTrace", "DesktopTraceConfig", "generate_desktop_trace"]
