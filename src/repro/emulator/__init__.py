"""The replay emulator (modified POSE): state import, tick-synchronous
playback, and profiling."""

from .playback import JitterModel, PlaybackDriver, PlaybackResult, replay_session
from .pose import Emulator, RomMismatchError
from .profiling import Profiler, ReferenceTrace, T_FLASH_CYCLES, T_RAM_CYCLES

__all__ = [
    "Emulator",
    "RomMismatchError",
    "JitterModel",
    "PlaybackDriver",
    "PlaybackResult",
    "replay_session",
    "Profiler",
    "ReferenceTrace",
    "T_RAM_CYCLES",
    "T_FLASH_CYCLES",
]
