"""Activity-log playback (§2.4.2).

The playback driver schedules the parsed log's synchronous events
against the emulated tick counter: "the emulated system's tick counter
is checked to see if it is greater than or equal to the tick timestamp
of the next event.  If it is time for the next event, the emulator
simulates the event" — here by latching the recorded sample into the
peripheral and raising its interrupt, so the ROM ISR, any installed
hacks, and the kernel all run exactly as they did on the handheld.

``KeyCurrentState`` and non-zero ``SysRandom`` calls are serviced from
their queues, as the paper describes.

The optional :class:`JitterModel` reproduces the *imperfections* the
paper observed in §3.3/§3.4 — short bursts of events arriving slightly
late (< 20 ticks, blamed on emulator thread scheduling) and the
host-approximated RTC — so the validation experiments can show the same
benign divergences.

Resilience extensions (see :mod:`repro.resilience`): the driver keeps
its injection schedule in a serializable side table, can capture a
:class:`~repro.resilience.checkpoint.Checkpoint` every N wall ticks
(full emulator state + its own cursors), and can
:meth:`~PlaybackDriver.resume_from` such a checkpoint, continuing the
replay to a final state byte-identical with an uninterrupted run.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional, Tuple

from ..device import constants as C
from ..device.peripherals import PenSample
from ..tracelog import ActivityLog, ParsedLog, parse_log
from ..tracelog.records import LogEventType, LogRecord
from .pose import Emulator

#: Default budget `_await_guest_reset` waits for a recorded soft reset
#: (was a hardcoded ``min(max_ticks, 100_000)`` deadline).
DEFAULT_RESET_TIMEOUT = 100_000


class GuestResetTimeout(RuntimeError):
    """The replay expected the guest to perform a recorded soft reset
    (a RESET record ends the epoch) but no boot happened within the
    ``reset_timeout`` budget.

    Carries the boot counts and ticks waited so callers (and the
    resilience policies) can report a localized, typed failure instead
    of a bare ``RuntimeError``.
    """

    def __init__(self, boots_expected: int, boots_seen: int,
                 ticks_waited: int, reset_timeout: int):
        self.boots_expected = boots_expected
        self.boots_seen = boots_seen
        self.ticks_waited = ticks_waited
        self.reset_timeout = reset_timeout
        super().__init__(
            f"expected a guest soft reset (boot count > {boots_expected}) "
            f"that never happened during replay: boot count still "
            f"{boots_seen} after waiting {ticks_waited} ticks "
            f"(reset_timeout={reset_timeout})")


class JitterModel:
    """Replay timing imperfections, off by default.

    * Event bursts: with probability ``burst_probability`` per event, a
      run of following events is delayed by up to ``max_delay`` ticks
      (the paper saw bursts "< 20 ticks" late, then a return to exact
      schedule).
    * RTC drift: the emulated RTC reads as host-approximated time, a
      few seconds off the tick-derived clock.
    """

    def __init__(self, seed: int = 0, burst_probability: float = 0.08,
                 max_delay: int = 19, burst_length: tuple = (2, 5),
                 rtc_drift_seconds: int = 3):
        self._rng = random.Random(seed)
        self.burst_probability = burst_probability
        self.max_delay = max_delay
        self.burst_length = burst_length
        self.rtc_drift_seconds = rtc_drift_seconds
        self._burst_left = 0
        self._burst_delay = 0

    def event_delay(self) -> int:
        if self._burst_left > 0:
            self._burst_left -= 1
            return self._burst_delay
        if self._rng.random() < self.burst_probability:
            self._burst_left = self._rng.randint(*self.burst_length) - 1
            self._burst_delay = self._rng.randint(1, self.max_delay)
            return self._burst_delay
        return 0

    def rtc_offset(self) -> int:
        return self._rng.randint(0, self.rtc_drift_seconds)

    # -- checkpoint support ------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the model (JSON-safe)."""
        version, internal, gauss = self._rng.getstate()
        return {
            "rng": [version, list(internal), gauss],
            "burst_left": self._burst_left,
            "burst_delay": self._burst_delay,
            "burst_probability": self.burst_probability,
            "max_delay": self.max_delay,
            "burst_length": list(self.burst_length),
            "rtc_drift_seconds": self.rtc_drift_seconds,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "JitterModel":
        model = cls(burst_probability=state["burst_probability"],
                    max_delay=state["max_delay"],
                    burst_length=tuple(state["burst_length"]),
                    rtc_drift_seconds=state["rtc_drift_seconds"])
        version, internal, gauss = state["rng"]
        model._rng.setstate((version, tuple(internal), gauss))
        model._burst_left = state["burst_left"]
        model._burst_delay = state["burst_delay"]
        return model


@dataclass
class PlaybackResult:
    """What happened during one replay."""

    events_injected: int = 0
    keystate_lookups: int = 0
    seeds_served: int = 0
    seeds_missing: int = 0
    start_tick: int = 0
    end_tick: int = 0
    instructions: int = 0
    delays_applied: List[int] = field(default_factory=list)


class _KeyStateQueue:
    """Serves the recorded KeyCurrentState bit fields by tick."""

    def __init__(self, records: List[LogRecord], result: PlaybackResult):
        self._records = records
        self._pos = 0
        self._result = result

    def lookup(self, tick: int, raw: int) -> int:
        self._result.keystate_lookups += 1
        while (self._pos + 1 < len(self._records)
               and self._records[self._pos + 1].tick <= tick):
            self._pos += 1
        if self._pos < len(self._records) and self._records[self._pos].tick <= tick:
            return self._records[self._pos].data
        return raw


class _RandomQueue:
    """Overrides non-zero SysRandom seeds from the recorded queue."""

    def __init__(self, records: List[LogRecord], result: PlaybackResult):
        self._records = records
        self._pos = 0
        self._result = result

    def next_seed(self, original: int) -> int:
        if self._pos < len(self._records):
            seed = self._records[self._pos].data
            self._pos += 1
            self._result.seeds_served += 1
            return seed
        self._result.seeds_missing += 1
        return original


#: Schedule-entry kinds (serialized into checkpoints).
_SCHED_PEN = "pen"
_SCHED_KEY = "key"
_SCHED_CARD_INSERT = "card+"
_SCHED_CARD_REMOVE = "card-"


class PlaybackDriver:
    """Replays one activity log on an emulator.

    Sessions containing soft resets (the RESET extension records) are
    split into tick epochs: the guest performs each reset *itself* —
    deterministically, driven by the replayed input — and the driver
    re-aligns the next epoch's schedule to the restarted tick counter.

    ``reset_timeout`` bounds how long `_await_guest_reset` waits for a
    recorded reset before raising :class:`GuestResetTimeout`.

    ``checkpoint_every`` (wall ticks) plus ``checkpoint_hook`` enable
    the resilience subsystem: at every multiple of ``checkpoint_every``
    during epoch drains the driver captures a full
    :class:`~repro.resilience.checkpoint.Checkpoint` and passes it to
    the hook.  The hook may raise to abort the run (the resilient
    runner uses this to implement its divergence policies).
    """

    def __init__(self, emulator: Emulator, log: ActivityLog,
                 jitter: Optional[JitterModel] = None,
                 reset_timeout: int = DEFAULT_RESET_TIMEOUT,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_hook: Optional[Callable] = None):
        from ..tracelog import split_epochs

        self.emulator = emulator
        self.log = log
        self.parsed: ParsedLog = parse_log(log)
        self.epochs = split_epochs(log)
        self.jitter = jitter
        self.reset_timeout = reset_timeout
        self.checkpoint_every = checkpoint_every
        self.checkpoint_hook = checkpoint_hook

        #: Serializable side table of every scheduled injection that may
        #: still be pending: ``(wall_tick, kind, payload)`` where pen and
        #: key payloads are ``(type, tick, rtc, data)`` record tuples.
        #: Entries strictly before the current tick are pruned lazily.
        self._sched: List[Tuple[int, str, Optional[tuple]]] = []
        self._keystate: Optional[_KeyStateQueue] = None
        self._randoms: Optional[_RandomQueue] = None
        self._drift: Optional[int] = None
        self._current_epoch = 0
        self._idle_grace_ticks = 200
        self._max_ticks = 100_000_000
        #: Armed by the fault-injection harness: pretend the recorded
        #: reset never happens, driving the GuestResetTimeout path.
        self._fault_stall_reset = False
        #: Called once per fresh run, after the session-start boot and
        #: before any epoch is scheduled (the fault harness arms its
        #: runtime faults here so they land inside the replay proper,
        #: not inside the boot).  Not re-fired on resume.
        self.session_start_hook: Optional[Callable[[], None]] = None

    # -- injection ------------------------------------------------------
    def _inject_pen(self, record: LogRecord) -> None:
        device = self.emulator.device
        device.digitizer.sample = PenSample(record.pen_down, record.pen_x,
                                            record.pen_y)
        device.intc.raise_int(C.INT_PEN)

    def _inject_key(self, record: LogRecord) -> None:
        device = self.emulator.device
        buttons = device.buttons
        buttons.last_event = record.data
        if record.key_down:
            buttons.state |= record.key_code
        else:
            buttons.state &= ~record.key_code
        device.intc.raise_int(C.INT_KEY)

    # -- schedule bookkeeping -------------------------------------------
    def _push_entry(self, tick: int, kind: str,
                    payload: Optional[tuple]) -> None:
        """Schedule one injection on the device and record it in the
        serializable side table."""
        device = self.emulator.device
        if kind == _SCHED_PEN or kind == _SCHED_KEY:
            record = LogRecord(LogEventType(payload[0]), payload[1],
                               payload[2], payload[3])
            if kind == _SCHED_PEN:
                device.schedule_call(tick, lambda r=record: self._inject_pen(r))
            else:
                device.schedule_call(tick, lambda r=record: self._inject_key(r))
        elif kind == _SCHED_CARD_INSERT:
            if self.emulator.card is None:
                raise RuntimeError(
                    "the log contains a card insertion but the "
                    "initial state carries no card image")
            device.schedule_card_insert(tick, self.emulator.card)
        elif kind == _SCHED_CARD_REMOVE:
            device.schedule_card_remove(tick)
        else:  # pragma: no cover - internal invariant
            raise ValueError(f"unknown schedule entry kind {kind!r}")
        self._sched.append((tick, kind, payload))

    def _pending_entries(self, from_tick: int) -> List[list]:
        """Schedule entries not yet applied at a checkpoint at
        ``from_tick`` (stimuli at exactly the checkpoint tick have not
        been delivered yet — `_apply_due_stimuli` runs strictly before
        the tick counter reaches them)."""
        self._sched = [e for e in self._sched if e[0] >= from_tick]
        return [[tick, kind, list(payload) if payload else None]
                for tick, kind, payload in sorted(self._sched,
                                                  key=lambda e: e[0])]

    # -- the run -----------------------------------------------------------
    def run(self, idle_grace_ticks: int = 200,
            max_ticks: int = 100_000_000, reset: bool = False) -> PlaybackResult:
        """Replay the log.

        With ``reset=True`` the driver performs the session-start soft
        reset itself, after installing the replay overrides — required
        so the boot path's ``SysRandom`` seeding is served from the
        recorded queue (the handheld's hack logged it at collection
        time).
        """
        emulator = self.emulator
        kernel = emulator.kernel
        device = emulator.device
        self._idle_grace_ticks = idle_grace_ticks
        self._max_ticks = max_ticks

        result = PlaybackResult()
        self._install_overrides(result, random_pos=0)

        if reset:
            kernel.boot()
        result.start_tick = device.tick
        result.instructions = device.cpu.instructions
        if self.session_start_hook is not None:
            self.session_start_hook()

        try:
            self._run_epochs(result, start_epoch=0, resume_drain=None)
            device.run_until_idle(max_ticks=max_ticks)
        finally:
            self._clear_overrides()

        return self._finalize(result)

    def resume_from(self, checkpoint, disable_jitter: bool = False,
                    max_ticks: Optional[int] = None) -> PlaybackResult:
        """Restart a replay from a checkpoint and run it to completion.

        The emulator must have been built with the same application set
        (and sizes) as the one that captured the checkpoint — the same
        equivalent-systems requirement as `load_state`.  With
        ``disable_jitter=True`` the remaining schedule runs without
        burst delays (the resilience ``resync`` policy), while the RTC
        drift already observed by the guest is preserved so the
        restored state stays consistent.
        """
        from ..resilience.checkpoint import restore_emulator

        driver_state = checkpoint.manifest.get("driver")
        if driver_state is None:
            raise ValueError("checkpoint carries no playback driver state")
        restore_emulator(self.emulator, checkpoint)

        kernel = self.emulator.kernel
        device = self.emulator.device
        self._idle_grace_ticks = driver_state["idle_grace_ticks"]
        self._max_ticks = (max_ticks if max_ticks is not None
                           else driver_state["max_ticks"])

        result = PlaybackResult(**driver_state["result"])
        jitter_state = driver_state.get("jitter")
        if jitter_state is not None and not disable_jitter:
            self.jitter = JitterModel.from_state_dict(jitter_state)
        else:
            self.jitter = None
        drift = driver_state.get("drift")
        self._install_overrides(result,
                                random_pos=driver_state["random_pos"],
                                drift=drift)

        epoch_index = driver_state["epoch_index"]
        phase = driver_state.get("phase", "drain")
        # During an inter-epoch reset wait the *previous* epoch's
        # keystate queue is still the installed override.
        keystate_epoch = epoch_index - 1 if phase == "await" else epoch_index
        if keystate_epoch >= 0:
            parsed = parse_log(self.epochs[keystate_epoch],
                               on_unknown="collect")
            keystate = _KeyStateQueue(parsed.keystate_queue, result)
            keystate._pos = driver_state["keystate_pos"]
            kernel.syscalls.key_state_override = keystate.lookup
            self._keystate = keystate

        self._sched = []
        for tick, kind, payload in driver_state["pending"]:
            self._push_entry(tick, kind,
                             tuple(payload) if payload is not None else None)

        drain = driver_state["drain"]
        try:
            if phase == "await":
                self._run_epochs(result, start_epoch=epoch_index,
                                 resume_drain=None,
                                 await_boots=driver_state["await_boots"])
            else:
                self._run_epochs(result, start_epoch=epoch_index,
                                 resume_drain=(drain["target"],
                                               drain["stop_at_reset"]))
            device.run_until_idle(max_ticks=self._max_ticks)
        finally:
            self._clear_overrides()

        return self._finalize(result)

    # -- override management -------------------------------------------
    def _install_overrides(self, result: PlaybackResult, random_pos: int = 0,
                           drift: Optional[int] = None) -> None:
        kernel = self.emulator.kernel
        device = self.emulator.device
        # The SysRandom seed queue is global: seeds are consumed one per
        # non-zero call, in session order, across tick epochs (each
        # epoch's boot consumes the seed its hack logged).
        randoms = _RandomQueue(self.parsed.random_queue, result)
        randoms._pos = random_pos
        self._randoms = randoms
        kernel.syscalls.random_seed_override = randoms.next_seed
        if drift is None and self.jitter is not None:
            drift = self.jitter.rtc_offset()
        self._drift = drift
        if drift is not None:
            rtc = device.rtc
            kernel.time_override = (
                lambda: rtc.seconds_at(device.tick) + drift)

    def _clear_overrides(self) -> None:
        kernel = self.emulator.kernel
        kernel.syscalls.key_state_override = None
        kernel.syscalls.random_seed_override = None
        kernel.time_override = None

    def _finalize(self, result: PlaybackResult) -> PlaybackResult:
        device = self.emulator.device
        result.end_tick = device.tick
        result.instructions = device.cpu.instructions - result.instructions
        return result

    # -- the epoch loop -------------------------------------------------
    def _run_epochs(self, result: PlaybackResult, start_epoch: int,
                    resume_drain: Optional[Tuple[int, bool]],
                    await_boots: Optional[int] = None) -> None:
        kernel = self.emulator.kernel
        prev_boots = kernel.boot_count
        for index in range(start_epoch, len(self.epochs)):
            epoch_log = self.epochs[index]
            if resume_drain is not None and index == start_epoch:
                # State (and schedule) already restored from checkpoint.
                target, stop_at_reset = resume_drain
            else:
                if index > 0:
                    boots = (await_boots
                             if await_boots is not None and index == start_epoch
                             else prev_boots)
                    prev_boots = self._await_guest_reset(boots, result, index)
                ends_with_reset = bool(
                    epoch_log.records
                    and epoch_log.records[-1].type == LogEventType.RESET)
                target = self._schedule_epoch(index, epoch_log, result)
                stop_at_reset = ends_with_reset
            self._drain_epoch(index, result, target, stop_at_reset)

    def _await_guest_reset(self, prev_boots: int, result: PlaybackResult,
                           epoch_index: int) -> int:
        """Advance until the guest performs its recorded soft reset
        (triggered deterministically by the replayed input).  Checkpoint
        boundaries crossed while waiting are honoured too — the wait is
        part of the replay timeline."""
        kernel = self.emulator.kernel
        device = self.emulator.device
        self._current_epoch = epoch_index
        start = device.tick
        deadline = start + min(self._max_ticks, self.reset_timeout)
        every = self.checkpoint_every
        while kernel.boot_count <= prev_boots or self._fault_stall_reset:
            if device.tick >= deadline:
                raise GuestResetTimeout(
                    boots_expected=prev_boots + 1,
                    boots_seen=kernel.boot_count,
                    ticks_waited=device.tick - start,
                    reset_timeout=self.reset_timeout)
            device.advance(device.tick + 1)
            if (every and self.checkpoint_hook is not None
                    and device.tick % every == 0):
                checkpoint = self.capture_checkpoint(
                    result, 0, False, phase="await", await_boots=prev_boots)
                self.checkpoint_hook(checkpoint)
        return kernel.boot_count

    def _schedule_epoch(self, index: int, epoch_log: ActivityLog,
                        result: PlaybackResult) -> int:
        """Install the epoch's keystate override and push its injection
        schedule; returns the drain target (wall tick)."""
        kernel = self.emulator.kernel
        device = self.emulator.device
        parsed = parse_log(epoch_log, on_unknown="collect")
        keystate = _KeyStateQueue(parsed.keystate_queue, result)
        kernel.syscalls.key_state_override = keystate.lookup
        self._keystate = keystate

        # Record ticks are guest-epoch ticks; wall schedule = offset +.
        epoch_offset = device.tick_offset
        last_tick = device.tick
        last_by_type: dict = {}
        for record in parsed.synchronous:
            delay = self.jitter.event_delay() if self.jitter else 0
            tick = epoch_offset + record.tick + delay
            # A delayed burst must stay in order and must not collapse
            # two same-peripheral events onto one tick (the second
            # would overwrite the latched sample before the ISR reads
            # the first) — the paper's bursts arrive late but intact.
            prev = last_by_type.get(record.type)
            if prev is not None and tick <= prev:
                tick = prev + 1
            last_by_type[record.type] = tick
            if delay:
                result.delays_applied.append(tick - epoch_offset - record.tick)
            kind = _SCHED_PEN if record.type == LogEventType.PEN else _SCHED_KEY
            self._push_entry(tick, kind, (int(record.type), record.tick,
                                          record.rtc, record.data))
            result.events_injected += 1
            last_tick = max(last_tick, tick)

        # Memory-card transitions are external inputs too: re-insert
        # the session's card at the recorded ticks (card extension).
        from ..device.memcard import NOTIFY_CARD_INSERTED, NOTIFY_CARD_REMOVED
        for record in parsed.notifications:
            tick = epoch_offset + record.tick
            if record.data == NOTIFY_CARD_INSERTED:
                self._push_entry(tick, _SCHED_CARD_INSERT, None)
            elif record.data == NOTIFY_CARD_REMOVED:
                self._push_entry(tick, _SCHED_CARD_REMOVE, None)
            else:
                continue
            result.events_injected += 1
            last_tick = max(last_tick, tick)

        return last_tick + self._idle_grace_ticks

    def _drain_epoch(self, index: int, result: PlaybackResult,
                     target: int, stop_at_reset: bool) -> None:
        """Advance the device to the epoch's drain target, stopping
        promptly at an epoch-ending reset (overshooting would deliver
        the next epoch's events against the wrong restarted tick
        counter) and pausing at checkpoint boundaries."""
        kernel = self.emulator.kernel
        device = self.emulator.device
        self._current_epoch = index
        boots = kernel.boot_count
        while device.tick < target:
            if stop_at_reset and kernel.boot_count != boots:
                return
            step = device.tick + 1 if stop_at_reset else target
            cp_tick = self._next_checkpoint_tick(device.tick)
            if cp_tick is not None:
                step = min(step, cp_tick)
            device.advance(step)
            if cp_tick is not None and device.tick == cp_tick:
                self._emit_checkpoint(result, target, stop_at_reset)

    def _next_checkpoint_tick(self, now: int) -> Optional[int]:
        if not self.checkpoint_every or self.checkpoint_hook is None:
            return None
        every = self.checkpoint_every
        return (now // every + 1) * every

    def _emit_checkpoint(self, result: PlaybackResult, target: int,
                         stop_at_reset: bool) -> None:
        checkpoint = self.capture_checkpoint(result, target, stop_at_reset)
        self.checkpoint_hook(checkpoint)

    def capture_checkpoint(self, result: PlaybackResult, target: int,
                           stop_at_reset: bool, phase: str = "drain",
                           await_boots: Optional[int] = None):
        """Capture a full checkpoint: emulator snapshot plus the
        driver's own cursors, pending schedule, and jitter state.

        ``phase`` records where the run was: ``"drain"`` (inside an
        epoch's drain loop) or ``"await"`` (between epochs, waiting for
        the guest's recorded reset; ``await_boots`` carries the boot
        count the wait compares against).
        """
        from ..resilience.checkpoint import capture_emulator

        device = self.emulator.device
        checkpoint = capture_emulator(self.emulator)
        state = dict(result=asdict(result))
        state["epoch_index"] = self._current_epoch
        state["phase"] = phase
        state["await_boots"] = await_boots
        state["drain"] = {"target": target, "stop_at_reset": stop_at_reset}
        state["keystate_pos"] = self._keystate._pos if self._keystate else 0
        state["random_pos"] = self._randoms._pos if self._randoms else 0
        state["pending"] = self._pending_entries(device.tick)
        state["jitter"] = (self.jitter.state_dict()
                           if self.jitter is not None else None)
        state["drift"] = self._drift
        state["idle_grace_ticks"] = self._idle_grace_ticks
        state["max_ticks"] = self._max_ticks
        checkpoint.manifest["driver"] = state
        return checkpoint


def replay_session(state, log: ActivityLog, apps=(), profile: bool = True,
                   trace_references: bool = True,
                   track_opcode_addresses: bool = False,
                   track_reference_pcs: bool = False,
                   jitter: Optional[JitterModel] = None,
                   emulator_kwargs: Optional[dict] = None,
                   reset_timeout: int = DEFAULT_RESET_TIMEOUT,
                   core: Optional[str] = None,
                   sanitize: bool = False,
                   sanitize_elide: bool = True,
                   fuse_threshold: Optional[int] = None,
                   on_fuse=None,
                   validate_codegen: bool = False,
                   trace_sink=None,
                   trace_spill: bool = False):
    """One-call replay: build the emulator, load β, apply δ.

    Returns ``(emulator, profiler, result)``; ``profiler`` is None when
    ``profile=False``.  ``track_opcode_addresses=True`` records the pc
    of every executed opcode for the static/dynamic cross-check;
    ``track_reference_pcs=True`` additionally attributes every data
    reference to its instruction for the semantic audit's region
    cross-check.  ``core`` selects the execution core (``"fast"``, the
    predecoded block interpreter and the default, or ``"simple"``, the
    stepping loop — bit-exact alternatives); it overrides any ``core``
    key in ``emulator_kwargs``.

    ``sanitize=True`` attaches the guest memory sanitizer for the whole
    replay (leak check at the end) and leaves it — detached, report
    intact — as ``emulator.sanitizer``.  ``sanitize_elide=False``
    disables the static check-elision set (full shadow checking; used
    by the differential suite).

    ``fuse_threshold`` overrides the superblock core's fusion trigger
    (``1`` fuses every block on first sight — the translation
    validator's corpus mode).  ``on_fuse`` is called with each fused
    block right after codegen.  ``validate_codegen=True`` runs the
    translation validator inline on every fused block and leaves the
    combined findings as ``emulator.codegen_report`` (a
    :class:`repro.analysis.static.findings.Report`).  All three are
    no-ops on cores without fused codegen (``core="simple"``) and
    inert when the sanitizer is attached, because the superblock core
    never dispatches fused bodies under shadow checking.

    ``trace_sink`` streams the reference trace into a PTRC
    :class:`repro.traces.container.ContainerWriter` while the replay
    runs; ``trace_spill=True`` additionally drops the in-RAM chunks so
    arbitrarily long sessions replay in bounded memory (the trace is
    then only readable from the container).
    """
    kwargs = dict(emulator_kwargs or {})
    if core is not None:
        kwargs["core"] = core
    emulator = Emulator(apps=apps, **kwargs)
    emulator.load_state(state, restore_clock=jitter is None,
                        final_reset=False)
    profiler = None
    if profile:
        profiler = emulator.start_profiling(
            trace_references=trace_references,
            track_opcode_addresses=track_opcode_addresses,
            track_reference_pcs=track_reference_pcs)
        if trace_sink is not None:
            # Stream the reference trace into a PTRC container as the
            # replay runs; with ``trace_spill`` nothing stays in RAM.
            profiler.attach_trace_sink(trace_sink, spill=trace_spill)
    san = None
    if sanitize:
        san = _session_sanitizer(emulator, apps, kwargs,
                                 elide=sanitize_elide)
        san.attach(emulator.kernel)
    emulator.sanitizer = san
    load_facts = getattr(emulator.device.core, "load_facts", None)
    if load_facts is not None:
        load_facts(_region_facts(apps, kwargs))
    emulator.codegen_report = _install_fuse_hooks(
        emulator, fuse_threshold, on_fuse, validate_codegen)
    driver = PlaybackDriver(emulator, log, jitter=jitter,
                            reset_timeout=reset_timeout)
    try:
        result = driver.run(reset=True)
    finally:
        if san is not None and san.attached:
            san.detach()
        if profiler is not None and trace_sink is not None:
            # The hot path batches tokens; push the final partial
            # batch through so the container holds the whole trace.
            profiler.flush_trace_sink()
    return emulator, profiler, result


def _install_fuse_hooks(emulator: Emulator,
                        fuse_threshold: Optional[int],
                        on_fuse, validate_codegen: bool):
    """Wire the codegen observation hooks into the superblock core.

    Returns the live findings Report when inline validation is on
    (it fills as blocks fuse during the replay), else None.
    """
    core = emulator.device.core
    if not hasattr(core, "fuse_validator"):
        return None
    if fuse_threshold is not None and hasattr(core, "fuse_threshold"):
        core.fuse_threshold = fuse_threshold
    report = None
    validate = None
    if validate_codegen:
        from ..analysis.static.findings import Report
        from ..analysis.transval import validate_block, workspace_for

        report = Report()
        workspaces: dict = {}
        seen: set = set()

        def validate(block) -> None:
            prov = block.prov
            key = (prov.pc, prov.source_hash)
            if key in seen:
                return
            seen.add(key)
            geom = (prov.ram_base, prov.ram_limit,
                    prov.flash_base, prov.flash_limit)
            ws = workspaces.get(geom)
            if ws is None:
                ws = workspaces[geom] = workspace_for(prov)
            block_report, _stats = validate_block(prov, ws=ws)
            report.extend(block_report)

    if on_fuse is not None or validate is not None:
        def hook(block) -> None:
            if on_fuse is not None:
                on_fuse(block)
            if validate is not None:
                validate(block)
        core.fuse_validator = hook
    return report


#: (app specs, geometry) -> dataflow region facts.  The audit is pure
#: in its inputs (identical specs build identical ROMs), so repeated
#: replays of the same image skip the static analysis entirely.
_FACTS_CACHE: dict = {}


def _region_facts(apps, kwargs: dict) -> dict:
    """Memoized dataflow region facts for the fused replay core.

    Conservative by construction: any failure — unhashable custom app
    specs aside, which simply bypass the cache — yields the empty fact
    set, and the fused code generator keeps its dynamic region arms.
    """
    from ..analysis.static.audit import audit_rom

    key: object
    try:
        key = (tuple((a.name, a.source, a.button) for a in apps),
               kwargs.get("ram_size"), kwargs.get("flash_size"))
        hit = _FACTS_CACHE.get(key)
    except (AttributeError, TypeError):
        key = None
        hit = None
    if hit is not None:
        return hit
    try:
        facts = audit_rom(apps=list(apps),
                          ram_size=kwargs.get("ram_size"),
                          flash_size=kwargs.get("flash_size")).region_facts()
    except Exception:
        facts = {}
    if key is not None:
        _FACTS_CACHE[key] = facts
    return facts


def _session_sanitizer(emulator: Emulator, apps, kwargs: dict, *,
                       elide: bool):
    """Build a sanitizer for a replay: the elision set comes from the
    static audit of the same ROM the emulator is running (identical
    builds place code at identical addresses), so ROM pcs proven safe
    skip their shadow probes; RAM-resident code (installed hacks) never
    appears in the set and is always checked."""
    from ..analysis.sanitizer import MemorySanitizer
    from ..analysis.sanitizer.elide import compute_elision
    from ..analysis.static.audit import audit_rom

    audit = audit_rom(apps=apps,
                      ram_size=kwargs.get("ram_size"),
                      flash_size=kwargs.get("flash_size"))
    elision = compute_elision(
        audit.cfg, audit.const,
        heap_hi=int(emulator.kernel.device.mem.ram_limit))
    return MemorySanitizer(
        elide_pcs=elision.safe_pcs if elide else frozenset(),
        attribution=elision.attribution)
