"""Activity-log playback (§2.4.2).

The playback driver schedules the parsed log's synchronous events
against the emulated tick counter: "the emulated system's tick counter
is checked to see if it is greater than or equal to the tick timestamp
of the next event.  If it is time for the next event, the emulator
simulates the event" — here by latching the recorded sample into the
peripheral and raising its interrupt, so the ROM ISR, any installed
hacks, and the kernel all run exactly as they did on the handheld.

``KeyCurrentState`` and non-zero ``SysRandom`` calls are serviced from
their queues, as the paper describes.

The optional :class:`JitterModel` reproduces the *imperfections* the
paper observed in §3.3/§3.4 — short bursts of events arriving slightly
late (< 20 ticks, blamed on emulator thread scheduling) and the
host-approximated RTC — so the validation experiments can show the same
benign divergences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..device import constants as C
from ..device.peripherals import PenSample
from ..tracelog import ActivityLog, ParsedLog, parse_log
from ..tracelog.records import LogEventType, LogRecord
from .pose import Emulator


class JitterModel:
    """Replay timing imperfections, off by default.

    * Event bursts: with probability ``burst_probability`` per event, a
      run of following events is delayed by up to ``max_delay`` ticks
      (the paper saw bursts "< 20 ticks" late, then a return to exact
      schedule).
    * RTC drift: the emulated RTC reads as host-approximated time, a
      few seconds off the tick-derived clock.
    """

    def __init__(self, seed: int = 0, burst_probability: float = 0.08,
                 max_delay: int = 19, burst_length: tuple = (2, 5),
                 rtc_drift_seconds: int = 3):
        self._rng = random.Random(seed)
        self.burst_probability = burst_probability
        self.max_delay = max_delay
        self.burst_length = burst_length
        self.rtc_drift_seconds = rtc_drift_seconds
        self._burst_left = 0
        self._burst_delay = 0

    def event_delay(self) -> int:
        if self._burst_left > 0:
            self._burst_left -= 1
            return self._burst_delay
        if self._rng.random() < self.burst_probability:
            self._burst_left = self._rng.randint(*self.burst_length) - 1
            self._burst_delay = self._rng.randint(1, self.max_delay)
            return self._burst_delay
        return 0

    def rtc_offset(self) -> int:
        return self._rng.randint(0, self.rtc_drift_seconds)


@dataclass
class PlaybackResult:
    """What happened during one replay."""

    events_injected: int = 0
    keystate_lookups: int = 0
    seeds_served: int = 0
    seeds_missing: int = 0
    start_tick: int = 0
    end_tick: int = 0
    instructions: int = 0
    delays_applied: List[int] = field(default_factory=list)


class _KeyStateQueue:
    """Serves the recorded KeyCurrentState bit fields by tick."""

    def __init__(self, records: List[LogRecord], result: PlaybackResult):
        self._records = records
        self._pos = 0
        self._result = result

    def lookup(self, tick: int, raw: int) -> int:
        self._result.keystate_lookups += 1
        while (self._pos + 1 < len(self._records)
               and self._records[self._pos + 1].tick <= tick):
            self._pos += 1
        if self._pos < len(self._records) and self._records[self._pos].tick <= tick:
            return self._records[self._pos].data
        return raw


class _RandomQueue:
    """Overrides non-zero SysRandom seeds from the recorded queue."""

    def __init__(self, records: List[LogRecord], result: PlaybackResult):
        self._records = records
        self._pos = 0
        self._result = result

    def next_seed(self, original: int) -> int:
        if self._pos < len(self._records):
            seed = self._records[self._pos].data
            self._pos += 1
            self._result.seeds_served += 1
            return seed
        self._result.seeds_missing += 1
        return original


class PlaybackDriver:
    """Replays one activity log on an emulator.

    Sessions containing soft resets (the RESET extension records) are
    split into tick epochs: the guest performs each reset *itself* —
    deterministically, driven by the replayed input — and the driver
    re-aligns the next epoch's schedule to the restarted tick counter.
    """

    def __init__(self, emulator: Emulator, log: ActivityLog,
                 jitter: Optional[JitterModel] = None):
        from ..tracelog import split_epochs

        self.emulator = emulator
        self.log = log
        self.parsed: ParsedLog = parse_log(log)
        self.epochs = split_epochs(log)
        self.jitter = jitter

    # -- injection ------------------------------------------------------
    def _inject_pen(self, record: LogRecord) -> None:
        device = self.emulator.device
        device.digitizer.sample = PenSample(record.pen_down, record.pen_x,
                                            record.pen_y)
        device.intc.raise_int(C.INT_PEN)

    def _inject_key(self, record: LogRecord) -> None:
        device = self.emulator.device
        buttons = device.buttons
        buttons.last_event = record.data
        if record.key_down:
            buttons.state |= record.key_code
        else:
            buttons.state &= ~record.key_code
        device.intc.raise_int(C.INT_KEY)

    # -- the run -----------------------------------------------------------
    def run(self, idle_grace_ticks: int = 200,
            max_ticks: int = 100_000_000, reset: bool = False) -> PlaybackResult:
        """Replay the log.

        With ``reset=True`` the driver performs the session-start soft
        reset itself, after installing the replay overrides — required
        so the boot path's ``SysRandom`` seeding is served from the
        recorded queue (the handheld's hack logged it at collection
        time).
        """
        emulator = self.emulator
        kernel = emulator.kernel
        device = emulator.device

        result = PlaybackResult()
        # The SysRandom seed queue is global: seeds are consumed one per
        # non-zero call, in session order, across tick epochs (each
        # epoch's boot consumes the seed its hack logged).
        randoms = _RandomQueue(self.parsed.random_queue, result)
        kernel.syscalls.random_seed_override = randoms.next_seed
        if self.jitter is not None:
            rtc = device.rtc
            drift = self.jitter.rtc_offset()
            kernel.time_override = (
                lambda: rtc.seconds_at(device.tick) + drift)

        if reset:
            kernel.boot()
        result.start_tick = device.tick
        result.instructions = device.cpu.instructions

        try:
            prev_boots = kernel.boot_count
            for index, epoch_log in enumerate(self.epochs):
                if index > 0:
                    prev_boots = self._await_guest_reset(prev_boots,
                                                         max_ticks)
                ends_with_reset = bool(
                    epoch_log.records
                    and epoch_log.records[-1].type == LogEventType.RESET)
                self._run_epoch(epoch_log, result, idle_grace_ticks,
                                stop_at_reset=ends_with_reset)
            device.run_until_idle(max_ticks=max_ticks)
        finally:
            kernel.syscalls.key_state_override = None
            kernel.syscalls.random_seed_override = None
            kernel.time_override = None

        result.end_tick = device.tick
        result.instructions = device.cpu.instructions - result.instructions
        return result

    def _await_guest_reset(self, prev_boots: int, max_ticks: int) -> int:
        """Advance until the guest performs its recorded soft reset
        (triggered deterministically by the replayed input)."""
        kernel = self.emulator.kernel
        device = self.emulator.device
        deadline = device.tick + min(max_ticks, 100_000)
        while kernel.boot_count <= prev_boots:
            if device.tick >= deadline:
                raise RuntimeError(
                    "expected a guest soft reset (RESET record) that "
                    "never happened during replay")
            device.advance(device.tick + 1)
        return kernel.boot_count

    def _run_epoch(self, epoch_log: ActivityLog, result: PlaybackResult,
                   idle_grace_ticks: int,
                   stop_at_reset: bool = False) -> None:
        kernel = self.emulator.kernel
        device = self.emulator.device
        parsed = parse_log(epoch_log)
        keystate = _KeyStateQueue(parsed.keystate_queue, result)
        kernel.syscalls.key_state_override = keystate.lookup

        # Record ticks are guest-epoch ticks; wall schedule = offset +.
        epoch_offset = device.tick_offset
        last_tick = device.tick
        last_by_type: dict = {}
        for record in parsed.synchronous:
            delay = self.jitter.event_delay() if self.jitter else 0
            tick = epoch_offset + record.tick + delay
            # A delayed burst must stay in order and must not collapse
            # two same-peripheral events onto one tick (the second
            # would overwrite the latched sample before the ISR reads
            # the first) — the paper's bursts arrive late but intact.
            prev = last_by_type.get(record.type)
            if prev is not None and tick <= prev:
                tick = prev + 1
            last_by_type[record.type] = tick
            if delay:
                result.delays_applied.append(tick - epoch_offset - record.tick)
            if record.type == LogEventType.PEN:
                device.schedule_call(
                    tick, lambda r=record: self._inject_pen(r))
            else:
                device.schedule_call(
                    tick, lambda r=record: self._inject_key(r))
            result.events_injected += 1
            last_tick = max(last_tick, tick)

        # Memory-card transitions are external inputs too: re-insert
        # the session's card at the recorded ticks (card extension).
        from ..device.memcard import NOTIFY_CARD_INSERTED, NOTIFY_CARD_REMOVED
        for record in parsed.notifications:
            tick = epoch_offset + record.tick
            if record.data == NOTIFY_CARD_INSERTED:
                if self.emulator.card is None:
                    raise RuntimeError(
                        "the log contains a card insertion but the "
                        "initial state carries no card image")
                device.schedule_card_insert(tick, self.emulator.card)
            elif record.data == NOTIFY_CARD_REMOVED:
                device.schedule_card_remove(tick)
            else:
                continue
            result.events_injected += 1
            last_tick = max(last_tick, tick)

        if stop_at_reset:
            # Stop promptly when the guest performs the epoch-ending
            # reset; overshooting would deliver the next epoch's events
            # against the wrong restarted tick counter.
            target = last_tick + idle_grace_ticks
            boots = kernel.boot_count
            while device.tick < target and kernel.boot_count == boots:
                device.advance(device.tick + 1)
        else:
            device.advance(last_tick + idle_grace_ticks)


def replay_session(state, log: ActivityLog, apps=(), profile: bool = True,
                   trace_references: bool = True,
                   track_opcode_addresses: bool = False,
                   jitter: Optional[JitterModel] = None,
                   emulator_kwargs: Optional[dict] = None):
    """One-call replay: build the emulator, load β, apply δ.

    Returns ``(emulator, profiler, result)``; ``profiler`` is None when
    ``profile=False``.  ``track_opcode_addresses=True`` records the pc
    of every executed opcode for the static/dynamic cross-check.
    """
    emulator = Emulator(apps=apps, **(emulator_kwargs or {}))
    emulator.load_state(state, restore_clock=jitter is None,
                        final_reset=False)
    profiler = None
    if profile:
        profiler = emulator.start_profiling(
            trace_references=trace_references,
            track_opcode_addresses=track_opcode_addresses)
    driver = PlaybackDriver(emulator, log, jitter=jitter)
    result = driver.run(reset=True)
    return emulator, profiler, result
