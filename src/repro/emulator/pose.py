"""The replay emulator — our modified POSE (§2.4).

:class:`Emulator` wraps a :class:`~repro.palmos.kernel.PalmOS` machine
with the POSE-specific machinery the paper describes:

* **state import** — "we import all of the applications and databases
  corresponding with the initial state of the specified session.  We
  then reset the emulator to get it into the same processor state as
  when the activity log started" (§2.4.3);
* **profiling** — attach a :class:`~repro.emulator.profiling.Profiler`
  and disable POSE's native trap optimisation so the ROM TrapDispatcher
  actually executes, as §2.4.2 requires for valid data;
* the **equivalent-system check** — replay is only meaningful when the
  emulator's ROM matches the device's flash image byte for byte (the
  deterministic state machine model requires *equivalent* machines).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..device import constants as C
from ..palmos import AppSpec, PalmOS
from ..tracelog import InitialState
from .profiling import Profiler


class RomMismatchError(Exception):
    """The emulator's built ROM differs from the captured flash image,
    so the two machines are not equivalent state machines."""


class Emulator:
    """A desktop emulator for Palm OS devices (POSE equivalent)."""

    def __init__(
        self,
        apps: Sequence[AppSpec] = (),
        ram_size: int = C.RAM_SIZE,
        flash_size: int = C.FLASH_SIZE,
        entropy_seed: int = 0xE11A_B0BA,
        rtc_base: Optional[int] = None,
        default_app: Optional[str] = None,
        core: str = "fast",
    ):
        self.kernel = PalmOS(
            apps=apps,
            ram_size=ram_size,
            flash_size=flash_size,
            rtc_base=rtc_base,
            entropy_seed=entropy_seed,
            default_app=default_app,
            core=core,
        )
        self.profiler: Optional[Profiler] = None
        #: The session's memory card, reconstructed from the initial
        #: state (the card extension); the playback driver re-inserts
        #: it at the recorded transition ticks.
        self.card = None

    @property
    def device(self):
        return self.kernel.device

    # ------------------------------------------------------------------
    # Initial state (§2.4.3)
    # ------------------------------------------------------------------
    def load_state(self, state: InitialState, verify_rom: bool = True,
                   restore_clock: bool = True,
                   final_reset: bool = True) -> None:
        """Import the collected initial state and reset.

        ``restore_clock=False`` leaves the emulator's own RTC base in
        place, modelling POSE's host-time RTC approximation (§2.4.4).
        ``final_reset=False`` defers the session-start reset to the
        playback driver: the reset must happen *after* the replay
        overrides are installed, because the boot path itself calls
        ``SysRandom`` and that seed comes from the recorded queue.
        """
        if verify_rom:
            own = self.kernel.rom_transfer()
            if own != state.flash_image:
                raise RomMismatchError(
                    "emulator ROM differs from the captured flash image; "
                    "build the emulator with the same application set")
        else:
            self.kernel.device.mem.load_flash_image(state.flash_image)
        if restore_clock and state.rtc_base is not None:
            self.kernel.device.rtc.base_seconds = state.rtc_base
        self.card = state.make_card()
        # Boot once so the storage heap is formatted (this "warm-up"
        # boot happens on the emulator's own entropy and is not part of
        # the session), then import the databases.  The session-start
        # reset keeps the storage heap and reinstalls any imported
        # hacks, leaving the machine exactly where the handheld was
        # when its session began.
        self.kernel.boot()
        self.kernel.hotsync_install(state.databases)
        if final_reset:
            self.kernel.boot()

    # ------------------------------------------------------------------
    # Profiling (§2.4.2)
    # ------------------------------------------------------------------
    def start_profiling(self, trace_references: bool = True,
                        track_opcode_addresses: bool = False,
                        track_reference_pcs: bool = False) -> Profiler:
        """Enable profiling: native trap optimisations are ignored in
        favour of the original (ROM) code path.

        ``track_opcode_addresses=True`` additionally records the pc of
        every executed opcode word (``Profiler.opcode_addresses``) so
        the static analyzer can cross-check its CFG against the
        dynamically executed instruction stream.

        ``track_reference_pcs=True`` (implies the per-address hook)
        attributes every data reference to the instruction that issued
        it (``Profiler.reference_pcs``), which is what the semantic
        analyzer's static RAM/flash classification is checked against.
        """
        profiler = Profiler(trace_references=trace_references,
                            track_reference_pcs=track_reference_pcs)
        self.profiler = profiler
        self.kernel.device.mem.tracer = profiler
        cpu = self.kernel.device.cpu
        if track_opcode_addresses or track_reference_pcs:
            # At hook time the CPU has already advanced pc past the
            # opcode word, so the instruction address is pc - 2.
            cpu.opcode_hook = (
                lambda op: profiler.opcode_at((cpu.pc - 2) & 0xFFFFFFFF, op))
            # Interrupt frames are pushed between instructions; stop
            # attributing them to the previously executed opcode.
            cpu.interrupt_hook = profiler.detach_pc
        else:
            cpu.opcode_hook = profiler.opcode
        self.kernel.allow_native = False
        return profiler

    def stop_profiling(self) -> Optional[Profiler]:
        profiler = self.profiler
        self.profiler = None
        self.kernel.device.mem.tracer = None
        self.kernel.device.cpu.opcode_hook = None
        self.kernel.device.cpu.interrupt_hook = None
        self.kernel.allow_native = True
        return profiler

    # ------------------------------------------------------------------
    # Checkpointing (resilience subsystem)
    # ------------------------------------------------------------------
    def snapshot(self):
        """Capture the full machine state as a
        :class:`~repro.resilience.checkpoint.Checkpoint` (CPU, RAM,
        peripherals, virtual time, syscall context, profiler)."""
        from ..resilience.checkpoint import capture_emulator

        return capture_emulator(self)

    def restore(self, checkpoint) -> None:
        """Restore a snapshot onto this emulator.  Requires the same
        memory geometry and flash image (equivalent-systems check);
        raises :class:`~repro.resilience.errors.CheckpointError`
        otherwise."""
        from ..resilience.checkpoint import restore_emulator

        restore_emulator(self, checkpoint)

    # ------------------------------------------------------------------
    # Final state (HotSync out, §3.1)
    # ------------------------------------------------------------------
    def final_state(self):
        """HotSync the emulated system to obtain its final state."""
        return self.kernel.hotsync_backup()
