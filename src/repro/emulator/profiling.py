"""Profiling: opcode histograms and memory-reference traces.

The paper's modified POSE "track[s] and output[s] statistical execution
information such as opcodes and memory references ... we treated each
executed opcode as an index into an array, and incremented the
respective array element" (§2.4.2).  The profiler here does exactly
that, plus per-region reference accounting (RAM vs flash — the split
Table 1 reports) and an optional full reference trace for the cache
study.
"""

from __future__ import annotations

from array import array
from typing import Dict

import numpy as np

from ..device.memmap import (
    KIND_FETCH,
    KIND_READ,
    KIND_WRITE,
    REGION_CARD,
    REGION_FLASH,
    REGION_HW,
    REGION_RAM,
)

#: CPU cycles per reference, by region (§4.2: "The Dragonball
#: MC68VZ328 requires one cycle for RAM accesses and three cycles for
#: flash accesses").
T_RAM_CYCLES = 1
T_FLASH_CYCLES = 3


def ref_mask_bit(kind: int, region: int) -> int:
    """The ``reference_pcs`` bitmask bit for a (kind, region) pair.

    Only data kinds are tracked: bit ``(kind - 1) * 4 + region`` with
    kind ∈ {READ, WRITE} and region ∈ {RAM, FLASH, HW, CARD} — eight
    bits total, reads in the low nibble, writes in the high nibble.
    """
    return 1 << (((kind - 1) << 2) | region)


class Profiler:
    """Accumulates opcode counts and memory references.

    Attach with :meth:`repro.emulator.pose.Emulator.start_profiling`;
    the memory map feeds one call per bus-width reference and the CPU
    feeds one call per executed opcode.
    """

    def __init__(self, trace_references: bool = True,
                 track_reference_pcs: bool = False):
        self.trace_references = trace_references
        #: When enabled (and the per-address opcode hook is wired),
        #: every non-fetch reference is attributed to the pc of the
        #: instruction that caused it: ``reference_pcs[pc]`` is a
        #: bitmask of observed ``ref_mask_bit(kind, region)`` bits.
        #: The static region classifier cross-checks its per-insn
        #: predictions against this (see ``analysis.static.audit``).
        self.track_reference_pcs = track_reference_pcs
        self.reference_pcs: Dict[int, int] = {}
        self._current_pc = -1
        self.opcode_counts: array = array("Q", bytes(8 * 0x10000))
        #: Flat reference counters indexed ``kind | region << 4`` — the
        #: same packing as the trace's ``kinds`` bytes.  One array index
        #: per call instead of a dict lookup on a tuple key; the
        #: ``counts`` mapping of the original API is derived on demand.
        self._counts: array = array("Q", bytes(8 * 256))
        self._addr = array("I")
        self._kind = array("B")  # kind | region << 4
        self.instructions = 0
        #: pc -> opcode word for every executed instruction address,
        #: filled only when the per-address hook is wired (see
        #: :meth:`repro.emulator.pose.Emulator.start_profiling`).  The
        #: static analyzer cross-checks this against its CFG: a pc the
        #: walker never discovered is a decoder or walker bug.
        self.opcode_addresses: Dict[int, int] = {}
        #: Caches simulated on-line during the replay itself (no trace
        #: storage; useful when the session is too large to keep a
        #: trace in memory).  Hardware-register references are skipped,
        #: as in the off-line pipeline's ``memory_only()``.
        self.online_caches: list = []

    # -- hooks ---------------------------------------------------------
    def reference(self, addr: int, kind: int, region: int) -> None:
        self._counts[kind | (region << 4)] += 1
        if self.track_reference_pcs and kind != KIND_FETCH \
                and self._current_pc >= 0:
            # Opcode-word fetches happen *before* the per-pc hook runs
            # and are excluded by the kind test above, so everything
            # recorded here is a data reference of ``_current_pc``.
            self.reference_pcs[self._current_pc] = \
                self.reference_pcs.get(self._current_pc, 0) \
                | ref_mask_bit(kind, region)
        if self.trace_references:
            self._addr.append(addr & 0xFFFFFFFF)
            self._kind.append(kind | (region << 4))
        if self.online_caches and region != REGION_HW:
            write = kind == KIND_WRITE
            for cache in self.online_caches:
                cache.access(addr, write)

    def opcode(self, op: int) -> None:
        self.opcode_counts[op] += 1
        self.instructions += 1

    def opcode_at(self, pc: int, op: int) -> None:
        """Per-address variant of :meth:`opcode` for the static/dynamic
        cross-check; ``pc`` is the address of the opcode word itself."""
        self.opcode_counts[op] += 1
        self.instructions += 1
        self.opcode_addresses[pc] = op
        self._current_pc = pc

    def detach_pc(self) -> None:
        """Stop attributing references to the last opcode (wired to the
        CPU's ``interrupt_hook``: an interrupt's exception-frame pushes
        belong to no instruction)."""
        self._current_pc = -1

    # -- aggregate statistics ---------------------------------------------
    @property
    def counts(self) -> Dict[tuple, int]:
        """The reference counters as the historical ``(kind, region) ->
        count`` mapping (derived from the flat array; zero entries are
        omitted, as the dict-based implementation never created them)."""
        return {(i & 0x0F, i >> 4): n
                for i, n in enumerate(self._counts) if n}

    def _region_total(self, region: int) -> int:
        base = region << 4
        return sum(self._counts[base:base + 16])

    @property
    def ram_refs(self) -> int:
        return self._region_total(REGION_RAM)

    @property
    def flash_refs(self) -> int:
        return self._region_total(REGION_FLASH)

    @property
    def hw_refs(self) -> int:
        return self._region_total(REGION_HW)

    @property
    def card_refs(self) -> int:
        return self._region_total(REGION_CARD)

    @property
    def total_refs(self) -> int:
        return sum(self._counts)

    def _kind_total(self, kind: int) -> int:
        return sum(self._counts[kind::16])

    @property
    def fetch_refs(self) -> int:
        return self._kind_total(KIND_FETCH)

    @property
    def read_refs(self) -> int:
        return self._kind_total(KIND_READ)

    @property
    def write_refs(self) -> int:
        return self._kind_total(KIND_WRITE)

    def average_memory_cycles(self) -> float:
        """Equation 3: average effective memory access time without a
        cache, in cycles per reference."""
        ram = self.ram_refs + self.hw_refs  # registers behave like RAM
        flash = self.flash_refs + self.card_refs  # cards cost like flash
        total = ram + flash
        if total == 0:
            return 0.0
        return (ram * T_RAM_CYCLES + flash * T_FLASH_CYCLES) / total

    # -- the reference trace -------------------------------------------------
    def reference_trace(self) -> "ReferenceTrace":
        if not self.trace_references:
            raise RuntimeError("profiler was created with trace_references=False")
        return ReferenceTrace(
            addresses=np.frombuffer(self._addr, dtype=np.uint32).copy(),
            kinds=np.frombuffer(self._kind, dtype=np.uint8).copy(),
        )

    # -- opcode statistics -----------------------------------------------------
    def top_opcodes(self, n: int = 10) -> list[tuple[int, int]]:
        """The ``n`` most-executed opcode words as (opcode, count)."""
        counts = np.frombuffer(self.opcode_counts, dtype=np.uint64)
        order = np.argsort(counts)[::-1][:n]
        return [(int(op), int(counts[op])) for op in order if counts[op]]

    def opcode_histogram(self) -> np.ndarray:
        return np.frombuffer(self.opcode_counts, dtype=np.uint64).copy()


class ReferenceTrace:
    """A memory-reference trace as parallel numpy arrays.

    ``kinds`` packs the access kind in the low nibble and the region in
    the high nibble; helpers below unpack.
    """

    def __init__(self, addresses: np.ndarray, kinds: np.ndarray):
        self.addresses = addresses
        self.kinds = kinds

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def kind(self) -> np.ndarray:
        return self.kinds & 0x0F

    @property
    def region(self) -> np.ndarray:
        return self.kinds >> 4

    @property
    def is_write(self) -> np.ndarray:
        return (self.kinds & 0x0F) == KIND_WRITE

    def ram_only(self) -> "ReferenceTrace":
        mask = self.region == REGION_RAM
        return ReferenceTrace(self.addresses[mask], self.kinds[mask])

    def memory_only(self) -> "ReferenceTrace":
        """Drop hardware-register references (not cacheable)."""
        mask = self.region != REGION_HW
        return ReferenceTrace(self.addresses[mask], self.kinds[mask])

    def counts(self) -> dict:
        out = {}
        for region, name in [(REGION_RAM, "ram"), (REGION_FLASH, "flash"),
                             (REGION_HW, "hw")]:
            out[name] = int(np.count_nonzero(self.region == region))
        for kind, name in [(KIND_FETCH, "fetch"), (KIND_READ, "read"),
                           (KIND_WRITE, "write")]:
            out[name] = int(np.count_nonzero(self.kind == kind))
        return out

    # -- persistence ---------------------------------------------------------
    def save(self, path) -> None:
        np.savez_compressed(path, addresses=self.addresses, kinds=self.kinds)

    @classmethod
    def load(cls, path) -> "ReferenceTrace":
        data = np.load(path)
        return cls(addresses=data["addresses"], kinds=data["kinds"])
