"""Profiling: opcode histograms and memory-reference traces.

The paper's modified POSE "track[s] and output[s] statistical execution
information such as opcodes and memory references ... we treated each
executed opcode as an index into an array, and incremented the
respective array element" (§2.4.2).  The profiler here does exactly
that, plus per-region reference accounting (RAM vs flash — the split
Table 1 reports) and an optional full reference trace for the cache
study.

Hot-path design: when tracing, each reference is stored as **one**
packed integer ``addr | (kind | region << 4) << 32`` appended to a
plain Python list, which is flushed wholesale into numpy ``uint64``
chunks every :data:`TRACE_CHUNK` entries.  The flat per-(kind, region)
counters are *derived* from the chunk histograms instead of being
incremented per call — one ``list.append`` per reference instead of an
array increment plus two array appends.  With tracing disabled the
per-call counter array is kept (there is nothing to derive from).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Tuple

import numpy as np

from ..device.memmap import (
    KIND_FETCH,
    KIND_READ,
    KIND_WRITE,
    REGION_CARD,
    REGION_FLASH,
    REGION_HW,
    REGION_RAM,
)

#: CPU cycles per reference, by region (§4.2: "The Dragonball
#: MC68VZ328 requires one cycle for RAM accesses and three cycles for
#: flash accesses").
T_RAM_CYCLES = 1
T_FLASH_CYCLES = 3

#: Pending packed references are flushed into a numpy chunk once the
#: list reaches this length (the block core appends fetch tokens in
#: batches, so the flush threshold is a floor, not an exact size).
TRACE_CHUNK = 65536

_MASK32 = 0xFFFFFFFF


def ref_mask_bit(kind: int, region: int) -> int:
    """The ``reference_pcs`` bitmask bit for a (kind, region) pair.

    Only data kinds are tracked: bit ``(kind - 1) * 4 + region`` with
    kind ∈ {READ, WRITE} and region ∈ {RAM, FLASH, HW, CARD} — eight
    bits total, reads in the low nibble, writes in the high nibble.
    """
    return 1 << (((kind - 1) << 2) | region)


class Profiler:
    """Accumulates opcode counts and memory references.

    Attach with :meth:`repro.emulator.pose.Emulator.start_profiling`;
    the memory map feeds one call per bus-width reference and the CPU
    feeds one call per executed opcode.
    """

    def __init__(self, trace_references: bool = True,
                 track_reference_pcs: bool = False):
        self.trace_references = trace_references
        #: When enabled (and the per-address opcode hook is wired),
        #: every non-fetch reference is attributed to the pc of the
        #: instruction that caused it: ``reference_pcs[pc]`` is a
        #: bitmask of observed ``ref_mask_bit(kind, region)`` bits.
        #: The static region classifier cross-checks its per-insn
        #: predictions against this (see ``analysis.static.audit``).
        self.track_reference_pcs = track_reference_pcs
        self.reference_pcs: Dict[int, int] = {}
        self._current_pc = -1
        self.opcode_counts: array = array("Q", bytes(8 * 0x10000))
        #: Flat reference counters indexed ``kind | region << 4``, kept
        #: per-call only when tracing is off; with tracing on the same
        #: numbers are derived from the trace chunks (the trace and the
        #: counters are one-to-one by construction).
        self._counts: array = array("Q", bytes(8 * 256))
        #: Packed pending references; flushed into ``_chunks``.  The
        #: list object's identity is stable for the process lifetime —
        #: fast paths bind ``_pending.append`` directly.
        self._pending: List[int] = []
        self._chunks: List[np.ndarray] = []
        self._chunk_counts = np.zeros(256, dtype=np.uint64)
        self.instructions = 0
        #: pc -> opcode word for every executed instruction address,
        #: filled only when the per-address hook is wired (see
        #: :meth:`repro.emulator.pose.Emulator.start_profiling`).  The
        #: static analyzer cross-checks this against its CFG: a pc the
        #: walker never discovered is a decoder or walker bug.
        self.opcode_addresses: Dict[int, int] = {}
        #: Caches simulated on-line during the replay itself (no trace
        #: storage; useful when the session is too large to keep a
        #: trace in memory).  Hardware-register references are skipped,
        #: as in the off-line pipeline's ``memory_only()``.
        self.online_caches: list = []
        #: Optional streaming trace sink (a PTRC ``ContainerWriter``):
        #: every flushed chunk is appended to it during replay.  With
        #: ``spill`` the chunks are *not* kept in RAM afterwards — the
        #: container on disk becomes the only copy, and the in-RAM
        #: trace accessors refuse to run (see ``attach_trace_sink``).
        self._trace_sink = None
        self._trace_spill = False
        self._spilled_tokens = 0
        if trace_references and not track_reference_pcs:
            # Shadow the general methods with specialised closures:
            # this is the replay hot path (one append per reference).
            self.reference, self.reference_pair = (  # type: ignore[method-assign]
                self._make_fast_reference())

    # -- hooks ---------------------------------------------------------
    def reference(self, addr: int, kind: int, region: int) -> None:
        kb = kind | (region << 4)
        if self.trace_references:
            self._pending.append((addr & _MASK32) | (kb << 32))
            if len(self._pending) >= TRACE_CHUNK:
                self._flush_trace()
        else:
            self._counts[kb] += 1
        if self.track_reference_pcs and kind != KIND_FETCH \
                and self._current_pc >= 0:
            # Opcode-word fetches happen *before* the per-pc hook runs
            # and are excluded by the kind test above, so everything
            # recorded here is a data reference of ``_current_pc``.
            self.reference_pcs[self._current_pc] = \
                self.reference_pcs.get(self._current_pc, 0) \
                | ref_mask_bit(kind, region)
        if self.online_caches and region != REGION_HW:
            write = kind == KIND_WRITE
            for cache in self.online_caches:
                cache.access(addr, write)

    def reference_pair(self, addr: int, kind: int, region: int) -> None:
        """The two consecutive bus-width references of one 32-bit
        access, exactly as two :meth:`reference` calls would record
        them (the bus folds them into one call on its hot paths)."""
        self.reference(addr, kind, region)
        self.reference(addr + 2, kind, region)

    def _make_fast_reference(self):
        """The tracing hot path as a closure over locals.  Semantics are
        identical to the general method for this configuration
        (``trace_references=True``, ``track_reference_pcs=False``);
        online caches attached at any time are still honoured because
        the closure tests the live list object."""
        pending = self._pending
        append = pending.append
        caches = self.online_caches
        flush = self._flush_trace

        def reference(addr: int, kind: int, region: int) -> None:
            append((addr & _MASK32) | ((kind | (region << 4)) << 32))
            if len(pending) >= TRACE_CHUNK:
                flush()
            if caches and region != REGION_HW:
                write = kind == KIND_WRITE
                for cache in caches:
                    cache.access(addr, write)

        def reference_pair(addr: int, kind: int, region: int) -> None:
            # Identical to two reference() calls: the flush boundary
            # may shift by one token, but the recorded byte stream and
            # derived counts are unchanged (chunking is unobservable).
            kb = (kind | (region << 4)) << 32
            append((addr & _MASK32) | kb)
            append(((addr + 2) & _MASK32) | kb)
            if len(pending) >= TRACE_CHUNK:
                flush()
            if caches and region != REGION_HW:
                write = kind == KIND_WRITE
                for cache in caches:
                    cache.access(addr, write)
                    cache.access(addr + 2, write)

        return reference, reference_pair

    def bulk_references(self, chunk: np.ndarray) -> None:
        """Append a pre-packed uint64 token block wholesale (the fused
        replay core's vectorized fill path).  Equivalent to one
        :meth:`reference` call per element: chunk boundaries are
        unobservable in the recorded stream and the derived counts.
        Callers guarantee the no-online-cache tracing configuration
        (the fused dispatch gate enforces it)."""
        self._flush_trace()
        self._store_chunk(chunk)

    def _flush_trace(self) -> None:
        pending = self._pending
        if not pending:
            return
        chunk = np.array(pending, dtype=np.uint64)
        del pending[:]
        self._store_chunk(chunk)

    def _store_chunk(self, chunk: np.ndarray) -> None:
        sink = self._trace_sink
        if sink is not None:
            sink.append_tokens(chunk)
        if sink is not None and self._trace_spill:
            self._spilled_tokens += len(chunk)
        else:
            self._chunks.append(chunk)
        kinds = (chunk >> np.uint64(32)).astype(np.uint8)
        self._chunk_counts += np.bincount(
            kinds, minlength=256).astype(np.uint64)

    # -- streaming access ----------------------------------------------
    def attach_trace_sink(self, sink, spill: bool = False) -> None:
        """Stream the trace into ``sink`` (a PTRC ``ContainerWriter``)
        as it is recorded.  Chunks already buffered are pushed first,
        so the sink always holds the whole trace from reference zero.

        With ``spill`` the profiler stops keeping chunks in RAM — the
        replay runs in bounded memory however long the session is, and
        the container becomes the only copy of the trace (the in-RAM
        accessors :meth:`reference_trace`/:meth:`trace_bytes` then
        raise; resilient replays keep ``spill=False`` because PRCKPT01
        checkpoints serialize the in-RAM trace).
        """
        if not self.trace_references:
            raise RuntimeError(
                "profiler was created with trace_references=False")
        self._flush_trace()
        for chunk in self._chunks:
            sink.append_tokens(chunk)
        self._trace_sink = sink
        self._trace_spill = spill
        if spill:
            self._spilled_tokens += sum(len(c) for c in self._chunks)
            self._chunks = []

    def flush_trace_sink(self) -> None:
        """Push any still-buffered references through to the attached
        sink.  Call once after the replay finishes and before closing
        the container — the hot path batches tokens, so the final
        partial batch is only in the sink after this."""
        self._flush_trace()

    def _require_in_ram(self) -> None:
        if self._spilled_tokens:
            raise RuntimeError(
                "the trace was spilled to its container sink "
                "(attach_trace_sink(spill=True)); re-open the PTRC "
                "container to read it")

    def chunks(self):
        """Iterate the packed uint64 trace chunk by chunk, without
        concatenating (the streaming counterpart of
        :meth:`reference_trace` — peak memory stays one chunk)."""
        self._require_in_ram()
        self._flush_trace()
        yield from self._chunks

    def cache_chunks(self, memory_only: bool = True):
        """``(addresses, writes)`` pairs per chunk for the out-of-core
        cache kernels, hardware references dropped by default."""
        from ..traces.container import cache_chunks
        return cache_chunks(self.chunks(), memory_only=memory_only)

    @property
    def trace_tokens(self) -> int:
        """Total recorded references (including spilled chunks)."""
        return int(self._counts_snapshot().sum())

    def counts_dict(self, memory_only: bool = False) -> Dict[str, int]:
        """``ReferenceTrace.counts()`` without materializing the trace
        (derived from the flat counters).  ``memory_only`` excludes
        hardware references from the kind totals, matching
        ``reference_trace().memory_only().counts()``."""
        snapshot = self._counts_snapshot()
        out = {}
        for region, name in [(REGION_RAM, "ram"), (REGION_FLASH, "flash"),
                             (REGION_HW, "hw")]:
            base = region << 4
            out[name] = int(snapshot[base:base + 16].sum())
        hw_base = REGION_HW << 4
        for kind, name in [(KIND_FETCH, "fetch"), (KIND_READ, "read"),
                           (KIND_WRITE, "write")]:
            total = int(snapshot[kind::16].sum())
            if memory_only:
                total -= int(snapshot[hw_base + kind])
            out[name] = total
        if memory_only:
            out["hw"] = 0
        return out

    def _counts_snapshot(self) -> np.ndarray:
        """The 256 flat counters as a uint64 array (derived from the
        trace when tracing, the per-call array otherwise)."""
        if not self.trace_references:
            return np.frombuffer(self._counts, dtype=np.uint64)
        out = self._chunk_counts.copy()
        if self._pending:
            kinds = (np.array(self._pending, dtype=np.uint64)
                     >> np.uint64(32)).astype(np.uint8)
            out += np.bincount(kinds, minlength=256).astype(np.uint64)
        return out

    def opcode(self, op: int) -> None:
        self.opcode_counts[op] += 1
        self.instructions += 1

    def opcode_at(self, pc: int, op: int) -> None:
        """Per-address variant of :meth:`opcode` for the static/dynamic
        cross-check; ``pc`` is the address of the opcode word itself."""
        self.opcode_counts[op] += 1
        self.instructions += 1
        self.opcode_addresses[pc] = op
        self._current_pc = pc

    def detach_pc(self) -> None:
        """Stop attributing references to the last opcode (wired to the
        CPU's ``interrupt_hook``: an interrupt's exception-frame pushes
        belong to no instruction)."""
        self._current_pc = -1

    # -- aggregate statistics ---------------------------------------------
    @property
    def counts(self) -> Dict[tuple, int]:
        """The reference counters as the historical ``(kind, region) ->
        count`` mapping (derived from the flat array; zero entries are
        omitted, as the dict-based implementation never created them)."""
        return {(i & 0x0F, i >> 4): int(n)
                for i, n in enumerate(self._counts_snapshot()) if n}

    def _region_total(self, region: int) -> int:
        base = region << 4
        return int(self._counts_snapshot()[base:base + 16].sum())

    @property
    def ram_refs(self) -> int:
        return self._region_total(REGION_RAM)

    @property
    def flash_refs(self) -> int:
        return self._region_total(REGION_FLASH)

    @property
    def hw_refs(self) -> int:
        return self._region_total(REGION_HW)

    @property
    def card_refs(self) -> int:
        return self._region_total(REGION_CARD)

    @property
    def total_refs(self) -> int:
        return int(self._counts_snapshot().sum())

    def _kind_total(self, kind: int) -> int:
        return int(self._counts_snapshot()[kind::16].sum())

    @property
    def fetch_refs(self) -> int:
        return self._kind_total(KIND_FETCH)

    @property
    def read_refs(self) -> int:
        return self._kind_total(KIND_READ)

    @property
    def write_refs(self) -> int:
        return self._kind_total(KIND_WRITE)

    def average_memory_cycles(self) -> float:
        """Equation 3: average effective memory access time without a
        cache, in cycles per reference."""
        snapshot = self._counts_snapshot()
        ram = int(snapshot[:16].sum())      # registers behave like RAM
        ram += int(snapshot[REGION_HW << 4:(REGION_HW << 4) + 16].sum())
        flash = int(snapshot[REGION_FLASH << 4:(REGION_FLASH << 4) + 16].sum())
        flash += int(snapshot[REGION_CARD << 4:(REGION_CARD << 4) + 16].sum())
        total = ram + flash
        if total == 0:
            return 0.0
        return (ram * T_RAM_CYCLES + flash * T_FLASH_CYCLES) / total

    # -- the reference trace -------------------------------------------------
    def _packed_trace(self) -> np.ndarray:
        """All trace entries as one packed uint64 array (materializes;
        streaming consumers should iterate :meth:`chunks` instead)."""
        self._require_in_ram()
        self._flush_trace()
        if not self._chunks:
            return np.empty(0, dtype=np.uint64)
        if len(self._chunks) == 1:
            return self._chunks[0]
        merged = np.concatenate(self._chunks)
        # Re-consolidate so repeated stats calls stay O(1) chunks.
        self._chunks = [merged]
        return merged

    def reference_trace(self) -> "ReferenceTrace":
        if not self.trace_references:
            raise RuntimeError("profiler was created with trace_references=False")
        packed = self._packed_trace()
        return ReferenceTrace(
            addresses=(packed & np.uint64(_MASK32)).astype(np.uint32),
            kinds=(packed >> np.uint64(32)).astype(np.uint8),
        )

    # -- checkpoint serialization ---------------------------------------
    # The resilience checkpoints (PRCKPT01) store the profiler as four
    # sections; these methods own their byte layout so the container
    # stays byte-identical no matter how the profiler buffers its data
    # internally (and across replay cores).
    def counts_bytes(self) -> bytes:
        """The flat counters as 256 native uint64 values (the
        ``prof_counts`` checkpoint section)."""
        if not self.trace_references:
            return self._counts.tobytes()
        return self._counts_snapshot().tobytes()

    def restore_counts(self, blob: bytes) -> None:
        if self.trace_references:
            # Derived from the trace; restore_trace() carries the data.
            return
        self._counts = array("Q")
        self._counts.frombytes(blob)

    def trace_bytes(self) -> Tuple[bytes, bytes]:
        """The reference trace as (addresses, kinds) byte strings —
        native uint32 addresses and uint8 packed kinds, exactly the
        historical ``prof_addr``/``prof_kind`` checkpoint sections."""
        packed = self._packed_trace()
        return ((packed & np.uint64(_MASK32)).astype(np.uint32).tobytes(),
                (packed >> np.uint64(32)).astype(np.uint8).tobytes())

    def restore_trace(self, addr_blob: bytes, kind_blob: bytes) -> None:
        addrs = np.frombuffer(addr_blob, dtype=np.uint32).astype(np.uint64)
        kinds = np.frombuffer(kind_blob, dtype=np.uint8)
        packed = addrs | (kinds.astype(np.uint64) << np.uint64(32))
        del self._pending[:]
        self._chunks = [packed] if len(packed) else []
        self._chunk_counts = np.bincount(
            kinds, minlength=256).astype(np.uint64)

    # -- opcode statistics -----------------------------------------------------
    def top_opcodes(self, n: int = 10) -> list[tuple[int, int]]:
        """The ``n`` most-executed opcode words as (opcode, count)."""
        counts = np.frombuffer(self.opcode_counts, dtype=np.uint64)
        n = min(n, counts.size)
        if n <= 0:
            return []
        # Partition out the top-n slice, then sort only that slice —
        # O(N + n log n) instead of a full 65536-entry argsort.
        top = np.argpartition(counts, counts.size - n)[counts.size - n:]
        order = top[np.argsort(counts[top])][::-1]
        return [(int(op), int(counts[op])) for op in order if counts[op]]

    def top_traps(self, n: int = 10) -> list[tuple[int, int]]:
        """The ``n`` most-executed A-line trap numbers as
        (trap, count).  The opcode histogram's 0xA000-0xAFFF rows are
        folded by ``op & 0x1FF`` — the trap-number decode both
        dispatch paths share."""
        counts = np.frombuffer(self.opcode_counts,
                               dtype=np.uint64)[0xA000:0xB000]
        by_trap = counts.reshape(8, 512).sum(axis=0)
        n = min(n, by_trap.size)
        if n <= 0:
            return []
        top = np.argpartition(by_trap, by_trap.size - n)[by_trap.size - n:]
        order = top[np.argsort(by_trap[top])][::-1]
        return [(int(t), int(by_trap[t])) for t in order if by_trap[t]]

    def opcode_histogram(self) -> np.ndarray:
        return np.frombuffer(self.opcode_counts, dtype=np.uint64).copy()


class ReferenceTrace:
    """A memory-reference trace as parallel numpy arrays.

    ``kinds`` packs the access kind in the low nibble and the region in
    the high nibble; helpers below unpack.
    """

    def __init__(self, addresses: np.ndarray, kinds: np.ndarray):
        self.addresses = addresses
        self.kinds = kinds

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def kind(self) -> np.ndarray:
        return self.kinds & 0x0F

    @property
    def region(self) -> np.ndarray:
        return self.kinds >> 4

    @property
    def is_write(self) -> np.ndarray:
        return (self.kinds & 0x0F) == KIND_WRITE

    def ram_only(self) -> "ReferenceTrace":
        mask = self.region == REGION_RAM
        return ReferenceTrace(self.addresses[mask], self.kinds[mask])

    def memory_only(self) -> "ReferenceTrace":
        """Drop hardware-register references (not cacheable)."""
        mask = self.region != REGION_HW
        return ReferenceTrace(self.addresses[mask], self.kinds[mask])

    def counts(self) -> dict:
        # One histogram over the packed bytes; region and kind totals
        # are nibble slices of it (six full passes before).  Chunked so
        # the uint8 histogram never needs the whole kinds array resident
        # at once on views of very large traces.
        packed = np.zeros(256, dtype=np.int64)
        for _addrs, kinds in self.chunks():
            packed += np.bincount(kinds, minlength=256)
        out = {}
        for region, name in [(REGION_RAM, "ram"), (REGION_FLASH, "flash"),
                             (REGION_HW, "hw")]:
            base = region << 4
            out[name] = int(packed[base:base + 16].sum())
        for kind, name in [(KIND_FETCH, "fetch"), (KIND_READ, "read"),
                           (KIND_WRITE, "write")]:
            out[name] = int(packed[kind::16].sum())
        return out

    # -- streaming access ----------------------------------------------
    def chunks(self, chunk_tokens: int = TRACE_CHUNK):
        """Iterate ``(addresses, kinds)`` view pairs in windows of
        ``chunk_tokens`` references — no copies, so consumers that
        stream (PTRC writers, the out-of-core kernels) never double
        the trace's memory footprint."""
        n = len(self.addresses)
        for start in range(0, n, chunk_tokens):
            yield (self.addresses[start:start + chunk_tokens],
                   self.kinds[start:start + chunk_tokens])

    def cache_chunks(self, memory_only: bool = True,
                     chunk_tokens: int = TRACE_CHUNK):
        """``(addresses, writes)`` pairs per window for the out-of-core
        cache kernels (hardware references dropped by default)."""
        for addrs, kinds in self.chunks(chunk_tokens):
            if memory_only:
                mask = (kinds >> 4) != REGION_HW
                addrs = addrs[mask]
                kinds = kinds[mask]
            if len(addrs):
                yield addrs, (kinds & 0x0F) == KIND_WRITE

    # -- persistence ---------------------------------------------------------
    def save(self, path) -> None:
        np.savez_compressed(path, addresses=self.addresses, kinds=self.kinds)

    @classmethod
    def load(cls, path) -> "ReferenceTrace":
        data = np.load(path)
        return cls(addresses=data["addresses"], kinds=data["kinds"])
