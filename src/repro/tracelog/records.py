"""Activity-log record formats.

An activity log is "a record of the time an external input occurred,
the type of input and any relevant data necessary for playback" (§2.3).
Each record carries the tick counter and real-time-clock values at the
moment the hack ran, the event type, and the input's data word.

As in the paper, records are twelve or sixteen bytes: the
KeyCurrentState bit field fits a 16-bit data word (12-byte record);
pen samples, key transitions, notify types and random seeds use a
32-bit data word (16-byte record).

Layout (big-endian):

    +0  type  u16
    +2  tick  u32
    +6  rtc   u32
    +10 data  u16 (12-byte record) or u32 (16-byte record, 2 pad bytes)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum


class TraceFormatError(ValueError):
    """An activity-log record (or the log as a whole) violates the
    record format: unknown event type, truncated blob, or a structural
    invariant a strict parse refuses to repair.

    ``index`` is the record index within the log when known; ``report``
    carries the full findings when the error came out of the salvage
    parser (:mod:`repro.resilience.salvage`).
    """

    def __init__(self, message: str, index: int | None = None, report=None):
        super().__init__(message)
        self.index = index
        self.report = report


class LogEventType(IntEnum):
    KEY = 1         # EvtEnqueueKey: bit31 = down, low byte = button
    PEN = 2         # EvtEnqueuePenPoint: packed digitizer sample
    KEYSTATE = 3    # KeyCurrentState: returned bit field
    NOTIFY = 4      # SysNotifyBroadcast: notify type
    RANDOM = 5      # SysRandom: non-zero seed parameter
    RESET = 6       # SysReset: a soft reset ends the tick epoch
                    # (extension: the paper's deferred future work)


#: Event types stored in 12-byte records (16-bit data).
SHORT_TYPES = frozenset({LogEventType.KEYSTATE, LogEventType.RESET})

RECORD_SIZE_SHORT = 12
RECORD_SIZE_LONG = 16


@dataclass(frozen=True)
class LogRecord:
    """One decoded activity-log record.

    ``type`` is normally a :class:`LogEventType`; a lenient decode
    (``strict=False``) keeps an unknown type byte as a plain ``int`` so
    the salvage parser can report it instead of losing the record.
    """

    type: LogEventType
    tick: int
    rtc: int
    data: int

    @property
    def known_type(self) -> bool:
        return isinstance(self.type, LogEventType)

    @property
    def size(self) -> int:
        return RECORD_SIZE_SHORT if self.type in SHORT_TYPES else RECORD_SIZE_LONG

    def encode(self) -> bytes:
        if self.type in SHORT_TYPES:
            return struct.pack(">HIIH", self.type, self.tick, self.rtc,
                               self.data & 0xFFFF)
        return struct.pack(">HIII2x", self.type, self.tick, self.rtc,
                           self.data & 0xFFFFFFFF)

    @classmethod
    def decode(cls, blob: bytes, strict: bool = True) -> "LogRecord":
        if len(blob) < RECORD_SIZE_SHORT:
            raise TraceFormatError(
                f"record blob is {len(blob)} bytes, below the "
                f"{RECORD_SIZE_SHORT}-byte minimum")
        raw_type = struct.unpack(">H", blob[:2])[0]
        try:
            etype = LogEventType(raw_type)
        except ValueError:
            if strict:
                raise TraceFormatError(
                    f"unknown event type {raw_type:#06x}") from None
            etype = raw_type  # lenient: keep the raw byte for diagnosis
        if etype in SHORT_TYPES:
            _, tick, rtc, data = struct.unpack(">HIIH", blob[:RECORD_SIZE_SHORT])
        else:
            if len(blob) < 14:
                raise TraceFormatError(
                    f"long record truncated to {len(blob)} bytes")
            _, tick, rtc, data = struct.unpack(">HIII", blob[:14])
        return cls(etype, tick, rtc, data)

    # -- pen sample helpers -------------------------------------------------
    @property
    def pen_down(self) -> bool:
        return bool(self.data & 0x8000_0000)

    @property
    def pen_x(self) -> int:
        return (self.data >> 8) & 0xFF

    @property
    def pen_y(self) -> int:
        return self.data & 0xFF

    @property
    def key_down(self) -> bool:
        return bool(self.data & 0x8000_0000)

    @property
    def key_code(self) -> int:
        return self.data & 0xFF
