"""The activity log as a host-side object.

On the device the activity log is an ordinary record database (the
hacks insert one record per input).  This module reads it out of a
:class:`~repro.palmos.database.DatabaseImage` — i.e. off the HotSync
transfer — and round-trips it to disk in the PDB file format, exactly
the artifact the paper moves from the handheld to the desktop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List

from ..palmos.database import DatabaseImage, RecordImage
from .records import LogEventType, LogRecord

#: Name of the common database the five hacks insert into.
LOG_DB_NAME = "UserInputLog"
LOG_DB_TYPE = "actl"
LOG_DB_CREATOR = "trac"

#: Palm OS databases max out at 65,536 records - the limit the paper
#: notes sessions must stay under.
MAX_LOG_RECORDS = 65_536


@dataclass
class ActivityLog:
    """A decoded activity log: the paper's δ, the input sequence."""

    records: List[LogRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records)

    def append(self, record: LogRecord) -> None:
        self.records.append(record)

    # -- statistics -------------------------------------------------------
    def counts_by_type(self) -> dict:
        out: dict = {}
        for rec in self.records:
            out[rec.type] = out.get(rec.type, 0) + 1
        return out

    @property
    def first_tick(self) -> int:
        return self.records[0].tick if self.records else 0

    @property
    def last_tick(self) -> int:
        return self.records[-1].tick if self.records else 0

    def elapsed_ticks(self) -> int:
        return self.last_tick - self.first_tick if self.records else 0

    def storage_bytes(self) -> int:
        """On-device footprint of the raw records."""
        return sum(rec.size for rec in self.records)

    # -- database round trip ------------------------------------------------
    @classmethod
    def from_database_image(cls, image: DatabaseImage) -> "ActivityLog":
        return cls(records=[LogRecord.decode(rec.data)
                            for rec in image.records])

    def to_database_image(self) -> DatabaseImage:
        return DatabaseImage(
            name=LOG_DB_NAME, type=LOG_DB_TYPE, creator=LOG_DB_CREATOR,
            records=[RecordImage(0, i + 1, rec.encode())
                     for i, rec in enumerate(self.records)],
        )

    # -- file round trip (what gets moved to the desktop) ---------------------
    def save(self, path: str | Path) -> None:
        Path(path).write_bytes(self.to_database_image().to_pdb_bytes())

    @classmethod
    def load(cls, path: str | Path) -> "ActivityLog":
        image = DatabaseImage.from_pdb_bytes(Path(path).read_bytes())
        return cls.from_database_image(image)

    # -- filtering ------------------------------------------------------------
    def of_type(self, *types: LogEventType) -> List[LogRecord]:
        wanted = set(types)
        return [rec for rec in self.records if rec.type in wanted]


def read_activity_log(kernel, db_name: str = LOG_DB_NAME) -> ActivityLog:
    """Fetch the activity log from a device (host-side, untraced)."""
    db = kernel.dm_host.find(db_name)
    if not db:
        return ActivityLog()
    return ActivityLog.from_database_image(kernel.dm_host.export_database(db))


def create_log_database(kernel, db_name: str = LOG_DB_NAME) -> int:
    """Create the (empty) common database the hacks log into —
    the preparation step from §3.1."""
    existing = kernel.dm_host.find(db_name)
    if existing:
        kernel.dm_host.delete(db_name)
    return kernel.dm_host.create(db_name, LOG_DB_TYPE, LOG_DB_CREATOR)
