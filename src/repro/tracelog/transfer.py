"""Initial-state capture and transfer (ROMTransfer + HotSync).

The deterministic state machine model needs β, the initial state.  The
paper collects it as (a) the flash image, via ROMTransfer.prc over the
cradle, and (b) the RAM contents, by setting every database's backup
bit and HotSyncing.  Sessions start directly after a soft reset, so no
processor state needs capturing.

:class:`InitialState` is that bundle on the desktop, with a simple
directory-based file layout so sessions can be archived and replayed
later.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from ..palmos.database import DatabaseImage


@dataclass
class InitialState:
    """β: everything needed to start an equivalent system.

    ``rtc_base`` records the device's clock setting (Palm-epoch seconds
    at tick 0).  The paper's emulator *approximates* the RTC from host
    time instead of restoring it; our replay restores it by default and
    offers the approximation as the jitter model.

    ``card_name``/``card_image`` carry the session's memory card when
    one is used — the "entire contents of the memory card" option the
    paper describes for the card extension (§2.3.1).
    """

    flash_image: bytes
    databases: List[DatabaseImage] = field(default_factory=list)
    rtc_base: Optional[int] = None
    card_name: Optional[str] = None
    card_image: Optional[bytes] = None

    @classmethod
    def capture(cls, kernel, card=None) -> "InitialState":
        """ROMTransfer + set-backup-bits + HotSync, as in §2.2.

        ``card`` is the :class:`~repro.device.memcard.MemoryCard` the
        session's user will insert; its contents are snapshotted now.
        """
        kernel.set_backup_bits()
        return cls(
            flash_image=kernel.rom_transfer(),
            databases=kernel.hotsync_backup(),
            rtc_base=kernel.device.rtc.base_seconds,
            card_name=card.name if card is not None else None,
            card_image=bytes(card.contents) if card is not None else None,
        )

    def make_card(self):
        """Reconstruct the session's memory card (None if cardless)."""
        if self.card_image is None:
            return None
        from ..device.memcard import MemoryCard

        return MemoryCard(name=self.card_name or "card",
                          contents=bytearray(self.card_image))

    # -- persistence ------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "flash.rom").write_bytes(self.flash_image)
        names = []
        for i, image in enumerate(self.databases):
            filename = f"db_{i:03d}.pdb"
            (directory / filename).write_bytes(image.to_pdb_bytes())
            names.append(filename)
        meta = {"rtc_base": self.rtc_base, "databases": names,
                "card_name": self.card_name}
        if self.card_image is not None:
            (directory / "card.img").write_bytes(self.card_image)
            meta["card_image"] = "card.img"
        (directory / "state.json").write_text(json.dumps(meta, indent=2))

    @classmethod
    def load(cls, directory: str | Path) -> "InitialState":
        directory = Path(directory)
        meta = json.loads((directory / "state.json").read_text())
        databases = [
            DatabaseImage.from_pdb_bytes((directory / name).read_bytes())
            for name in meta["databases"]
        ]
        card_image = None
        if meta.get("card_image"):
            card_image = (directory / meta["card_image"]).read_bytes()
        return cls(
            flash_image=(directory / "flash.rom").read_bytes(),
            databases=databases,
            rtc_base=meta["rtc_base"],
            card_name=meta.get("card_name"),
            card_image=card_image,
        )
