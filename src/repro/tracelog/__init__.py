"""Activity logs: record formats, collection, parsing, state transfer."""

from .log import (
    ActivityLog,
    LOG_DB_NAME,
    MAX_LOG_RECORDS,
    create_log_database,
    read_activity_log,
)
from .parser import ParsedLog, parse_log, split_epochs
from .records import LogEventType, LogRecord, TraceFormatError
from .transfer import InitialState

__all__ = [
    "TraceFormatError",
    "ActivityLog",
    "LOG_DB_NAME",
    "MAX_LOG_RECORDS",
    "create_log_database",
    "read_activity_log",
    "ParsedLog",
    "parse_log",
    "split_epochs",
    "LogEventType",
    "LogRecord",
    "InitialState",
]
