"""The ROM builder: assembles the flash image.

The ROM contains genuine 68k code for everything on the hot path the
paper's profiling mode must see executed:

* the boot stub (vector installation, RNG seeding *through the trap
  path* so the SysRandom hack can log it, the application run loop);
* the **trap dispatcher** — reads the A-line word through the stacked
  PC, indexes the dispatch table in RAM, and jumps to the handler,
  exactly the TrapDispatcher behaviour §2.4.2 quotes from the POSE
  documentation;
* the interrupt service routine, which enqueues pen and key input by
  *calling the corresponding traps*, so installed hacks intercept them
  just as on real hardware;
* one stub per system trap.  Data-plane work (memory copies, record
  list walks, framebuffer fills) is real 68k executing from flash;
  control-plane work transfers to the Python kernel through an F-line
  "emucall" (POSE used reserved opcodes the same way).

ROM-resident applications are appended after the kernel stubs; the
Palm m515's built-in applications live in ROM, which is why roughly
two thirds of all memory references hit flash (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..device import constants as C
from ..m68k.asm import Program, assemble
from . import layout as L
from .traps import (
    CALL_APP_RETURNED,
    CALL_BOOT,
    CALL_DELAY_TRY,
    CALL_EVT_TRY,
    CALL_GET_APP,
    CALL_PANIC,
    PHASE_DONE,
    PHASE_PREP,
    Trap,
    aline_word,
    emucall_word,
)


@dataclass
class AppSpec:
    """One ROM-resident application.

    ``source`` must define the label ``app_<name>`` as its entry point;
    the app is invoked with ``jsr`` and returns with ``rts`` after it
    receives ``appStopEvent``.  ``button`` optionally binds a hardware
    application button to the app.
    """

    name: str
    source: str
    button: int = 0


#: Traps whose stub is a single "semantics" emucall plus RTE.
_SIMPLE_TRAPS = [
    Trap.EvtEnqueueKey, Trap.EvtEnqueuePenPoint, Trap.EvtEnqueueEvent,
    Trap.EvtFlushQueue, Trap.KeyCurrentState, Trap.SysRandom,
    Trap.SysNotifyBroadcast, Trap.SysUIAppSwitch, Trap.SysTicksPerSecond,
    Trap.SysSetTrapAddress, Trap.SysGetTrapAddress, Trap.SysCurrentApp,
    Trap.TimGetTicks, Trap.TimGetSeconds, Trap.SysReset,
    Trap.MemPtrNew, Trap.MemPtrFree, Trap.MemPtrSize, Trap.MemHeapFreeBytes,
    Trap.DmCreateDatabase, Trap.DmDeleteDatabase, Trap.DmFindDatabase,
    Trap.DmOpenDatabase, Trap.DmCloseDatabase, Trap.DmDatabaseInfo,
    Trap.DmSetDatabaseInfo, Trap.DmNumRecords, Trap.DmRecordInfo,
    Trap.DmSetRecordInfo, Trap.DmReleaseRecord, Trap.DmGetLastErr,
    Trap.DmNextDatabase,
    Trap.ExpCardPresent, Trap.ExpCardInfo,
    Trap.WinDrawLine, Trap.WinDrawPixel, Trap.WinGetPixel,
]

#: Bytes of registers each stub saves before its PREP emucall; the
#: kernel uses this to locate trap arguments on the stack.
STUB_SAVED_BYTES: Dict[int, int] = {}
for _trap in _SIMPLE_TRAPS:
    STUB_SAVED_BYTES[int(_trap)] = 0
STUB_SAVED_BYTES[int(Trap.EvtGetEvent)] = 0
STUB_SAVED_BYTES[int(Trap.SysTaskDelay)] = 0
STUB_SAVED_BYTES[int(Trap.DmNewRecord)] = 12       # d0-d1/a0
STUB_SAVED_BYTES[int(Trap.DmGetRecord)] = 12
STUB_SAVED_BYTES[int(Trap.DmQueryRecord)] = 12
STUB_SAVED_BYTES[int(Trap.DmRemoveRecord)] = 12
STUB_SAVED_BYTES[int(Trap.DmWriteRecord)] = 16     # d0-d1/a0-a1
STUB_SAVED_BYTES[int(Trap.WinDrawRectangle)] = 24  # d0-d4/a0
STUB_SAVED_BYTES[int(Trap.WinDrawChars)] = 20      # d0-d2/a0-a1
STUB_SAVED_BYTES[int(Trap.WinEraseWindow)] = 0
STUB_SAVED_BYTES[int(Trap.MemMove)] = 0            # pure 68k, no emucall
STUB_SAVED_BYTES[int(Trap.MemSet)] = 0


def _symbols() -> Dict[str, int]:
    syms: Dict[str, int] = {
        "TRAP_TABLE": L.TRAP_TABLE,
        "KSTACK_TOP": L.STACK_TOP,
        "G_TICKS": L.G_TICKS,
        "FRAMEBUFFER": L.FRAMEBUFFER,
        "FB_LONGS": C.FRAMEBUFFER_SIZE // 4,
        "REG_INT_STATUS": C.REG_INT_STATUS,
        "REG_INT_ACK": C.REG_INT_ACK,
        "REG_PEN_SAMPLE": C.REG_PEN_SAMPLE,
        "REG_KEY_EVENT": C.REG_KEY_EVENT,
        "REG_RNG_ENTROPY": C.REG_RNG_ENTROPY,
        "REG_CARD_EVENT": C.REG_CARD_EVENT,
        "REG_CARD_STATUS": C.REG_CARD_STATUS,
        "CARD_WINDOW": 0x2000_0000,
        "EC_BOOT": emucall_word(CALL_BOOT),
        "EC_GET_APP": emucall_word(CALL_GET_APP),
        "EC_APP_RETURNED": emucall_word(CALL_APP_RETURNED),
        "EC_EVT_TRY": emucall_word(CALL_EVT_TRY),
        "EC_DELAY_TRY": emucall_word(CALL_DELAY_TRY),
        "EC_PANIC": emucall_word(CALL_PANIC),
    }
    for trap in Trap:
        syms[f"SYS_{trap.name}"] = aline_word(trap)
        syms[f"EC_{trap.name}"] = emucall_word(trap, PHASE_PREP)
        syms[f"ECD_{trap.name}"] = emucall_word(trap, PHASE_DONE)
    return syms


_KERNEL_ASM_HEAD = """
        org     $10000000
        dc.l    KSTACK_TOP              ; reset: initial SSP
        dc.l    rom_boot                ; reset: initial PC
        dc.b    "PalmRepro ROM v1.0"
        even

; =====================================================================
; Boot
; =====================================================================
rom_boot:
        lea     trap_dispatcher,a0
        move.l  a0,$28                  ; vector 10: A-line (system traps)
        lea     rom_isr,a0
        move.l  a0,$70                  ; vector 28: autovector level 4
        dc.w    EC_BOOT                 ; kernel init (heaps, queue, traps)
        ; Seed the RNG through the trap path so the hack sees it.
        move.l  REG_RNG_ENTROPY,-(sp)
        dc.w    SYS_SysRandom
        addq.l  #4,sp
        move    #$2000,sr               ; enable interrupts
app_loop:
        dc.w    EC_GET_APP              ; d0 = entry of the app to run
        movea.l d0,a0
        jsr     (a0)
        dc.w    EC_APP_RETURNED
        bra.s   app_loop

; =====================================================================
; Trap dispatcher (runs for every A-line system call)
; =====================================================================
trap_dispatcher:
        ori     #$0700,sr               ; mask interrupts: system code is
                                        ; not reentrant (RTE restores SR)
        subq.l  #4,sp                   ; slot for the handler address
        move.l  a0,-(sp)
        move.l  d0,-(sp)
        move.l  14(sp),a0               ; stacked PC -> the A-line word
        move.w  (a0),d0                 ; fetch the trap word
        addq.l  #2,a0
        move.l  a0,14(sp)               ; resume past the trap word
        and.l   #$1ff,d0                ; dispatch index
        lsl.l   #2,d0
        add.l   #TRAP_TABLE,d0
        movea.l d0,a0
        move.l  (a0),8(sp)              ; handler -> slot
        move.l  (sp)+,d0
        movea.l (sp)+,a0
        rts                             ; jump to handler (frame stays)

; =====================================================================
; Interrupt service routine (level 4 autovector)
; =====================================================================
rom_isr:
        movem.l d0-d2/a0-a1,-(sp)
        move.l  REG_INT_STATUS,d2
        btst    #1,d2                   ; pen sample?
        beq.s   isr_nopen
        move.l  REG_PEN_SAMPLE,-(sp)
        dc.w    SYS_EvtEnqueuePenPoint  ; hacks intercept here
        addq.l  #4,sp
isr_nopen:
        btst    #2,d2                   ; key transition?
        beq.s   isr_nokey
        move.l  REG_KEY_EVENT,-(sp)
        dc.w    SYS_EvtEnqueueKey       ; hacks intercept here
        addq.l  #4,sp
isr_nokey:
        btst    #3,d2                   ; card transition?
        beq.s   isr_nocard
        move.l  REG_CARD_EVENT,-(sp)
        dc.w    SYS_SysNotifyBroadcast  ; the notify hack detects cards
        addq.l  #4,sp
isr_nocard:
        btst    #0,d2                   ; system tick?
        beq.s   isr_notmr
        addq.l  #1,G_TICKS              ; kernel tick mirror
isr_notmr:
        move.l  d2,REG_INT_ACK
        movem.l (sp)+,d0-d2/a0-a1
        rte

; =====================================================================
; Blocking stubs
; =====================================================================
stub_EvtGetEvent:
        dc.w    EC_EvtGetEvent          ; latch event*, compute deadline
evt_loop:
        dc.w    EC_EVT_TRY              ; d0 != 0 when delivered
        tst.l   d0
        bne.s   evt_done
        stop    #$2000                  ; doze until any interrupt
        bra.s   evt_loop
evt_done:
        moveq   #0,d0
        rte

stub_SysTaskDelay:
        dc.w    EC_SysTaskDelay         ; compute wake deadline
delay_loop:
        dc.w    EC_DELAY_TRY
        tst.l   d0
        bne.s   delay_done
        stop    #$2000
        bra.s   delay_loop
delay_done:
        moveq   #0,d0
        rte

; =====================================================================
; Pure 68k data-plane stubs
; =====================================================================
; MemMove(dst, src, len) - overlap-safe byte copy.
stub_MemMove:
        movem.l d0/a0-a1,-(sp)          ; args now at 18(sp)
        movea.l 18(sp),a1               ; dst
        movea.l 22(sp),a0               ; src
        move.l  26(sp),d0               ; len
        tst.l   d0
        beq.s   mm_done
        cmpa.l  a0,a1
        bls.s   mm_fwd                  ; dst <= src: copy ascending
        adda.l  d0,a0
        adda.l  d0,a1
mm_bwd: move.b  -(a0),-(a1)
        subq.l  #1,d0
        bne.s   mm_bwd
        bra.s   mm_done
mm_fwd: move.b  (a0)+,(a1)+
        subq.l  #1,d0
        bne.s   mm_fwd
mm_done:
        movem.l (sp)+,d0/a0-a1
        moveq   #0,d0
        rte

; MemSet(ptr, len, value)
stub_MemSet:
        movem.l d0-d1/a0,-(sp)          ; args at 18(sp)
        movea.l 18(sp),a0
        move.l  22(sp),d0
        move.l  26(sp),d1
        tst.l   d0
        beq.s   ms_done
ms_loop:
        move.b  d1,(a0)+
        subq.l  #1,d0
        bne.s   ms_loop
ms_done:
        movem.l (sp)+,d0-d1/a0
        moveq   #0,d0
        rte

; WinEraseWindow() - clear the frame buffer to white.
stub_WinEraseWindow:
        movem.l d0-d1/a0,-(sp)
        lea     FRAMEBUFFER,a0
        move.l  #FB_LONGS/4,d0
        move.l  #$ffffffff,d1
wew_loop:
        move.l  d1,(a0)+                ; unrolled x4
        move.l  d1,(a0)+
        move.l  d1,(a0)+
        move.l  d1,(a0)+
        subq.l  #1,d0
        bne.s   wew_loop
        movem.l (sp)+,d0-d1/a0
        moveq   #0,d0
        rte

; =====================================================================
; Walk-based data manager stubs.  PREP validates arguments and loads
; d0 = hop count, a0 = address of the list head field; the walk itself
; is genuine 68k, so its cost scales with the record count - the
; organic source of Figure 3's overhead growth.
; =====================================================================
stub_DmNewRecord:
        movem.l d0-d1/a0,-(sp)
        dc.w    EC_DmNewRecord
        tst.l   d0
        beq.s   dnr_done
dnr_walk:
        move.b  4(a0),d1                ; record attributes (busy check)
        movea.l (a0),a0
        subq.l  #1,d0
        bne.s   dnr_walk
dnr_done:
        dc.w    ECD_DmNewRecord         ; splice; result -> saved d0
        movem.l (sp)+,d0-d1/a0
        rte

stub_DmGetRecord:
        movem.l d0-d1/a0,-(sp)
        dc.w    EC_DmGetRecord
        tst.l   d0
        beq.s   dgr_done
dgr_walk:
        move.b  4(a0),d1                ; record attributes (busy check)
        movea.l (a0),a0
        subq.l  #1,d0
        bne.s   dgr_walk
dgr_done:
        dc.w    ECD_DmGetRecord
        movem.l (sp)+,d0-d1/a0
        rte

stub_DmQueryRecord:
        movem.l d0-d1/a0,-(sp)
        dc.w    EC_DmQueryRecord
        tst.l   d0
        beq.s   dqr_done
dqr_walk:
        move.b  4(a0),d1                ; record attributes (busy check)
        movea.l (a0),a0
        subq.l  #1,d0
        bne.s   dqr_walk
dqr_done:
        dc.w    ECD_DmQueryRecord
        movem.l (sp)+,d0-d1/a0
        rte

stub_DmRemoveRecord:
        movem.l d0-d1/a0,-(sp)
        dc.w    EC_DmRemoveRecord
        tst.l   d0
        beq.s   drr_done
drr_walk:
        move.b  4(a0),d1                ; record attributes (busy check)
        movea.l (a0),a0
        subq.l  #1,d0
        bne.s   drr_walk
drr_done:
        dc.w    ECD_DmRemoveRecord
        movem.l (sp)+,d0-d1/a0
        rte

; DmWriteRecord(db, index, offset, srcPtr, len)
stub_DmWriteRecord:
        movem.l d0-d1/a0-a1,-(sp)
        dc.w    EC_DmWriteRecord        ; d0 = hops, a0 = head field
        tst.l   d0
        beq.s   dwr_setup
dwr_walk:
        move.b  4(a0),d1                ; record attributes (busy check)
        movea.l (a0),a0
        subq.l  #1,d0
        bne.s   dwr_walk
dwr_setup:
        dc.w    ECD_DmWriteRecord       ; a0=src, a1=dst, d0=len (0 on err)
        tst.l   d0
        beq.s   dwr_done
dwr_copy:
        move.b  (a0)+,(a1)+
        subq.l  #1,d0
        bne.s   dwr_copy
dwr_done:
        movem.l (sp)+,d0-d1/a0-a1
        rte

; =====================================================================
; Drawing stubs
; =====================================================================
; WinDrawRectangle(x, y, w, h, color)
stub_WinDrawRectangle:
        movem.l d0-d4/a0,-(sp)
        dc.w    EC_WinDrawRectangle     ; a0=start, d0=rows, d1=words/row,
                                        ; d2=colour, d3=row skip bytes
        tst.l   d0
        beq.s   wdr_done
wdr_row:
        move.l  d1,d4
wdr_col:
        move.w  d2,(a0)+
        subq.l  #1,d4
        bne.s   wdr_col
        adda.l  d3,a0
        subq.l  #1,d0
        bne.s   wdr_row
wdr_done:
        movem.l (sp)+,d0-d4/a0
        rte

; WinDrawChars(textPtr, len, x, y) - 6x8 cells, one stripe per row.
stub_WinDrawChars:
        movem.l d0-d2/a0-a1,-(sp)
        dc.w    EC_WinDrawChars         ; a0=text, a1=cell base, d0=len
        tst.l   d0
        beq.s   wdc_done
wdc_char:
        move.b  (a0)+,d1
        move.w  d1,d2
        lsl.w   #8,d2
        move.b  d1,d2                   ; d2 = char | char<<8
        move.w  d2,0(a1)
        move.w  d2,320(a1)
        move.w  d2,640(a1)
        move.w  d2,960(a1)
        move.w  d2,1280(a1)
        move.w  d2,1600(a1)
        move.w  d2,1920(a1)
        move.w  d2,2240(a1)
        adda.l  #12,a1                  ; next 6-pixel cell
        subq.l  #1,d0
        bne.s   wdc_char
wdc_done:
        movem.l (sp)+,d0-d2/a0-a1
        rte

; Unimplemented trap: surface a host error instead of running wild.
rom_unimplemented:
        dc.w    EC_PANIC
        rte

; =====================================================================
; The built-in null application: an empty event loop.  Runs when no
; application is registered or selected; exits on appStopEvent.
; =====================================================================
app_null:
        link    a6,#-16                 ; event buffer in the frame
anull_loop:
        move.l  #$ffffffff,-(sp)        ; evtWaitForever
        pea     -16(a6)                 ; &event
        dc.w    SYS_EvtGetEvent
        addq.l  #8,sp
        move.w  -16(a6),d0              ; event.eType
        cmpi.w  #22,d0                  ; appStopEvent
        bne.s   anull_loop
        unlk    a6
        rts
"""


def _simple_stub(trap: Trap) -> str:
    return (
        f"stub_{trap.name}:\n"
        f"        dc.w    EC_{trap.name}\n"
        f"        rte\n"
    )


class RomBuilder:
    """Assembles the kernel ROM plus any ROM-resident applications."""

    def __init__(self, apps: Sequence[AppSpec] = ()):
        self.apps = list(apps)

    def source(self) -> str:
        parts = [_KERNEL_ASM_HEAD]
        for trap in _SIMPLE_TRAPS:
            parts.append(_simple_stub(trap))
        parts.append("\n; ======================= applications =====================\n")
        for app in self.apps:
            parts.append(f"\n; ---- application: {app.name} ----\n")
            parts.append(app.source)
            parts.append("\n        even\n")
        return "\n".join(parts)

    def build(self) -> Program:
        program = assemble(self.source(), origin=C.FLASH_BASE,
                           symbols=_symbols())
        self._check(program)
        return program

    def _check(self, program: Program) -> None:
        for trap in Trap:
            label = f"stub_{trap.name}"
            if label not in program.symbols:
                raise AssertionError(f"ROM is missing {label}")
        for app in self.apps:
            if f"app_{app.name}" not in program.symbols:
                raise AssertionError(f"app {app.name} lacks entry label")

    def stub_addresses(self, program: Program) -> Dict[int, int]:
        """Trap index -> ROM stub address (for the dispatch table)."""
        return {int(trap): program.symbols[f"stub_{trap.name}"]
                for trap in Trap}

    def app_entries(self, program: Program) -> List[Tuple[AppSpec, int]]:
        return [(app, program.symbols[f"app_{app.name}"]) for app in self.apps]
