"""Guest-memory accessors.

Kernel data structures live in guest RAM; host Python code manipulates
them through one of two accessors:

* :class:`TracedAccess` — goes through the CPU's read/write helpers, so
  every access is charged bus cycles and seen by the reference tracer.
  Used by trap semantics: this is the "microcode" path, and it is what
  makes hack overhead and memory-reference statistics come out of the
  system organically.
* :class:`HostAccess` — raw access to the backing store, free and
  invisible.  Used for host-side operations the real system performs
  over the HotSync cable (state import/export) and by tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Protocol

if TYPE_CHECKING:
    from ..m68k.bus import FlatMemory
    from ..m68k.cpu import CPU

_PROFILER: Any = None


def _profiler_type() -> Any:
    """Lazy :class:`repro.emulator.profiling.Profiler` (import cycle)."""
    global _PROFILER
    if _PROFILER is None:
        from ..emulator.profiling import Profiler
        _PROFILER = Profiler
    return _PROFILER


class GuestAccess(Protocol):
    def read8(self, addr: int) -> int: ...
    def read16(self, addr: int) -> int: ...
    def read32(self, addr: int) -> int: ...
    def write8(self, addr: int, value: int) -> None: ...
    def write16(self, addr: int, value: int) -> None: ...
    def write32(self, addr: int, value: int) -> None: ...
    def read_bytes(self, addr: int, length: int) -> bytes: ...
    def write_bytes(self, addr: int, data: bytes) -> None: ...


class TracedAccess:
    """Access through the CPU: cycle-charged and reference-traced.

    Kernel semantics executed in Python stand in for ROM code a native
    kernel would run; on real hardware every such memory operation is
    interleaved with instruction fetches of that ROM code.  To keep the
    profiled fetch/data and flash/RAM mixes honest, each microcode
    access is therefore accompanied by one instruction fetch at the
    current PC — which during a trap's F-line callback is the servicing
    ROM stub in flash.  The companion fetch only happens while a tracer
    is attached (profiled runs); it costs the same four cycles a real
    fetch would.
    """

    def __init__(self, cpu: "CPU", microcode_fetch: bool = True):
        self._cpu = cpu
        self.microcode_fetch = microcode_fetch

    def _note_fetch(self) -> None:
        cpu = self._cpu
        if self.microcode_fetch and getattr(cpu.bus, "tracer", None) is not None:
            cpu.bus.fetch16(cpu.pc & 0xFFFFFFFE)
            cpu.cycles += 4

    def read8(self, addr: int) -> int:
        self._note_fetch()
        return self._cpu.read(addr, 1)

    def read16(self, addr: int) -> int:
        self._note_fetch()
        return self._cpu.read(addr, 2)

    def read32(self, addr: int) -> int:
        self._note_fetch()
        return self._cpu.read(addr, 4)

    def write8(self, addr: int, value: int) -> None:
        self._note_fetch()
        self._cpu.write(addr, 1, value)

    def write16(self, addr: int, value: int) -> None:
        self._note_fetch()
        self._cpu.write(addr, 2, value)

    def write32(self, addr: int, value: int) -> None:
        self._note_fetch()
        self._cpu.write(addr, 4, value)

    def _bulk_tokens(self, addr: int, length: int, data_kb: int) -> Any:
        """The packed trace tokens of a byte run, exactly as the
        per-byte loop records them: one microcode fetch token before
        every even-indexed byte, one data token per byte."""
        import numpy as np

        cpu = self._cpu
        bus = cpu.bus
        pcf = cpu.pc & 0xFFFFFFFE
        if bus._ram_base <= pcf and pcf < bus.ram_limit:
            ftok = pcf                          # fetch, RAM
        elif bus._flash_base <= pcf and pcf < bus.flash_limit:
            ftok = pcf | (0x10 << 32)           # fetch, flash
        else:
            return None
        pairs = length >> 1
        toks = np.empty(length + pairs + (length & 1), dtype=np.uint64)
        body = toks[:3 * pairs].reshape(pairs, 3)
        body[:, 0] = ftok
        body[:, 1] = np.arange(addr, addr + 2 * pairs, 2,
                               dtype=np.uint64) + data_kb
        body[:, 2] = np.arange(addr + 1, addr + 2 * pairs, 2,
                               dtype=np.uint64) + data_kb
        if length & 1:
            toks[3 * pairs] = ftok
            toks[3 * pairs + 1] = (addr + length - 1) + data_kb
        return toks

    def _bulk_ok(self, addr: int, length: int) -> bool:
        """True when the whole run stays on the traced RAM fast arm:
        profiler-tracing configuration, no sanitizer, all in RAM."""
        cpu = self._cpu
        bus = cpu.bus
        tracer = getattr(bus, "tracer", None)
        if (not self.microcode_fetch or tracer is None
                or type(tracer) is not _profiler_type()
                or not tracer.trace_references
                or tracer.track_reference_pcs or tracer.online_caches
                or getattr(bus, "san", None) is not None
                or getattr(bus, "_ram_base", None) is None):
            return False
        return bus._ram_base <= addr and addr + length <= bus.ram_limit

    def read_bytes(self, addr: int, length: int) -> bytes:
        cpu = self._cpu
        if length > 8 and self._bulk_ok(addr, length):
            toks = self._bulk_tokens(addr, length, 0x1 << 32)
            if toks is not None:
                bus = cpu.bus
                bus.tracer.bulk_references(toks)
                cpu.cycles += 4 * length + 4 * ((length + 1) >> 1)
                off = addr - bus._ram_base
                return bytes(bus._ram_data[off:off + length])
        out = bytearray()
        for i in range(length):
            if i % 2 == 0:
                self._note_fetch()
            out.append(cpu.read(addr + i, 1))
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        cpu = self._cpu
        length = len(data)
        if length > 8 and self._bulk_ok(addr, length):
            bus = cpu.bus
            w = bus.ram_watch
            if w is None or not w.pages or w.pages.isdisjoint(
                    range(addr >> 8, ((addr + length - 1) >> 8) + 1)):
                toks = self._bulk_tokens(addr, length, 0x2 << 32)
                if toks is not None:
                    bus.tracer.bulk_references(toks)
                    cpu.cycles += 4 * length + 4 * ((length + 1) >> 1)
                    off = addr - bus._ram_base
                    bus._ram_data[off:off + length] = data
                    return
        for i, byte in enumerate(data):
            if i % 2 == 0:
                self._note_fetch()
            cpu.write(addr + i, 1, byte)


class HostAccess:
    """Raw access to a :class:`repro.m68k.bus.FlatMemory` (no tracing)."""

    def __init__(self, memory: "FlatMemory"):
        self._memory = memory

    def read8(self, addr: int) -> int:
        return self._memory.read8(addr)

    def read16(self, addr: int) -> int:
        return self._memory.read16(addr)

    def read32(self, addr: int) -> int:
        return self._memory.read32(addr)

    def write8(self, addr: int, value: int) -> None:
        self._memory.write8(addr, value)

    def write16(self, addr: int, value: int) -> None:
        self._memory.write16(addr, value)

    def write32(self, addr: int, value: int) -> None:
        self._memory.write32(addr, value)

    def read_bytes(self, addr: int, length: int) -> bytes:
        return self._memory.dump(addr, length)

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._memory.load(addr, bytes(data))
