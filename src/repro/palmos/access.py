"""Guest-memory accessors.

Kernel data structures live in guest RAM; host Python code manipulates
them through one of two accessors:

* :class:`TracedAccess` — goes through the CPU's read/write helpers, so
  every access is charged bus cycles and seen by the reference tracer.
  Used by trap semantics: this is the "microcode" path, and it is what
  makes hack overhead and memory-reference statistics come out of the
  system organically.
* :class:`HostAccess` — raw access to the backing store, free and
  invisible.  Used for host-side operations the real system performs
  over the HotSync cable (state import/export) and by tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:
    from ..m68k.bus import FlatMemory
    from ..m68k.cpu import CPU


class GuestAccess(Protocol):
    def read8(self, addr: int) -> int: ...
    def read16(self, addr: int) -> int: ...
    def read32(self, addr: int) -> int: ...
    def write8(self, addr: int, value: int) -> None: ...
    def write16(self, addr: int, value: int) -> None: ...
    def write32(self, addr: int, value: int) -> None: ...
    def read_bytes(self, addr: int, length: int) -> bytes: ...
    def write_bytes(self, addr: int, data: bytes) -> None: ...


class TracedAccess:
    """Access through the CPU: cycle-charged and reference-traced.

    Kernel semantics executed in Python stand in for ROM code a native
    kernel would run; on real hardware every such memory operation is
    interleaved with instruction fetches of that ROM code.  To keep the
    profiled fetch/data and flash/RAM mixes honest, each microcode
    access is therefore accompanied by one instruction fetch at the
    current PC — which during a trap's F-line callback is the servicing
    ROM stub in flash.  The companion fetch only happens while a tracer
    is attached (profiled runs); it costs the same four cycles a real
    fetch would.
    """

    def __init__(self, cpu: "CPU", microcode_fetch: bool = True):
        self._cpu = cpu
        self.microcode_fetch = microcode_fetch

    def _note_fetch(self) -> None:
        cpu = self._cpu
        if self.microcode_fetch and getattr(cpu.bus, "tracer", None) is not None:
            cpu.bus.fetch16(cpu.pc & 0xFFFFFFFE)
            cpu.cycles += 4

    def read8(self, addr: int) -> int:
        self._note_fetch()
        return self._cpu.read(addr, 1)

    def read16(self, addr: int) -> int:
        self._note_fetch()
        return self._cpu.read(addr, 2)

    def read32(self, addr: int) -> int:
        self._note_fetch()
        return self._cpu.read(addr, 4)

    def write8(self, addr: int, value: int) -> None:
        self._note_fetch()
        self._cpu.write(addr, 1, value)

    def write16(self, addr: int, value: int) -> None:
        self._note_fetch()
        self._cpu.write(addr, 2, value)

    def write32(self, addr: int, value: int) -> None:
        self._note_fetch()
        self._cpu.write(addr, 4, value)

    def read_bytes(self, addr: int, length: int) -> bytes:
        cpu = self._cpu
        out = bytearray()
        for i in range(length):
            if i % 2 == 0:
                self._note_fetch()
            out.append(cpu.read(addr + i, 1))
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        cpu = self._cpu
        for i, byte in enumerate(data):
            if i % 2 == 0:
                self._note_fetch()
            cpu.write(addr + i, 1, byte)


class HostAccess:
    """Raw access to a :class:`repro.m68k.bus.FlatMemory` (no tracing)."""

    def __init__(self, memory: "FlatMemory"):
        self._memory = memory

    def read8(self, addr: int) -> int:
        return self._memory.read8(addr)

    def read16(self, addr: int) -> int:
        return self._memory.read16(addr)

    def read32(self, addr: int) -> int:
        return self._memory.read32(addr)

    def write8(self, addr: int, value: int) -> None:
        self._memory.write8(addr, value)

    def write16(self, addr: int, value: int) -> None:
        self._memory.write16(addr, value)

    def write32(self, addr: int, value: int) -> None:
        self._memory.write32(addr, value)

    def read_bytes(self, addr: int, length: int) -> bytes:
        return self._memory.dump(addr, length)

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._memory.load(addr, bytes(data))
