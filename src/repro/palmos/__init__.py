"""A from-scratch Palm OS kernel model.

Trap dispatch, the event manager, the memory manager (dynamic and
storage heaps), the data manager (record databases in the classic PDB
layout), and the boot sequence — everything resident in guest RAM as
real bytes, executed by a mix of ROM 68k code and Python "microcode"
that charges bus cycles for every access.
"""

from . import layout
from .database import DatabaseImage, DatabaseManager, DmError, RecordImage, fourcc
from .events import Event, EventQueue, EventType
from .heap import Heap, HeapError
from .kernel import EXTENSIONS_DB_NAME, LAUNCH_DB_NAME, PalmOS, RegisteredApp
from .rom import AppSpec, RomBuilder
from .traps import EVT_WAIT_FOREVER, Trap

__all__ = [
    "layout",
    "DatabaseImage",
    "DatabaseManager",
    "DmError",
    "RecordImage",
    "fourcc",
    "Event",
    "EventQueue",
    "EventType",
    "Heap",
    "HeapError",
    "EXTENSIONS_DB_NAME",
    "LAUNCH_DB_NAME",
    "PalmOS",
    "RegisteredApp",
    "AppSpec",
    "RomBuilder",
    "EVT_WAIT_FOREVER",
    "Trap",
]
