"""The memory manager: chunked heaps in guest RAM.

Palm OS divides RAM into a small *dynamic heap* (working storage,
wiped at reset) and a large *storage heap* (databases, persistent
across soft resets).  Both are managed here as chunk lists with
next-fit allocation.

Every header read and write goes through the accessor, so allocation
cost is proportional to the number of chunks walked — the organic
source of the "OS memory manager" overhead the paper measures growing
with database size (§2.3.3, Figure 3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, NamedTuple, Optional

from . import layout as L
from .access import GuestAccess

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.sanitizer.core import MemorySanitizer


class ChunkInfo(NamedTuple):
    addr: int        # header address
    size: int        # total size including header
    free: bool
    owner: int


class HeapError(Exception):
    """Heap corruption detected (a guest or kernel bug)."""


def _align(n: int) -> int:
    return (n + 1) & ~1


class Heap:
    """A chunked next-fit heap over ``[base, limit)`` of guest memory.

    ``rover_global`` is the guest address of the next-fit rover pointer
    (kept in guest RAM so it is part of the machine state and survives
    state export/import like everything else).
    """

    def __init__(self, access: GuestAccess, base: int, limit: int,
                 rover_global: int, first_chunk_offset: int = 0):
        self.access = access
        self.base = base
        self.limit = limit
        self.rover_global = rover_global
        self.first_chunk = base + first_chunk_offset
        #: Attached memory sanitizer, if any (see
        #: :mod:`repro.analysis.sanitizer`).  When set, allocations grow
        #: red zones and frees pass through a quarantine.
        self.san: Optional["MemorySanitizer"] = None

    def with_access(self, access: GuestAccess) -> "Heap":
        """The same heap viewed through a different accessor."""
        return Heap(access, self.base, self.limit, self.rover_global,
                    self.first_chunk - self.base)

    # ------------------------------------------------------------------
    def format(self) -> None:
        """Initialise the heap as one big free chunk."""
        a = self.access
        a.write32(self.first_chunk, self.limit - self.first_chunk)
        a.write16(self.first_chunk + 4, L.CHUNK_FLAG_FREE)
        a.write16(self.first_chunk + 6, 0)
        a.write32(self.rover_global, self.first_chunk)
        if self.san is not None:
            self.san.on_format(self)

    # ------------------------------------------------------------------
    def _read_header(self, addr: int) -> tuple[int, int, int]:
        a = self.access
        size = a.read32(addr)
        flags = a.read16(addr + 4)
        owner = a.read16(addr + 6)
        if size < L.CHUNK_HEADER_SIZE or addr + size > self.limit or size & 1:
            raise HeapError(
                f"corrupt chunk at {addr:#x}: size={size:#x} flags={flags:#x}")
        return size, flags, owner

    def header_of(self, payload: int) -> tuple[int, int, int]:
        """Validated ``(size, flags, owner)`` for an arbitrary payload
        pointer.  Unlike :meth:`_read_header` (which trusts its caller
        to pass a real chunk address), this guards against garbage
        pointers before acting on the bytes behind them."""
        addr = payload - L.CHUNK_HEADER_SIZE
        if payload & 1 or not self.first_chunk <= addr < self.limit:
            raise HeapError(f"invalid chunk: bad payload pointer {payload:#x}")
        size, flags, owner = self._read_header(addr)
        if flags & ~L.CHUNK_FLAG_FREE:
            raise HeapError(
                f"invalid chunk at {addr:#x}: unknown flag bits {flags:#x}")
        return size, flags, owner

    def alloc(self, size: int, owner: int = L.OWNER_KERNEL) -> int:
        """Allocate ``size`` payload bytes; returns the payload address
        or 0 when the heap is exhausted.

        With a sanitizer attached the chunk is padded with red zones on
        both sides and the sanitizer-adjusted payload pointer is
        returned; on exhaustion the free-chunk quarantine is drained
        and the search retried before giving up.
        """
        if size <= 0:
            return 0
        if self.san is None:
            return self._alloc_chunk(size, owner)
        inner = _align(size) + 2 * self.san.redzone
        chunk = self._alloc_chunk(inner, owner)
        if not chunk:
            for parked in self.san.drain(self, all_chunks=True):
                self._free_chunk(parked)
            self.coalesce_all()
            chunk = self._alloc_chunk(inner, owner)
            if not chunk:
                return 0
        return self.san.on_alloc(self, chunk, size, owner)

    def _alloc_chunk(self, size: int, owner: int = L.OWNER_KERNEL,
                     _retry: bool = True) -> int:
        """The raw next-fit search: no red zones, no quarantine.

        Frees only coalesce forward (O(1)); when a next-fit pass finds
        nothing, a full coalescing sweep runs and the search retries
        once — the classic lazy-coalescing design.
        """
        if size <= 0:
            return 0
        a = self.access
        need = _align(size) + L.CHUNK_HEADER_SIZE
        rover = a.read32(self.rover_global)
        if not self.first_chunk <= rover < self.limit:
            rover = self.first_chunk
        addr = rover
        wrapped = False
        while True:
            csize, flags, _ = self._read_header(addr)
            if flags & L.CHUNK_FLAG_FREE and csize >= need:
                break
            addr += csize
            if addr >= self.limit:
                addr = self.first_chunk
                wrapped = True
            if wrapped and addr >= rover:
                if _retry:
                    self.coalesce_all()
                    return self._alloc_chunk(size, owner, _retry=False)
                return 0  # out of memory
        # Split the tail off when it is big enough to be useful.
        if csize - need >= L.MIN_CHUNK_SPLIT:
            a.write32(addr + need, csize - need)
            a.write16(addr + need + 4, L.CHUNK_FLAG_FREE)
            a.write16(addr + need + 6, 0)
            csize = need
        a.write32(addr, csize)
        a.write16(addr + 4, 0)
        a.write16(addr + 6, owner)
        nxt = addr + csize
        a.write32(self.rover_global, nxt if nxt < self.limit else self.first_chunk)
        return addr + L.CHUNK_HEADER_SIZE

    def free(self, payload: int) -> None:
        """Free the chunk whose payload starts at ``payload``.

        The pointer is validated against the chunk header before any
        list surgery — a garbage pointer raises :class:`HeapError`
        instead of corrupting the walk.  With a sanitizer attached the
        chunk is quarantined; its storage returns to the heap only when
        the quarantine rotates it out.
        """
        if self.san is not None:
            self.san.on_free(self, payload)
            for parked in self.san.drain(self):
                self._free_chunk(parked)
            return
        self.header_of(payload)
        self._free_chunk(payload)

    def _free_chunk(self, payload: int) -> None:
        a = self.access
        addr = payload - L.CHUNK_HEADER_SIZE
        size, flags, _ = self._read_header(addr)
        if flags & L.CHUNK_FLAG_FREE:
            raise HeapError(f"double free of chunk at {addr:#x}")
        # Coalesce forward while the neighbour is free.
        end = addr + size
        while end < self.limit:
            nsize, nflags, _ = self._read_header(end)
            if not nflags & L.CHUNK_FLAG_FREE:
                break
            size += nsize
            end += nsize
        a.write32(addr, size)
        a.write16(addr + 4, L.CHUNK_FLAG_FREE)
        a.write16(addr + 6, 0)
        # Keep the rover out of the coalesced region.
        rover = a.read32(self.rover_global)
        if addr <= rover < addr + size:
            a.write32(self.rover_global, addr)

    def coalesce_all(self) -> None:
        """Merge every run of adjacent free chunks (lazy sweep)."""
        a = self.access
        addr = self.first_chunk
        while addr < self.limit:
            size, flags, _ = self._read_header(addr)
            if flags & L.CHUNK_FLAG_FREE:
                end = addr + size
                while end < self.limit:
                    nsize, nflags, _ = self._read_header(end)
                    if not nflags & L.CHUNK_FLAG_FREE:
                        break
                    size += nsize
                    end += nsize
                a.write32(addr, size)
            addr += size
        a.write32(self.rover_global, self.first_chunk)

    # ------------------------------------------------------------------
    def payload_size(self, payload: int) -> int:
        if self.san is not None:
            tracked = self.san.payload_size(payload)
            if tracked is not None:
                return tracked
        size, _, _ = self.header_of(payload)
        return size - L.CHUNK_HEADER_SIZE

    def chunks(self) -> Iterator[ChunkInfo]:
        """Walk every chunk (host diagnostics and tests)."""
        addr = self.first_chunk
        while addr < self.limit:
            size, flags, owner = self._read_header(addr)
            yield ChunkInfo(addr, size, bool(flags & L.CHUNK_FLAG_FREE), owner)
            addr += size

    def free_bytes(self) -> int:
        return sum(c.size - L.CHUNK_HEADER_SIZE for c in self.chunks() if c.free)

    def used_chunks(self) -> int:
        return sum(1 for c in self.chunks() if not c.free)


def make_dynamic_heap(access: GuestAccess) -> Heap:
    return Heap(access, L.DYNAMIC_HEAP_BASE, L.DYNAMIC_HEAP_LIMIT,
                L.G_HEAP_ROVER_DYN)


def make_storage_heap(access: GuestAccess, ram_size: int) -> Heap:
    # The first 8 bytes of the storage heap hold the "formatted" magic.
    return Heap(access, L.STORAGE_HEAP_BASE, L.storage_heap_limit(ram_size),
                L.G_HEAP_ROVER_STO, first_chunk_offset=8)


def storage_is_formatted(access: GuestAccess) -> bool:
    return access.read32(L.STORAGE_HEAP_BASE) == L.STORAGE_MAGIC


def format_storage_magic(access: GuestAccess) -> None:
    access.write32(L.STORAGE_HEAP_BASE, L.STORAGE_MAGIC)
    access.write32(L.STORAGE_HEAP_BASE + 4, 0)
