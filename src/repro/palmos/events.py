"""The event manager: event codes, the guest-resident event queue.

The queue is a fixed ring buffer in guest RAM (header + 16-byte slots);
every enqueue and dequeue walks through the accessor so the references
are real.  Applications receive events via the ``EvtGetEvent`` trap.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from . import layout as L
from .access import GuestAccess


class EventType(IntEnum):
    nilEvent = 0
    penDownEvent = 1
    penUpEvent = 2
    penMoveEvent = 3
    keyDownEvent = 4
    keyUpEvent = 5
    appStopEvent = 22
    appRaiseEvent = 23      # custom: launcher raised an app
    notifyEvent = 24        # custom: SysNotifyBroadcast delivery
    firstUserEvent = 0x6000


@dataclass
class Event:
    """Host-side view of one 16-byte guest event record.

    Layout: eType u16 | flags u16 | x u16 | y u16 | key u16 | data u32
    (2 bytes pad).
    """

    etype: int = EventType.nilEvent
    flags: int = 0
    x: int = 0
    y: int = 0
    key: int = 0
    data: int = 0

    def write_to(self, access: GuestAccess, addr: int) -> None:
        access.write16(addr, self.etype)
        access.write16(addr + 2, self.flags)
        access.write16(addr + 4, self.x)
        access.write16(addr + 6, self.y)
        access.write16(addr + 8, self.key)
        access.write32(addr + 10, self.data)
        access.write16(addr + 14, 0)

    @classmethod
    def read_from(cls, access: GuestAccess, addr: int) -> "Event":
        return cls(
            etype=access.read16(addr),
            flags=access.read16(addr + 2),
            x=access.read16(addr + 4),
            y=access.read16(addr + 6),
            key=access.read16(addr + 8),
            data=access.read32(addr + 10),
        )


class EventQueue:
    """Operations on the guest ring buffer at ``layout.EVENT_QUEUE``."""

    def __init__(self, access: GuestAccess):
        self._access = access

    def reset(self) -> None:
        a = self._access
        a.write16(L.EVENT_QUEUE, 0)       # head (next slot to pop)
        a.write16(L.EVENT_QUEUE + 2, 0)   # tail (next slot to fill)
        a.write16(L.EVENT_QUEUE + 4, 0)   # count
        a.write16(L.EVENT_QUEUE + 6, L.EVENT_QUEUE_CAPACITY)

    @property
    def count(self) -> int:
        return self._access.read16(L.EVENT_QUEUE + 4)

    def enqueue(self, event: Event) -> bool:
        """Append an event; returns False when the ring is full."""
        a = self._access
        count = a.read16(L.EVENT_QUEUE + 4)
        capacity = a.read16(L.EVENT_QUEUE + 6)
        if count >= capacity:
            return False
        tail = a.read16(L.EVENT_QUEUE + 2)
        event.write_to(a, L.EVENT_QUEUE_SLOTS + tail * L.EVENT_SIZE)
        a.write16(L.EVENT_QUEUE + 2, (tail + 1) % capacity)
        a.write16(L.EVENT_QUEUE + 4, count + 1)
        return True

    def dequeue(self) -> Event | None:
        a = self._access
        count = a.read16(L.EVENT_QUEUE + 4)
        if count == 0:
            return None
        head = a.read16(L.EVENT_QUEUE)
        capacity = a.read16(L.EVENT_QUEUE + 6)
        event = Event.read_from(a, L.EVENT_QUEUE_SLOTS + head * L.EVENT_SIZE)
        a.write16(L.EVENT_QUEUE, (head + 1) % capacity)
        a.write16(L.EVENT_QUEUE + 4, count - 1)
        return event

    def flush(self) -> None:
        a = self._access
        a.write16(L.EVENT_QUEUE, 0)
        a.write16(L.EVENT_QUEUE + 2, 0)
        a.write16(L.EVENT_QUEUE + 4, 0)
