"""System trap numbers.

Palm OS system calls are A-line instructions: the trap word is
``0xA000 | index`` and the OS dispatches through a table of handler
addresses, which is what makes the paper's hacks possible — installing
a hack is one pointer swap in this table (see
:func:`repro.palmos.syscalls`, ``SysSetTrapAddress``).

The indices below are this kernel's own numbering (the real Palm OS 3.5
table has 880 entries; we implement the surface the paper's workloads
and instrumentation exercise).
"""

from __future__ import annotations

from enum import IntEnum


class Trap(IntEnum):
    # Event manager
    EvtGetEvent = 0x01
    EvtEnqueueKey = 0x02
    EvtEnqueuePenPoint = 0x03
    EvtEnqueueEvent = 0x04
    EvtFlushQueue = 0x05
    # Key manager
    KeyCurrentState = 0x08
    # System
    SysRandom = 0x10
    SysNotifyBroadcast = 0x11
    SysUIAppSwitch = 0x12
    SysTaskDelay = 0x13
    SysTicksPerSecond = 0x14
    SysSetTrapAddress = 0x15
    SysGetTrapAddress = 0x16
    SysCurrentApp = 0x17
    # Time manager
    TimGetTicks = 0x18
    TimGetSeconds = 0x19
    SysReset = 0x1A
    # Memory manager
    MemPtrNew = 0x20
    MemPtrFree = 0x21
    MemMove = 0x22
    MemSet = 0x23
    MemPtrSize = 0x24
    MemHeapFreeBytes = 0x25
    # Data (database) manager
    DmCreateDatabase = 0x30
    DmDeleteDatabase = 0x31
    DmFindDatabase = 0x32
    DmOpenDatabase = 0x33
    DmCloseDatabase = 0x34
    DmDatabaseInfo = 0x35
    DmSetDatabaseInfo = 0x36
    DmNumRecords = 0x37
    DmGetRecord = 0x38
    DmQueryRecord = 0x39
    DmNewRecord = 0x3A
    DmRemoveRecord = 0x3B
    DmWriteRecord = 0x3C
    DmRecordInfo = 0x3D
    DmSetRecordInfo = 0x3E
    DmReleaseRecord = 0x3F
    DmGetLastErr = 0x40
    DmNextDatabase = 0x41
    # Expansion manager (memory cards - the future-work extension)
    ExpCardPresent = 0x48
    ExpCardInfo = 0x49
    # Window manager (drawing)
    WinEraseWindow = 0x50
    WinDrawRectangle = 0x51
    WinDrawChars = 0x52
    WinDrawLine = 0x53
    WinDrawPixel = 0x54
    WinGetPixel = 0x55


ALINE_BASE = 0xA000
FLINE_BASE = 0xF000

# F-line emucall encoding: 0xF000 | (code << 1) | phase.
PHASE_PREP = 0
PHASE_DONE = 1

# Reserved emucall codes above the trap range (traps use their own index).
CALL_BOOT = 0x700
CALL_GET_APP = 0x701
CALL_EVT_TRY = 0x702
CALL_APP_RETURNED = 0x703
CALL_DELAY_TRY = 0x704
CALL_PANIC = 0x7FF


def aline_word(trap: int) -> int:
    return ALINE_BASE | int(trap)


def emucall_word(code: int, phase: int = PHASE_PREP) -> int:
    return FLINE_BASE | (int(code) << 1) | phase


def decode_emucall(word: int) -> tuple[int, int]:
    payload = word & 0x0FFF
    return payload >> 1, payload & 1


#: Error codes (subset of Palm's dmErr*/memErr* space).
ERR_NONE = 0
ERR_MEM_NOT_ENOUGH = 0x0101
ERR_MEM_INVALID_PTR = 0x0102
ERR_DM_NOT_FOUND = 0x0201
ERR_DM_INDEX_OUT_OF_RANGE = 0x0202
ERR_DM_READ_ONLY = 0x0203
ERR_DM_DATABASE_EXISTS = 0x0204
ERR_DM_FULL = 0x0205
ERR_EVT_QUEUE_FULL = 0x0301
ERR_SYS_INVALID_TRAP = 0x0401

#: EvtGetEvent "wait forever" timeout value.
EVT_WAIT_FOREVER = 0xFFFFFFFF
