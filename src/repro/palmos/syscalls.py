"""System call semantics — the kernel's control plane.

Every trap has its semantics implemented here.  Two entry paths exist,
mirroring the Palm OS Emulator's architecture the paper describes in
§2.4.2:

* **F-line path** (always correct, used when profiling): the A-line
  trap vectors through the ROM trap dispatcher, the ROM stub runs its
  68k prologue/data-plane, and its F-line emucall lands in
  :meth:`SysCalls.fline`, which executes the semantics.
* **Native path** (POSE's speed optimisation, used when profiling is
  off): :meth:`SysCalls.aline` services the trap directly, skipping
  the dispatcher — unless the dispatch-table entry has been patched
  (a hack is installed), in which case it declines and the 68k path
  runs so the hack executes.

All guest state is manipulated through the traced accessor, so even
Python-executed semantics charge bus cycles and appear in reference
traces ("microcode").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..device import constants as C
from .access import TracedAccess
from . import layout as L
from .database import DmError
from .events import Event, EventType
from .heap import HeapError
from .rom import STUB_SAVED_BYTES
from .traps import (
    CALL_APP_RETURNED,
    CALL_BOOT,
    CALL_DELAY_TRY,
    CALL_EVT_TRY,
    CALL_GET_APP,
    CALL_PANIC,
    ERR_DM_INDEX_OUT_OF_RANGE,
    ERR_DM_NOT_FOUND,
    ERR_EVT_QUEUE_FULL,
    ERR_MEM_INVALID_PTR,
    ERR_MEM_NOT_ENOUGH,
    EVT_WAIT_FOREVER,
    PHASE_DONE,
    Trap,
    decode_emucall,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..m68k.cpu import CPU
    from .kernel import PalmOS

_SCREEN_W = C.SCREEN_WIDTH
_SCREEN_H = C.SCREEN_HEIGHT
_ROW_BYTES = _SCREEN_W * C.SCREEN_BYTES_PER_PIXEL


class SysCalls:
    """Trap semantics bound to a :class:`repro.palmos.kernel.PalmOS`."""

    def __init__(self, kernel: "PalmOS"):
        self.k = kernel
        self._ctx: List[dict] = []
        #: Replay hooks (installed by the playback driver).
        self.key_state_override: Optional[Callable[[int, int], int]] = None
        self.random_seed_override: Optional[Callable[[int], int]] = None

        self._prep: Dict[int, Callable] = {}
        self._done: Dict[int, Callable] = {}
        self._native: Dict[int, Callable] = {}
        self._fast_table: Optional[List[Optional[Callable]]] = None
        self._register_handlers()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def fline(self, cpu: "CPU", op: int) -> bool:
        code, phase = decode_emucall(op)
        if code >= 0x700:
            if code == CALL_BOOT:
                self.k.on_boot()
            elif code == CALL_GET_APP:
                cpu.d[0] = self.k.select_app()
            elif code == CALL_APP_RETURNED:
                self.k.on_app_returned()
            elif code == CALL_EVT_TRY:
                self._evt_try(cpu)
            elif code == CALL_DELAY_TRY:
                self._delay_try(cpu)
            elif code == CALL_PANIC:
                raise RuntimeError("guest panic emucall")
            else:
                return False
            return True
        if phase == PHASE_DONE:
            handler = self._done.get(code)
        else:
            handler = self._prep.get(code)
        if handler is None:
            return False
        handler(cpu, 6 + STUB_SAVED_BYTES.get(code, 0))
        return True

    def aline(self, cpu: "CPU", op: int) -> bool:
        """A-line hook: seed override, then the native fast path.

        §2.4.2: for non-zero SysRandom calls "the seed value from the
        queue is queried before SysRandom is called.  The parameter is
        overwritten with the seed value from the queue and execution
        continues" — done here, before any dispatch, so installed hacks
        log the overridden value exactly as the original session's
        hacks logged theirs.
        """
        idx = op & 0x1FF
        if idx == int(Trap.SysRandom) and self.random_seed_override is not None:
            seed = self.acc.read32(cpu.a[7])
            if seed:
                replacement = self.random_seed_override(seed) & 0xFFFFFFFF
                self.acc.write32(cpu.a[7], replacement)
        if not self.k.allow_native:
            return False
        handler = self._native.get(idx)
        if handler is None:
            return False
        # A patched dispatch-table entry (a hack) disables the fast path
        # for that trap so the hack code actually executes.
        entry = self.k.host.read32(L.TRAP_TABLE + idx * 4)
        if entry != self.k.default_stubs.get(idx):
            return False
        handler(cpu, 0)
        return True

    def aline_fast_table(self) -> List[Optional[Callable]]:
        """A 512-entry per-trap-number dispatch table for the block
        core's trap tail (see ``BlockCore._resolve_trap_table``).

        Each entry is ``fn(cpu, op) -> bool`` with semantics identical
        to :meth:`aline` for that trap number — the per-call dynamic
        state (``allow_native``, the hack-patch check against the
        guest dispatch table, the replay seed override) is read inside
        the closure, so installing a hack or a replay hook mid-run
        behaves exactly as on the generic path.  Numbers with no
        native handler are ``None`` (straight to the guest exception
        path), except ``SysRandom``, whose seed-override preamble must
        run even when the dispatch itself declines.
        """
        table = self._fast_table
        if table is not None:
            return table
        k = self.k
        host_read = k.host.read32
        stubs = k.default_stubs

        def make(idx: int, handler: Callable) -> Callable:
            entry_addr = L.TRAP_TABLE + idx * 4
            expected = stubs.get(idx)

            def fast(cpu: "CPU", op: int) -> bool:
                if not k.allow_native:
                    return False
                if host_read(entry_addr) != expected:
                    return False
                handler(cpu, 0)
                return True

            return fast

        table = [None] * 512
        for idx, handler in self._native.items():
            table[idx] = make(idx, handler)

        rand_idx = int(Trap.SysRandom)
        native_rand = table[rand_idx]

        def fast_random(cpu: "CPU", op: int) -> bool:
            if self.random_seed_override is not None:
                seed = self.acc.read32(cpu.a[7])
                if seed:
                    self.acc.write32(
                        cpu.a[7],
                        self.random_seed_override(seed) & 0xFFFFFFFF)
            if native_rand is None:
                return False
            return native_rand(cpu, op)

        table[rand_idx] = fast_random
        self._fast_table = table
        return table

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def acc(self) -> TracedAccess:
        return self.k.traced

    def _arg(self, cpu: "CPU", base: int, i: int) -> int:
        return self.acc.read32(cpu.a[7] + base + 4 * i)

    def _cstring(self, addr: int, limit: int = 32) -> str:
        out: List[str] = []
        for i in range(limit):
            byte = self.acc.read8(addr + i)
            if byte == 0:
                break
            out.append(chr(byte))
        return "".join(out)

    def _set_last_err(self, code: int) -> None:
        self.acc.write32(L.G_DM_LAST_ERR, code)

    def _register_handlers(self) -> None:
        for trap in Trap:
            name = f"t_{trap.name}"
            if hasattr(self, name):
                fn = getattr(self, name)
                self._prep[int(trap)] = fn
                self._native[int(trap)] = fn
        # Two-phase traps: distinct prep/done/native functions.
        two_phase = {
            Trap.EvtGetEvent: (self.p_EvtGetEvent, None, None),
            Trap.SysTaskDelay: (self.p_SysTaskDelay, None, None),
            Trap.DmNewRecord: (self.p_DmNewRecord, self.d_DmNewRecord,
                               self.n_DmNewRecord),
            Trap.DmGetRecord: (self.p_DmGetRecord, self.d_DmGetRecord,
                               self.n_DmGetRecord),
            Trap.DmQueryRecord: (self.p_DmGetRecord, self.d_DmGetRecord,
                                 self.n_DmGetRecord),
            Trap.DmRemoveRecord: (self.p_DmRemoveRecord, self.d_DmRemoveRecord,
                                  self.n_DmRemoveRecord),
            Trap.DmWriteRecord: (self.p_DmWriteRecord, self.d_DmWriteRecord,
                                 self.n_DmWriteRecord),
            Trap.WinDrawRectangle: (self.p_WinDrawRectangle, None,
                                    self.n_WinDrawRectangle),
            Trap.WinDrawChars: (self.p_WinDrawChars, None,
                                self.n_WinDrawChars),
            Trap.WinEraseWindow: (None, None, self.n_WinEraseWindow),
            Trap.MemMove: (None, None, self.n_MemMove),
            Trap.MemSet: (None, None, self.n_MemSet),
        }
        for trap, (prep, done, native) in two_phase.items():
            idx = int(trap)
            self._prep.pop(idx, None)
            self._native.pop(idx, None)
            if prep is not None:
                self._prep[idx] = prep
            if done is not None:
                self._done[idx] = done
            if native is not None:
                self._native[idx] = native

    # ==================================================================
    # Event manager
    # ==================================================================
    def t_EvtEnqueueKey(self, cpu: "CPU", base: int) -> None:
        packed = self._arg(cpu, base, 0)
        down = bool(packed & 0x8000_0000)
        event = Event(EventType.keyDownEvent if down else EventType.keyUpEvent,
                      key=packed & 0xFF)
        ok = self.k.queue.enqueue(event)
        cpu.d[0] = 0 if ok else ERR_EVT_QUEUE_FULL

    def t_EvtEnqueuePenPoint(self, cpu: "CPU", base: int) -> None:
        packed = self._arg(cpu, base, 0)
        down = bool(packed & 0x8000_0000)
        x = (packed >> 8) & 0xFF
        y = packed & 0xFF
        prev = self.acc.read32(L.G_PEN_PREV)
        prev_down = bool(prev & 0x8000_0000)
        self.acc.write32(L.G_PEN_PREV, packed)
        if down and not prev_down:
            etype = EventType.penDownEvent
        elif down:
            etype = EventType.penMoveEvent
        elif prev_down:
            etype = EventType.penUpEvent
        else:
            cpu.d[0] = 0
            return
        ok = self.k.queue.enqueue(Event(etype, x=x, y=y))
        cpu.d[0] = 0 if ok else ERR_EVT_QUEUE_FULL

    def t_EvtEnqueueEvent(self, cpu: "CPU", base: int) -> None:
        ptr = self._arg(cpu, base, 0)
        event = Event.read_from(self.acc, ptr)
        cpu.d[0] = 0 if self.k.queue.enqueue(event) else ERR_EVT_QUEUE_FULL

    def t_EvtFlushQueue(self, cpu: "CPU", base: int) -> None:
        self.k.queue.flush()
        cpu.d[0] = 0

    # -- EvtGetEvent (blocking, F-line path only) -----------------------
    def p_EvtGetEvent(self, cpu: "CPU", base: int) -> None:
        event_ptr = self._arg(cpu, base, 0)
        timeout = self._arg(cpu, base, 1)
        self.acc.write32(L.G_EVT_PTR, event_ptr)
        if timeout == EVT_WAIT_FOREVER or timeout == 0:
            deadline = 0
        else:
            deadline = self.k.device.tick + timeout
            self.k.device.request_wake(deadline)
        self.acc.write32(L.G_EVT_DEADLINE, deadline)

    def _evt_try(self, cpu: "CPU") -> None:
        event = self.k.queue.dequeue()
        if event is not None:
            event = self.k.map_hard_button(event)
        else:
            deadline = self.acc.read32(L.G_EVT_DEADLINE)
            if deadline and self.k.device.tick >= deadline:
                event = Event(EventType.nilEvent)
            else:
                idle = self.acc.read32(L.G_IDLE_COUNT)
                self.acc.write32(L.G_IDLE_COUNT, (idle + 1) & 0xFFFFFFFF)
                cpu.d[0] = 0
                return
        event.write_to(self.acc, self.acc.read32(L.G_EVT_PTR))
        cpu.d[0] = 1

    # -- SysTaskDelay ----------------------------------------------------
    def p_SysTaskDelay(self, cpu: "CPU", base: int) -> None:
        ticks = self._arg(cpu, base, 0)
        deadline = self.k.device.tick + ticks
        self.acc.write32(L.G_DELAY_DEADLINE, deadline)
        self.k.device.request_wake(deadline)

    def _delay_try(self, cpu: "CPU") -> None:
        deadline = self.acc.read32(L.G_DELAY_DEADLINE)
        cpu.d[0] = 1 if self.k.device.tick >= deadline else 0

    # ==================================================================
    # Key / system / time
    # ==================================================================
    def t_KeyCurrentState(self, cpu: "CPU", base: int) -> None:
        raw = self.acc.read32(C.REG_KEY_STATE)
        if self.key_state_override is not None:
            # Recorded bit fields are keyed by guest tick (the clock
            # the hack logged), which restarts at warm resets.
            raw = self.key_state_override(self.k.device.guest_tick, raw)
        cpu.d[0] = raw

    def t_SysRandom(self, cpu: "CPU", base: int) -> None:
        # Replay's seed override happens at A-line dispatch (see aline).
        seed = self._arg(cpu, base, 0)
        if seed:
            self.acc.write32(L.G_RAND_SEED, seed & 0x7FFFFFFF)
        state = self.acc.read32(L.G_RAND_SEED)
        state = (state * 1_103_515_245 + 12_345) & 0x7FFFFFFF
        self.acc.write32(L.G_RAND_SEED, state)
        cpu.d[0] = (state >> 16) & 0x7FFF

    def t_SysNotifyBroadcast(self, cpu: "CPU", base: int) -> None:
        notify_type = self._arg(cpu, base, 0)
        ok = self.k.queue.enqueue(Event(EventType.notifyEvent,
                                        data=notify_type))
        cpu.d[0] = 0 if ok else ERR_EVT_QUEUE_FULL

    def t_SysUIAppSwitch(self, cpu: "CPU", base: int) -> None:
        app_id = self._arg(cpu, base, 0)
        self.acc.write32(L.G_NEXT_APP, app_id)
        self.k.queue.enqueue(Event(EventType.appStopEvent))
        cpu.d[0] = 0

    def t_SysTicksPerSecond(self, cpu: "CPU", base: int) -> None:
        cpu.d[0] = C.TICKS_PER_SECOND

    def t_SysSetTrapAddress(self, cpu: "CPU", base: int) -> None:
        trap = self._arg(cpu, base, 0) & 0x1FF
        addr = self._arg(cpu, base, 1)
        entry = L.TRAP_TABLE + trap * 4
        old = self.acc.read32(entry)
        self.acc.write32(entry, addr)
        cpu.d[0] = old

    def t_SysGetTrapAddress(self, cpu: "CPU", base: int) -> None:
        trap = self._arg(cpu, base, 0) & 0x1FF
        cpu.d[0] = self.acc.read32(L.TRAP_TABLE + trap * 4)

    def t_SysCurrentApp(self, cpu: "CPU", base: int) -> None:
        cpu.d[0] = self.acc.read32(L.G_CURRENT_APP)

    def t_TimGetTicks(self, cpu: "CPU", base: int) -> None:
        cpu.d[0] = self.acc.read32(C.REG_TMR_TICKS)

    def t_SysReset(self, cpu: "CPU", base: int) -> None:
        """Soft reset, mid-session (the paper's deferred future work).

        The device performs a warm reset immediately: the CPU restarts
        at the flash reset vector, the guest tick counter returns to
        zero, the storage heap (and thus any installed hacks and the
        activity log) survives.  This handler never "returns" to the
        caller — reset discards the in-flight trap frame."""
        self.k.device.warm_reset()

    def t_TimGetSeconds(self, cpu: "CPU", base: int) -> None:
        cpu.d[0] = self.k.now_seconds(charge=True)

    # ==================================================================
    # Memory manager
    # ==================================================================
    def t_MemPtrNew(self, cpu: "CPU", base: int) -> None:
        size = self._arg(cpu, base, 0)
        ptr = self.k.dyn_heap.alloc(size, L.OWNER_APP)
        if not ptr:
            self._set_last_err(ERR_MEM_NOT_ENOUGH)
        cpu.d[0] = ptr

    def t_MemPtrFree(self, cpu: "CPU", base: int) -> None:
        ptr = self._arg(cpu, base, 0)
        try:
            self.k.dyn_heap.free(ptr)
            cpu.d[0] = 0
        except HeapError:
            cpu.d[0] = ERR_MEM_INVALID_PTR

    def t_MemPtrSize(self, cpu: "CPU", base: int) -> None:
        try:
            cpu.d[0] = self.k.dyn_heap.payload_size(self._arg(cpu, base, 0))
        except HeapError:
            cpu.d[0] = 0

    def t_MemHeapFreeBytes(self, cpu: "CPU", base: int) -> None:
        heap = self.k.dyn_heap if self._arg(cpu, base, 0) == 0 else self.k.sto_heap
        cpu.d[0] = heap.free_bytes()

    def n_MemMove(self, cpu: "CPU", base: int) -> None:
        dst = self._arg(cpu, base, 0)
        src = self._arg(cpu, base, 1)
        length = self._arg(cpu, base, 2)
        data = self.acc.read_bytes(src, length)
        self.acc.write_bytes(dst, data)
        cpu.d[0] = 0

    def n_MemSet(self, cpu: "CPU", base: int) -> None:
        ptr = self._arg(cpu, base, 0)
        length = self._arg(cpu, base, 1)
        value = self._arg(cpu, base, 2) & 0xFF
        self.acc.write_bytes(ptr, bytes([value]) * length)
        cpu.d[0] = 0

    # ==================================================================
    # Data manager — simple traps
    # ==================================================================
    def t_DmCreateDatabase(self, cpu: "CPU", base: int) -> None:
        from .database import fourcc_str
        name = self._cstring(self._arg(cpu, base, 0))
        type_code = fourcc_str(self._arg(cpu, base, 1))
        creator = fourcc_str(self._arg(cpu, base, 2))
        attrs = self._arg(cpu, base, 3) & 0xFFFF
        try:
            cpu.d[0] = self.k.dm.create(name, type_code or "DATA",
                                        creator or "repr", attrs)
            self._set_last_err(0)
        except DmError as err:
            self._set_last_err(err.code)
            cpu.d[0] = 0

    def t_DmDeleteDatabase(self, cpu: "CPU", base: int) -> None:
        name = self._cstring(self._arg(cpu, base, 0))
        try:
            self.k.dm.delete(name)
            cpu.d[0] = 0
        except DmError as err:
            self._set_last_err(err.code)
            cpu.d[0] = err.code

    def t_DmFindDatabase(self, cpu: "CPU", base: int) -> None:
        name = self._cstring(self._arg(cpu, base, 0))
        db = self.k.dm.find(name)
        if not db:
            self._set_last_err(ERR_DM_NOT_FOUND)
        cpu.d[0] = db

    def t_DmOpenDatabase(self, cpu: "CPU", base: int) -> None:
        db = self._arg(cpu, base, 0)
        if db:
            self.k.dm.open_db(db)
        else:
            self._set_last_err(ERR_DM_NOT_FOUND)
        cpu.d[0] = db

    def t_DmCloseDatabase(self, cpu: "CPU", base: int) -> None:
        db = self._arg(cpu, base, 0)
        if db:
            self.k.dm.close_db(db)
        cpu.d[0] = 0

    def t_DmDatabaseInfo(self, cpu: "CPU", base: int) -> None:
        db = self._arg(cpu, base, 0)
        buf = self._arg(cpu, base, 1)
        header = self.acc.read_bytes(db + L.DB_PDB, L.PDB_SIZE)
        self.acc.write_bytes(buf, header)
        cpu.d[0] = 0

    def t_DmSetDatabaseInfo(self, cpu: "CPU", base: int) -> None:
        db = self._arg(cpu, base, 0)
        attrs = self._arg(cpu, base, 1) & 0xFFFF
        self.k.dm.set_attributes(db, attrs)
        cpu.d[0] = 0

    def t_DmNumRecords(self, cpu: "CPU", base: int) -> None:
        cpu.d[0] = self.k.dm.num_records(self._arg(cpu, base, 0))

    def t_DmRecordInfo(self, cpu: "CPU", base: int) -> None:
        db = self._arg(cpu, base, 0)
        index = self._arg(cpu, base, 1)
        try:
            attr, uid, _size = self.k.dm.record_info(db, index)
            cpu.d[0] = (attr << 24) | uid
        except DmError as err:
            self._set_last_err(err.code)
            cpu.d[0] = 0

    def t_DmSetRecordInfo(self, cpu: "CPU", base: int) -> None:
        db = self._arg(cpu, base, 0)
        index = self._arg(cpu, base, 1)
        attr = self._arg(cpu, base, 2) & 0xFF
        uid = self._arg(cpu, base, 3) & 0x00FFFFFF
        try:
            self.k.dm.set_record_info(db, index, attr, uid)
            cpu.d[0] = 0
        except DmError as err:
            self._set_last_err(err.code)
            cpu.d[0] = err.code

    def t_DmReleaseRecord(self, cpu: "CPU", base: int) -> None:
        db = self._arg(cpu, base, 0)
        if db:
            self.k.dm.touch(db)
        cpu.d[0] = 0

    def t_DmGetLastErr(self, cpu: "CPU", base: int) -> None:
        cpu.d[0] = self.acc.read32(L.G_DM_LAST_ERR)

    def t_DmNextDatabase(self, cpu: "CPU", base: int) -> None:
        prev = self._arg(cpu, base, 0)
        if prev:
            cpu.d[0] = self.acc.read32(prev + L.DB_NEXT)
        else:
            cpu.d[0] = self.acc.read32(L.DB_LIST_HEAD)

    # ==================================================================
    # Data manager — walk-based traps (68k data plane)
    # ==================================================================
    def _walk_setup(self, cpu: "CPU", db: int, index: int) -> None:
        """Load d0 = hop count, a0 = head field for the ROM walk loop."""
        cpu.d[0] = index
        cpu.a[0] = db + L.DB_FIRST_RECORD

    def _prep_indexed(self, cpu: "CPU", base: int, *,
                      for_insert: bool, extra: dict) -> None:
        db = self._arg(cpu, base, 0)
        index = self._arg(cpu, base, 1)
        count = self.k.dm.num_records(db) if db else 0
        if index == L.DM_MAX_RECORD_INDEX:
            index = count
        limit = count + 1 if for_insert else count
        if not db or index >= limit:
            self._ctx.append({"err": ERR_DM_INDEX_OUT_OF_RANGE})
            cpu.d[0] = 0
            cpu.a[0] = L.G_DM_LAST_ERR  # harmless readable address
            return
        ctx = {"db": db, "index": index}
        ctx.update(extra)
        self._ctx.append(ctx)
        self._walk_setup(cpu, db, index)

    # -- DmNewRecord(db, index, size) ------------------------------------
    def p_DmNewRecord(self, cpu: "CPU", base: int) -> None:
        size = self._arg(cpu, base, 2)
        self._prep_indexed(cpu, base, for_insert=True, extra={"size": size})
        ctx = self._ctx[-1]
        if "err" in ctx:
            return
        rec = self.k.sto_heap.alloc(L.REC_OVERHEAD + size, L.OWNER_DATABASE)
        if not rec:
            ctx.clear()
            ctx["err"] = ERR_MEM_NOT_ENOUGH
            cpu.d[0] = 0
            cpu.a[0] = L.G_DM_LAST_ERR
            return
        ctx["rec"] = rec

    def d_DmNewRecord(self, cpu: "CPU", base: int) -> None:
        ctx = self._ctx.pop()
        slot = cpu.a[7]  # saved d0 (result slot)
        if "err" in ctx:
            self._set_last_err(ctx["err"])
            self.acc.write32(slot, 0)
            return
        a = self.acc
        db, rec, size = ctx["db"], ctx["rec"], ctx["size"]
        field = cpu.a[0]
        pdb = db + L.DB_PDB
        uid = a.read32(pdb + L.PDB_UNIQUE_ID_SEED) + 1
        a.write32(pdb + L.PDB_UNIQUE_ID_SEED, uid)
        a.write32(rec + L.REC_NEXT, a.read32(field))
        a.write32(rec + L.REC_ATTR_UID, uid & 0x00FFFFFF)
        a.write32(rec + L.REC_LEN, size)
        a.write32(field, rec)
        a.write16(pdb + L.PDB_NUM_RECORDS, self.k.dm.num_records(db) + 1)
        self.k.dm.touch(db)
        self._set_last_err(0)
        a.write32(slot, rec + L.REC_DATA)

    def n_DmNewRecord(self, cpu: "CPU", base: int) -> None:
        db = self._arg(cpu, base, 0)
        index = self._arg(cpu, base, 1)
        size = self._arg(cpu, base, 2)
        try:
            cpu.d[0] = self.k.dm.new_record(db, index, size)
            self._set_last_err(0)
        except DmError as err:
            self._set_last_err(err.code)
            cpu.d[0] = 0

    # -- DmGetRecord / DmQueryRecord(db, index) ---------------------------
    def p_DmGetRecord(self, cpu: "CPU", base: int) -> None:
        self._prep_indexed(cpu, base, for_insert=False, extra={})

    def d_DmGetRecord(self, cpu: "CPU", base: int) -> None:
        ctx = self._ctx.pop()
        slot = cpu.a[7]
        if "err" in ctx:
            self._set_last_err(ctx["err"])
            self.acc.write32(slot, 0)
            return
        rec = self.acc.read32(cpu.a[0])
        self._set_last_err(0)
        self.acc.write32(slot, rec + L.REC_DATA)

    def n_DmGetRecord(self, cpu: "CPU", base: int) -> None:
        db = self._arg(cpu, base, 0)
        index = self._arg(cpu, base, 1)
        try:
            addr, _length = self.k.dm.get_record(db, index)
            cpu.d[0] = addr
            self._set_last_err(0)
        except DmError as err:
            self._set_last_err(err.code)
            cpu.d[0] = 0

    # -- DmRemoveRecord(db, index) ----------------------------------------
    def p_DmRemoveRecord(self, cpu: "CPU", base: int) -> None:
        self._prep_indexed(cpu, base, for_insert=False, extra={})

    def d_DmRemoveRecord(self, cpu: "CPU", base: int) -> None:
        ctx = self._ctx.pop()
        slot = cpu.a[7]
        if "err" in ctx:
            self._set_last_err(ctx["err"])
            self.acc.write32(slot, ctx["err"])
            return
        a = self.acc
        db = ctx["db"]
        field = cpu.a[0]
        rec = a.read32(field)
        a.write32(field, a.read32(rec + L.REC_NEXT))
        self.k.sto_heap.free(rec)
        pdb = db + L.DB_PDB
        a.write16(pdb + L.PDB_NUM_RECORDS, self.k.dm.num_records(db) - 1)
        self.k.dm.touch(db)
        self._set_last_err(0)
        a.write32(slot, 0)

    def n_DmRemoveRecord(self, cpu: "CPU", base: int) -> None:
        db = self._arg(cpu, base, 0)
        index = self._arg(cpu, base, 1)
        try:
            self.k.dm.remove_record(db, index)
            cpu.d[0] = 0
        except DmError as err:
            self._set_last_err(err.code)
            cpu.d[0] = err.code

    # -- DmWriteRecord(db, index, offset, srcPtr, len) ----------------------
    def p_DmWriteRecord(self, cpu: "CPU", base: int) -> None:
        offset = self._arg(cpu, base, 2)
        src = self._arg(cpu, base, 3)
        length = self._arg(cpu, base, 4)
        self._prep_indexed(cpu, base, for_insert=False,
                           extra={"offset": offset, "src": src,
                                  "len": length})

    def d_DmWriteRecord(self, cpu: "CPU", base: int) -> None:
        ctx = self._ctx.pop()
        slot = cpu.a[7]  # saved d0
        if "err" in ctx:
            self._set_last_err(ctx["err"])
            self.acc.write32(slot, ctx["err"])
            cpu.d[0] = 0  # skip the copy loop
            return
        a = self.acc
        rec = a.read32(cpu.a[0])
        rec_len = a.read32(rec + L.REC_LEN)
        if ctx["offset"] + ctx["len"] > rec_len:
            self._set_last_err(ERR_DM_INDEX_OUT_OF_RANGE)
            a.write32(slot, ERR_DM_INDEX_OUT_OF_RANGE)
            cpu.d[0] = 0
            return
        # Arm the 68k copy loop.
        cpu.a[0] = ctx["src"]
        cpu.a[1] = rec + L.REC_DATA + ctx["offset"]
        cpu.d[0] = ctx["len"]
        self.k.dm.touch(ctx["db"])
        self._set_last_err(0)
        a.write32(slot, 0)

    def n_DmWriteRecord(self, cpu: "CPU", base: int) -> None:
        db = self._arg(cpu, base, 0)
        index = self._arg(cpu, base, 1)
        offset = self._arg(cpu, base, 2)
        src = self._arg(cpu, base, 3)
        length = self._arg(cpu, base, 4)
        try:
            data = self.acc.read_bytes(src, length)
            self.k.dm.write_record(db, index, offset, data)
            cpu.d[0] = 0
        except DmError as err:
            self._set_last_err(err.code)
            cpu.d[0] = err.code

    # ==================================================================
    # Expansion manager (memory cards)
    # ==================================================================
    def t_ExpCardPresent(self, cpu: "CPU", base: int) -> None:
        cpu.d[0] = self.acc.read32(C.REG_CARD_STATUS)

    def t_ExpCardInfo(self, cpu: "CPU", base: int) -> None:
        """Write the inserted card's name (NUL-terminated) to the
        caller's buffer; returns 0, or an error when no card is in."""
        buf = self._arg(cpu, base, 0)
        card = self.k.device.card_slot.card
        if card is None:
            cpu.d[0] = ERR_DM_NOT_FOUND
            return
        name = card.name.encode("latin-1")[:31] + b"\x00"
        self.acc.write_bytes(buf, name)
        cpu.d[0] = 0

    # ==================================================================
    # Window manager
    # ==================================================================
    def _clip_rect(self, x: int, y: int, w: int,
                   h: int) -> tuple[int, int, int, int]:
        x0, y0 = max(0, x), max(0, y)
        x1, y1 = min(_SCREEN_W, x + w), min(_SCREEN_H, y + h)
        return x0, y0, max(0, x1 - x0), max(0, y1 - y0)

    def p_WinDrawRectangle(self, cpu: "CPU", base: int) -> None:
        x = self._arg(cpu, base, 0)
        y = self._arg(cpu, base, 1)
        w = self._arg(cpu, base, 2)
        h = self._arg(cpu, base, 3)
        color = self._arg(cpu, base, 4) & 0xFFFF
        x, y, w, h = self._clip_rect(x, y, w, h)
        if w == 0 or h == 0:
            cpu.d[0] = 0
            return
        cpu.a[0] = L.FRAMEBUFFER + (y * _SCREEN_W + x) * 2
        cpu.d[0] = h
        cpu.d[1] = w
        cpu.d[2] = color
        cpu.d[3] = (_SCREEN_W - w) * 2

    def n_WinDrawRectangle(self, cpu: "CPU", base: int) -> None:
        x = self._arg(cpu, base, 0)
        y = self._arg(cpu, base, 1)
        w = self._arg(cpu, base, 2)
        h = self._arg(cpu, base, 3)
        color = self._arg(cpu, base, 4) & 0xFFFF
        x, y, w, h = self._clip_rect(x, y, w, h)
        a = self.acc
        row = bytes([color >> 8, color & 0xFF]) * w
        for j in range(h):
            a.write_bytes(L.FRAMEBUFFER + ((y + j) * _SCREEN_W + x) * 2, row)
        cpu.d[0] = 0

    def p_WinDrawChars(self, cpu: "CPU", base: int) -> None:
        text = self._arg(cpu, base, 0)
        length = self._arg(cpu, base, 1)
        x = self._arg(cpu, base, 2)
        y = self._arg(cpu, base, 3)
        x = max(0, min(_SCREEN_W - 6, x))
        y = max(0, min(_SCREEN_H - 8, y))
        length = min(length, (_SCREEN_W - x) // 6)
        if length <= 0:
            cpu.d[0] = 0
            return
        cpu.a[0] = text
        cpu.a[1] = L.FRAMEBUFFER + (y * _SCREEN_W + x) * 2
        cpu.d[0] = length

    def n_WinDrawChars(self, cpu: "CPU", base: int) -> None:
        text = self._arg(cpu, base, 0)
        length = self._arg(cpu, base, 1)
        x = self._arg(cpu, base, 2)
        y = self._arg(cpu, base, 3)
        x = max(0, min(_SCREEN_W - 6, x))
        y = max(0, min(_SCREEN_H - 8, y))
        length = min(length, (_SCREEN_W - x) // 6)
        a = self.acc
        for i in range(max(0, length)):
            ch = a.read8(text + i)
            word = (ch << 8) | ch
            cell = L.FRAMEBUFFER + (y * _SCREEN_W + x + i * 6) * 2
            for row in range(8):
                a.write16(cell + row * _ROW_BYTES, word)
        cpu.d[0] = 0

    def n_WinEraseWindow(self, cpu: "CPU", base: int) -> None:
        self.acc.write_bytes(L.FRAMEBUFFER, b"\xff" * C.FRAMEBUFFER_SIZE)
        cpu.d[0] = 0

    def t_WinDrawLine(self, cpu: "CPU", base: int) -> None:
        x0 = self._arg(cpu, base, 0)
        y0 = self._arg(cpu, base, 1)
        x1 = self._arg(cpu, base, 2)
        y1 = self._arg(cpu, base, 3)
        color = self._arg(cpu, base, 4) & 0xFFFF
        a = self.acc
        dx, dy = abs(x1 - x0), -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        while True:
            if 0 <= x0 < _SCREEN_W and 0 <= y0 < _SCREEN_H:
                a.write16(L.FRAMEBUFFER + (y0 * _SCREEN_W + x0) * 2, color)
            if x0 == x1 and y0 == y1:
                break
            e2 = 2 * err
            if e2 >= dy:
                err += dy
                x0 += sx
            if e2 <= dx:
                err += dx
                y0 += sy
        cpu.d[0] = 0

    def t_WinDrawPixel(self, cpu: "CPU", base: int) -> None:
        x = self._arg(cpu, base, 0)
        y = self._arg(cpu, base, 1)
        color = self._arg(cpu, base, 2) & 0xFFFF
        if 0 <= x < _SCREEN_W and 0 <= y < _SCREEN_H:
            self.acc.write16(L.FRAMEBUFFER + (y * _SCREEN_W + x) * 2, color)
        cpu.d[0] = 0

    def t_WinGetPixel(self, cpu: "CPU", base: int) -> None:
        x = self._arg(cpu, base, 0)
        y = self._arg(cpu, base, 1)
        if 0 <= x < _SCREEN_W and 0 <= y < _SCREEN_H:
            cpu.d[0] = self.acc.read16(L.FRAMEBUFFER + (y * _SCREEN_W + x) * 2)
        else:
            cpu.d[0] = 0
