"""Guest RAM layout of the Palm OS kernel model.

Everything the kernel owns lives in guest memory as real bytes — the
trap dispatch table, the event queue, both heaps, and every database.
That is what makes the reproduction honest: profiled replays see the
kernel's actual loads and stores, hack overhead grows with database
size because the index really is walked, and final-state validation
diffs real memory images.
"""

from __future__ import annotations

from ..device import constants as C

# -- vectors and globals -------------------------------------------------
VECTOR_TABLE = 0x0000            # 64 exception vectors
GLOBALS_BASE = 0x0100

G_TICKS = GLOBALS_BASE + 0x00        # tick mirror kept by the timer ISR
G_RAND_SEED = GLOBALS_BASE + 0x04    # SysRandom LCG state
G_EVT_DEADLINE = GLOBALS_BASE + 0x08  # EvtGetEvent timeout deadline (0 = none)
G_EVT_PTR = GLOBALS_BASE + 0x0C      # EvtGetEvent destination pointer
G_CURRENT_APP = GLOBALS_BASE + 0x10  # entry address of the running app
G_NEXT_APP = GLOBALS_BASE + 0x14     # pending SysUIAppSwitch target (0 = none)
G_PEN_PREV = GLOBALS_BASE + 0x18     # previous pen sample (transition detect)
G_UNUSED_1C = GLOBALS_BASE + 0x1C
G_HEAP_ROVER_DYN = GLOBALS_BASE + 0x20   # next-fit rover, dynamic heap
G_HEAP_ROVER_STO = GLOBALS_BASE + 0x24   # next-fit rover, storage heap
G_DM_LAST_ERR = GLOBALS_BASE + 0x28
G_STORAGE_MAGIC = GLOBALS_BASE + 0x2C    # unused (magic lives in the heap)
G_IDLE_COUNT = GLOBALS_BASE + 0x30       # EvtGetEvent sleep counter
G_BOOT_COUNT = GLOBALS_BASE + 0x34
G_DELAY_DEADLINE = GLOBALS_BASE + 0x38   # SysTaskDelay deadline

# -- trap dispatch table ---------------------------------------------------
TRAP_TABLE = 0x0400
MAX_TRAPS = 512                   # 4-byte handler address per trap
TRAP_TABLE_END = TRAP_TABLE + MAX_TRAPS * 4   # 0x0C00

# -- kernel / application stack --------------------------------------------
STACK_BOTTOM = 0x1000
STACK_TOP = 0x8000

# -- event queue -------------------------------------------------------------
EVENT_QUEUE = 0x8000              # header + ring storage
EVENT_QUEUE_CAPACITY = 64
EVENT_SIZE = 16
# Header: head u16, tail u16, count u16, capacity u16.
EVENT_QUEUE_SLOTS = EVENT_QUEUE + 8

# -- framebuffer -------------------------------------------------------------
FRAMEBUFFER = C.FRAMEBUFFER_ADDR              # 0x10000
FRAMEBUFFER_END = FRAMEBUFFER + C.FRAMEBUFFER_SIZE

# -- heaps -------------------------------------------------------------------
DYNAMIC_HEAP_BASE = 0x0001_D000
DYNAMIC_HEAP_LIMIT = 0x0004_0000
STORAGE_HEAP_BASE = 0x0004_0000
# The storage heap runs to the end of RAM; computed from the device.

STORAGE_MAGIC = 0x50414C4D        # "PALM": storage heap is formatted
#: Head of the database list.  Lives in the storage heap header (not
#: the kernel globals) because databases must survive soft resets.
DB_LIST_HEAD = STORAGE_HEAP_BASE + 4

# -- chunk headers ------------------------------------------------------------
CHUNK_HEADER_SIZE = 8             # size u32 | flags u16 | owner u16
CHUNK_FLAG_FREE = 0x0001
MIN_CHUNK_SPLIT = 24              # do not split off fragments smaller than this

OWNER_KERNEL = 0x0001
OWNER_DATABASE = 0x0002
OWNER_APP = 0x0003

# -- database layout -----------------------------------------------------------
# A database header chunk payload:
#   +0   next database (u32)
#   +4   first record (u32)
#   +8   open count (u16)
#   +10  reserved (u16)
#   +12  PDB header (78 bytes, classic Palm layout)
DB_NEXT = 0
DB_FIRST_RECORD = 4
DB_OPEN_COUNT = 8
DB_PDB = 12

PDB_NAME = 0          # 32 bytes, NUL padded
PDB_ATTRIBUTES = 32   # u16
PDB_VERSION = 34      # u16
PDB_CREATION_DATE = 36       # u32, Palm epoch seconds
PDB_MODIFICATION_DATE = 40   # u32
PDB_LAST_BACKUP_DATE = 44    # u32
PDB_MODIFICATION_NUMBER = 48  # u32
PDB_APP_INFO_ID = 52  # u32
PDB_SORT_INFO_ID = 56  # u32
PDB_TYPE = 60         # u32 four-character code
PDB_CREATOR = 64      # u32 four-character code
PDB_UNIQUE_ID_SEED = 68  # u32
PDB_NEXT_RECORD_LIST = 72  # u32
PDB_NUM_RECORDS = 76  # u16
PDB_SIZE = 78
DB_HEADER_PAYLOAD = DB_PDB + PDB_SIZE  # 90 bytes

# A record chunk payload:
#   +0  next record (u32)
#   +4  attributes (u8) | unique id (u24)
#   +8  data length (u32)
#   +12 data bytes
REC_NEXT = 0
REC_ATTR_UID = 4
REC_LEN = 8
REC_DATA = 12
REC_OVERHEAD = 12

# Database attribute bits (subset of Palm's dmHdrAttr*).
DM_ATTR_BACKUP = 0x0008
DM_ATTR_READONLY = 0x0002
DM_ATTR_RESOURCE = 0x0001

DM_MAX_RECORD_INDEX = 0xFFFF     # "append" sentinel


def storage_heap_limit(ram_size: int) -> int:
    return ram_size
