"""The data manager: Palm OS record databases in guest RAM.

On Palm OS, *everything* persistent is a record database: user data,
preferences, and (as resource databases) applications themselves.  A
database is a header chunk (classic 78-byte PDB header) plus a singly
linked list of record chunks in the storage heap.  The list walk per
record operation is deliberate: it reproduces the linear cost growth
with record count the paper measures for the logging hacks (Figure 3).

Host-side transfer (HotSync / ROMTransfer) round-trips through
:class:`DatabaseImage`, which also serialises to the on-disk PDB file
format.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from . import layout as L
from .access import GuestAccess
from .heap import Heap
from .traps import (
    ERR_DM_DATABASE_EXISTS,
    ERR_DM_INDEX_OUT_OF_RANGE,
    ERR_DM_NOT_FOUND,
    ERR_MEM_NOT_ENOUGH,
)


class DmError(Exception):
    def __init__(self, code: int):
        super().__init__(f"data manager error {code:#06x}")
        self.code = code


def fourcc(text: str) -> int:
    """Pack a four-character code like ``'data'`` into a u32."""
    raw = text.encode("latin-1").ljust(4, b"\x00")[:4]
    return struct.unpack(">I", raw)[0]


def fourcc_str(value: int) -> str:
    return struct.pack(">I", value).decode("latin-1").rstrip("\x00")


def _pack_name(name: str) -> bytes:
    raw = name.encode("latin-1")[:31]
    return raw.ljust(32, b"\x00")


@dataclass
class RecordImage:
    attr: int
    uid: int
    data: bytes


@dataclass
class DatabaseImage:
    """Host-side snapshot of one database (what HotSync transfers)."""

    name: str
    type: str = "DATA"
    creator: str = "repr"
    attributes: int = 0
    version: int = 0
    creation_date: int = 0
    modification_date: int = 0
    last_backup_date: int = 0
    modification_number: int = 0
    unique_id_seed: int = 0
    records: List[RecordImage] = field(default_factory=list)

    # -- PDB file format ------------------------------------------------
    def to_pdb_bytes(self) -> bytes:
        """Serialise in the classic PDB file layout."""
        header = struct.pack(
            ">32sHHIIIIII4s4sIIH",
            _pack_name(self.name),
            self.attributes,
            self.version,
            self.creation_date,
            self.modification_date,
            self.last_backup_date,
            self.modification_number,
            0,  # appInfoID
            0,  # sortInfoID
            self.type.encode("latin-1").ljust(4, b"\x00")[:4],
            self.creator.encode("latin-1").ljust(4, b"\x00")[:4],
            self.unique_id_seed,
            0,  # nextRecordListID
            len(self.records),
        )
        index = bytearray()
        offset = len(header) + 8 * len(self.records)
        for rec in self.records:
            index += struct.pack(">IB3s", offset, rec.attr,
                                 rec.uid.to_bytes(3, "big"))
            offset += len(rec.data)
        body = b"".join(rec.data for rec in self.records)
        return header + bytes(index) + body

    @classmethod
    def from_pdb_bytes(cls, blob: bytes) -> "DatabaseImage":
        (raw_name, attributes, version, cdate, mdate, bdate, modnum,
         _appinfo, _sortinfo, type_raw, creator_raw, seed, _nextlist,
         nrecords) = struct.unpack(">32sHHIIIIII4s4sIIH", blob[:78])
        records: List[RecordImage] = []
        offsets: List[Tuple[int, int, int]] = []
        pos = 78
        for _ in range(nrecords):
            off, attr, uid_raw = struct.unpack(">IB3s", blob[pos:pos + 8])
            offsets.append((off, attr, int.from_bytes(uid_raw, "big")))
            pos += 8
        for i, (off, attr, uid) in enumerate(offsets):
            end = offsets[i + 1][0] if i + 1 < len(offsets) else len(blob)
            records.append(RecordImage(attr, uid, blob[off:end]))
        return cls(
            name=raw_name.split(b"\x00", 1)[0].decode("latin-1"),
            type=type_raw.decode("latin-1").rstrip("\x00"),
            creator=creator_raw.decode("latin-1").rstrip("\x00"),
            attributes=attributes,
            version=version,
            creation_date=cdate,
            modification_date=mdate,
            last_backup_date=bdate,
            modification_number=modnum,
            unique_id_seed=seed,
            records=records,
        )


class DatabaseManager:
    """Operations on the guest-resident database list.

    ``now_fn`` supplies the current time in Palm-epoch seconds (used for
    the creation/modification date stamps whose benign divergence the
    paper's final-state validation observes).
    """

    def __init__(self, access: GuestAccess, heap: Heap,
                 now_fn: Callable[[], int]):
        self.access = access
        self.heap = heap
        self.now_fn = now_fn

    def with_access(self, access: GuestAccess) -> "DatabaseManager":
        return DatabaseManager(access, self.heap.with_access(access),
                               self.now_fn)

    # ------------------------------------------------------------------
    # Database list
    # ------------------------------------------------------------------
    def list_databases(self) -> List[int]:
        result: List[int] = []
        addr = self.access.read32(L.DB_LIST_HEAD)
        while addr:
            result.append(addr)
            addr = self.access.read32(addr + L.DB_NEXT)
        return result

    def find(self, name: str) -> int:
        """Walk the list comparing names; 0 when absent."""
        a = self.access
        target = _pack_name(name)
        addr = a.read32(L.DB_LIST_HEAD)
        while addr:
            if a.read_bytes(addr + L.DB_PDB + L.PDB_NAME, 32) == target:
                return addr
            addr = a.read32(addr + L.DB_NEXT)
        return 0

    def create(self, name: str, type_code: str = "DATA",
               creator: str = "repr", attributes: int = 0,
               stamp_dates: bool = True) -> int:
        """Create an empty database; returns its guest address."""
        if self.find(name):
            raise DmError(ERR_DM_DATABASE_EXISTS)
        addr = self.heap.alloc(L.DB_HEADER_PAYLOAD, L.OWNER_DATABASE)
        if not addr:
            raise DmError(ERR_MEM_NOT_ENOUGH)
        a = self.access
        a.write32(addr + L.DB_NEXT, 0)
        a.write32(addr + L.DB_FIRST_RECORD, 0)
        a.write16(addr + L.DB_OPEN_COUNT, 0)
        a.write16(addr + L.DB_OPEN_COUNT + 2, 0)
        pdb = addr + L.DB_PDB
        a.write_bytes(pdb + L.PDB_NAME, _pack_name(name))
        a.write16(pdb + L.PDB_ATTRIBUTES, attributes)
        a.write16(pdb + L.PDB_VERSION, 0)
        now = self.now_fn() if stamp_dates else 0
        a.write32(pdb + L.PDB_CREATION_DATE, now)
        a.write32(pdb + L.PDB_MODIFICATION_DATE, now)
        a.write32(pdb + L.PDB_LAST_BACKUP_DATE, 0)
        a.write32(pdb + L.PDB_MODIFICATION_NUMBER, 0)
        a.write32(pdb + L.PDB_APP_INFO_ID, 0)
        a.write32(pdb + L.PDB_SORT_INFO_ID, 0)
        a.write32(pdb + L.PDB_TYPE, fourcc(type_code))
        a.write32(pdb + L.PDB_CREATOR, fourcc(creator))
        a.write32(pdb + L.PDB_UNIQUE_ID_SEED, 0)
        a.write32(pdb + L.PDB_NEXT_RECORD_LIST, 0)
        a.write16(pdb + L.PDB_NUM_RECORDS, 0)
        self._append_to_list(addr)
        return addr

    def _append_to_list(self, db: int) -> None:
        a = self.access
        head = a.read32(L.DB_LIST_HEAD)
        if not head:
            a.write32(L.DB_LIST_HEAD, db)
            return
        addr = head
        while True:
            nxt = a.read32(addr + L.DB_NEXT)
            if not nxt:
                break
            addr = nxt
        a.write32(addr + L.DB_NEXT, db)

    def delete(self, name: str) -> None:
        a = self.access
        db = self.find(name)
        if not db:
            raise DmError(ERR_DM_NOT_FOUND)
        # Free every record chunk.
        rec = a.read32(db + L.DB_FIRST_RECORD)
        while rec:
            nxt = a.read32(rec + L.REC_NEXT)
            self.heap.free(rec)
            rec = nxt
        # Unlink from the list.
        prev_field = L.DB_LIST_HEAD
        addr = a.read32(prev_field)
        while addr != db:
            prev_field = addr + L.DB_NEXT
            addr = a.read32(prev_field)
        a.write32(prev_field, a.read32(db + L.DB_NEXT))
        self.heap.free(db)

    # ------------------------------------------------------------------
    # Header accessors
    # ------------------------------------------------------------------
    def num_records(self, db: int) -> int:
        return self.access.read16(db + L.DB_PDB + L.PDB_NUM_RECORDS)

    def name_of(self, db: int) -> str:
        raw = self.access.read_bytes(db + L.DB_PDB + L.PDB_NAME, 32)
        return raw.split(b"\x00", 1)[0].decode("latin-1")

    def attributes(self, db: int) -> int:
        return self.access.read16(db + L.DB_PDB + L.PDB_ATTRIBUTES)

    def set_attributes(self, db: int, attrs: int) -> None:
        self.access.write16(db + L.DB_PDB + L.PDB_ATTRIBUTES, attrs)

    def touch(self, db: int) -> None:
        """Stamp a modification: date = now, modification number += 1."""
        pdb = db + L.DB_PDB
        self.access.write32(pdb + L.PDB_MODIFICATION_DATE, self.now_fn())
        n = self.access.read32(pdb + L.PDB_MODIFICATION_NUMBER)
        self.access.write32(pdb + L.PDB_MODIFICATION_NUMBER, n + 1)

    def open_db(self, db: int) -> None:
        count = self.access.read16(db + L.DB_OPEN_COUNT)
        self.access.write16(db + L.DB_OPEN_COUNT, count + 1)

    def close_db(self, db: int) -> None:
        count = self.access.read16(db + L.DB_OPEN_COUNT)
        if count:
            self.access.write16(db + L.DB_OPEN_COUNT, count - 1)

    # ------------------------------------------------------------------
    # Record list
    # ------------------------------------------------------------------
    def walk_to(self, db: int, index: int) -> int:
        """Address of the pointer *field* to the record at ``index``.

        Walking ``index`` hops from the header's first-record field —
        the linear scan whose cost the logging-hack overhead study
        measures.  ``DM_MAX_RECORD_INDEX`` means "the end" (append).
        """
        a = self.access
        count = self.num_records(db)
        if index == L.DM_MAX_RECORD_INDEX:
            index = count
        if index > count:
            raise DmError(ERR_DM_INDEX_OUT_OF_RANGE)
        field_addr = db + L.DB_FIRST_RECORD
        for _ in range(index):
            field_addr = a.read32(field_addr)  # node addr; next field at +0
        return field_addr

    def new_record(self, db: int, index: int, size: int) -> int:
        """Allocate and splice a record; returns its data address."""
        a = self.access
        field_addr = self.walk_to(db, index)
        rec = self.heap.alloc(L.REC_OVERHEAD + size, L.OWNER_DATABASE)
        if not rec:
            raise DmError(ERR_MEM_NOT_ENOUGH)
        pdb = db + L.DB_PDB
        uid = a.read32(pdb + L.PDB_UNIQUE_ID_SEED) + 1
        a.write32(pdb + L.PDB_UNIQUE_ID_SEED, uid)
        a.write32(rec + L.REC_NEXT, a.read32(field_addr))
        a.write32(rec + L.REC_ATTR_UID, uid & 0x00FFFFFF)
        a.write32(rec + L.REC_LEN, size)
        a.write32(field_addr, rec)
        a.write16(pdb + L.PDB_NUM_RECORDS, self.num_records(db) + 1)
        self.touch(db)
        return rec + L.REC_DATA

    def get_record(self, db: int, index: int) -> tuple[int, int]:
        """(data address, length) of the record at ``index``."""
        if index >= self.num_records(db):
            raise DmError(ERR_DM_INDEX_OUT_OF_RANGE)
        rec = self.access.read32(self.walk_to(db, index))
        return rec + L.REC_DATA, self.access.read32(rec + L.REC_LEN)

    def remove_record(self, db: int, index: int) -> None:
        a = self.access
        if index >= self.num_records(db):
            raise DmError(ERR_DM_INDEX_OUT_OF_RANGE)
        field_addr = self.walk_to(db, index)
        rec = a.read32(field_addr)
        a.write32(field_addr, a.read32(rec + L.REC_NEXT))
        self.heap.free(rec)
        pdb = db + L.DB_PDB
        a.write16(pdb + L.PDB_NUM_RECORDS, self.num_records(db) - 1)
        self.touch(db)

    def write_record(self, db: int, index: int, offset: int,
                     data: bytes) -> None:
        addr, length = self.get_record(db, index)
        if offset + len(data) > length:
            raise DmError(ERR_DM_INDEX_OUT_OF_RANGE)
        self.access.write_bytes(addr + offset, data)
        self.touch(db)

    def read_record(self, db: int, index: int) -> bytes:
        addr, length = self.get_record(db, index)
        return self.access.read_bytes(addr, length)

    def bulk_append(self, db: int, payloads: List[bytes]) -> None:
        """Append many records in O(1) each by tracking the tail.

        Host-side state construction only (pre-filling databases for
        experiments); guest operations always pay the list walk.
        """
        a = self.access
        # Find the current tail.
        field_addr = db + L.DB_FIRST_RECORD
        nxt = a.read32(field_addr)
        while nxt:
            field_addr = nxt + L.REC_NEXT
            nxt = a.read32(field_addr)
        pdb = db + L.DB_PDB
        uid = a.read32(pdb + L.PDB_UNIQUE_ID_SEED)
        for data in payloads:
            rec = self.heap.alloc(L.REC_OVERHEAD + len(data),
                                  L.OWNER_DATABASE)
            if not rec:
                raise DmError(ERR_MEM_NOT_ENOUGH)
            uid += 1
            a.write32(rec + L.REC_NEXT, 0)
            a.write32(rec + L.REC_ATTR_UID, uid & 0x00FFFFFF)
            a.write32(rec + L.REC_LEN, len(data))
            a.write_bytes(rec + L.REC_DATA, data)
            a.write32(field_addr, rec)
            field_addr = rec + L.REC_NEXT
        a.write32(pdb + L.PDB_UNIQUE_ID_SEED, uid)
        count = self.num_records(db) + len(payloads)
        a.write16(pdb + L.PDB_NUM_RECORDS, count)
        self.touch(db)

    def record_info(self, db: int, index: int) -> tuple[int, int, int]:
        """(attr, uid, size) of the record at ``index``."""
        if index >= self.num_records(db):
            raise DmError(ERR_DM_INDEX_OUT_OF_RANGE)
        rec = self.access.read32(self.walk_to(db, index))
        attr_uid = self.access.read32(rec + L.REC_ATTR_UID)
        return attr_uid >> 24, attr_uid & 0x00FFFFFF, self.access.read32(rec + L.REC_LEN)

    def set_record_info(self, db: int, index: int, attr: int, uid: int) -> None:
        rec = self.access.read32(self.walk_to(db, index))
        self.access.write32(rec + L.REC_ATTR_UID,
                            ((attr & 0xFF) << 24) | (uid & 0x00FFFFFF))

    # ------------------------------------------------------------------
    # HotSync transfer
    # ------------------------------------------------------------------
    def set_backup_bits_all(self) -> None:
        """The paper's preparation step before the initial HotSync."""
        for db in self.list_databases():
            self.set_attributes(db, self.attributes(db) | L.DM_ATTR_BACKUP)

    def export_database(self, db: int) -> DatabaseImage:
        a = self.access
        pdb = db + L.DB_PDB
        image = DatabaseImage(
            name=self.name_of(db),
            type=fourcc_str(a.read32(pdb + L.PDB_TYPE)),
            creator=fourcc_str(a.read32(pdb + L.PDB_CREATOR)),
            attributes=a.read16(pdb + L.PDB_ATTRIBUTES),
            version=a.read16(pdb + L.PDB_VERSION),
            creation_date=a.read32(pdb + L.PDB_CREATION_DATE),
            modification_date=a.read32(pdb + L.PDB_MODIFICATION_DATE),
            last_backup_date=a.read32(pdb + L.PDB_LAST_BACKUP_DATE),
            modification_number=a.read32(pdb + L.PDB_MODIFICATION_NUMBER),
            unique_id_seed=a.read32(pdb + L.PDB_UNIQUE_ID_SEED),
        )
        rec = a.read32(db + L.DB_FIRST_RECORD)
        while rec:
            attr_uid = a.read32(rec + L.REC_ATTR_UID)
            length = a.read32(rec + L.REC_LEN)
            image.records.append(RecordImage(
                attr=attr_uid >> 24,
                uid=attr_uid & 0x00FFFFFF,
                data=a.read_bytes(rec + L.REC_DATA, length),
            ))
            rec = a.read32(rec + L.REC_NEXT)
        return image

    def import_database(self, image: DatabaseImage,
                        imported: bool = True) -> int:
        """Install a host image into the guest.

        With ``imported=True`` (how the emulator loads the initial
        state) the creation/backup/modification dates are left at zero —
        reproducing exactly the benign field differences §3.4 of the
        paper attributes to the import/export procedure.
        """
        existing = self.find(image.name)
        if existing:
            self.delete(image.name)
        db = self.create(image.name, image.type, image.creator,
                         image.attributes, stamp_dates=False)
        a = self.access
        pdb = db + L.DB_PDB
        a.write16(pdb + L.PDB_VERSION, image.version)
        if not imported:
            a.write32(pdb + L.PDB_CREATION_DATE, image.creation_date)
            a.write32(pdb + L.PDB_MODIFICATION_DATE, image.modification_date)
            a.write32(pdb + L.PDB_LAST_BACKUP_DATE, image.last_backup_date)
        a.write32(pdb + L.PDB_MODIFICATION_NUMBER, image.modification_number)
        # Append records in order (walk_to cost is fine host-side).
        field_addr = db + L.DB_FIRST_RECORD
        for rec_img in image.records:
            rec = self.heap.alloc(L.REC_OVERHEAD + len(rec_img.data),
                                  L.OWNER_DATABASE)
            if not rec:
                raise DmError(ERR_MEM_NOT_ENOUGH)
            a.write32(rec + L.REC_NEXT, 0)
            a.write32(rec + L.REC_ATTR_UID,
                      ((rec_img.attr & 0xFF) << 24) | (rec_img.uid & 0x00FFFFFF))
            a.write32(rec + L.REC_LEN, len(rec_img.data))
            a.write_bytes(rec + L.REC_DATA, rec_img.data)
            a.write32(field_addr, rec)
            field_addr = rec + L.REC_NEXT
        a.write16(pdb + L.PDB_NUM_RECORDS, len(image.records))
        a.write32(pdb + L.PDB_UNIQUE_ID_SEED, image.unique_id_seed)
        return db

    def export_all(self, backup_only: bool = False) -> List[DatabaseImage]:
        images: List[DatabaseImage] = []
        for db in self.list_databases():
            if backup_only and not self.attributes(db) & L.DM_ATTR_BACKUP:
                continue
            images.append(self.export_database(db))
        return images
